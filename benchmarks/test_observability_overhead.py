"""Disabled-telemetry overhead gate on the Figure-13 kernel scenario.

The telemetry plane's contract (see ``repro.obs``) is that hot kernels
stay instrumented *unconditionally* because the disabled path —
``span()`` returning a shared no-op after two module-attribute reads —
is nearly free.  This bench holds that claim to a number: a full
Figure-13-style scenario with the shipped (disabled) instrumentation
must run within 3% of the same scenario with every ``profiled``/``span``
call site stubbed down to a bare null context manager.

Rounds are interleaved (normal, stripped, normal, stripped, ...) and
compared by median so cache warm-up, CPU-frequency drift, and one-off
scheduler hiccups hit both variants equally.  A small absolute slack
keeps the ratio gate meaningful when the scenario runs fast enough for
timer noise to dominate a 3% margin.
"""

from __future__ import annotations

import time

import numpy as np
from conftest import RESULTS_DIR, run_once  # noqa: F401  (results dir hook)

from repro import perf
from repro.analysis.scenarios import ScenarioSpec, run_scenario
from repro.analysis.tables import format_table
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.config import EarthPlusConfig
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.obs import trace

#: Maximum tolerated disabled-instrumentation overhead.
_MAX_OVERHEAD = 0.03

#: Absolute slack (seconds) so timer noise cannot fail a passing ratio.
_ABS_SLACK_S = 0.05

_ROUNDS = 5


class _NullCM:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL = _NullCM()


def _strip_instrumentation(monkeypatch) -> None:
    """Replace every telemetry entry point with a raw no-op.

    This is the "instrumentation never existed" baseline: call sites
    still call *something* (removing the calls themselves would measure
    a program nobody ships), but that something skips even the disabled
    fast path's attribute reads.
    """
    monkeypatch.setattr(perf, "profiled", lambda name: _NULL)
    monkeypatch.setattr(trace, "span", lambda name, **attrs: _NULL)
    monkeypatch.setattr(trace, "set_context", lambda **attrs: None)
    monkeypatch.setattr(trace, "clear_context", lambda *names: None)


def test_disabled_telemetry_overhead(benchmark, emit, emit_json, monkeypatch):
    assert trace.active_tracer() is None
    assert perf.active_profiler() is None

    dataset = sentinel2_dataset(
        locations=["B"],
        bands=["B4", "B11"],
        horizon_days=90.0,
        image_shape=(192, 192),
    )
    train_onboard_detector(dataset.bands, tile_size=64)
    train_ground_detector(dataset.bands)
    spec = ScenarioSpec(
        policy="earthplus",
        dataset=dataset,
        config=EarthPlusConfig(gamma_bpp=0.3),
    )

    def timed_run() -> float:
        start = time.perf_counter()
        run_scenario(spec)
        return time.perf_counter() - start

    def experiment():
        run_scenario(spec)  # warm detectors, caches, allocator
        normal, stripped = [], []
        for _ in range(_ROUNDS):
            normal.append(timed_run())
            with monkeypatch.context() as patch:
                _strip_instrumentation(patch)
                stripped.append(timed_run())
        return float(np.median(normal)), float(np.median(stripped))

    normal_s, stripped_s = run_once(benchmark, experiment)
    overhead = normal_s / stripped_s - 1.0
    emit(
        "observability_overhead",
        format_table(
            ["variant", "median", "overhead"],
            [
                ["instrumented, telemetry disabled", f"{normal_s:.3f} s",
                 f"{overhead * 100:+.2f}%"],
                ["instrumentation stripped", f"{stripped_s:.3f} s", ""],
            ],
            title=f"Disabled-telemetry overhead on the Figure-13 scenario "
            f"(median of {_ROUNDS} interleaved rounds, gate "
            f"<{_MAX_OVERHEAD * 100:.0f}%)",
        ),
    )
    emit_json(
        "observability",
        {
            "normal_seconds": normal_s,
            "stripped_seconds": stripped_s,
            "overhead_fraction": overhead,
            "max_overhead_fraction": _MAX_OVERHEAD,
            "rounds": _ROUNDS,
        },
    )
    assert normal_s <= stripped_s * (1.0 + _MAX_OVERHEAD) + _ABS_SLACK_S, (
        f"disabled telemetry costs {overhead * 100:.1f}% "
        f"({normal_s:.3f}s vs {stripped_s:.3f}s) — gate is "
        f"{_MAX_OVERHEAD * 100:.0f}%"
    )
