"""Figure 21: the unified sweep scheduler's throughput claim, measured.

One persistent pool runs a 12-spec x 4-shard fig19-style sweep as a
single task DAG.  The committed numbers carry the two invariants the
scheduler exists for: workers spawn once per *sweep* (the legacy sharded
path forked ``n_specs x shards`` processes), and the joint schedule's
critical path beats the better of the two exclusive legacy modes
(``max_workers``-only, which cannot split a scenario; ``shards``-only,
which runs scenarios serially) by >= 2x.  On a host with fewer cores
than workers the wall numbers are timesliced artifacts; the projections
(CPU-seconds critical paths) are the meaningful ones — see
``fig21_sweep_throughput``'s docstring for their derivation.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table

#: Floor for the joint schedule's critical-path advantage over the
#: better exclusive mode, well under the ~2.7x a healthy build records.
GATE_PROJECTION = 2.0


def test_fig21_sweep_throughput(benchmark, emit, emit_json, bench_scale):
    if bench_scale == "full":
        seeds = [19, 23, 27, 31]  # 16 specs
        horizon = 60.0
    else:
        seeds = [19, 23, 27]  # 12 specs
        horizon = 45.0
    result = run_once(
        benchmark,
        lambda: F.fig21_sweep_throughput(seeds=seeds, horizon_days=horizon),
    )
    rows = result["rows"]
    summary = result["summary"]
    emit(
        "fig21_sweep_throughput",
        format_table(
            [
                "scenario", "satellites", "sequential CPU s",
                "shard tasks", "max shard CPU s", "identical",
            ],
            [
                [
                    r["scenario"],
                    str(r["satellites"]),
                    f"{r['sequential_cpu_s']:.3f}",
                    str(r["shard_tasks"]),
                    f"{r['max_shard_cpu_s']:.3f}",
                    "yes" if r["identical"] else "NO",
                ]
                for r in rows
            ],
            title=(
                f"Figure 21 - unified sweep scheduler "
                f"({summary['n_specs']} specs x "
                f"{summary['shards_per_scenario']} shards on "
                f"{summary['workers']} workers, host: "
                f"{summary['host_cores']} core"
                f"{'' if summary['host_cores'] == 1 else 's'})"
            ),
        )
        + (
            f"\nspawns: joint {summary['spawns_joint']} (once per sweep)"
            f" vs legacy sharded {summary['spawns_legacy_sharded']}"
            f" (n_specs x shards)"
            f"\ncritical paths (CPU s): specs-only "
            f"{summary['cp_specs_s']:.3f}, shards-only "
            f"{summary['cp_shards_s']:.3f}, joint {summary['cp_joint_s']:.3f}"
            f"\nprojection over best exclusive mode: "
            f"{summary['projection_over_best_exclusive']:.2f}x"
        ),
    )
    emit_json("sweep", summary)
    # Scheduling topology must never change a byte, on any spec.
    assert summary["all_identical"], rows
    # The pool is persistent: one spawn set per sweep, not per task.
    assert summary["spawns_joint"] == summary["workers"], summary
    assert summary["spawns_legacy_sharded"] == (
        summary["n_specs"] * summary["shards_per_scenario"]
    )
    assert summary["tasks_run"] == (
        summary["n_specs"] * summary["shards_per_scenario"]
    )
    assert (
        summary["projection_over_best_exclusive"] >= GATE_PROJECTION
    ), summary
