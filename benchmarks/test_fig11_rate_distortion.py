"""Figure 11: PSNR vs downlink-bandwidth trade-off, both datasets.

Paper: Earth+ saves 1.3-2.0x downlink at matched PSNR on Sentinel-2 and
2.8-3.3x on the Planet (large-constellation) dataset.
"""

import numpy as np
from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.figures import equal_psnr_saving
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset

GAMMAS = [0.08, 0.2, 0.5]


def _render(name: str, curves: dict) -> str:
    rows = []
    for policy, points in curves.items():
        for point in points:
            rows.append(
                [
                    policy,
                    point["gamma"],
                    f"{point['downlink_bytes'] / 1e3:.1f}",
                    f"{point['downlink_bps'] / 1e3:.2f}",
                    f"{point['psnr']:.2f}",
                    f"{point['downloaded_fraction']:.2f}",
                ]
            )
    return format_table(
        ["policy", "gamma", "downlink KB", "required kbps", "PSNR dB",
         "tiles downloaded"],
        rows,
        title=name,
    )


def test_fig11a_sentinel2(benchmark, emit, bench_scale):
    if bench_scale == "full":
        dataset = sentinel2_dataset(
            locations=["A", "B", "E", "I"],
            bands=["B2", "B4", "B8", "B11"],
            horizon_days=365.0,
        )
    else:
        dataset = sentinel2_dataset(
            locations=["A", "B"],
            bands=["B4", "B11"],
            horizon_days=240.0,
        )
    result = run_once(
        benchmark, lambda: F.fig11_rate_distortion(dataset, GAMMAS)
    )
    saving = equal_psnr_saving(result["curves"])
    emit(
        "fig11a_sentinel2",
        _render(
            "Figure 11a - Sentinel-2-like RD curves "
            f"(equal-PSNR saving {saving:.2f}x; paper: 1.3-2.0x)",
            result["curves"],
        ),
    )
    earth = result["curves"]["earthplus"]
    kodan = result["curves"]["kodan"]
    # Same gamma -> Earth+ never spends more downlink than Kodan.
    for e, k in zip(earth, kodan):
        assert e["downlink_bytes"] <= k["downlink_bytes"] * 1.05


def test_fig11b_planet(benchmark, emit, bench_scale):
    if bench_scale == "full":
        dataset = planet_dataset(
            n_satellites=32, image_shape=(256, 256), horizon_days=90.0
        )
    else:
        dataset = planet_dataset(
            n_satellites=16, image_shape=(192, 192), horizon_days=60.0
        )
    result = run_once(
        benchmark,
        lambda: F.fig11_rate_distortion(dataset, [0.15, 0.3, 0.6]),
    )
    saving = equal_psnr_saving(result["curves"])
    emit(
        "fig11b_planet",
        _render(
            "Figure 11b - Planet-like RD curves "
            f"(equal-PSNR saving {saving:.2f}x; paper: 2.8-3.3x)",
            result["curves"],
        ),
    )
    earth = result["curves"]["earthplus"]
    kodan = result["curves"]["kodan"]
    ratios = [
        k["downlink_bytes"] / e["downlink_bytes"]
        for e, k in zip(earth, kodan)
        if e["downlink_bytes"]
    ]
    assert max(ratios) > 2.0
