"""Figure 19: compression ratio grows with constellation size.

Paper: Earth+'s compression ratio rises from 3x to 10x as the constellation
grows from 1 to 16 satellites; "download everything" anchors at 1x.
"""

import numpy as np
from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig


def test_fig19_constellation_size(benchmark, emit, bench_scale):
    if bench_scale == "full":
        sizes = [1, 2, 4, 8, 16]
        shape = (192, 192)
        horizon = 90.0
    else:
        sizes = [1, 2, 4, 8, 16]
        shape = (128, 128)
        # The paper's 3-month window, not 60 days: under seed 19 the
        # single-satellite constellation draws heavy cloud at all five of
        # its 60-day visits and delivers nothing (an "n/a" ratio cell);
        # days 60-90 contain its clear visits.
        horizon = 90.0
    result = run_once(
        benchmark,
        lambda: F.fig19_constellation_size(
            sizes=sizes,
            image_shape=shape,
            horizon_days=horizon,
            config=EarthPlusConfig(gamma_bpp=0.3),
        ),
    )
    rows = [
        [
            "download everything" if r["satellites"] == 0
            else f"Earth+ {r['satellites']} satellites",
            f"{r['compression_ratio']:.1f}x"
            if np.isfinite(r["compression_ratio"])
            else "n/a",
        ]
        for r in result["rows"]
    ]
    emit(
        "fig19_constellation_size",
        format_table(
            ["configuration", "compression ratio"],
            rows,
            title="Figure 19 - compression vs constellation size "
            "(paper: 3x -> 10x from 1 to 16 satellites)",
        ),
    )
    ratios = {
        r["satellites"]: r["compression_ratio"]
        for r in result["rows"]
        if r["satellites"] > 0
    }
    # Every Earth+ cell must deliver something — a non-finite ratio means
    # a constellation size delivered zero captures over the horizon.
    assert all(np.isfinite(ratio) for ratio in ratios.values()), ratios
    assert len(ratios) >= 3
    ordered = sorted(ratios)
    assert ratios[ordered[-1]] > ratios[ordered[0]]
    assert ratios[ordered[-1]] > 2.0
