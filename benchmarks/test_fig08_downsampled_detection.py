"""Figure 8: undetected changed tiles vs reference compression ratio.

Paper: with the total download volume fixed (~40 % of tiles flagged), only
~1.7 % of changed tiles escape detection even at 2601x reference
compression.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table


def test_fig08_downsampled_detection(benchmark, emit, bench_scale):
    pairs = 12 if bench_scale == "full" else 6
    result = run_once(
        benchmark,
        lambda: F.fig08_downsampled_detection(
            ratios=[1, 2, 4, 8, 16, 32, 64],
            n_pairs=pairs,
            image_shape=(256, 256),
        ),
    )
    rows = [
        [
            row["ratio"],
            f"{row['compression']}x",
            f"{row['flagged_fraction']:.1%}",
            f"{row['undetected_changed_fraction']:.2%}",
        ]
        for row in result["rows"]
    ]
    emit(
        "fig08_downsampled_detection",
        format_table(
            ["downsample", "compression", "downloaded tiles (fixed)",
             "changed tiles undetected"],
            rows,
            title="Figure 8 - detection vs reference compression "
            "(paper: ~1.7% undetected at 2601x)",
        ),
    )
    for row in result["rows"]:
        assert row["flagged_fraction"] <= 0.45
        assert row["undetected_changed_fraction"] <= 0.05
