"""Figure 18: more uplink budget, less downlink demand.

Paper: growing the uplink from 250 kbps to 4 Mbps buys a 22 Mbps downlink
reduction.  We sweep the per-contact uplink budget (scaled to our image
geometry) and check the monotone trade.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.sentinel2 import sentinel2_dataset


def test_fig18_uplink_sweep(benchmark, emit, bench_scale):
    horizon = 300.0 if bench_scale == "full" else 200.0
    dataset = sentinel2_dataset(
        locations=["A"], bands=["B4", "B11"], horizon_days=horizon,
        image_shape=(192, 192),
    )
    budgets = [0, 30, 120, 600, 5000]
    result = run_once(
        benchmark,
        lambda: F.fig18_uplink_sweep(
            dataset, budgets, EarthPlusConfig(gamma_bpp=0.3)
        ),
    )
    rows = [
        [
            row["uplink_bytes_per_contact"],
            f"{row['downlink_bytes'] / 1e3:.1f}",
            row["updates_skipped"],
            f"{row['psnr']:.1f}",
        ]
        for row in result["rows"]
    ]
    emit(
        "fig18_uplink_sweep",
        format_table(
            ["uplink B/contact", "downlink KB", "updates skipped", "PSNR dB"],
            rows,
            title="Figure 18 - downlink demand vs uplink budget "
            "(paper: more uplink -> less downlink)",
        ),
    )
    by_budget = {r["uplink_bytes_per_contact"]: r for r in result["rows"]}
    assert by_budget[0]["downlink_bytes"] >= by_budget[5000]["downlink_bytes"]
    assert by_budget[0]["updates_skipped"] >= by_budget[5000]["updates_skipped"]
