"""Figure 20: downlink-budget ladder — layer shedding under contact limits.

The §5 bandwidth-variation experiment on the downlink side: as the
per-contact contact capacity shrinks, the layered encoder sheds trailing
quality layers first (graceful PSNR degradation) and only defers/drops
captures once even base quality no longer fits.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.scenarios import (
    DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
    DatasetSpec,
)
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig


def test_fig20_downlink_ladder(benchmark, emit, bench_scale):
    horizon = 180.0 if bench_scale == "full" else 120.0
    dataset = DatasetSpec.of(
        "sentinel2",
        locations=["A"],
        bands=["B4", "B11"],
        horizon_days=horizon,
        image_shape=(192, 192),
    )
    config = EarthPlusConfig(gamma_bpp=0.3, n_quality_layers=3)
    budgets = [DEFAULT_DOWNLINK_BYTES_PER_CONTACT, 500, 120, 60, 25]
    result = run_once(
        benchmark,
        lambda: F.fig20_downlink_ladder(
            dataset=dataset,
            downlink_bytes_options=budgets,
            config=config,
        ),
    )
    rows = [
        [
            row["downlink_bytes_per_contact"],
            f"{row['delivered_fraction']:.2f}",
            row["layers_shed"],
            row["captures_deferred"] + row["captures_dropped"],
            f"{row['delivered']}/{row['records']}",
            f"{row['psnr']:.1f}",
        ]
        for row in result["rows"]
    ]
    emit(
        "fig20_downlink_ladder",
        format_table(
            [
                "downlink B/contact", "delivered frac", "layers shed",
                "deferred+dropped", "delivered", "PSNR dB",
            ],
            rows,
            title="Figure 20 - delivery vs per-contact downlink budget "
            "(layers shed before captures drop)",
        ),
    )
    by_budget = {r["downlink_bytes_per_contact"]: r for r in result["rows"]}
    unconstrained = by_budget[DEFAULT_DOWNLINK_BYTES_PER_CONTACT]
    tightest = by_budget[25]
    # Table-1 capacity never sheds; the tight rungs shed and then drop.
    assert unconstrained["layers_shed"] == 0
    assert unconstrained["delivered_fraction"] == 1.0
    assert any(r["layers_shed"] > 0 for r in result["rows"])
    assert tightest["bytes_delivered"] <= unconstrained["bytes_delivered"]
    assert tightest["delivered"] <= unconstrained["delivered"]
