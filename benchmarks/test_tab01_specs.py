"""Table 1: Doves constellation specification."""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table


def test_tab01_specs(benchmark, emit):
    rows = run_once(benchmark, F.tab01_specs)
    emit(
        "tab01_specs",
        format_table(
            ["Property", "Value"],
            rows,
            title="Table 1 - Doves constellation specification",
        ),
    )
    values = dict(rows)
    assert values["Uplink bandwidth"] == "250 kbps"
    assert values["Downlink bandwidth"] == "200 Mbps"
    assert values["Ground contact per day"] == "7 times"
