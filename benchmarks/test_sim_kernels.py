"""Simulation fast-path kernel and end-to-end benchmarks.

Companion to ``test_codec_kernels.py``: where that file times the entropy
coder backends, this one times the *simulation* fast path added on top —
vectorized DWT lifting, the batched tile pipeline in the rate model, and
the warm-state scenario caches — against the retained reference
implementations, on the paper's Figure-13 timeseries scenario (3 policies
over one location's schedule).

Besides recording timings it is a regression gate twice over:

* the fast and reference sweeps must produce **byte-identical** RunResult
  metrics (the fast path is a pure performance change);
* the measured end-to-end speedup must not regress by more than 15 %
  against the committed baseline in ``results/fig13_runtime.txt``
  (speedup is a same-machine ratio, so the gate is portable across
  hardware).

Detectors are trained (memoized) before timing: training is a one-time
per-process cost both paths share, not part of the simulation loop.
"""

from __future__ import annotations

import math
import re
import time
from pathlib import Path

import numpy as np
from conftest import RESULTS_DIR, run_once

from repro import perf
from repro.analysis.scenarios import ScenarioSpec, run_scenario
from repro.analysis.tables import format_table
from repro.codec.dwt import Wavelet, dwt_many, forward_dwt2d, inverse_dwt2d
from repro.codec.jpeg2000 import CodecConfig
from repro.codec.ratemodel import RateModel
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.config import EarthPlusConfig
from repro.datasets.sentinel2 import sentinel2_dataset

BASELINE_PATH = RESULTS_DIR / "fig13_runtime.txt"
#: Fail when the measured end-to-end speedup drops below this fraction of
#: the committed baseline speedup (a >15 % regression).  Tighter than the
#: unconditional 3x floor whenever the committed speedup exceeds ~3.5x,
#: so the baseline-relative gate is the binding check at the committed
#: operating point rather than dead weight behind the absolute floor.
_REGRESSION_FLOOR = 0.85
_POLICIES = ("earthplus", "kodan", "satroi")


def _timed(fn, repeats: int = 3) -> float:
    fn()  # warm allocator/caches out of the measurement
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _snapshot(result) -> dict:
    return {
        "downlink": result.downlink_bytes,
        "uplink": result.uplink_bytes,
        "skipped": result.updates_skipped,
        "ref_storage": result.reference_storage_bytes,
        "cap_storage": result.captured_storage_bytes,
        "stats": dict(result.uplink_stats),
        "records": [
            (r.location, r.satellite_id, r.t_days, r.dropped, r.guaranteed,
             r.psnr, r.downloaded_fraction, r.bytes_downlinked)
            for r in result.records
        ],
    }


def _identical(a, b) -> bool:
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, (list, tuple)):
        return len(a) == len(b) and all(_identical(x, y) for x, y in zip(a, b))
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(_identical(a[k], b[k]) for k in a)
    return a == b


def _clear_warm_state(dataset) -> None:
    """Reset the warm-state caches so the fast sweep starts cold."""
    for sensor in dataset.sensors.values():
        sensor._capture_cache.clear()
        sensor._capture_cache_bytes = 0
    for model in dataset.earth_models.values():
        model._surface_cache.clear()
        model._patch_cache.clear()
        model._snow_texture_cache.clear()
    dataset.schedule.invalidate_order()


def _committed_speedup() -> float | None:
    """The end-to-end speedup recorded in the committed baseline file."""
    if not BASELINE_PATH.exists():
        return None
    match = re.search(
        r"end_to_end_speedup:\s*([0-9.]+)", BASELINE_PATH.read_text()
    )
    return float(match.group(1)) if match else None


def _dwt_timings(rng) -> dict[str, float]:
    tile = rng.random((64, 64))
    stack = rng.random((10, 64, 64))

    def roundtrip():
        inverse_dwt2d(forward_dwt2d(tile, 3, Wavelet.CDF97))

    with perf.fastpath_disabled():
        reference = _timed(roundtrip, repeats=20)
    with perf.fastpath_enabled():
        vectorized = _timed(roundtrip, repeats=20)
        batched = _timed(
            lambda: dwt_many(stack, 3, Wavelet.CDF97), repeats=20
        ) / stack.shape[0]
    return {
        "dwt_reference": reference,
        "dwt_vectorized": vectorized,
        "dwt_batched_per_image": batched,
    }


def _ratemodel_timings(rng) -> dict[str, float]:
    model = RateModel(CodecConfig(tile_size=64))
    image = rng.random((192, 192))

    def search():
        model.find_step_for_bytes(
            image, 4000, tolerance=0.08, max_iterations=14
        )

    with perf.fastpath_disabled():
        reference = _timed(search)
    with perf.fastpath_enabled():
        fast = _timed(search)
    return {"ratemodel_reference": reference, "ratemodel_fast": fast}


def test_sim_fastpath_end_to_end(benchmark, emit, emit_json, bench_scale):
    # The full Figure-13 horizon at both scales: the reference path's
    # per-capture change-patch recomposition grows with horizon (the fast
    # path caches it), so a shorter horizon would understate the scenario
    # the claim is about.
    horizon = 365.0
    committed = _committed_speedup()  # read BEFORE emit overwrites it

    def experiment():
        dataset = sentinel2_dataset(
            locations=["B"], bands=["B4", "B11"], horizon_days=horizon,
            image_shape=(192, 192),
        )
        train_onboard_detector(dataset.bands, tile_size=64)
        train_ground_detector(dataset.bands)
        config = EarthPlusConfig(gamma_bpp=0.3)
        specs = [
            ScenarioSpec(policy=policy, dataset=dataset, config=config)
            for policy in _POLICIES
        ]
        # Best-of-3 per path: one scheduler hiccup must not trip the
        # regression gate.  Each fast round starts with cold warm-state
        # caches so the measured sweep is a fresh one.
        reference_seconds = math.inf
        fast_seconds = math.inf
        reference_results = fast_results = None
        for _ in range(3):
            with perf.fastpath_disabled():
                start = time.perf_counter()
                reference_results = [
                    _snapshot(run_scenario(s)) for s in specs
                ]
                reference_seconds = min(
                    reference_seconds, time.perf_counter() - start
                )
            _clear_warm_state(dataset)
            with perf.fastpath_enabled():
                start = time.perf_counter()
                fast_results = [_snapshot(run_scenario(s)) for s in specs]
                fast_seconds = min(
                    fast_seconds, time.perf_counter() - start
                )
        rng = np.random.default_rng(0x51F)
        kernels = {**_dwt_timings(rng), **_ratemodel_timings(rng)}
        return (
            reference_seconds, fast_seconds,
            reference_results, fast_results, kernels,
        )

    ref_s, fast_s, ref_results, fast_results, kernels = run_once(
        benchmark, experiment
    )
    speedup = ref_s / fast_s
    dwt_speedup = kernels["dwt_reference"] / kernels["dwt_batched_per_image"]
    rm_speedup = kernels["ratemodel_reference"] / kernels["ratemodel_fast"]
    rows = [
        ["end-to-end reference (3 policies)", f"{ref_s:.2f} s", ""],
        ["end-to-end fast path (3 policies)", f"{fast_s:.2f} s",
         f"{speedup:.2f}x"],
        ["dwt 64x64 roundtrip (reference loops)",
         f"{kernels['dwt_reference'] * 1e3:.3f} ms", ""],
        ["dwt 64x64 roundtrip (vectorized)",
         f"{kernels['dwt_vectorized'] * 1e3:.3f} ms",
         f"{kernels['dwt_reference'] / kernels['dwt_vectorized']:.2f}x"],
        ["dwt 64x64 forward, batched x10 (per image)",
         f"{kernels['dwt_batched_per_image'] * 1e3:.3f} ms",
         f"{dwt_speedup:.2f}x"],
        ["rate search 192x192 (reference)",
         f"{kernels['ratemodel_reference'] * 1e3:.1f} ms", ""],
        ["rate search 192x192 (batched)",
         f"{kernels['ratemodel_fast'] * 1e3:.1f} ms", f"{rm_speedup:.2f}x"],
    ]
    emit(
        "fig13_runtime",
        format_table(
            ["kernel", "time", "speedup"],
            rows,
            title=f"Simulation fast path on the Figure-13 scenario "
            f"({horizon:.0f} days, byte-identical metrics)",
        )
        + "\n"
        + f"\nend_to_end_speedup: {speedup:.2f}"
        + f"\nratemodel_speedup: {rm_speedup:.2f}"
        + f"\ndwt_batched_speedup: {dwt_speedup:.2f}",
    )
    emit_json(
        "fig13",
        {
            "horizon_days": horizon,
            "policies": list(_POLICIES),
            "reference_seconds": ref_s,
            "fast_seconds": fast_s,
            "end_to_end_speedup": speedup,
            "kernel_seconds": kernels,
            "ratemodel_speedup": rm_speedup,
            "dwt_batched_speedup": dwt_speedup,
            "committed_baseline_speedup": committed,
        },
    )
    # The fast path is a pure performance change: byte-identical metrics.
    assert _identical(ref_results, fast_results), (
        "fast-path RunResult diverged from the reference path"
    )
    # Acceptance floor: the tentpole claims >= 3x end-to-end.
    assert speedup >= 3.0, f"end-to-end speedup {speedup:.2f}x < 3x"
    if committed is not None:
        assert speedup >= _REGRESSION_FLOOR * committed, (
            f"end-to-end speedup {speedup:.2f}x regressed more than 15% "
            f"vs committed baseline {committed:.2f}x"
        )
