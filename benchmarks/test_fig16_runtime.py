"""Figure 16: per-image on-board runtime per policy.

Paper (AMD EPYC 7452): encoding 0.65 s for everyone; Kodan's accurate
cloud detector 0.39 s vs the cheap tree's 0.12 s; Earth+'s low-res change
detection beats SatRoI's full-res pass; Earth+ lowest overall.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.compute import (
    RuntimeCostModel,
    measure_encode_timings,
    measure_stage_timings,
)
from repro.imagery.noise import fractal_noise
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.tiles import TileGrid
from repro.imagery.bands import get_band
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass


def test_fig16_runtime_model(benchmark, emit):
    model = RuntimeCostModel()
    stages = run_once(
        benchmark,
        lambda: {
            policy: model.policy_stages(policy)
            for policy in ("earthplus", "kodan", "satroi")
        },
    )
    rows = []
    for policy, timings in stages.items():
        for timing in timings:
            rows.append([policy, timing.stage, f"{timing.seconds:.2f}"])
        rows.append([policy, "TOTAL", f"{model.policy_total(policy):.2f}"])
    emit(
        "fig16_runtime_model",
        format_table(
            ["policy", "stage", "seconds/image (paper scale)"],
            rows,
            title="Figure 16 - runtime breakdown (calibrated model)",
        ),
    )
    assert model.policy_total("earthplus") < model.policy_total("kodan")
    assert model.policy_total("earthplus") < model.policy_total("satroi")


def test_fig16_runtime_measured(benchmark, emit):
    """The same orderings measured on THIS repository's kernels."""
    bands = (get_band("B4"), get_band("B11"))
    cheap = train_onboard_detector(bands, tile_size=64)
    accurate = train_ground_detector(bands)
    spec = LocationSpec(
        name="bench", shape=(256, 256),
        terrain_mix={TerrainClass.FOREST: 0.6, TerrainClass.CITY: 0.4},
        seed=16,
    )
    earth = EarthModel(spec, bands)
    pixels = {b.name: earth.ground_truth(b.name, 3.0) for b in bands}
    reference = earth.ground_truth("B4", 1.0)
    grid = TileGrid((256, 256), 64)
    timings = run_once(
        benchmark,
        lambda: measure_stage_timings(
            pixels, bands, grid, cheap, accurate, reference, repeats=5
        ),
    )
    rows = [[stage, f"{seconds * 1e3:.3f}"] for stage, seconds in timings.items()]
    emit(
        "fig16_runtime_measured",
        format_table(
            ["stage", "ms/image (this repo, 256x256)"],
            rows,
            title="Figure 16 - measured kernel runtimes",
        ),
    )
    assert timings["cloud_cheap"] < timings["cloud_accurate"]
    assert timings["change_lowres"] < timings["change_fullres"]


def test_fig16_encode_backends(benchmark, emit, emit_json):
    """Encode-stage throughput across every registered codec backend.

    All registered backends are bit-exact (tests/codec/test_differential.py
    parameterizes over the registry), so the ratios are pure implementation
    speed of the same computation.  Floors, each well under the numbers a
    healthy build records (see results/fig16_encode_backends.txt) so only
    real regressions trip them: vectorized encode >= 2x, compiled encode
    >= 5x over the per-bit reference coder.
    """
    from repro.codec import registry

    image = fractal_noise((256, 256), seed=16, octaves=5, base_cells=4)
    backends = tuple(
        name for name in registry.names() if registry.get(name).available()
    )
    timings = run_once(
        benchmark,
        lambda: measure_encode_timings(image, repeats=3, backends=backends),
    )
    ref_encode = timings["encode_reference"]
    ref_decode = timings["decode_reference"]
    rows = []
    speedups: dict[str, dict[str, float]] = {}
    for stage, ref in (("encode", ref_encode), ("decode", ref_decode)):
        for backend in backends:
            seconds = timings[f"{stage}_{backend}"]
            speedup = ref / seconds
            speedups.setdefault(backend, {})[stage] = speedup
            rows.append(
                [stage, backend, f"{seconds * 1e3:.1f}", f"{speedup:.2f}"]
            )
    emit(
        "fig16_encode_backends",
        format_table(
            ["stage", "backend", "ms/image (256x256)", "speedup"],
            rows,
            title="Figure 16 - codec backends, bit-exact fast path",
        ),
    )
    emit_json(
        "codec",
        {
            "image_shape": [256, 256],
            "backends": list(backends),
            "seconds": {k: v for k, v in timings.items()},
            "speedup_vs_reference": speedups,
        },
    )
    assert speedups["vectorized"]["encode"] >= 2.0, (
        f"vectorized encode speedup {speedups['vectorized']['encode']:.2f}x "
        f"below the 2x floor"
    )
    # Decode cannot precompute its probability schedule, so its headroom is
    # smaller and machine-dependent; parity with the reference is the floor.
    assert speedups["vectorized"]["decode"] >= 1.0, (
        f"vectorized decode slower than reference "
        f"({speedups['vectorized']['decode']:.2f}x)"
    )
    if "compiled" in speedups:
        assert speedups["compiled"]["encode"] >= 5.0, (
            f"compiled encode speedup {speedups['compiled']['encode']:.2f}x "
            f"below the 5x floor"
        )
        assert speedups["compiled"]["decode"] >= 2.0, (
            f"compiled decode speedup {speedups['compiled']['decode']:.2f}x "
            f"below the 2x floor"
        )
