"""Figure 5: reference-age CDF, satellite-local vs constellation-wide.

Paper: mean cloud-free reference age drops from 51 days (one satellite's
own history) to 4.2 days (whole constellation) — a 12x reduction.
"""

import numpy as np
from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.stats import cdf_at
from repro.analysis.tables import format_table


def test_fig05_reference_age_cdf(benchmark, emit, bench_scale):
    horizon = 900.0 if bench_scale == "full" else 600.0
    result = run_once(
        benchmark,
        lambda: F.fig05_reference_age_cdf(
            n_satellites=48,
            horizon_days=horizon,
            clear_probability=0.1,
        ),
    )
    rows = []
    for age in (1, 2, 5, 10, 20, 40, 80):
        rows.append(
            [
                age,
                f"{cdf_at(result['wide_ages'], age):.2f}",
                f"{cdf_at(result['local_ages'], age):.2f}",
            ]
        )
    ratio = result["local_mean"] / result["wide_mean"]
    table = format_table(
        ["age <= (days)", "constellation-wide CDF", "satellite-local CDF"],
        rows,
        title=(
            "Figure 5 - cloud-free reference age "
            f"(mean local={result['local_mean']:.1f} d, "
            f"wide={result['wide_mean']:.1f} d, {ratio:.1f}x; "
            "paper: 51 d vs 4.2 d, 12x)"
        ),
    )
    from repro.analysis.plotting import ascii_cdf

    plot = ascii_cdf(
        {
            "constellation-wide": result["wide_ages"],
            "satellite-local": result["local_ages"],
        },
        x_label="reference age (days)",
        title="Figure 5 - reference age CDFs",
    )
    emit("fig05_reference_age_cdf", table + "\n\n" + plot)
    assert result["local_mean"] > 20.0
    assert ratio > 5.0
