"""Figure 12: CDFs of per-image downloaded-tile fraction and PSNR.

Paper: Earth+ downloads <20 % of tiles for >60 % of images while baselines
download >80 % for >70 % of images; Earth+'s PSNR CDF sits no lower; ~20 %
of Earth+ images are full downloads (the guaranteed mechanism).
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.stats import cdf_at
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.planet import planet_dataset


def test_fig12_cdfs(benchmark, emit, bench_scale):
    if bench_scale == "full":
        dataset = planet_dataset(
            n_satellites=24, image_shape=(256, 256), horizon_days=90.0
        )
    else:
        dataset = planet_dataset(
            n_satellites=16, image_shape=(256, 256), horizon_days=60.0
        )
    result = run_once(
        benchmark,
        lambda: F.fig12_cdfs(dataset, EarthPlusConfig(gamma_bpp=0.3)),
    )
    rows = []
    for policy, data in result.items():
        rows.append(
            [
                policy,
                # 25 % is the nearest step of a 16-tile grid to the
                # paper's 20 % cut.
                f"{cdf_at(data['fractions'], 0.25):.2f}",
                f"{1.0 - cdf_at(data['fractions'], 0.8):.2f}",
                f"{data['fully_downloaded']:.2f}",
                f"{cdf_at(data['psnrs'], 35.0):.2f}",
            ]
        )
    emit(
        "fig12_cdf",
        format_table(
            ["policy", "P(tiles<=25%)", "P(tiles>80%)",
             "P(full download)", "P(PSNR<=35dB)"],
            rows,
            title="Figure 12 - per-image CDFs "
            "(paper: Earth+ <20% tiles for >60% of images; "
            "baselines >80% tiles for >70%)",
        ),
    )
    earth = result["earthplus"]
    kodan = result["kodan"]
    assert cdf_at(earth["fractions"], 0.25) > 0.6
    assert 1.0 - cdf_at(kodan["fractions"], 0.8) > 0.7
