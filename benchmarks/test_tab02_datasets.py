"""Table 2: evaluation-dataset inventory."""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table


def test_tab02_datasets(benchmark, emit):
    rows = run_once(
        benchmark,
        lambda: F.tab02_datasets(
            sentinel_kwargs={"horizon_days": 365.0},
            planet_kwargs={"horizon_days": 90.0},
        ),
    )
    emit(
        "tab02_datasets",
        format_table(
            list(rows[0].keys()),
            [list(r.values()) for r in rows],
            title="Table 2 - datasets (synthetic stand-ins, same axes)",
        ),
    )
    by_name = {r["dataset"]: r for r in rows}
    assert by_name["sentinel2"]["satellites"] == 2
    assert by_name["sentinel2"]["locations"] == 11
    assert by_name["sentinel2"]["bands"] == 13
    assert by_name["planet"]["satellites"] == 48
    assert by_name["planet"]["bands"] == 4
