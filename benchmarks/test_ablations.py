"""Ablations of Earth+'s design choices (DESIGN.md call-outs).

Each ablation toggles one mechanism and reports the downlink/uplink/quality
consequence, quantifying why the paper's design is what it is.
"""

import numpy as np
from conftest import run_once

from repro.analysis.experiments import run_policy
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.orbit.links import FluctuationModel


def _dataset(horizon=200.0, shape=(192, 192)):
    return sentinel2_dataset(
        locations=["A"], bands=["B4", "B11"], horizon_days=horizon,
        image_shape=shape,
    )


def test_abl_guaranteed_download_period(benchmark, emit):
    """Longer guaranteed periods save downlink but bound staleness less."""
    dataset = _dataset()

    def sweep():
        rows = []
        for period in (15.0, 30.0, 90.0):
            config = EarthPlusConfig(
                gamma_bpp=0.3, guaranteed_download_days=period
            )
            result = run_policy(dataset, "earthplus", config)
            rows.append(
                {
                    "period": period,
                    "downlink_kb": result.downlink_bytes / 1e3,
                    "full_downloads": sum(
                        r.guaranteed for r in result.records
                    ),
                    "psnr": result.mean_psnr(),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "abl_guaranteed_download",
        format_table(
            ["period (days)", "downlink KB", "full downloads", "PSNR dB"],
            [
                [r["period"], f"{r['downlink_kb']:.1f}",
                 r["full_downloads"], f"{r['psnr']:.1f}"]
                for r in rows
            ],
            title="Ablation - guaranteed-download period",
        ),
    )
    assert rows[0]["full_downloads"] >= rows[-1]["full_downloads"]
    assert rows[0]["downlink_kb"] >= rows[-1]["downlink_kb"] * 0.9


def test_abl_delta_reference_updates(benchmark, emit):
    """§4.3: delta updates cut uplink usage vs full reference uploads."""
    dataset = _dataset()

    def compare():
        with_delta = run_policy(
            dataset, "earthplus", EarthPlusConfig(gamma_bpp=0.3)
        )
        without = run_policy(
            dataset, "earthplus",
            EarthPlusConfig(gamma_bpp=0.3, delta_reference_updates=False),
        )
        return with_delta, without

    with_delta, without = run_once(benchmark, compare)
    emit(
        "abl_delta_updates",
        format_table(
            ["mode", "uplink KB", "downlink KB"],
            [
                ["delta updates", f"{with_delta.uplink_bytes / 1e3:.1f}",
                 f"{with_delta.downlink_bytes / 1e3:.1f}"],
                ["full uploads", f"{without.uplink_bytes / 1e3:.1f}",
                 f"{without.downlink_bytes / 1e3:.1f}"],
            ],
            title="Ablation - delta vs full reference uploads",
        ),
    )
    assert with_delta.uplink_bytes < without.uplink_bytes


def test_abl_reference_downsample(benchmark, emit):
    """Coarser references slash uplink; detection keeps working (Fig 8)."""
    dataset = _dataset()

    def sweep():
        rows = []
        for ratio in (4, 8, 16):
            config = EarthPlusConfig(gamma_bpp=0.3, reference_downsample=ratio)
            result = run_policy(dataset, "earthplus", config)
            rows.append(
                {
                    "ratio": ratio,
                    "uplink_kb": result.uplink_bytes / 1e3,
                    "downlink_kb": result.downlink_bytes / 1e3,
                    "psnr": result.mean_psnr(),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "abl_reference_downsample",
        format_table(
            ["downsample", "uplink KB", "downlink KB", "PSNR dB"],
            [
                [r["ratio"], f"{r['uplink_kb']:.2f}",
                 f"{r['downlink_kb']:.1f}", f"{r['psnr']:.1f}"]
                for r in rows
            ],
            title="Ablation - reference downsampling ratio",
        ),
    )
    assert rows[-1]["uplink_kb"] < rows[0]["uplink_kb"]


def test_abl_theta(benchmark, emit):
    """Threshold theta trades downlink against missed-change quality."""
    dataset = _dataset()

    def sweep():
        rows = []
        for theta in (0.005, 0.01, 0.03):
            config = EarthPlusConfig(gamma_bpp=0.3, theta=theta)
            result = run_policy(dataset, "earthplus", config)
            rows.append(
                {
                    "theta": theta,
                    "downlink_kb": result.downlink_bytes / 1e3,
                    "fraction": result.mean_downloaded_fraction(),
                    "psnr": result.mean_psnr(),
                }
            )
        return rows

    rows = run_once(benchmark, sweep)
    emit(
        "abl_theta",
        format_table(
            ["theta", "downlink KB", "tiles downloaded", "PSNR dB"],
            [
                [r["theta"], f"{r['downlink_kb']:.1f}",
                 f"{r['fraction']:.2f}", f"{r['psnr']:.1f}"]
                for r in rows
            ],
            title="Ablation - change threshold theta",
        ),
    )
    assert rows[0]["fraction"] >= rows[-1]["fraction"]


def test_abl_uplink_fluctuation(benchmark, emit):
    """§5: cached references absorb uplink fluctuation gracefully."""
    dataset = _dataset()

    def compare():
        stable = run_policy(
            dataset, "earthplus", EarthPlusConfig(gamma_bpp=0.3),
            uplink_bytes_per_contact=120,
        )
        fluctuating = run_policy(
            dataset, "earthplus", EarthPlusConfig(gamma_bpp=0.3),
            uplink_bytes_per_contact=120,
            fluctuation=FluctuationModel(seed=7, severity=1.0),
        )
        return stable, fluctuating

    stable, fluctuating = run_once(benchmark, compare)
    emit(
        "abl_uplink_fluctuation",
        format_table(
            ["uplink", "downlink KB", "updates skipped", "PSNR dB"],
            [
                ["stable", f"{stable.downlink_bytes / 1e3:.1f}",
                 stable.updates_skipped, f"{stable.mean_psnr():.1f}"],
                ["fluctuating", f"{fluctuating.downlink_bytes / 1e3:.1f}",
                 fluctuating.updates_skipped,
                 f"{fluctuating.mean_psnr():.1f}"],
            ],
            title="Ablation - uplink bandwidth fluctuation",
        ),
    )
    # The system keeps functioning: quality within a few dB.
    assert fluctuating.mean_psnr() > stable.mean_psnr() - 5.0


def test_abl_cloud_detector_choice(benchmark, emit):
    """Running the accurate detector on-board barely changes downlink but
    costs 3x the cloud-detection compute (Figure 16's trade)."""
    dataset = _dataset()

    def compare():
        cheap = run_policy(
            dataset, "earthplus", EarthPlusConfig(gamma_bpp=0.3)
        )
        # Swap the on-board detector for the accurate one via a custom run.
        from repro.core.cloud import train_ground_detector
        from repro.core.ground_segment import GroundSegment
        from repro.core.system import ConstellationSimulator, EarthPlusPolicy

        config = EarthPlusConfig(gamma_bpp=0.3)
        accurate = train_ground_detector(dataset.bands)
        ground = GroundSegment(
            config, dataset.bands, dataset.image_shape, accurate
        )
        simulator = ConstellationSimulator(
            sensors=dataset.sensors,
            bands=dataset.bands,
            schedule=dataset.schedule,
            image_shape=dataset.image_shape,
            config=config,
            policy_factory=lambda sid: EarthPlusPolicy(
                config, dataset.bands, dataset.image_shape, accurate
            ),
            ground_segment=ground,
        )
        return cheap, simulator.run()

    cheap, accurate = run_once(benchmark, compare)
    emit(
        "abl_cloud_detector",
        format_table(
            ["on-board detector", "downlink KB", "PSNR dB", "dropped"],
            [
                ["cheap tree", f"{cheap.downlink_bytes / 1e3:.1f}",
                 f"{cheap.mean_psnr():.1f}",
                 sum(r.dropped for r in cheap.records)],
                ["accurate (3x compute)",
                 f"{accurate.downlink_bytes / 1e3:.1f}",
                 f"{accurate.mean_psnr():.1f}",
                 sum(r.dropped for r in accurate.records)],
            ],
            title="Ablation - on-board cloud detector choice",
        ),
    )
    # The cheap detector is within 2x downlink of the accurate one: the
    # extra compute buys little, which is the paper's justification.
    assert cheap.downlink_bytes < accurate.downlink_bytes * 2.0


def test_abl_downlink_layer_adaptation(benchmark, emit):
    """§5 downlink side: quality layers let the ground drop fidelity —
    not coverage — when the downlink dips (measured on the real layered
    codec)."""
    from repro.analysis.figures import downlink_layer_adaptation

    result = run_once(
        benchmark,
        lambda: downlink_layer_adaptation(
            image_shape=(192, 192), n_layers=3, n_captures=3
        ),
    )
    rows = [
        [r["layers"], f"{r['bytes'] / 1e3:.2f}", f"{r['psnr']:.1f}"]
        for r in result["rows"]
    ]
    emit(
        "abl_downlink_layers",
        format_table(
            ["layers received", "KB per image", "PSNR dB"],
            rows,
            title="Ablation - layered-codec downlink adaptation (real codec)",
        ),
    )
    layer_rows = result["rows"]
    assert layer_rows[0]["bytes"] < layer_rows[-1]["bytes"]
    assert layer_rows[0]["psnr"] < layer_rows[-1]["psnr"]
