"""Figure 17: reference compression ladder vs required uplink ratio.

Paper: downsampling + delta updates compress the reference stream by over
10 000x, clearing the ratio the 250 kbps uplink requires.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.sentinel2 import sentinel2_dataset


def test_fig17_uplink_ladder(benchmark, emit, bench_scale):
    horizon = 365.0 if bench_scale == "full" else 200.0
    dataset = sentinel2_dataset(
        locations=["A"], bands=["B4", "B11"], horizon_days=horizon,
        image_shape=(256, 256),
    )
    config = EarthPlusConfig(gamma_bpp=0.3)
    result = run_once(
        benchmark, lambda: F.fig17_uplink_ladder(dataset, config)
    )
    rows = [
        [row["scheme"], f"{row['ratio']:.0f}x"] for row in result["rows"]
    ]
    rows.append(
        ["(required for current uplink)", f"{result['required_ratio']:.0f}x"]
    )
    emit(
        "fig17_uplink_ladder",
        format_table(
            ["scheme", "reference compression"],
            rows,
            title="Figure 17 - uplink compression ladder "
            "(paper: >10000x with downsampling + deltas)",
        ),
    )
    ladder = {row["scheme"]: row["ratio"] for row in result["rows"]}
    assert ladder["w/ downsampling"] > 50
    assert (
        ladder["w/ downsampling + update changes"]
        >= ladder["w/ downsampling"]
    )
    # Delta updates beat re-sending the full downsampled reference.
    assert (
        ladder["w/ downsampling + update changes"]
        >= result["full_update_ratio"]
    )
