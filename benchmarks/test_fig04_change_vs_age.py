"""Figure 4: changed-tile fraction vs reference-image age.

Paper: ~15 % of tiles changed at age 10 days, roughly tripling by 50 days.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table


def test_fig04_change_vs_age(benchmark, emit, bench_scale):
    anchors = 10 if bench_scale == "full" else 5
    tiles = (32, 32) if bench_scale == "full" else (20, 20)
    result = run_once(
        benchmark,
        lambda: F.fig04_change_vs_age(
            ages_days=[5, 10, 20, 30, 40, 50, 60],
            tiles_shape=tiles,
            n_anchors=anchors,
        ),
    )
    rows = [
        [age, f"{measured:.1%}", f"{analytic:.1%}"]
        for age, measured, analytic in zip(
            result["ages_days"], result["measured"], result["analytic"]
        )
    ]
    emit(
        "fig04_change_vs_age",
        format_table(
            ["age (days)", "changed tiles (measured)", "changed (analytic)"],
            rows,
            title="Figure 4 - changed tiles vs reference age "
            "(paper: ~15% @ 10d, 3x by 50d)",
        ),
    )
    measured = dict(zip(result["ages_days"], result["measured"]))
    assert 0.08 <= measured[10] <= 0.25
    assert 2.0 <= measured[50] / measured[10] <= 4.0
