"""Figure 14: downlink saving per location and per band.

Paper: Earth+ beats the strongest baseline at 10/11 locations (snowy D and
H are the weak spots) and on all 13 bands, with ground bands saving more
than air bands.
"""

import numpy as np
from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig


def test_fig14_locations_bands(benchmark, emit, bench_scale):
    if bench_scale == "full":
        locations = ["A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K"]
        bands = ["B1", "B2", "B4", "B7", "B8", "B9", "B11", "B12"]
        horizon = 365.0
    else:
        locations = ["A", "B", "E", "H"]
        bands = ["B4", "B8", "B9", "B11"]
        horizon = 240.0
    result = run_once(
        benchmark,
        lambda: F.fig14_locations_bands(
            locations=locations,
            bands=bands,
            horizon_days=horizon,
            image_shape=(192, 192),
            config=EarthPlusConfig(gamma_bpp=0.3),
        ),
    )
    loc_rows = [
        [loc, f"{saving:.2f}x", "snowy" if loc in ("D", "H") else ""]
        for loc, saving in result["location_savings"].items()
    ]
    band_rows = [
        [band, f"{saving:.2f}x"]
        for band, saving in result["band_savings"].items()
    ]
    emit(
        "fig14_locations_bands",
        format_table(
            ["location", "downlink saving", ""], loc_rows,
            title="Figure 14 (top) - saving per location "
            "(paper: >1x at 10/11, snowy weakest)",
        )
        + "\n\n"
        + format_table(
            ["band", "downlink saving"], band_rows,
            title="Figure 14 (bottom) - saving per band "
            "(paper: all bands >1x, air bands least)",
        ),
    )
    savings = result["location_savings"]
    non_snowy = [
        s for loc, s in savings.items()
        if loc not in ("D", "H") and np.isfinite(s)
    ]
    assert non_snowy and float(np.median(non_snowy)) > 1.0
    snowy = [s for loc, s in savings.items() if loc in ("D", "H")]
    if snowy and non_snowy:
        # Snowy locations are the weakest (paper's outliers).
        assert min(snowy) <= float(np.median(non_snowy)) + 0.2
