"""Figure 13: one-location time series of downloads and PSNR.

Paper: Earth+ downloads 5-10x fewer tiles than the baselines most of the
time, with occasional guaranteed full downloads.
"""

import numpy as np
from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table
from repro.core.config import EarthPlusConfig
from repro.datasets.sentinel2 import sentinel2_dataset


def test_fig13_timeseries(benchmark, emit, bench_scale):
    horizon = 365.0 if bench_scale == "full" else 240.0
    dataset = sentinel2_dataset(
        locations=["B"], bands=["B4", "B11"], horizon_days=horizon,
        image_shape=(192, 192),
    )
    result = run_once(
        benchmark,
        lambda: F.fig13_timeseries(
            dataset, "B", EarthPlusConfig(gamma_bpp=0.3)
        ),
    )
    rows = []
    for policy, series in result.items():
        for point in series:
            rows.append(
                [
                    policy,
                    f"{point['t_days']:.1f}",
                    f"{point['downloaded_fraction']:.2f}",
                    f"{point['psnr']:.1f}",
                    "guaranteed" if point["guaranteed"] else "",
                ]
            )
    from repro.analysis.plotting import ascii_plot

    plot = ascii_plot(
        {
            policy: (
                [p["t_days"] for p in series],
                [p["downloaded_fraction"] for p in series],
            )
            for policy, series in result.items()
        },
        x_label="day",
        y_label="tiles downloaded",
        title="Figure 13 - downloaded-tile fraction over time",
    )
    emit(
        "fig13_timeseries",
        format_table(
            ["policy", "day", "tiles downloaded", "PSNR dB", ""],
            rows,
            title="Figure 13 - time series at location B "
            "(paper: Earth+ downloads 5-10x fewer tiles, periodic full "
            "downloads)",
        )
        + "\n\n"
        + plot,
    )
    earth = result["earthplus"]
    kodan = result["kodan"]
    assert earth and kodan
    # Non-guaranteed Earth+ points download materially less than Kodan.
    regular = [p["downloaded_fraction"] for p in earth if not p["guaranteed"]]
    if regular:
        assert float(np.median(regular)) < float(
            np.median([p["downloaded_fraction"] for p in kodan])
        )
    assert any(p["guaranteed"] for p in earth)
