"""Microbenchmarks of the codec kernels (classic pytest-benchmark style).

These track the substrate's performance over time rather than reproducing a
paper figure.
"""

import numpy as np
import pytest

from repro.codec.arith import ArithmeticDecoder, ArithmeticEncoder
from repro.codec.dwt import Wavelet, forward_dwt2d, inverse_dwt2d
from repro.codec.fastpath import BatchContextTable, BatchRangeEncoder
from repro.codec.jpeg2000 import CodecConfig, ImageCodec
from repro.codec.ratemodel import RateModel
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="module")
def image256():
    return fractal_noise((256, 256), seed=99, octaves=5, base_cells=4)


def test_bench_dwt_forward(benchmark, image256):
    benchmark(lambda: forward_dwt2d(image256, 3, Wavelet.CDF97))


def test_bench_dwt_roundtrip(benchmark, image256):
    def roundtrip():
        return inverse_dwt2d(forward_dwt2d(image256, 3, Wavelet.CDF97))

    recon = benchmark(roundtrip)
    assert np.abs(recon - image256).max() < 1e-9


def test_bench_arith_encode_10k(benchmark, rng=np.random.default_rng(1)):
    bits = rng.integers(0, 2, 10_000)
    ctxs = rng.integers(0, 4, 10_000)

    def encode():
        enc = ArithmeticEncoder()
        for b, c in zip(bits, ctxs):
            enc.encode(int(b), int(c))
        return enc.finish()

    data = benchmark(encode)
    dec = ArithmeticDecoder(data)
    assert [dec.decode(int(c)) for c in ctxs[:100]] == [int(b) for b in bits[:100]]


def test_bench_arith_encode_many_10k(benchmark, rng=np.random.default_rng(1)):
    """Batched range-coder API: same workload as the per-bit bench above."""
    bits = rng.integers(0, 2, 10_000).tolist()
    ctxs = rng.integers(0, 4, 10_000).tolist()

    def encode():
        enc = BatchRangeEncoder(BatchContextTable(4))
        enc.encode_many(bits, ctxs)
        return enc.finish()

    data = benchmark(encode)
    # Byte-identical to the reference encoder on the same stream.
    ref = ArithmeticEncoder()
    for b, c in zip(bits, ctxs):
        ref.encode(b, c)
    assert data == ref.finish()


def test_bench_tile_encode_real_coder(benchmark, image256):
    codec = ImageCodec(CodecConfig(tile_size=64, base_step=1 / 256))
    tile = image256[:64, :64]
    benchmark(lambda: codec.encode(tile))


def test_bench_tile_encode_vectorized(benchmark, image256):
    codec = ImageCodec(
        CodecConfig(tile_size=64, base_step=1 / 256), backend="vectorized"
    )
    tile = image256[:64, :64]
    benchmark(lambda: codec.encode(tile))


def test_bench_tile_decode_vectorized(benchmark, image256):
    codec = ImageCodec(
        CodecConfig(tile_size=64, base_step=1 / 256), backend="vectorized"
    )
    encoded = codec.encode(image256[:64, :64])
    benchmark(lambda: codec.decode(encoded))


def test_bench_rate_model_encode(benchmark, image256):
    model = RateModel(CodecConfig(tile_size=64))
    result = benchmark(lambda: model.encode(image256, 1 / 512))
    assert result.coded_bytes > 0


def test_bench_rate_model_step_search(benchmark, image256):
    model = RateModel(CodecConfig(tile_size=64))
    result = benchmark(
        lambda: model.find_step_for_bytes(image256, 4000)
    )
    assert result.coded_bytes <= 4400
