"""Benchmark harness configuration.

Every bench regenerates one paper table/figure: it runs the experiment once
inside the ``benchmark`` fixture (so pytest-benchmark records wall time),
prints the paper-style rows, and writes them to ``benchmarks/results/`` so
``bench_output.txt`` and the per-figure text files both capture them.

Scale knob: set ``REPRO_BENCH_SCALE=full`` for larger sweeps (closer to the
paper's full datasets); the default ``small`` finishes the whole bench suite
in minutes on a laptop.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

# Benchmarks measure simulation time; serving sweeps from the persistent
# experiment store would time cache reads instead.  Force it off.
os.environ["REPRO_STORE"] = "off"

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_scale() -> str:
    """"small" (default) or "full"."""
    return os.environ.get("REPRO_BENCH_SCALE", "small")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir):
    """Print a report and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print()
        print(text)
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit


@pytest.fixture()
def emit_json(results_dir):
    """Persist machine-readable benchmark numbers (CI artifacts).

    Written as ``BENCH_<name>.json`` next to the human-readable tables so
    CI can upload them and downstream tooling can diff runs without
    parsing the text reports.
    """
    import json

    def _emit(name: str, payload: dict) -> None:
        path = results_dir / f"BENCH_{name}.json"
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run an experiment exactly once under the benchmark fixture."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
