"""Figure 15: on-board storage breakdown per policy.

Paper: SatRoI 30 GB, Kodan 255 GB, Earth+ 24 GB; Earth+ stores only
changed tiles plus heavily-downsampled references.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table


def test_fig15_storage(benchmark, emit):
    rows_by_policy = run_once(benchmark, F.fig15_storage)
    rows = [
        [
            policy,
            f"{data['captured_gb']:.1f}",
            f"{data['reference_gb']:.1f}",
            f"{data['total_gb']:.1f}",
        ]
        for policy, data in rows_by_policy.items()
    ]
    emit(
        "fig15_storage",
        format_table(
            ["policy", "captured GB", "reference GB", "total GB"],
            rows,
            title="Figure 15 - Doves-scale storage model "
            "(paper: SatRoI 30, Kodan 255, Earth+ 24 GB)",
        ),
    )
    assert rows_by_policy["kodan"]["total_gb"] > 5 * rows_by_policy[
        "earthplus"
    ]["total_gb"]
    assert (
        rows_by_policy["earthplus"]["total_gb"]
        <= rows_by_policy["satroi"]["total_gb"]
    )
    assert (
        rows_by_policy["earthplus"]["reference_gb"]
        < rows_by_policy["satroi"]["reference_gb"]
    )
    # Appendix A's ~9 % reference/captured claim holds at the paper's own
    # operating point (2601x reference compression, downsample 36).
    from repro.core.config import EarthPlusConfig

    paper_point = F.fig15_storage(
        config=EarthPlusConfig(reference_downsample=36)
    )["earthplus"]
    assert paper_point["reference_gb"] < 0.15 * paper_point["captured_gb"]
