"""Figure 19 companion: sharded execution scales one large scenario.

The sharded runner's claim, measured: partitioning a constellation's
satellites across worker processes keeps the result pickle-byte-identical
to a sequential run while the critical path (the slowest shard's CPU
time) shrinks near-linearly with the shard count.  The committed results
carry both the measured wall time on the benchmark host and the
critical-path projection, plus the host's core count — on a host with
fewer cores than shards the wall number is a timesliced artifact and the
projection is the meaningful one.
"""

from conftest import run_once

from repro.analysis import figures as F
from repro.analysis.tables import format_table

#: The headline cell the gate checks: 32 satellites across 4 shards.
GATE_SATELLITES = 32
GATE_SHARDS = 4
GATE_SPEEDUP = 2.5


def test_fig19_scaling(benchmark, emit, bench_scale):
    if bench_scale == "full":
        sizes = [8, 16, 32]
        shard_counts = [2, 4, 8]
        shape = (128, 128)
        horizon = 60.0
    else:
        sizes = [8, 32]
        shard_counts = [2, 4]
        shape = (96, 96)
        horizon = 45.0
    result = run_once(
        benchmark,
        lambda: F.fig19_scaling(
            sizes=sizes,
            shard_counts=shard_counts,
            image_shape=shape,
            horizon_days=horizon,
        ),
    )
    rows = result["rows"]
    host_cores = rows[0]["host_cores"]
    emit(
        "fig19_scaling",
        format_table(
            [
                "satellites", "shards", "wall s", "max shard CPU s",
                "wall speedup", "projected speedup", "identical",
            ],
            [
                [
                    str(r["satellites"]),
                    str(r["shards"]),
                    f"{r['wall_s']:.2f}",
                    f"{r['max_shard_cpu_s']:.2f}",
                    f"{r['wall_speedup']:.2f}x",
                    f"{r['projected_speedup']:.2f}x",
                    "yes" if r["identical"] else "NO",
                ]
                for r in rows
            ],
            title=(
                f"Figure 19 companion - sharded single-scenario scaling "
                f"(host: {host_cores} core"
                f"{'' if host_cores == 1 else 's'}; projected speedup = "
                f"sequential CPU / slowest shard CPU, the bound a host "
                f"with >= shards free cores approaches)"
            ),
        ),
    )
    # Sharding must never change a byte, at any grid point.
    assert all(r["identical"] for r in rows), rows
    gate = next(
        r
        for r in rows
        if r["satellites"] == GATE_SATELLITES and r["shards"] == GATE_SHARDS
    )
    # On a host with enough free cores the end-to-end wall speedup is the
    # gate; with fewer cores than shards the workers timeslice one core
    # and only the critical-path projection is meaningful.
    speedup = (
        gate["wall_speedup"]
        if host_cores >= GATE_SHARDS
        else gate["projected_speedup"]
    )
    assert speedup >= GATE_SPEEDUP, gate
