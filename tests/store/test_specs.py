"""Spec canonicalization tests: stability, sensitivity, schema salting.

The content key is the store's entire correctness story — a key that
drifts between processes silently loses every cache hit, and a key blind
to some config field silently serves wrong results — so these tests pin
both directions: same content always hashes the same (dict order,
process boundary, default resolution), and any semantic change hashes
differently (every config field, every spec field, the schema version).
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scenarios import (
    DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
    DEFAULT_UPLINK_BYTES_PER_CONTACT,
    DatasetSpec,
    ScenarioSpec,
)
from repro.core.config import EarthPlusConfig
from repro.errors import UncacheableSpecError
from repro.orbit.links import FluctuationModel
from repro.store import specs as spec_hashing
from repro.store.specs import is_cacheable, spec_document, spec_key

BASE_DATASET = DatasetSpec.of(
    "sentinel2",
    locations=["A", "B"],
    bands=["B4", "B11"],
    horizon_days=30.0,
    image_shape=(128, 128),
)

BASE_SPEC = ScenarioSpec(policy="earthplus", dataset=BASE_DATASET, seed=3)

#: Key of BASE_SPEC under schema version 3, pinned so accidental
#: canonicalization changes (which would orphan every existing store
#: entry) fail loudly.  A deliberate change must bump SCHEMA_VERSION —
#: then regenerate with: python -c "from repro.store.specs import
#: spec_key; ..." on the spec above.
GOLDEN_KEY = "715ad9c3606af2e85c55c374549853e5295c4719afd213610f66b1a48c1dd29d"

_param_leaves = (
    st.integers(-1000, 1000)
    | st.floats(allow_nan=False, allow_infinity=False, width=32)
    | st.booleans()
    | st.text(max_size=8)
)
_param_dicts = st.dictionaries(
    keys=st.text(
        alphabet=st.characters(min_codepoint=48, max_codepoint=122),
        min_size=1,
        max_size=8,
    ),
    values=_param_leaves | st.lists(_param_leaves, max_size=4),
    max_size=6,
)


class TestStability:
    def test_golden_key(self):
        assert spec_key(BASE_SPEC) == GOLDEN_KEY

    def test_repeated_hashing_is_stable(self):
        assert spec_key(BASE_SPEC) == spec_key(BASE_SPEC)

    @settings(max_examples=50, deadline=None)
    @given(params=_param_dicts)
    def test_param_dict_order_is_irrelevant(self, params):
        items = list(params.items())
        forward = ScenarioSpec(
            policy="earthplus", dataset=DatasetSpec.of("planet", **dict(items))
        )
        backward = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of("planet", **dict(reversed(items))),
        )
        assert spec_key(forward) == spec_key(backward)

    def test_stable_across_processes(self):
        """The key a fresh interpreter computes matches this process's."""
        src_dir = Path(spec_hashing.__file__).parents[2]
        script = (
            "from repro.analysis.scenarios import DatasetSpec, ScenarioSpec\n"
            "from repro.store.specs import spec_key\n"
            "dataset = DatasetSpec.of('sentinel2', locations=['A', 'B'],"
            " bands=['B4', 'B11'], horizon_days=30.0,"
            " image_shape=(128, 128))\n"
            "print(spec_key(ScenarioSpec(policy='earthplus',"
            " dataset=dataset, seed=3)))\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src_dir), "PATH": "/usr/bin:/bin"},
        )
        assert out.stdout.strip() == spec_key(BASE_SPEC)

    def test_defaults_resolve_to_one_key(self):
        """None config / explicit defaults / default links share a key."""
        explicit = ScenarioSpec(
            policy="earthplus",
            dataset=BASE_DATASET,
            config=EarthPlusConfig(),
            uplink_bytes_per_contact=DEFAULT_UPLINK_BYTES_PER_CONTACT,
            downlink_bytes_per_contact=DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
            seed=3,
        )
        assert spec_key(explicit) == spec_key(BASE_SPEC)

    def test_label_and_extras_do_not_affect_key(self):
        decorated = ScenarioSpec(
            policy="earthplus",
            dataset=BASE_DATASET,
            seed=3,
            label="fig13/earthplus",
            extras={"gamma": 0.2, "note": "anything"},
        )
        assert spec_key(decorated) == spec_key(BASE_SPEC)

    def test_document_is_strict_json(self):
        document = spec_document(BASE_SPEC)
        assert json.loads(json.dumps(document)) == document


class TestSensitivity:
    """Any semantic change to the spec must change the key."""

    def test_every_scenario_field(self):
        variants = {
            "policy": ScenarioSpec(
                policy="kodan", dataset=BASE_DATASET, seed=3
            ),
            "dataset": ScenarioSpec(
                policy="earthplus",
                dataset=DatasetSpec.of(
                    "sentinel2",
                    locations=["A"],
                    bands=["B4", "B11"],
                    horizon_days=30.0,
                    image_shape=(128, 128),
                ),
                seed=3,
            ),
            "seed": ScenarioSpec(policy="earthplus", dataset=BASE_DATASET, seed=4),
            "uplink": ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                uplink_bytes_per_contact=1234,
            ),
            "fluctuation": ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                fluctuation=FluctuationModel(seed=1, severity=0.2),
            ),
            "downlink": ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                downlink_bytes_per_contact=4321,
            ),
            "downlink_severity": ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                downlink_severity=0.3,
            ),
            "ground_detector": ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                ground_detector_for_scoring=False,
            ),
        }
        base_key = spec_key(BASE_SPEC)
        keys = {name: spec_key(spec) for name, spec in variants.items()}
        for name, key in keys.items():
            assert key != base_key, f"varying {name} left the key unchanged"
        assert len(set(keys.values())) == len(keys)

    def test_every_config_field(self):
        """Each EarthPlusConfig field is either keyed or engine-only.

        Semantic fields must change the key; engine-only fields (which
        entropy engine runs the real codec, how many pool workers) are
        differential-tested to never change results, so they must NOT.
        Every field appears in exactly one of the two tables, enforced
        below, so a new field must take a side here.
        """
        semantic_alternates = {
            "tile_size": 32,
            "theta": 0.02,
            "gamma_bpp": 0.5,
            "reference_downsample": 4,
            "reference_max_cloud": 0.02,
            "drop_cloud_fraction": 0.4,
            "guaranteed_download_days": 15.0,
            "cache_references_onboard": False,
            "delta_reference_updates": False,
            "n_quality_layers": 2,
            "ground_sync_days": 1.0,
            "reference_bytes_per_pixel": 2,
            "raw_bytes_per_pixel": 1,
            # model vs real codec changes byte accounting, so it keys —
            # see test_engine_only_fields for the engine names.
            "codec_backend": "real",
        }
        engine_only_alternates = {"codec_parallel_tiles": 2}
        config_fields = {f.name for f in dataclasses.fields(EarthPlusConfig)}
        assert (
            set(semantic_alternates) | set(engine_only_alternates)
        ) == config_fields, (
            "a new EarthPlusConfig field needs an alternate here (and a "
            "SCHEMA_VERSION bump if it changes results)"
        )
        assert not set(semantic_alternates) & set(engine_only_alternates)
        base_key = spec_key(BASE_SPEC)

        def variant_key(name: str, value) -> str:
            overrides = {name: value}
            if name == "cache_references_onboard":
                overrides["delta_reference_updates"] = False
            variant = ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                config=EarthPlusConfig().with_overrides(**overrides),
                seed=3,
            )
            return spec_key(variant)

        for name, value in semantic_alternates.items():
            assert variant_key(name, value) != base_key, (
                f"varying config.{name} left the key unchanged"
            )
        for name, value in engine_only_alternates.items():
            assert variant_key(name, value) == base_key, (
                f"engine-only config.{name} leaked into the key"
            )

    def test_backend_engine_never_keys(self):
        """Every entropy-engine choice hashes like every other.

        The engines are differential-tested byte-identical, so a compiled
        run must warm the cache for a vectorized run (and vice versa) —
        only the model-vs-real-codec choice may key.
        """

        def key_for(backend: str) -> str:
            return spec_key(
                ScenarioSpec(
                    policy="earthplus",
                    dataset=BASE_DATASET,
                    config=EarthPlusConfig().with_overrides(
                        codec_backend=backend
                    ),
                    seed=3,
                )
            )

        real_keys = {
            backend: key_for(backend)
            for backend in ("real", "reference", "vectorized", "compiled")
        }
        assert len(set(real_keys.values())) == 1, real_keys
        engine_key = next(iter(real_keys.values()))
        assert engine_key != spec_key(BASE_SPEC)  # real codec != model
        assert key_for("model") == spec_key(BASE_SPEC)

    def test_parallel_tiles_never_keys(self):
        """Pool width composes with engine choice without touching the key."""
        one = ScenarioSpec(
            policy="earthplus",
            dataset=BASE_DATASET,
            config=EarthPlusConfig().with_overrides(
                codec_backend="compiled", codec_parallel_tiles=1
            ),
            seed=3,
        )
        four = ScenarioSpec(
            policy="earthplus",
            dataset=BASE_DATASET,
            config=EarthPlusConfig().with_overrides(
                codec_backend="vectorized", codec_parallel_tiles=4
            ),
            seed=3,
        )
        assert spec_key(one) == spec_key(four)

    def test_fluctuation_severity_changes_key(self):
        """Severity alone (same seed/floor/ceiling) is a distinct key."""

        def spec_with(severity: float) -> ScenarioSpec:
            return ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                fluctuation=FluctuationModel(seed=1, severity=severity),
            )

        assert spec_key(spec_with(0.2)) != spec_key(spec_with(0.4))

    def test_downlink_severity_changes_key(self):
        def spec_with(severity: float) -> ScenarioSpec:
            return ScenarioSpec(
                policy="earthplus",
                dataset=BASE_DATASET,
                seed=3,
                downlink_severity=severity,
            )

        assert spec_key(spec_with(0.1)) != spec_key(spec_with(0.25))

    def test_dataset_param_value_changes_key(self):
        variant = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "sentinel2",
                locations=["A", "B"],
                bands=["B4", "B11"],
                horizon_days=31.0,
                image_shape=(128, 128),
            ),
            seed=3,
        )
        assert spec_key(variant) != spec_key(BASE_SPEC)

    def test_schema_version_salts_key(self, monkeypatch):
        base_key = spec_key(BASE_SPEC)
        monkeypatch.setattr(
            spec_hashing, "SCHEMA_VERSION", spec_hashing.SCHEMA_VERSION + 1
        )
        assert spec_key(BASE_SPEC) != base_key


class TestUncacheable:
    def test_built_dataset(self, tiny_dataset):
        spec = ScenarioSpec(policy="earthplus", dataset=tiny_dataset.build())
        with pytest.raises(UncacheableSpecError):
            spec_key(spec)
        assert not is_cacheable(spec)

    def test_fluctuation_subclass(self):
        class Custom(FluctuationModel):
            pass

        spec = ScenarioSpec(
            policy="earthplus", dataset=BASE_DATASET, fluctuation=Custom()
        )
        with pytest.raises(UncacheableSpecError):
            spec_key(spec)

    def test_nan_parameter(self):
        spec = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of("planet", horizon_days=float("nan")),
        )
        with pytest.raises(UncacheableSpecError):
            spec_key(spec)

    def test_cacheable_spec_reports_true(self):
        assert is_cacheable(BASE_SPEC)
