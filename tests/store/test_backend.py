"""ExperimentStore backend tests: round trips, healing, eviction, query.

Everything here uses hand-built synthetic results, so the backend's
serialization, index, and eviction logic are exercised without paying
for simulations.  Byte-identity against *real* simulated results is
covered by tests/store/test_roundtrip.py.
"""

from __future__ import annotations

import pickle
import shutil

from repro.store.backend import ExperimentStore


def _spec_and_result(tiny_spec, result_factory, seed=0, n_records=3):
    spec = tiny_spec(seed=seed)
    return spec, result_factory(n_records=n_records)


class TestRoundTrip:
    def test_put_get_is_pickle_identical(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        loaded = store.get(spec)
        assert pickle.dumps(loaded) == pickle.dumps(result)
        assert store.contains(key)

    def test_nan_and_inf_fields_survive(self, store, tiny_spec, result_factory):
        """NaN psnr (dropped captures) and inf band PSNR round-trip."""
        spec, result = _spec_and_result(tiny_spec, result_factory)
        loaded = store.get(store.put(spec, result))
        dropped = [r for r in loaded.records if r.dropped]
        assert dropped and all(r.psnr != r.psnr for r in dropped)
        assert loaded.records[1].band_psnr["B11"] == float("inf")

    def test_get_by_key_or_spec(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        assert pickle.dumps(store.get(key)) == pickle.dumps(store.get(spec))

    def test_missing_key_is_none(self, store, tiny_spec):
        assert store.get("0" * 64) is None
        assert store.get(tiny_spec()) is None

    def test_double_put_is_idempotent(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        assert store.put(spec, result) == store.put(spec, result)
        assert store.stats()["entries"] == 1

    def test_zero_record_result(self, store, tiny_spec, result_factory):
        spec = tiny_spec(policy="naive")
        result = result_factory(policy="naive", n_records=0)
        loaded = store.get(store.put(spec, result))
        assert pickle.dumps(loaded) == pickle.dumps(result)


class TestHealing:
    """Broken entries are misses, never exceptions."""

    def test_deleted_payload_heals_to_miss(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        shutil.rmtree(store._payload_dir(key))
        assert store.get(key) is None
        assert not store.contains(key)

    def test_corrupt_npz_heals_to_miss(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        (store._payload_dir(key) / "records.npz").write_bytes(b"not a zip")
        assert store.get(key) is None
        assert not store.contains(key)

    def test_corrupt_json_heals_to_miss(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        (store._payload_dir(key) / "result.json").write_text("{truncated")
        assert store.get(key) is None

    def test_payload_version_mismatch_heals_to_miss(
        self, store, tiny_spec, result_factory, monkeypatch
    ):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        import repro.store.backend as backend

        monkeypatch.setattr(backend, "PAYLOAD_VERSION", 999)
        assert store.get(key) is None


class TestEviction:
    def test_lru_eviction_keeps_recently_used(self, tmp_path, tiny_spec, result_factory):
        store = ExperimentStore(tmp_path / "bounded", max_bytes=0x7FFFFFFF)
        keys = [
            store.put(tiny_spec(seed=seed), result_factory(n_records=20))
            for seed in range(4)
        ]
        # Touch the oldest entry so it is the most recently used...
        assert store.get(keys[0]) is not None
        # ...then shrink the budget to roughly two payloads.
        per_entry = store.stats()["payload_mb"] * 1e6 / 4
        evicted = store.evict(max_bytes=int(2.5 * per_entry))
        assert evicted == 2
        assert store.contains(keys[0]), "LRU evicted the just-touched entry"
        assert not store.contains(keys[1])
        assert not store.contains(keys[2])
        assert store.contains(keys[3])
        store.close()

    def test_unbounded_store_never_evicts(self, tmp_path, tiny_spec, result_factory):
        store = ExperimentStore(tmp_path / "unbounded", max_bytes=None)
        store.max_bytes = None
        store.put(tiny_spec(), result_factory())
        assert store.evict() == 0
        store.close()


class TestQueryAndStats:
    def test_query_filters(self, store, tiny_spec, result_factory):
        for policy in ("earthplus", "naive"):
            for seed in (0, 1):
                store.put(
                    tiny_spec(policy=policy, seed=seed),
                    result_factory(policy=policy),
                )
        assert len(store.query()) == 4
        assert len(store.query(policy="earthplus")) == 2
        assert len(store.query(policy="earthplus", seed=1)) == 1
        assert len(store.query(dataset="planet")) == 0
        assert len(store.query(label="naive")) == 2
        assert len(store.query(limit=3)) == 3
        row = store.query(policy="naive", seed=0)[0]
        assert row["dataset"] == "sentinel2"
        assert row["records"] == 3
        assert row["downlink_kb"] == 1.0

    def test_stats(self, store, tiny_spec, result_factory):
        stats = store.stats()
        assert stats["entries"] == 0
        store.put(tiny_spec(), result_factory())
        stats = store.stats()
        assert stats["entries"] == 1
        assert stats["payload_mb"] > 0


class TestGetMany:
    """The batched hit-scan must be get() applied per key, one SQL trip."""

    def test_hits_misses_and_duplicates(self, store, tiny_spec, result_factory):
        specs = [tiny_spec(seed=seed) for seed in range(3)]
        results = [result_factory(n_records=seed + 1) for seed in range(3)]
        keys = [
            store.put(spec, result)
            for spec, result in zip(specs[:2], results[:2])
        ]
        missing = store.key_for(specs[2])
        loaded = store.get_many([keys[0], keys[1], missing, keys[0]])
        assert set(loaded) == {keys[0], keys[1], missing}
        assert pickle.dumps(loaded[keys[0]]) == pickle.dumps(results[0])
        assert pickle.dumps(loaded[keys[1]]) == pickle.dumps(results[1])
        assert loaded[missing] is None

    def test_empty_request(self, store):
        assert store.get_many([]) == {}

    def test_corrupt_entry_heals_to_miss(self, store, tiny_spec, result_factory):
        spec, result = _spec_and_result(tiny_spec, result_factory)
        key = store.put(spec, result)
        shutil.rmtree(store._payload_dir(key))
        assert store.get_many([key]) == {key: None}
        assert not store.contains(key)

    def test_spans_presence_query_chunks(self, store, tiny_spec, result_factory):
        store._IN_CHUNK = 2  # force several IN(...) round-trips
        keys = [
            store.put(tiny_spec(seed=seed), result_factory(n_records=1))
            for seed in range(5)
        ]
        loaded = store.get_many(keys + ["0" * 64])
        assert all(loaded[key] is not None for key in keys)
        assert loaded["0" * 64] is None


class TestConcurrency:
    def test_concurrent_writers_share_one_store(self, tmp_path, tiny_spec, result_factory):
        """Two stores on one root (as two sweep processes would open)
        interleave puts/gets without corrupting the index."""
        root = tmp_path / "shared"
        a = ExperimentStore(root, max_bytes=0x7FFFFFFF)
        b = ExperimentStore(root, max_bytes=0x7FFFFFFF)
        key0 = a.put(tiny_spec(seed=0), result_factory())
        key1 = b.put(tiny_spec(seed=1), result_factory())
        # Same-key race: both write identical content, first commit wins.
        assert b.put(tiny_spec(seed=0), result_factory()) == key0
        assert a.get(key1) is not None
        assert b.get(key0) is not None
        assert a.stats()["entries"] == 2
        a.close()
        b.close()
