"""RPR004 store-key golden: the spec surface / SCHEMA_VERSION lockstep.

The committed ``tests/store/golden_spec_fields.json`` snapshots every
field that enters the experiment store's canonical spec document.  These
tests prove the rule's teeth on a sandbox copy of the real sources:

* adding an ``EarthPlusConfig`` field WITHOUT bumping ``SCHEMA_VERSION``
  is an active violation (the regression the rule exists for);
* the same change WITH a bump and a golden re-snapshot lints clean;
* the committed golden matches the live sources, so the real tree can
  never drift from its snapshot unnoticed.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint import run_lint
from repro.lint.rules import storekey

REPO_ROOT = Path(__file__).resolve().parents[2]

CONFIG_ANCHOR = "tile_size: int = 64"
VERSION_ANCHOR = "SCHEMA_VERSION = 3"


@pytest.fixture()
def sandbox(tmp_path):
    """A copy of the real config/specs sources plus a fresh golden."""
    root = tmp_path / "proj"
    for rel in (storekey.CONFIG_RELPATH, storekey.SPECS_RELPATH):
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text((REPO_ROOT / rel).read_text(encoding="utf-8"))
    storekey.update_golden(root)
    return root


def rpr004(root: Path):
    result = run_lint(
        [root / "src"], select=["RPR004"], project_root=root
    )
    return result.active


def add_config_field(root: Path) -> None:
    config = root / storekey.CONFIG_RELPATH
    source = config.read_text(encoding="utf-8")
    assert CONFIG_ANCHOR in source
    config.write_text(
        source.replace(
            CONFIG_ANCHOR, CONFIG_ANCHOR + "\n    extra_knob: float = 0.0"
        ),
        encoding="utf-8",
    )


def bump_schema_version(root: Path) -> None:
    specs = root / storekey.SPECS_RELPATH
    source = specs.read_text(encoding="utf-8")
    assert VERSION_ANCHOR in source
    specs.write_text(
        source.replace(VERSION_ANCHOR, "SCHEMA_VERSION = 4"),
        encoding="utf-8",
    )


class TestGoldenLockstep:
    def test_committed_golden_matches_live_sources(self):
        surface = storekey.extract_surface(
            (REPO_ROOT / storekey.CONFIG_RELPATH).read_text(),
            (REPO_ROOT / storekey.SPECS_RELPATH).read_text(),
        )
        committed = json.loads(
            (REPO_ROOT / storekey.GOLDEN_RELPATH).read_text()
        )
        assert surface.as_golden() == committed

    def test_sandbox_baseline_is_clean(self, sandbox):
        assert rpr004(sandbox) == []


class TestUnbumpedChangeFails:
    def test_config_field_added_without_bump_is_violation(self, sandbox):
        add_config_field(sandbox)
        findings = rpr004(sandbox)
        assert len(findings) == 1
        finding = findings[0]
        assert finding.rule == "RPR004"
        assert "extra_knob" in finding.message
        assert "bump SCHEMA_VERSION" in finding.message
        # the finding points at the class whose surface changed
        assert finding.path == storekey.CONFIG_RELPATH.as_posix()

    def test_violation_survives_rule_selection_by_name(self, sandbox):
        add_config_field(sandbox)
        result = run_lint(
            [sandbox / "src"], select=["storekey"], project_root=sandbox
        )
        assert result.exit_code == 1


class TestBumpedChangePasses:
    def test_bump_plus_resnapshot_is_clean(self, sandbox):
        add_config_field(sandbox)
        bump_schema_version(sandbox)
        # bumped but golden stale: a re-snapshot reminder, not silence
        [reminder] = rpr004(sandbox)
        assert "--update-golden" in reminder.message
        storekey.update_golden(sandbox)
        assert rpr004(sandbox) == []
        golden = json.loads(
            (sandbox / storekey.GOLDEN_RELPATH).read_text()
        )
        assert golden["schema_version"] == 4
        assert "extra_knob" in golden["config_fields"]

    def test_bump_without_surface_change_wants_reanchor(self, sandbox):
        bump_schema_version(sandbox)
        [finding] = rpr004(sandbox)
        assert "re-anchor" in finding.message
        storekey.update_golden(sandbox)
        assert rpr004(sandbox) == []


class TestGoldenPresence:
    def test_missing_golden_is_a_finding(self, sandbox):
        (sandbox / storekey.GOLDEN_RELPATH).unlink()
        [finding] = rpr004(sandbox)
        assert "missing" in finding.message

    def test_corrupt_golden_is_a_finding(self, sandbox):
        (sandbox / storekey.GOLDEN_RELPATH).write_text("{not json")
        [finding] = rpr004(sandbox)
        assert "unreadable" in finding.message
