"""Cache-aware runner tests: hits, streaming persistence, resume.

Simulations are counted by wrapping ``run_scenario`` at the scenarios
module, which both the in-process and (for these tests, unused) parallel
batch paths call — so "zero simulations" is asserted literally, not
inferred from timing.
"""

from __future__ import annotations

import pickle

import pytest

import repro.analysis.scenarios as scenarios
from repro.analysis.scenarios import ScenarioSpec
from repro.errors import ScenarioError
from repro.store.runner import run_scenario_cached, run_scenarios_cached


@pytest.fixture()
def sim_counter(monkeypatch):
    """Count (and optionally sabotage) run_scenario calls by label."""
    real = scenarios.run_scenario
    state = {"calls": [], "fail_labels": set()}

    def counting(spec):
        label = spec.resolved_label()
        state["calls"].append(label)
        if label in state["fail_labels"]:
            raise RuntimeError(f"injected failure for {label}")
        return real(spec)

    monkeypatch.setattr(scenarios, "run_scenario", counting)
    return state


def _specs(tiny_spec, n_seeds=2):
    return [
        tiny_spec(policy=policy, seed=seed)
        for policy in ("earthplus", "naive")
        for seed in range(n_seeds)
    ]


class TestCaching:
    def test_warm_batch_runs_zero_simulations(
        self, store, tiny_spec, sim_counter
    ):
        specs = _specs(tiny_spec)
        cold = run_scenarios_cached(specs, store=store)
        assert len(sim_counter["calls"]) == 4
        assert len(cold.cached) == 0 and len(cold.executed) == 4
        warm = run_scenarios_cached(specs, store=store)
        assert len(sim_counter["calls"]) == 4, "warm pass simulated"
        assert len(warm.cached) == 4 and len(warm.executed) == 0
        for a, b in zip(cold.results, warm.results):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_refresh_recomputes(self, store, tiny_spec, sim_counter):
        spec = tiny_spec()
        run_scenario_cached(spec, store=store)
        run_scenario_cached(spec, store=store, refresh=True)
        assert len(sim_counter["calls"]) == 2

    def test_store_none_bypasses(self, store, tiny_spec, sim_counter):
        spec = tiny_spec()
        run_scenario_cached(spec, store=None)
        run_scenario_cached(spec, store=None)
        assert len(sim_counter["calls"]) == 2
        assert store.stats()["entries"] == 0

    def test_duplicate_specs_simulate_once(self, store, tiny_spec, sim_counter):
        spec = tiny_spec()
        sweep = run_scenarios_cached([spec, spec, spec], store=store)
        assert len(sim_counter["calls"]) == 1
        assert len(sweep.results) == 3
        # The accounting distinguishes the one real simulation from the
        # in-batch duplicates that shared its result.
        assert sweep.executed == (0,)
        assert sweep.deduplicated == (1, 2)
        assert "1 simulated, 2 duplicate" in sweep.summary()
        assert (
            pickle.dumps(sweep.results[0])
            == pickle.dumps(sweep.results[1])
            == pickle.dumps(sweep.results[2])
        )

    def test_uncacheable_specs_run_and_bypass(
        self, store, tiny_dataset, sim_counter
    ):
        built = ScenarioSpec(policy="naive", dataset=tiny_dataset.build())
        sweep = run_scenarios_cached([built], store=store)
        assert sweep.uncacheable == (0,)
        assert sweep.keys == [None]
        assert sweep.results[0].records
        assert store.stats()["entries"] == 0
        # Bypassing means no reuse either: it simulates again.
        run_scenarios_cached([built], store=store)
        assert len(sim_counter["calls"]) == 2

    def test_store_write_failure_degrades_to_warning(
        self, store, tiny_spec, sim_counter, monkeypatch
    ):
        """Caching is best-effort: a broken store never kills a sweep."""

        def broken_put(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(store, "put", broken_put)
        with pytest.warns(UserWarning, match="store write failed"):
            sweep = run_scenarios_cached([tiny_spec()], store=store)
        assert sweep.results[0].records

    def test_unroundtrippable_extra_metrics_stay_uncached(
        self, store, tiny_spec, result_factory, monkeypatch
    ):
        """Tuple-valued extra_metrics would come back as lists — the
        backend refuses them, and the runner downgrades to a warning."""
        result = result_factory()
        result.extra_metrics = {"per_band": (1, 2)}
        monkeypatch.setattr(scenarios, "run_scenario", lambda spec: result)
        with pytest.warns(UserWarning, match="round-trip"):
            out = run_scenario_cached(tiny_spec(), store=store)
        assert out is result
        assert store.stats()["entries"] == 0

    def test_cached_matches_plain_run_scenarios(self, store, tiny_spec):
        """The store layer's contract: byte-identical to the plain path."""
        specs = _specs(tiny_spec)
        via_store = run_scenarios_cached(specs, store=store).results
        plain = scenarios.run_scenarios(specs)
        for a, b in zip(via_store, plain):
            assert pickle.dumps(a) == pickle.dumps(b)


class TestInterruptionAndResume:
    def test_failure_persists_finished_results(
        self, store, tiny_spec, sim_counter
    ):
        """Results that landed before a mid-batch failure are on disk."""
        specs = _specs(tiny_spec)  # sequential: runs in spec order
        sim_counter["fail_labels"].add(specs[2].resolved_label())
        with pytest.raises(ScenarioError) as excinfo:
            run_scenarios_cached(specs, store=store)
        assert specs[2].resolved_label() in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, RuntimeError)
        assert store.stats()["entries"] == 2, "finished results not persisted"

    def test_resume_executes_only_missing(self, store, tiny_spec, sim_counter):
        specs = _specs(tiny_spec)
        sim_counter["fail_labels"].add(specs[2].resolved_label())
        with pytest.raises(ScenarioError):
            run_scenarios_cached(specs, store=store)
        calls_before = len(sim_counter["calls"])
        sim_counter["fail_labels"].clear()
        resumed = run_scenarios_cached(specs, store=store)
        resumed_calls = sim_counter["calls"][calls_before:]
        assert sorted(resumed_calls) == sorted(
            [specs[2].resolved_label(), specs[3].resolved_label()]
        ), "resume re-simulated specs that were already stored"
        assert len(resumed.cached) == 2
        # The resumed sweep equals a from-scratch run of the same specs.
        reference = run_scenarios_cached(specs, store=None)
        for a, b in zip(resumed.results, reference.results):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_failed_spec_is_not_poisoned(self, store, tiny_spec, sim_counter):
        """A failure leaves no store entry, so retries re-attempt it.

        Single-run failures propagate unwrapped (run_scenario's own
        contract); only the batch runner wraps in ScenarioError.
        """
        spec = tiny_spec()
        sim_counter["fail_labels"].add(spec.resolved_label())
        with pytest.raises(RuntimeError, match="injected"):
            run_scenario_cached(spec, store=store)
        assert store.stats()["entries"] == 0
        sim_counter["fail_labels"].clear()
        assert run_scenario_cached(spec, store=store).records
