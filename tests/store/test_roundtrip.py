"""Acceptance tests for the experiment store (the CI round-trip job).

Asserted here, end to end:

* re-running a completed sweep against a warm store performs **zero**
  simulations and returns ``RunResult``s byte-identical to the cold run
  (in-process and across worker processes);
* a sweep killed midway (real SIGKILL of a ``repro sweep`` subprocess)
  then resumed completes only the specs missing from the store;
* regenerating a figure whose sweep already ran is a pure cache read.
"""

from __future__ import annotations

import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
import repro.analysis.scenarios as scenarios
from repro.analysis.figures import fig13_timeseries
from repro.analysis.scenarios import DatasetSpec, sweep_specs
from repro.core.config import EarthPlusConfig
from repro.store.backend import ExperimentStore
from repro.store.runner import run_scenarios_cached

_SRC_DIR = str(Path(repro.__file__).parents[1])


@pytest.fixture()
def sim_counter(monkeypatch):
    real = scenarios.run_scenario
    calls = []

    def counting(spec):
        calls.append(spec.resolved_label())
        return real(spec)

    monkeypatch.setattr(scenarios, "run_scenario", counting)
    return calls


def _sweep(tiny_dataset):
    return sweep_specs(
        dataset=tiny_dataset,
        policies=("earthplus", "naive"),
        seeds=(0, 1),
        gammas=(0.2, 0.4),
    )


class TestWarmSweep:
    def test_second_pass_is_pure_cache_read(
        self, store, tiny_dataset, sim_counter
    ):
        specs = _sweep(tiny_dataset)
        cold = run_scenarios_cached(specs, store=store)
        assert len(sim_counter) == len(specs)
        warm = run_scenarios_cached(specs, store=store)
        assert len(sim_counter) == len(specs), (
            "warm sweep simulated instead of reading the store"
        )
        assert len(warm.cached) == len(specs)
        for spec, a, b in zip(specs, cold.results, warm.results):
            assert pickle.dumps(a) == pickle.dumps(b), (
                f"{spec.resolved_label()}: warm result not byte-identical"
            )

    def test_warm_read_matches_parallel_cold_run(self, store, tiny_dataset):
        """Cold across 2 worker processes, warm in-process: identical."""
        specs = _sweep(tiny_dataset)[:4]
        cold = run_scenarios_cached(specs, max_workers=2, store=store)
        warm = run_scenarios_cached(specs, store=store)
        assert len(warm.cached) == len(specs)
        for a, b in zip(cold.results, warm.results):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_figure_regeneration_is_cached(
        self, store, tiny_dataset, sim_counter
    ):
        kwargs = dict(
            dataset=tiny_dataset,
            location="A",
            config=EarthPlusConfig(gamma_bpp=0.2),
            policies=("earthplus", "naive"),
            store=store,
        )
        first = fig13_timeseries(**kwargs)
        n_cold = len(sim_counter)
        assert n_cold == 2
        second = fig13_timeseries(**kwargs)
        assert len(sim_counter) == n_cold, "figure re-run simulated"
        assert first == second


class TestKillAndResume:
    def test_killed_sweep_resumes_only_missing(self, tmp_path):
        """SIGKILL a real ``repro sweep`` midway; resume the identical
        sweep in-process and verify only the missing specs simulate."""
        store_root = tmp_path / "killstore"
        argv = [
            sys.executable, "-m", "repro", "sweep",
            "--locations", "A", "--bands", "B4", "--days", "20",
            "--size", "128", "--policies", "earthplus,naive",
            "--seeds", "0,1,2,3", "--store", str(store_root),
        ]
        proc = subprocess.Popen(
            argv,
            env={"PYTHONPATH": _SRC_DIR, "PATH": "/usr/bin:/bin"},
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        # The CLI sweep builds these same 8 specs (gamma defaults to 0.3).
        specs = sweep_specs(
            dataset=DatasetSpec.of(
                "sentinel2",
                locations=["A"],
                bands=["B4"],
                horizon_days=20.0,
                image_shape=(128, 128),
            ),
            policies=("earthplus", "naive"),
            seeds=(0, 1, 2, 3),
            gammas=(0.3,),
            base_config=EarthPlusConfig(codec_backend="model"),
        )
        try:
            deadline = time.time() + 120.0
            store = None
            while time.time() < deadline and proc.poll() is None:
                if store is None and (store_root / "index.sqlite").exists():
                    store = ExperimentStore(store_root)
                if store is not None and store.stats()["entries"] >= 2:
                    break
                time.sleep(0.05)
            proc.send_signal(signal.SIGKILL)
        finally:
            proc.wait()
        if store is None:
            pytest.fail("sweep subprocess never created the store")
        persisted = store.stats()["entries"]
        if persisted >= len(specs):
            pytest.skip("sweep finished before the kill landed")
        assert persisted >= 1, "no partial progress survived the kill"

        real = scenarios.run_scenario
        resumed_labels = []

        def counting(spec):
            resumed_labels.append(spec.resolved_label())
            return real(spec)

        scenarios.run_scenario = counting
        try:
            resumed = run_scenarios_cached(specs, store=store)
        finally:
            scenarios.run_scenario = real
        assert len(resumed_labels) == len(specs) - persisted, (
            "resume did not execute exactly the missing specs"
        )
        assert len(resumed.cached) == persisted
        # The resumed sweep equals a from-scratch (store-free) run.
        reference = run_scenarios_cached(specs, store=None)
        for a, b in zip(resumed.results, reference.results):
            assert pickle.dumps(a) == pickle.dumps(b)
        store.close()


class TestConstrainedDownlinkRoundTrip:
    def test_shed_run_warm_read_is_pickle_identical(self, store):
        """Downlink stats and per-record shedding columns survive the
        store round trip byte-identically."""
        from repro.analysis.scenarios import ScenarioSpec, run_scenario

        spec = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "sentinel2",
                locations=["A"],
                bands=["B4"],
                horizon_days=40.0,
                image_shape=(128, 128),
            ),
            config=EarthPlusConfig(gamma_bpp=0.3, n_quality_layers=3),
            downlink_bytes_per_contact=25,
            downlink_severity=0.3,
        )
        cold = run_scenario(spec)
        assert cold.downlink_stats["layers_shed"] > 0 or (
            cold.downlink_stats["captures_deferred"]
            + cold.downlink_stats["captures_dropped"]
        ) > 0
        store.put(spec, cold)
        warm = store.get(spec)
        assert warm is not None
        assert pickle.dumps(warm) == pickle.dumps(cold)
