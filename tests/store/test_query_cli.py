"""CLI-level store tests: sweep --store/--resume round trips, repro query."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SWEEP_ARGS = [
    "sweep", "--locations", "A", "--bands", "B4", "--days", "20",
    "--size", "128", "--policies", "earthplus,naive", "--seeds", "0,1",
]


@pytest.fixture()
def warm_store(tmp_path, capsys):
    """A store warmed by one CLI sweep (4 scenarios)."""
    root = tmp_path / "store"
    assert main(SWEEP_ARGS + ["--store", str(root)]) == 0
    out = capsys.readouterr().out
    assert "store: 0 reused, 4 simulated" in out
    return root


class TestSweepStoreFlags:
    def test_second_sweep_is_all_cache_hits(self, warm_store, capsys):
        assert main(SWEEP_ARGS + ["--store", str(warm_store)]) == 0
        assert "store: 4 reused, 0 simulated" in capsys.readouterr().out

    def test_resume_flag(self, warm_store, capsys):
        assert (
            main(SWEEP_ARGS + ["--store", str(warm_store), "--resume"]) == 0
        )
        assert "store: 4 reused, 0 simulated" in capsys.readouterr().out

    def test_refresh_resimulates(self, warm_store, capsys):
        assert (
            main(SWEEP_ARGS + ["--store", str(warm_store), "--refresh"]) == 0
        )
        assert "store: 0 reused, 4 simulated" in capsys.readouterr().out

    def test_no_store_prints_no_summary(self, capsys):
        assert main(SWEEP_ARGS + ["--no-store"]) == 0
        assert "store:" not in capsys.readouterr().out

    def test_resume_without_store_rejected(self):
        with pytest.raises(SystemExit):
            main(SWEEP_ARGS + ["--no-store", "--resume"])

    def test_store_and_no_store_conflict(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                SWEEP_ARGS
                + ["--store", str(tmp_path / "x"), "--no-store"]
            )

    def test_sweep_output_identical_cold_vs_warm(
        self, tmp_path, capsys
    ):
        args = SWEEP_ARGS + [
            "--format", "csv", "--store", str(tmp_path / "store"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        warm = capsys.readouterr().out
        assert cold == warm


class TestSimulateStore:
    def test_simulate_caches(self, tmp_path, capsys):
        args = [
            "simulate", "--locations", "A", "--bands", "B4", "--days",
            "20", "--size", "128", "--format", "json",
            "--store", str(tmp_path / "store"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert main(args) == 0
        assert capsys.readouterr().out == cold
        assert main(["query", "--store", str(tmp_path / "store")]) == 0
        assert "earthplus" in capsys.readouterr().out


class TestQuery:
    def test_lists_runs(self, warm_store, capsys):
        assert main(["query", "--store", str(warm_store)]) == 0
        out = capsys.readouterr().out
        assert "4 stored run(s)" in out
        assert "earthplus" in out and "naive" in out

    def test_filters(self, warm_store, capsys):
        assert (
            main(
                [
                    "query", "--store", str(warm_store), "--policy",
                    "naive", "--seed", "1", "--format", "json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["policy"] == "naive"
        assert rows[0]["seed"] == 1

    def test_downlink_columns_exposed(self, warm_store, capsys):
        """Query rows carry the downlink accounting summary columns."""
        assert (
            main(["query", "--store", str(warm_store), "--format", "json"])
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        for row in rows:
            assert "layers_shed" in row
            assert "updates_skipped" in row
            assert "dl_dropped" in row
            # The warm-store sweep is unconstrained: nothing shed.
            assert row["layers_shed"] == 0
            assert row["dl_dropped"] == 0

    def test_label_filter(self, warm_store, capsys):
        assert (
            main(
                [
                    "query", "--store", str(warm_store), "--label",
                    "g0.3/s0", "--format", "json",
                ]
            )
            == 0
        )
        assert len(json.loads(capsys.readouterr().out)) == 2

    def test_aggregate(self, warm_store, capsys):
        assert (
            main(
                [
                    "query", "--store", str(warm_store), "--aggregate",
                    "policy", "--format", "json",
                ]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert [r["policy"] for r in rows] == ["earthplus", "naive"]
        assert all(r["runs"] == 2 for r in rows)
        assert all(r["psnr_db"] is not None for r in rows)

    def test_aggregate_unknown_column_rejected(self, warm_store):
        with pytest.raises(SystemExit):
            main(
                [
                    "query", "--store", str(warm_store), "--aggregate",
                    "bogus",
                ]
            )

    def test_stats(self, warm_store, capsys):
        assert main(["query", "--store", str(warm_store), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out

    def test_disabled_store_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", "off")
        with pytest.raises(SystemExit):
            main(["query"])
