"""Failure injection: corrupted streams, truncated updates, hostile inputs.

A flight system's decoder meets garbage; these tests pin down that every
corruption surfaces as a typed :class:`repro.errors.ReproError` subclass
(never silent wrong output, never a random crash in numpy internals).
"""

import numpy as np
import pytest

from repro.codec.jpeg2000 import CodecConfig, EncodedImage, ImageCodec
from repro.core.reference import OnboardReferenceCache, ReferenceUpdate
from repro.errors import BitstreamError, ReproError
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="module")
def encoded_bytes():
    image = fractal_noise((128, 128), seed=71, octaves=4)
    codec = ImageCodec(CodecConfig(tile_size=64))
    return codec.encode(image).to_bytes()


class TestCorruptContainers:
    def test_truncated_header(self, encoded_bytes):
        with pytest.raises(ReproError):
            EncodedImage.from_bytes(encoded_bytes[:8])

    def test_wrong_magic(self, encoded_bytes):
        corrupted = b"NOPE" + encoded_bytes[4:]
        with pytest.raises(BitstreamError):
            EncodedImage.from_bytes(corrupted)

    def test_truncated_payload(self, encoded_bytes):
        with pytest.raises(ReproError):
            EncodedImage.from_bytes(encoded_bytes[: len(encoded_bytes) // 2])

    def test_every_prefix_fails_or_parses(self, encoded_bytes):
        """No prefix length may crash outside the ReproError hierarchy."""
        for cut in range(0, len(encoded_bytes), max(1, len(encoded_bytes) // 40)):
            try:
                EncodedImage.from_bytes(encoded_bytes[:cut])
            except ReproError:
                pass

    def test_bitflip_decodes_or_fails_cleanly(self, encoded_bytes):
        """Arithmetic-coded payload bit flips may change pixels but must
        never escape as non-Repro exceptions, and the container metadata
        keeps decode shapes intact."""
        codec = ImageCodec(CodecConfig(tile_size=64))
        rng = np.random.default_rng(5)
        for _ in range(6):
            corrupted = bytearray(encoded_bytes)
            pos = int(rng.integers(len(corrupted) // 2, len(corrupted)))
            corrupted[pos] ^= 0x40
            try:
                parsed = EncodedImage.from_bytes(bytes(corrupted))
                recon = codec.decode(parsed)
                assert recon.shape == (128, 128)
                assert np.all(np.isfinite(recon))
            except ReproError:
                pass


class TestCorruptReferenceUpdates:
    def make_update(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        update = cache.build_update("L", "B", 1.0, rng.random((16, 16)))
        return update

    def test_truncated_update(self, rng):
        data = self.make_update(rng).to_bytes()
        for cut in (0, 1, 3, len(data) // 2):
            with pytest.raises(ReproError):
                parsed = ReferenceUpdate.from_bytes(data[:cut])
                # A parse that "succeeds" on truncated data must at least
                # fail on application (shape mismatch).
                OnboardReferenceCache(lr_tile=4).apply_update(parsed)

    def test_delta_against_wrong_shape_cache(self, rng):
        cache_a = OnboardReferenceCache(lr_tile=4)
        cache_a.apply_update(
            cache_a.build_update("L", "B", 1.0, rng.random((16, 16)))
        )
        changed = rng.random((16, 16))
        delta = cache_a.build_update("L", "B", 2.0, changed, tolerance=0)
        cache_b = OnboardReferenceCache(lr_tile=4)
        cache_b.apply_update(
            cache_b.build_update("L", "B", 1.0, rng.random((8, 8)))
        )
        from repro.errors import ReferenceError_

        with pytest.raises(ReferenceError_):
            cache_b.apply_update(delta)


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        import repro.errors as errors_module

        for name in dir(errors_module):
            obj = getattr(errors_module, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                assert issubclass(obj, ReproError) or obj is ReproError

    def test_subsystem_branches(self):
        from repro.errors import (
            BandError,
            BitstreamError,
            CodecError,
            ImageryError,
            LinkBudgetError,
            OrbitError,
            RateControlError,
            ScheduleError,
        )

        assert issubclass(BitstreamError, CodecError)
        assert issubclass(RateControlError, CodecError)
        assert issubclass(LinkBudgetError, OrbitError)
        assert issubclass(ScheduleError, OrbitError)
        assert issubclass(BandError, ImageryError)
