"""Headline-shape tests: the paper's qualitative claims must hold.

These tests assert *shapes* (who wins, which direction), not absolute
numbers — the substrate is synthetic.  Exact measured values live in
EXPERIMENTS.md and the benchmarks.
"""

import numpy as np
import pytest

from repro.analysis import figures as F
from repro.analysis.experiments import run_policy
from repro.core.config import EarthPlusConfig
from repro.datasets.planet import planet_dataset


@pytest.fixture(scope="module")
def planet16():
    return planet_dataset(
        n_satellites=16, image_shape=(128, 128), horizon_days=60.0
    )


class TestHeadline:
    """§1/§6: Earth+ reduces downlink vs both baselines."""

    @pytest.fixture(scope="class")
    def results(self, planet16):
        config = EarthPlusConfig(gamma_bpp=0.3)
        return {
            name: run_policy(planet16, name, config)
            for name in ("earthplus", "kodan", "satroi")
        }

    def test_earthplus_fewest_bytes(self, results):
        earth = results["earthplus"].downlink_bytes
        assert earth < results["kodan"].downlink_bytes
        assert earth < results["satroi"].downlink_bytes

    def test_substantial_saving_vs_kodan(self, results):
        """Paper: 2.8-3.3x on the large constellation; require >= 2x."""
        ratio = (
            results["kodan"].downlink_bytes
            / results["earthplus"].downlink_bytes
        )
        assert ratio > 2.0

    def test_earthplus_downloads_fraction_low(self, results):
        """Fig 12: Earth+ downloads a small minority of tiles."""
        assert results["earthplus"].mean_downloaded_fraction() < 0.45
        assert results["kodan"].mean_downloaded_fraction() > 0.8

    def test_quality_not_sacrificed(self, results):
        """Earth+ PSNR within a few dB of the freshly-coded baselines at
        the same gamma (the RD sweep shows equal-PSNR savings)."""
        earth = results["earthplus"].mean_psnr()
        kodan = results["kodan"].mean_psnr()
        assert earth > kodan - 4.0

    def test_uplink_within_table1_budget(self, results):
        """§6: no more uplink than currently available (scaled)."""
        result = results["earthplus"]
        # Scale Table 1's per-contact uplink capacity to our image size.
        from repro.core.config import DovesSpec

        spec = DovesSpec()
        scale = (128 * 128) / spec.image_pixels
        capacity = (
            spec.uplink_bytes_per_contact
            * scale
            * result.horizon_days
            * result.contacts_per_day
        )
        assert result.uplink_bytes < capacity * 100  # orders of margin


class TestFig4Claim:
    def test_change_triples_from_10_to_50_days(self):
        result = F.fig04_change_vs_age(
            ages_days=[10, 50], tiles_shape=(24, 24), n_anchors=5
        )
        at10, at50 = result["measured"]
        assert 2.0 <= at50 / at10 <= 4.0


class TestFig5Claim:
    def test_order_of_magnitude_freshness_gain(self):
        """Paper: 51 d -> 4.2 d (12x).  Require local mean tens of days
        and a large ratio."""
        result = F.fig05_reference_age_cdf(
            n_satellites=48, horizon_days=600.0, clear_probability=0.1
        )
        assert result["local_mean"] > 25.0
        assert result["local_mean"] / result["wide_mean"] > 6.0


class TestFig19Claim:
    def test_compression_grows_with_constellation(self):
        result = F.fig19_constellation_size(
            sizes=[1, 4, 16],
            image_shape=(128, 128),
            horizon_days=60.0,
            config=EarthPlusConfig(gamma_bpp=0.3),
        )
        ratios = {
            r["satellites"]: r["compression_ratio"] for r in result["rows"]
        }
        finite = {
            k: v for k, v in ratios.items() if k > 0 and np.isfinite(v)
        }
        assert len(finite) >= 2
        sizes = sorted(finite)
        assert finite[sizes[-1]] > finite[sizes[0]]


class TestSnowClaim:
    def test_snowy_location_weakest(self):
        """Fig 14: snowy locations defeat reference-based encoding, so
        Earth+ downloads a larger fraction there."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        from repro.datasets.sentinel2 import sentinel2_dataset

        # Winter window (days 330-450 wrap the snow season).
        normal = sentinel2_dataset(
            locations=["A"], bands=["B4", "B11"], horizon_days=120.0,
            image_shape=(128, 128),
        )
        snowy = sentinel2_dataset(
            locations=["H"], bands=["B4", "B11"], horizon_days=120.0,
            image_shape=(128, 128),
        )
        r_normal = run_policy(normal, "earthplus", config)
        r_snowy = run_policy(snowy, "earthplus", config)
        assert (
            r_snowy.mean_downloaded_fraction()
            >= r_normal.mean_downloaded_fraction() - 0.05
        )


class TestBandClaim:
    def test_air_band_changes_less_than_vegetation(self):
        """§5: air bands (B9) churn less than vegetation bands (B8)."""
        from repro.datasets.sentinel2 import sentinel2_dataset

        dataset = sentinel2_dataset(
            locations=["B"], bands=["B8", "B9"], horizon_days=60.0,
            image_shape=(128, 128),
        )
        earth = dataset.earth_models["B"]
        veg = earth.change_model("B8").changed_fraction(0.0, 60.0)
        air = earth.change_model("B9").changed_fraction(0.0, 60.0)
        assert air <= veg
