"""Differential harness: the simulation fast path vs the reference path.

The fast path (vectorized DWT, batched tile pipeline, warm-state caches —
see :mod:`repro.perf`) must be a pure performance change: every metric a
simulation produces has to be byte-identical with the fast path on and
off.  These tests run the same scenarios both ways and compare
:class:`~repro.core.accounting.RunResult` content exactly (no tolerances;
NaN PSNR for dropped captures compares as equal-NaN).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import perf
from repro.analysis.scenarios import ScenarioSpec, run_scenario
from repro.codec.ratemodel import RateModel
from repro.codec.jpeg2000 import CodecConfig
from repro.core.config import EarthPlusConfig
from repro.core.encoder import EarthPlusEncoder
from repro.core.reference import (
    OnboardReferenceCache,
    downsample_image,
    downsample_many,
    quantize_reference,
)
from repro.core.tiles import TileGrid


def _run_snapshot(result):
    """Everything a RunResult reports, as comparable plain data."""
    return {
        "policy": result.policy,
        "downlink_bytes": result.downlink_bytes,
        "uplink_bytes": result.uplink_bytes,
        "updates_skipped": result.updates_skipped,
        "reference_storage_bytes": result.reference_storage_bytes,
        "captured_storage_bytes": result.captured_storage_bytes,
        "uplink_stats": dict(result.uplink_stats),
        "records": [
            (
                r.location,
                r.satellite_id,
                r.t_days,
                r.dropped,
                r.guaranteed,
                r.psnr,
                r.downloaded_fraction,
                r.bytes_downlinked,
            )
            for r in result.records
        ],
    }


def _identical(a, b) -> bool:
    """Exact equality with NaN == NaN (dropped captures score NaN PSNR)."""
    if isinstance(a, float) and isinstance(b, float):
        return (math.isnan(a) and math.isnan(b)) or a == b
    if isinstance(a, (list, tuple)):
        return type(a) is type(b) and len(a) == len(b) and all(
            _identical(x, y) for x, y in zip(a, b)
        )
    if isinstance(a, dict):
        return a.keys() == b.keys() and all(
            _identical(a[k], b[k]) for k in a
        )
    return a == b


@pytest.mark.parametrize("policy", ["earthplus", "kodan"])
def test_scenario_byte_identical(tiny_sentinel_dataset, policy):
    """A full scenario run produces byte-identical RunResult either way."""
    spec = ScenarioSpec(
        policy=policy,
        dataset=tiny_sentinel_dataset,
        config=EarthPlusConfig(gamma_bpp=0.3),
    )
    with perf.fastpath_disabled():
        reference = _run_snapshot(run_scenario(spec))
    with perf.fastpath_enabled():
        fast = _run_snapshot(run_scenario(spec))
    assert _identical(reference, fast)


def test_repeated_fast_runs_identical(tiny_sentinel_dataset):
    """Warm caches (second run onwards) must not change any metric."""
    spec = ScenarioSpec(
        policy="earthplus",
        dataset=tiny_sentinel_dataset,
        config=EarthPlusConfig(gamma_bpp=0.3),
    )
    with perf.fastpath_enabled():
        first = _run_snapshot(run_scenario(spec))
        second = _run_snapshot(run_scenario(spec))
    assert _identical(first, second)


class TestRateModelDifferential:
    def test_encode_and_search_identical(self, rng):
        model = RateModel(CodecConfig(tile_size=64))
        image = rng.random((192, 192))
        roi = rng.random((3, 3)) > 0.3
        with perf.fastpath_disabled():
            ref = model.encode(image, 1 / 256.0, roi)
            ref_search = model.find_step_for_bytes(
                image, 4000, roi, tolerance=0.08, max_iterations=14
            )
        with perf.fastpath_enabled():
            fast = model.encode(image, 1 / 256.0, roi)
            fast_search = model.find_step_for_bytes(
                image, 4000, roi, tolerance=0.08, max_iterations=14
            )
        assert ref.coded_bytes == fast.coded_bytes
        assert ref.payload_bytes == fast.payload_bytes
        assert ref.psnr_roi == fast.psnr_roi
        assert np.array_equal(ref.reconstruction, fast.reconstruction)
        assert ref_search.base_step == fast_search.base_step
        assert ref_search.coded_bytes == fast_search.coded_bytes
        assert np.array_equal(
            ref_search.reconstruction, fast_search.reconstruction
        )

    def test_edge_tiles_identical(self, rng):
        """Non-divisible image shapes exercise the mixed-shape batching."""
        model = RateModel(CodecConfig(tile_size=64))
        image = rng.random((200, 150))
        roi = np.ones((4, 3), dtype=bool)
        with perf.fastpath_disabled():
            ref = model.find_step_for_bytes(image, 6000, roi)
        with perf.fastpath_enabled():
            fast = model.find_step_for_bytes(image, 6000, roi)
        assert ref.coded_bytes == fast.coded_bytes
        assert ref.base_step == fast.base_step
        assert np.array_equal(ref.reconstruction, fast.reconstruction)


class TestEncoderBatchedBands:
    def _encoder(self, config, two_bands, onboard_detector, cache):
        return EarthPlusEncoder(
            config=config,
            bands=two_bands,
            image_shape=(128, 128),
            cloud_detector=onboard_detector,
            cache=cache,
        )

    def _band_snapshot(self, band_result):
        return (
            band_result.band,
            band_result.downloaded_tiles.tolist(),
            band_result.cloudy_tiles.tolist(),
            band_result.changed_fraction,
            band_result.bytes_downlinked,
            band_result.psnr_downloaded,
            band_result.reconstruction.tobytes(),
            band_result.gain,
            band_result.offset,
            band_result.had_reference,
        )

    def test_batched_matches_per_band(
        self, tiny_sentinel_dataset, two_bands, onboard_detector
    ):
        """process_capture is bit-identical with and without batching,
        with and without cached references (incl. partial validity)."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        sensor = tiny_sentinel_dataset.sensors["A"]
        with perf.fastpath_disabled():
            capture = sensor._render_capture(0, 30.0)
        ratio = config.reference_downsample
        lr_shape = (128 // ratio, 128 // ratio)

        def fresh_cache(with_reference: bool, partial: bool):
            cache = OnboardReferenceCache(
                lr_tile=max(1, config.tile_size // ratio)
            )
            if with_reference:
                for band in two_bands:
                    reference_lr = downsample_image(
                        capture.pixels[band.name], ratio
                    )
                    validity = np.ones(lr_shape, dtype=bool)
                    if partial:
                        validity[:, : lr_shape[1] // 3] = False
                    from repro.core.reference import ReferenceUpdate

                    cache.apply_update(
                        ReferenceUpdate(
                            location=capture.location,
                            band=band.name,
                            t_days=1.0,
                            full=True,
                            lr_shape=lr_shape,
                            tile_indices=[],
                            payload=quantize_reference(reference_lr).ravel(),
                            lr_tile=cache.lr_tile,
                            validity=validity,
                        )
                    )
            return cache

        for with_ref, partial, guaranteed in [
            (False, False, False),
            (True, False, False),
            (True, True, False),
            (True, False, True),
        ]:
            with perf.fastpath_disabled():
                ref_enc = self._encoder(
                    config, two_bands, onboard_detector,
                    fresh_cache(with_ref, partial),
                )
                ref_out = ref_enc.process_capture(capture, guaranteed)
            with perf.fastpath_enabled():
                fast_enc = self._encoder(
                    config, two_bands, onboard_detector,
                    fresh_cache(with_ref, partial),
                )
                fast_out = fast_enc.process_capture(capture, guaranteed)
            assert ref_out.dropped == fast_out.dropped
            assert ref_out.guaranteed == fast_out.guaranteed
            assert (
                ref_out.cloud_coverage_detected
                == fast_out.cloud_coverage_detected
            )
            for a, b in zip(ref_out.bands, fast_out.bands):
                assert self._band_snapshot(a) == self._band_snapshot(b), (
                    f"band mismatch (ref={with_ref}, partial={partial}, "
                    f"guaranteed={guaranteed})"
                )


class TestBatchedHelpers:
    def test_downsample_many_matches_single(self, rng):
        stack = rng.random((3, 130, 97))
        batched = downsample_many(stack, 8)
        for idx in range(3):
            assert np.array_equal(
                batched[idx], downsample_image(stack[idx], 8)
            )

    def test_reduce_mean_many_matches_single(self, rng):
        for shape in [(128, 128), (130, 100)]:
            grid = TileGrid(shape, 64)
            stack = rng.random((4,) + shape)
            batched = grid.reduce_mean_many(stack)
            for idx in range(4):
                assert np.array_equal(
                    batched[idx], grid.reduce_mean(stack[idx])
                )

    def test_detect_changes_many_matches_single(self, rng):
        from repro.core.change_detection import (
            detect_changes,
            detect_changes_many,
        )

        grid = TileGrid((128, 128), 64)
        refs = rng.random((3, 16, 16))
        caps = refs + rng.normal(0, 0.05, (3, 16, 16))
        valid = rng.random((3, 16, 16)) > 0.2
        batched = detect_changes_many(refs, caps, grid, 8, 0.01, valid)
        for idx in range(3):
            single = detect_changes(
                refs[idx], caps[idx], grid, 8, 0.01, valid_lr=valid[idx]
            )
            assert single.gain == batched[idx].gain
            assert single.offset == batched[idx].offset
            assert np.array_equal(
                single.tile_scores, batched[idx].tile_scores
            )
            assert np.array_equal(
                single.changed_tiles, batched[idx].changed_tiles
            )


def test_schedule_order_memoized(tiny_sentinel_dataset):
    """all_visits_sorted computes once and reuses the same list."""
    schedule = tiny_sentinel_dataset.schedule
    schedule.invalidate_order()
    first = schedule.all_visits_sorted()
    assert schedule.all_visits_sorted() is first
    assert first == sorted(first, key=lambda v: v.t_days)
    schedule.invalidate_order()
    recomputed = schedule.all_visits_sorted()
    assert recomputed is not first and recomputed == first


def test_profiler_sections(tiny_sentinel_dataset):
    """A profiled run records phase and kernel sections."""
    spec = ScenarioSpec(
        policy="earthplus",
        dataset=tiny_sentinel_dataset,
        config=EarthPlusConfig(gamma_bpp=0.3),
    )
    profiler = perf.enable_profiler()
    try:
        run_scenario(spec)
    finally:
        perf.disable_profiler()
    sections = {row["section"] for row in profiler.rows()}
    assert {"uplink", "capture", "ingest"} <= sections
    assert "codec" in sections and "dwt" in sections
    assert all(row["seconds"] >= 0 for row in profiler.rows())
    assert perf.active_profiler() is None
