"""End-to-end downlink-budget acceptance tests.

Two contracts:

1. **Differential**: at the Table-1 default capacity (200 Mbps x 600 s)
   with severity 0, every result is byte-identical (pickle-level) to a
   run with the downlink phase disabled — the constraint exists but
   never binds at laptop scale, so pre-existing figure outputs cannot
   move.
2. **Enforcement**: under a constrained downlink every record's
   delivered bytes stay within its offered contact capacity, layers are
   shed before captures drop, and the run-level stats reconcile.
"""

import pickle

import pytest

from repro.analysis.scenarios import (
    DatasetSpec,
    ScenarioSpec,
    run_scenario,
    run_scenarios,
)
from repro.core.config import EarthPlusConfig

DATASET = DatasetSpec.of(
    "sentinel2",
    locations=["A"],
    bands=["B4"],
    horizon_days=60.0,
    image_shape=(128, 128),
)

LAYERED = EarthPlusConfig(gamma_bpp=0.3, n_quality_layers=3)


def run(spec_kwargs):
    return run_scenario(
        ScenarioSpec(policy="earthplus", dataset=DATASET, **spec_kwargs)
    )


class TestDifferential:
    def test_table1_default_matches_unconstrained_run_exactly(self):
        """The acceptance criterion: at Table-1 capacity with severity 0
        every pre-existing field of every record and result is exactly
        equal to a run without the downlink phase (the pre-downlink
        simulator).  The only permitted difference is the new downlink
        accounting itself (downlink_stats, per-record capacity columns),
        which is zero/empty respectively — so no figure output can move.
        """
        import dataclasses

        import numpy as np

        import repro.analysis.scenarios as scenarios_mod
        from repro.core.accounting import CaptureRecord

        constrained = run({"config": LAYERED})
        # Disable the phase entirely by patching the resolved default to
        # None (the simulator then never builds a DownlinkPhase) — this
        # is exactly the pre-downlink simulator.
        spec = ScenarioSpec(policy="earthplus", dataset=DATASET, config=LAYERED)
        original = scenarios_mod.DEFAULT_DOWNLINK_BYTES_PER_CONTACT
        try:
            scenarios_mod.DEFAULT_DOWNLINK_BYTES_PER_CONTACT = None  # type: ignore
            unconstrained = run_scenario(spec)
        finally:
            scenarios_mod.DEFAULT_DOWNLINK_BYTES_PER_CONTACT = original
        new_record_fields = {
            "downlink_capacity_bytes", "layers_shed", "downlink_deferred",
        }
        assert len(constrained.records) == len(unconstrained.records)
        for rec_c, rec_u in zip(constrained.records, unconstrained.records):
            for f in dataclasses.fields(CaptureRecord):
                value_c = getattr(rec_c, f.name)
                value_u = getattr(rec_u, f.name)
                if f.name in new_record_fields:
                    continue
                assert value_c == value_u or (
                    isinstance(value_c, float)
                    and np.isnan(value_c)
                    and np.isnan(value_u)
                ), f"record field {f.name} moved under the default budget"
            assert rec_c.layers_shed == 0
            assert not rec_c.downlink_deferred
        for name in (
            "policy", "downlink_bytes", "uplink_bytes", "updates_skipped",
            "horizon_days", "contacts_per_day", "contact_duration_s",
            "reference_storage_bytes", "captured_storage_bytes",
            "uplink_stats", "extra_metrics",
        ):
            assert getattr(constrained, name) == getattr(unconstrained, name)
        assert constrained.mean_psnr() == unconstrained.mean_psnr()
        assert (
            constrained.mean_downloaded_fraction()
            == unconstrained.mean_downloaded_fraction()
        )
        assert constrained.downlink_stats["layers_shed"] == 0
        assert constrained.downlink_stats["captures_deferred"] == 0
        assert constrained.downlink_stats["captures_dropped"] == 0
        assert unconstrained.downlink_stats == {}

    def test_default_run_pickle_stable_across_processes(self):
        """Sequential in-process vs process-parallel runs of the same
        constrained+fluctuating specs are pickle-byte-identical."""
        specs = [
            ScenarioSpec(
                policy="earthplus",
                dataset=DATASET,
                config=LAYERED,
                downlink_bytes_per_contact=40,
                downlink_severity=0.5,
                seed=seed,
            )
            for seed in (0, 1)
        ]
        sequential = [run_scenario(s) for s in specs]
        parallel = run_scenarios(specs, max_workers=2)
        for seq, par in zip(sequential, parallel):
            assert pickle.dumps(seq) == pickle.dumps(par)


class TestEnforcement:
    @pytest.fixture(scope="class")
    def constrained(self):
        return run(
            {"config": LAYERED, "downlink_bytes_per_contact": 25}
        )

    def test_layers_are_shed(self, constrained):
        assert constrained.downlink_stats["layers_shed"] > 0
        assert constrained.layers_shed() == (
            constrained.downlink_stats["layers_shed"]
        )

    def test_every_record_within_capacity(self, constrained):
        for record in constrained.records:
            assert record.downlink_capacity_bytes > 0
            if not record.dropped:
                assert (
                    record.bytes_downlinked <= record.downlink_capacity_bytes
                )

    def test_run_stats_reconcile(self, constrained):
        stats = constrained.downlink_stats
        assert stats["bytes_delivered"] <= stats["bytes_offered"]
        assert stats["bytes_delivered"] <= stats["capacity_bytes"]
        assert constrained.downlink_bytes == stats["bytes_delivered"]
        dropped_at_downlink = (
            stats["captures_deferred"] + stats["captures_dropped"]
        )
        assert dropped_at_downlink + len(constrained.delivered()) <= len(
            constrained.records
        )

    def test_shedding_degrades_quality_not_delivery_first(self, constrained):
        """A moderately constrained run keeps more captures than a
        starved one, trading PSNR instead."""
        starved = run({"config": LAYERED, "downlink_bytes_per_contact": 5})
        assert len(starved.delivered()) <= len(constrained.delivered())
        assert (
            starved.downlink_stats["bytes_delivered"]
            <= constrained.downlink_stats["bytes_delivered"]
        )

    def test_downlink_severity_leaves_uplink_stream_unchanged(self):
        """Degrading only the downlink must not move a single uplink
        byte: the two links draw from independent streams."""
        base = run({"config": LAYERED, "downlink_bytes_per_contact": 200})
        shaken = run(
            {
                "config": LAYERED,
                "downlink_bytes_per_contact": 200,
                "downlink_severity": 0.9,
            }
        )
        assert shaken.uplink_bytes == base.uplink_bytes
        assert shaken.uplink_stats == base.uplink_stats
        # ... while the downlink capacities do differ.
        assert [r.downlink_capacity_bytes for r in shaken.records] != [
            r.downlink_capacity_bytes for r in base.records
        ]
