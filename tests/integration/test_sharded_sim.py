"""Differential tests: sharded execution is byte-identical to sequential.

The sharded runner's whole contract is that the shard count is engine
configuration, not semantics: for any scenario with epoch-synchronized
ground state, `run_scenario_sharded(spec, shards=N)` must produce a
`RunResult` whose pickle bytes equal the sequential run's.  These tests
exercise the two figure archetypes the paper's results hang off —
the Figure-13-style Sentinel-2 timeseries and the Figure-20-style
contact-limited, fluctuating downlink with quality layers — plus the
failure and store-interaction edges.
"""

import pickle

import pytest

from repro.analysis.scenarios import (
    DatasetSpec,
    ScenarioSpec,
    run_scenario,
    run_scenario_sharded,
    run_scenarios,
)
from repro.core.config import EarthPlusConfig
from repro.errors import ConfigError, ScenarioError
from repro.orbit.links import FluctuationModel
from repro.store.backend import ExperimentStore
from repro.store.runner import run_scenario_cached

FIG13_DATASET = DatasetSpec.of(
    "sentinel2",
    locations=["A", "B"],
    bands=["B4", "B11"],
    n_satellites=4,
    image_shape=(64, 64),
    horizon_days=24.0,
    seed=3,
)

FIG13_SPEC = ScenarioSpec(
    policy="earthplus",
    dataset=FIG13_DATASET,
    config=EarthPlusConfig(gamma_bpp=0.3, ground_sync_days=2.0),
    seed=1,
)

#: Figure-20 archetype: layered encoding against a downlink small enough
#: to shed layers and defer captures, with both links fluctuating.
FIG20_SPEC = ScenarioSpec(
    policy="earthplus",
    dataset=FIG13_DATASET,
    config=EarthPlusConfig(
        gamma_bpp=0.3, n_quality_layers=3, ground_sync_days=2.0
    ),
    downlink_bytes_per_contact=10,
    fluctuation=FluctuationModel(seed=5, severity=0.4),
    downlink_severity=0.6,
    seed=1,
)


class TestShardedEqualsSequential:
    @pytest.mark.parametrize(
        "spec", [FIG13_SPEC, FIG20_SPEC], ids=["fig13", "fig20"]
    )
    def test_byte_identical_across_shard_counts(self, spec):
        sequential = pickle.dumps(run_scenario(spec))
        for shards in (2, 4):
            sharded = run_scenario_sharded(spec, shards=shards)
            assert pickle.dumps(sharded) == sequential, (
                f"shards={shards} diverged from sequential"
            )

    def test_downlink_pressure_is_actually_engaged(self):
        # Guard the fig20 archetype against rotting into an
        # unconstrained run where the downlink phase is a no-op.
        result = run_scenario(FIG20_SPEC)
        stats = result.downlink_stats
        assert (
            stats["layers_shed"]
            + stats["captures_deferred"]
            + stats["captures_dropped"]
        ) > 0, stats

    def test_more_shards_than_satellites(self):
        # 8 shards over 4 satellites: empty buckets drop, the rest run.
        sequential = pickle.dumps(run_scenario(FIG13_SPEC))
        sharded = run_scenario_sharded(FIG13_SPEC, shards=8)
        assert pickle.dumps(sharded) == sequential

    def test_batch_routing_matches(self):
        specs = [FIG13_SPEC, FIG20_SPEC]
        sequential = run_scenarios(specs)
        sharded = run_scenarios(specs, shards=2)
        for a, b in zip(sequential, sharded):
            assert pickle.dumps(a) == pickle.dumps(b)


class TestShardingGuards:
    def test_requires_sync_cadence(self):
        spec = ScenarioSpec(
            policy="earthplus",
            dataset=FIG13_DATASET,
            config=EarthPlusConfig(gamma_bpp=0.3),
            seed=1,
        )
        with pytest.raises(ConfigError, match="ground_sync_days"):
            run_scenario_sharded(spec, shards=2)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ConfigError, match="shards"):
            run_scenario_sharded(FIG13_SPEC, shards=0)

    def test_single_shard_is_sequential(self):
        assert pickle.dumps(
            run_scenario_sharded(FIG13_SPEC, shards=1)
        ) == pickle.dumps(run_scenario(FIG13_SPEC))

    def test_joint_axes_compose(self):
        # The axes used to be mutually exclusive; the sweep scheduler
        # runs both over one pool, byte-identically to sequential.
        sequential = run_scenarios([FIG13_SPEC, FIG20_SPEC])
        joint = run_scenarios(
            [FIG13_SPEC, FIG20_SPEC], max_workers=2, shards=2
        )
        for a, b in zip(sequential, joint):
            assert pickle.dumps(a) == pickle.dumps(b)

    def test_worker_failure_names_the_shard(self):
        broken = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "sentinel2",
                locations=["A"],
                bands=["B4"],
                n_satellites=2,
                image_shape=(64, 64),
                horizon_days=10.0,
                seed=3,
            ),
            config=EarthPlusConfig(gamma_bpp=0.3, ground_sync_days=2.0),
            uplink_bytes_per_contact=-1,  # rejected inside the worker
            seed=1,
            label="broken-uplink",
        )
        # Which shard's failure lands first is racy under the shared
        # result queue; attribution must name the label and *a* shard.
        with pytest.raises(
            ScenarioError, match=r"'broken-uplink'.*shard \d+ of 2"
        ):
            run_scenario_sharded(broken, shards=2)


class TestShardStoreInteraction:
    def test_shard_count_never_enters_the_key(self, tmp_path):
        # A sharded run persists bytes a sequential run hits verbatim —
        # and the reverse — because the content key is a pure function
        # of the spec.
        store = ExperimentStore(tmp_path)
        sharded = run_scenario_cached(FIG13_SPEC, store=store, shards=4)
        assert store.stats()["entries"] == 1
        sequential_hit = run_scenario_cached(FIG13_SPEC, store=store)
        assert store.stats()["entries"] == 1
        assert pickle.dumps(sharded) == pickle.dumps(sequential_hit)
