"""Integration tests: whole-system flows across module boundaries."""

import numpy as np
import pytest

from repro.analysis.experiments import run_policy
from repro.core.config import EarthPlusConfig
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.ground_segment import GroundSegment
from repro.core.system import ConstellationSimulator, EarthPlusPolicy
from repro.orbit.links import FluctuationModel


class TestFullLoop:
    """Drive the satellite->ground->uplink loop by hand and check state."""

    def test_reference_freshness_improves_over_run(self, tiny_planet_dataset):
        """After warm-up, cached references should be only days old."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        detector = train_onboard_detector(tiny_planet_dataset.bands, 64)
        ground = GroundSegment(
            config, tiny_planet_dataset.bands,
            tiny_planet_dataset.image_shape,
            train_ground_detector(tiny_planet_dataset.bands),
        )
        policies = {}
        ages = []
        location = tiny_planet_dataset.locations[0]
        sensor = tiny_planet_dataset.sensors[location]
        for visit in tiny_planet_dataset.schedule.all_visits_sorted():
            policy = policies.setdefault(
                visit.satellite_id,
                EarthPlusPolicy(
                    config, tiny_planet_dataset.bands,
                    tiny_planet_dataset.image_shape, detector,
                ),
            )
            ground.plan_uploads(
                policy.cache, [location], visit.t_days, 10**9
            )
            if visit.t_days > 20 and policy.cache.has(location, "Red"):
                ages.append(
                    policy.cache.age_days(location, "Red", visit.t_days)
                )
            capture = sensor.capture(visit.satellite_id, visit.t_days)
            result = policy.process(capture, guaranteed_due=False)
            ground.ingest(result, capture)
        assert ages, "no reference ages collected"
        assert float(np.median(ages)) < 10.0

    def test_simulator_with_fluctuation_still_works(self, tiny_sentinel_dataset):
        config = EarthPlusConfig(gamma_bpp=0.3)
        result = run_policy(
            tiny_sentinel_dataset,
            "earthplus",
            config,
            fluctuation=FluctuationModel(seed=2, severity=0.8),
        )
        assert result.downlink_bytes > 0
        assert 20.0 < result.mean_psnr() < 60.0

    def test_starved_uplink_increases_downlink(self, tiny_sentinel_dataset):
        """§5: skipped reference updates cost (only) some extra downlink."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        rich = run_policy(tiny_sentinel_dataset, "earthplus", config)
        starved = run_policy(
            tiny_sentinel_dataset, "earthplus", config,
            uplink_bytes_per_contact=15,
        )
        assert starved.updates_skipped > rich.updates_skipped
        assert starved.downlink_bytes >= rich.downlink_bytes

    def test_all_policies_complete_on_planet(self, tiny_planet_dataset):
        config = EarthPlusConfig(gamma_bpp=0.3)
        for policy in ("earthplus", "kodan", "satroi", "naive"):
            result = run_policy(tiny_planet_dataset, policy, config)
            assert len(result.records) == len(
                tiny_planet_dataset.schedule.all_visits_sorted()
            )


class TestGuaranteedDownloadBound:
    def test_full_downloads_recur(self, tiny_sentinel_dataset):
        """Guaranteed downloads must appear roughly once per period per
        location (when clear skies allow)."""
        config = EarthPlusConfig(gamma_bpp=0.3, guaranteed_download_days=20.0)
        result = run_policy(tiny_sentinel_dataset, "earthplus", config)
        guaranteed_times = [
            r.t_days for r in result.records if r.guaranteed
        ]
        assert len(guaranteed_times) >= 2
        # Two consecutive guarantees for one location are >= period apart.
        for a, b in zip(guaranteed_times, guaranteed_times[1:]):
            assert b - a >= 0  # time ordered; spacing checked loosely

    def test_longer_period_fewer_full_downloads(self, tiny_sentinel_dataset):
        short = run_policy(
            tiny_sentinel_dataset, "earthplus",
            EarthPlusConfig(gamma_bpp=0.3, guaranteed_download_days=15.0),
        )
        long = run_policy(
            tiny_sentinel_dataset, "earthplus",
            EarthPlusConfig(gamma_bpp=0.3, guaranteed_download_days=80.0),
        )
        n_short = sum(r.guaranteed for r in short.records)
        n_long = sum(r.guaranteed for r in long.records)
        assert n_long <= n_short
