"""Differential tests for the unified sweep scheduler.

The scheduler's contract extends the sharded runner's: scheduling
topology (pool size, shards per scenario, which worker runs what, in
what order) is engine configuration, never semantics.  A joint
``workers=N, shards=M`` sweep over one persistent pool must be
pickle-byte-identical to running every spec sequentially — and to the
per-scenario sharded runner — on both figure archetypes.  Failure
attribution must survive the move from per-scenario pipes to the shared
pool: a crashing task still names its scenario label (and shard index),
and a *dying worker process* is detected and attributed rather than
hanging the sweep.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import time

import pytest

from repro.analysis import scenarios
from repro.analysis.scenarios import (
    DatasetSpec,
    ScenarioSpec,
    run_scenario,
    run_scenario_sharded,
    run_scenarios,
)
from repro.analysis.scheduler import SchedulerStats, SweepScheduler
from repro.core.config import EarthPlusConfig
from repro.errors import ConfigError, ScenarioError
from repro.orbit.links import FluctuationModel

from test_sharded_sim import FIG13_DATASET, FIG13_SPEC, FIG20_SPEC

fork_only = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-death injection relies on fork inheriting monkeypatches",
)

#: A small mixed sweep: both figure archetypes plus policy/seed variants
#: over the same dataset — enough shape for gangs and singles to
#: interleave on one pool.
SWEEP_SPECS = [
    FIG13_SPEC,
    FIG20_SPEC,
    ScenarioSpec(
        policy="naive",
        dataset=FIG13_DATASET,
        config=EarthPlusConfig(gamma_bpp=0.3, ground_sync_days=2.0),
        seed=1,
    ),
    ScenarioSpec(
        policy="earthplus",
        dataset=FIG13_DATASET,
        config=EarthPlusConfig(gamma_bpp=0.3, ground_sync_days=2.0),
        seed=2,
    ),
]


def _broken_spec(label="broken-uplink", sync_days=2.0) -> ScenarioSpec:
    return ScenarioSpec(
        policy="earthplus",
        dataset=FIG13_DATASET,
        config=EarthPlusConfig(gamma_bpp=0.3, ground_sync_days=sync_days),
        uplink_bytes_per_contact=-1,  # rejected inside the worker
        seed=1,
        label=label,
    )


class TestJointModeByteIdentity:
    def test_joint_equals_sequential_and_sharded(self):
        sequential = [
            pickle.dumps(run_scenario(spec)) for spec in SWEEP_SPECS
        ]
        joint = run_scenarios(SWEEP_SPECS, max_workers=3, shards=2)
        for index, result in enumerate(joint):
            assert pickle.dumps(result) == sequential[index], (
                f"joint mode diverged from sequential on spec {index}"
            )
        # PR 6 per-scenario sharded mode remains a third identical route.
        for index, spec in enumerate(SWEEP_SPECS):
            sharded = run_scenario_sharded(spec, shards=2)
            assert pickle.dumps(sharded) == sequential[index], (
                f"sharded mode diverged from sequential on spec {index}"
            )

    def test_constrained_fluctuating_downlink_archetype(self):
        # The fig20 archetype (layer shedding + fluctuating links) is the
        # scenario most sensitive to merge-order drift; pin it alone.
        sequential = pickle.dumps(run_scenario(FIG20_SPEC))
        joint = run_scenarios([FIG20_SPEC], max_workers=2, shards=2)
        assert pickle.dumps(joint[0]) == sequential

    def test_pool_larger_than_work(self):
        # More workers than tasks: extra workers idle, bytes unchanged.
        sequential = pickle.dumps(run_scenario(FIG13_SPEC))
        joint = run_scenarios([FIG13_SPEC], max_workers=6, shards=3)
        assert pickle.dumps(joint[0]) == sequential

    def test_workers_only_mode_streams_results(self):
        landed: list[int] = []
        sequential = [pickle.dumps(run_scenario(s)) for s in SWEEP_SPECS[:3]]
        joint = run_scenarios(
            SWEEP_SPECS[:3],
            max_workers=2,
            on_result=lambda index, spec, result: landed.append(index),
        )
        assert sorted(landed) == [0, 1, 2]
        for index, result in enumerate(joint):
            assert pickle.dumps(result) == sequential[index]


class TestSchedulerStats:
    def test_one_spawn_set_per_sweep(self):
        stats: list[SchedulerStats] = []
        run_scenarios(
            SWEEP_SPECS, max_workers=2, shards=2, stats_sink=stats.append
        )
        (s,) = stats
        # The headline invariant: workers spawn once per sweep, not once
        # per scenario x shard (which would be len(SWEEP_SPECS) * 2).
        assert s.spawns == 2
        assert s.workers == 2
        assert s.shard_tasks == 2 * len(SWEEP_SPECS)
        assert s.spec_tasks == 0
        assert s.tasks_run == s.shard_tasks + s.spec_tasks
        assert s.wall_s > 0.0
        assert s.worker_cpu_s > 0.0

    def test_workers_only_counts_spec_tasks(self):
        stats: list[SchedulerStats] = []
        run_scenarios(
            SWEEP_SPECS[:2], max_workers=2, stats_sink=stats.append
        )
        (s,) = stats
        assert s.spawns == 2
        assert s.spec_tasks == 2
        assert s.shard_tasks == 0

    def test_in_process_sweeps_emit_no_stats(self):
        stats: list[SchedulerStats] = []
        run_scenarios([FIG13_SPEC], stats_sink=stats.append)
        assert stats == []


class TestFailureAttribution:
    def test_shard_crash_names_label_and_shard(self):
        with pytest.raises(
            ScenarioError, match=r"'broken-uplink'.*shard \d+ of 2"
        ):
            run_scenarios(
                [FIG13_SPEC, _broken_spec()], max_workers=2, shards=2
            )

    def test_spec_crash_names_label(self):
        with pytest.raises(ScenarioError, match=r"'broken-uplink'"):
            run_scenarios([FIG13_SPEC, _broken_spec()], max_workers=2)

    def test_sharding_without_sync_cadence_is_config_error(self):
        no_sync = ScenarioSpec(
            policy="earthplus",
            dataset=FIG13_DATASET,
            config=EarthPlusConfig(gamma_bpp=0.3),
            seed=1,
        )
        with pytest.raises(ConfigError, match="ground_sync_days"):
            run_scenarios([no_sync], max_workers=2, shards=2)

    @fork_only
    def test_worker_death_is_detected_and_attributed(self, monkeypatch):
        # Fork inherits the patch: every worker that picks up a spec task
        # dies mid-run without reporting.  The driver must notice the
        # dead process and name the scenario it was running — not hang.
        def die(spec):
            time.sleep(0.3)  # let the start-ack drain to the driver
            os._exit(3)

        monkeypatch.setattr(scenarios, "run_scenario", die)
        with pytest.raises(ScenarioError, match="died without a result"):
            run_scenarios(SWEEP_SPECS[:2], max_workers=2)


class TestSchedulerDirect:
    def test_rejects_bad_pool_sizes(self):
        with pytest.raises(ConfigError, match="workers"):
            SweepScheduler(workers=0)
        with pytest.raises(ConfigError, match="shards_per_scenario"):
            SweepScheduler(workers=2, shards_per_scenario=0)

    def test_empty_sweep(self):
        results, stats = SweepScheduler(workers=2).run([])
        assert results == []
        assert stats.tasks_run == 0

    def test_single_worker_runs_inline(self):
        results, stats = SweepScheduler(workers=1).run([FIG13_SPEC])
        assert stats.spawns == 0  # no pool for a sequential sweep
        assert pickle.dumps(results[0]) == pickle.dumps(
            run_scenario(FIG13_SPEC)
        )


class TestDatasetThreading:
    def test_single_bucket_fallback_builds_once(self, monkeypatch):
        # One satellite -> the partition collapses and the sharded entry
        # point falls back to a whole run; the dataset built for
        # partitioning must thread through instead of building again.
        one_sat = DatasetSpec.of(
            "sentinel2",
            locations=["A"],
            bands=["B4"],
            n_satellites=1,
            image_shape=(64, 64),
            horizon_days=10.0,
            seed=3,
        )
        spec = ScenarioSpec(
            policy="earthplus",
            dataset=one_sat,
            config=EarthPlusConfig(gamma_bpp=0.3, ground_sync_days=2.0),
            seed=1,
        )
        sequential = pickle.dumps(run_scenario(spec))
        calls: list[DatasetSpec] = []
        original = DatasetSpec.build

        def counting(self):
            calls.append(self)
            return original(self)

        monkeypatch.setattr(DatasetSpec, "build", counting)
        result = run_scenario_sharded(spec, shards=4)
        assert pickle.dumps(result) == sequential
        assert len(calls) == 1, (
            "fallback rebuilt the dataset instead of reusing the built copy"
        )


class TestBarrierOverlap:
    def test_gangs_and_singles_share_one_pool(self):
        # A shard gang (epoch barriers) and independent spec tasks in one
        # sweep on a pool big enough to run them concurrently: the
        # barrier must only synchronize the gang, never the whole pool,
        # and all results stay byte-identical.
        specs = [
            FIG13_SPEC,
            ScenarioSpec(
                policy="naive",
                dataset=FIG13_DATASET,
                config=EarthPlusConfig(gamma_bpp=0.3),  # not shardable...
                seed=5,
            ),
        ]
        # ...but shards only apply to epoch-synchronized specs when
        # requested per-scenario; request workers-only plus a directly
        # scheduled mixed plan instead.
        scheduler = SweepScheduler(workers=3, shards_per_scenario=2)
        with pytest.raises(ConfigError):
            # A non-synchronized spec cannot ride a sharded sweep; the
            # guard fires at plan time, before any worker spawns.
            scheduler.run(specs)
        sync_specs = [FIG13_SPEC, SWEEP_SPECS[2]]
        results, stats = SweepScheduler(
            workers=3, shards_per_scenario=2
        ).run(sync_specs)
        assert stats.shard_tasks == 4
        for spec, result in zip(sync_specs, results):
            assert pickle.dumps(result) == pickle.dumps(run_scenario(spec))
