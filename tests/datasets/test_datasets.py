"""Unit tests for the synthetic dataset builders."""

import pytest

from repro.datasets.generator import build_dataset
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import SENTINEL2_LOCATIONS, sentinel2_dataset
from repro.errors import ConfigError
from repro.imagery.earth_model import LocationSpec, TerrainClass


class TestSentinel2:
    def test_default_matches_paper_table2(self):
        dataset = sentinel2_dataset(horizon_days=30.0)
        description = dataset.describe()
        assert description["satellites"] == 2
        assert description["locations"] == 11
        assert description["bands"] == 13

    def test_location_subset(self):
        dataset = sentinel2_dataset(
            locations=["A", "D"], bands=["B4"], horizon_days=30.0
        )
        assert set(dataset.locations) == {"A", "D"}

    def test_band_subset_by_name(self):
        dataset = sentinel2_dataset(
            locations=["A"], bands=["B2", "B8a"], horizon_days=30.0
        )
        assert [b.name for b in dataset.bands] == ["B2", "B8a"]

    def test_snowy_locations_configured(self):
        assert SENTINEL2_LOCATIONS["D"]["snowy"]
        assert SENTINEL2_LOCATIONS["H"]["snowy"]
        assert not SENTINEL2_LOCATIONS["A"]["snowy"]
        dataset = sentinel2_dataset(
            locations=["D"], bands=["B4"], horizon_days=10.0
        )
        assert dataset.earth_models["D"].spec.snowy

    def test_sensors_capture(self):
        dataset = sentinel2_dataset(
            locations=["A"], bands=["B4"], horizon_days=10.0,
            image_shape=(64, 64),
        )
        capture = dataset.sensors["A"].capture(0, 1.0)
        assert capture.shape == (64, 64)

    def test_schedule_within_horizon(self):
        dataset = sentinel2_dataset(
            locations=["A"], bands=["B4"], horizon_days=40.0
        )
        for visit in dataset.schedule.all_visits_sorted():
            assert 0 <= visit.t_days <= 40.0


class TestPlanet:
    def test_default_matches_paper_table2(self):
        dataset = planet_dataset(horizon_days=10.0)
        description = dataset.describe()
        assert description["satellites"] == 48
        assert description["locations"] == 1
        assert description["bands"] == 4

    def test_constellation_size_configurable(self):
        dataset = planet_dataset(n_satellites=4, horizon_days=10.0)
        assert dataset.n_satellites == 4

    def test_milder_clouds_than_sentinel(self):
        """The paper sampled <5 %-cloud Planet scenes, so the Planet-like
        dataset must be clearer on average."""
        planet = planet_dataset(n_satellites=2, horizon_days=60.0)
        sentinel = sentinel2_dataset(
            locations=["A"], bands=["B4"], horizon_days=60.0
        )
        planet_cov = [
            planet.sensors["coastal-us"].cloud_model.coverage_at(float(t))
            for t in range(120)
        ]
        sentinel_cov = [
            sentinel.sensors["A"].cloud_model.coverage_at(float(t))
            for t in range(120)
        ]
        assert sum(planet_cov) < sum(sentinel_cov)

    def test_more_satellites_more_visits(self):
        few = planet_dataset(n_satellites=2, horizon_days=30.0)
        many = planet_dataset(n_satellites=16, horizon_days=30.0)
        assert len(many.schedule.all_visits_sorted()) > len(
            few.schedule.all_visits_sorted()
        )


class TestBuildDataset:
    def test_empty_specs_rejected(self):
        with pytest.raises(ConfigError):
            build_dataset("x", [], (), 1, 10.0)

    def test_mismatched_shapes_rejected(self):
        from repro.imagery.bands import PLANET_BANDS

        specs = [
            LocationSpec(name="a", shape=(64, 64),
                         terrain_mix={TerrainClass.FOREST: 1.0}),
            LocationSpec(name="b", shape=(32, 32),
                         terrain_mix={TerrainClass.FOREST: 1.0}),
        ]
        with pytest.raises(ConfigError):
            build_dataset("x", specs, PLANET_BANDS, 1, 10.0)

    def test_deterministic_given_seed(self):
        a = sentinel2_dataset(locations=["A"], bands=["B4"],
                              horizon_days=20.0, seed=5)
        b = sentinel2_dataset(locations=["A"], bands=["B4"],
                              horizon_days=20.0, seed=5)
        va = [v.t_days for v in a.schedule.all_visits_sorted()]
        vb = [v.t_days for v in b.schedule.all_visits_sorted()]
        assert va == vb
