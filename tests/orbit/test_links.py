"""Unit tests for link budgets and bandwidth fluctuation."""

import pytest

from repro.errors import LinkBudgetError
from repro.orbit.links import (
    DOWNLINK_STREAM,
    UPLINK_STREAM,
    FluctuationModel,
    LinkBudget,
)


class TestLinkBudget:
    def test_table1_defaults(self):
        budget = LinkBudget()
        assert budget.uplink_bps == 250e3
        assert budget.downlink_bps == 200e6
        # 250 kbps x 600 s / 8 = 18.75 MB per contact.
        assert budget.uplink_bytes_per_contact == 18_750_000
        assert budget.downlink_bytes_per_contact == 15_000_000_000

    def test_required_downlink_bps(self):
        budget = LinkBudget(contact_duration_s=600.0)
        assert budget.required_downlink_bps(75_000) == pytest.approx(1000.0)

    def test_required_downlink_rejects_negative(self):
        with pytest.raises(LinkBudgetError):
            LinkBudget().required_downlink_bps(-1)

    def test_dead_check_uplink_validator_removed(self):
        """check_uplink was never called by any budget path; it is gone.

        The simulator enforces budgets by *spending* them (UplinkPhase
        plans within the accumulated budget, DownlinkPhase sheds layers),
        never by rejecting a single payload outright — keep it that way.
        """
        assert not hasattr(LinkBudget, "check_uplink")

    def test_rejects_nonpositive_rates(self):
        with pytest.raises(LinkBudgetError):
            LinkBudget(uplink_bps=0.0)
        with pytest.raises(LinkBudgetError):
            LinkBudget(contact_duration_s=0.0)


class TestFluctuation:
    def test_zero_severity_is_constant(self):
        model = FluctuationModel(severity=0.0)
        assert model.multiplier(0, 0) == 1.0
        assert model.multiplier(3, 99) == 1.0

    def test_deterministic(self):
        model = FluctuationModel(seed=4, severity=0.5)
        assert model.multiplier(1, 2) == model.multiplier(1, 2)

    def test_bounded(self):
        model = FluctuationModel(seed=4, severity=2.0, floor=0.2, ceiling=1.5)
        for contact in range(100):
            m = model.multiplier(0, contact)
            assert 0.2 <= m <= 1.5

    def test_varies_across_contacts(self):
        model = FluctuationModel(seed=4, severity=0.5)
        values = {model.multiplier(0, k) for k in range(20)}
        assert len(values) > 5

    def test_rejects_bad_parameters(self):
        with pytest.raises(LinkBudgetError):
            FluctuationModel(severity=-1.0)
        with pytest.raises(LinkBudgetError):
            FluctuationModel(floor=2.0, ceiling=1.0)


class TestLinkStreams:
    """One model, two links: the per-link streams are independent."""

    def test_default_stream_is_the_uplink_stream(self):
        """The historical draw (no stream argument) is the uplink's."""
        model = FluctuationModel(seed=4, severity=0.5)
        assert model.multiplier(1, 2) == model.multiplier(
            1, 2, stream=UPLINK_STREAM
        )

    def test_uplink_and_downlink_streams_differ(self):
        model = FluctuationModel(seed=4, severity=0.5)
        uplink = [model.multiplier(0, k, stream=UPLINK_STREAM) for k in range(10)]
        downlink = [
            model.multiplier(0, k, stream=DOWNLINK_STREAM) for k in range(10)
        ]
        assert uplink != downlink

    def test_streams_deterministic_across_instances(self):
        """A rebuilt model (e.g. in a worker process) replays each stream."""
        a = FluctuationModel(seed=9, severity=0.7)
        b = FluctuationModel(seed=9, severity=0.7)
        for stream in (UPLINK_STREAM, DOWNLINK_STREAM):
            for contact in range(8):
                assert a.multiplier(3, contact, stream=stream) == (
                    b.multiplier(3, contact, stream=stream)
                )

    def test_zero_severity_constant_on_both_streams(self):
        model = FluctuationModel(severity=0.0)
        assert model.multiplier(0, 0, stream=DOWNLINK_STREAM) == 1.0
