"""Unit tests for satellites and constellations."""

import numpy as np
import pytest

from repro.errors import OrbitError
from repro.orbit.constellation import Constellation, Satellite


class TestSatellite:
    def test_visit_times_periodic(self):
        satellite = Satellite(0, revisit_period_days=10.0, phase_days=2.0)
        times = satellite.visit_times(35.0)
        assert np.allclose(times, [2.0, 12.0, 22.0, 32.0])

    def test_location_offset_shifts_phase(self):
        satellite = Satellite(0, revisit_period_days=10.0, phase_days=2.0)
        base = satellite.visit_times(30.0)
        shifted = satellite.visit_times(30.0, location_offset=3.0)
        assert shifted[0] == pytest.approx((2.0 + 3.0) % 10.0)
        assert len(base) >= 1

    def test_empty_horizon(self):
        satellite = Satellite(0, revisit_period_days=10.0, phase_days=5.0)
        assert satellite.visit_times(2.0).size == 0

    def test_rejects_bad_period(self):
        with pytest.raises(OrbitError):
            Satellite(0, revisit_period_days=0.0, phase_days=0.0)

    def test_rejects_negative_horizon(self):
        satellite = Satellite(0, revisit_period_days=5.0, phase_days=0.0)
        with pytest.raises(OrbitError):
            satellite.visit_times(-1.0)


class TestConstellation:
    def test_size(self):
        assert len(Constellation(n_satellites=8)) == 8

    def test_periods_within_jitter(self):
        constellation = Constellation(
            n_satellites=16, base_revisit_days=12.0, revisit_jitter_days=2.0
        )
        for satellite in constellation.satellites:
            assert 10.0 <= satellite.revisit_period_days <= 14.0

    def test_rejects_zero_satellites(self):
        with pytest.raises(OrbitError):
            Constellation(n_satellites=0)

    def test_rejects_jitter_ge_period(self):
        with pytest.raises(OrbitError):
            Constellation(n_satellites=2, base_revisit_days=5.0,
                          revisit_jitter_days=5.0)

    def test_deterministic(self):
        a = Constellation(n_satellites=4, seed=9)
        b = Constellation(n_satellites=4, seed=9)
        for sa, sb in zip(a.satellites, b.satellites):
            assert sa == sb

    def test_combined_revisit_scales_with_size(self):
        """More satellites -> shorter constellation-wide revisit gaps —
        the mechanism behind the paper's Figures 5 and 19."""
        horizon = 365.0
        mean_gaps = {}
        for size in (1, 4, 16):
            constellation = Constellation(n_satellites=size, seed=3)
            schedule = constellation.build_schedule(["site"], horizon)
            gaps = schedule.revisit_gaps("site")
            mean_gaps[size] = float(gaps.mean())
        assert mean_gaps[4] < mean_gaps[1]
        assert mean_gaps[16] < mean_gaps[4]
        assert mean_gaps[16] < mean_gaps[1] / 6

    def test_single_satellite_gap_near_period(self):
        constellation = Constellation(
            n_satellites=1, base_revisit_days=12.0, revisit_jitter_days=0.0,
            seed=1,
        )
        schedule = constellation.build_schedule(["a"], 200.0)
        gaps = schedule.revisit_gaps("a", satellite_id=0)
        assert np.allclose(gaps, 12.0)

    def test_schedule_covers_all_locations(self):
        constellation = Constellation(n_satellites=2, seed=5)
        schedule = constellation.build_schedule(["x", "y", "z"], 100.0)
        assert set(schedule.locations()) == {"x", "y", "z"}

    def test_location_offsets_deterministic(self):
        constellation = Constellation(n_satellites=2, seed=5)
        assert constellation.location_offset("a") == constellation.location_offset("a")
        assert constellation.location_offset("a") != constellation.location_offset("b")
