"""Unit tests for visit schedules."""

import pytest

from repro.errors import ScheduleError
from repro.orbit.constellation import Constellation
from repro.orbit.schedule import Visit, VisitSchedule


@pytest.fixture(scope="module")
def schedule():
    return Constellation(n_satellites=3, seed=2).build_schedule(
        ["alpha", "beta"], 120.0
    )


class TestQueries:
    def test_visits_sorted(self, schedule):
        for location in schedule.locations():
            times = [v.t_days for v in schedule.visits_in(location, 0, 120)]
            assert times == sorted(times)

    def test_window_bounds(self, schedule):
        visits = schedule.visits_in("alpha", 30.0, 60.0)
        assert all(30.0 <= v.t_days < 60.0 for v in visits)

    def test_satellite_filter(self, schedule):
        visits = schedule.visits_in("alpha", 0, 120, satellite_id=1)
        assert all(v.satellite_id == 1 for v in visits)

    def test_unknown_location(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.visits_in("nowhere", 0, 10)

    def test_inverted_window(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.visits_in("alpha", 10, 5)

    def test_next_visit(self, schedule):
        first = schedule.visits_in("alpha", 0, 120)[0]
        found = schedule.next_visit("alpha", first.t_days - 0.01)
        assert found == first

    def test_next_visit_strictly_after(self, schedule):
        first = schedule.visits_in("alpha", 0, 120)[0]
        following = schedule.next_visit("alpha", first.t_days)
        assert following is not None
        assert following.t_days > first.t_days

    def test_next_visit_none_past_horizon(self, schedule):
        assert schedule.next_visit("alpha", 500.0) is None

    def test_all_visits_sorted_globally(self, schedule):
        merged = schedule.all_visits_sorted()
        times = [v.t_days for v in merged]
        assert times == sorted(times)
        per_location = sum(
            len(schedule.visits_in(loc, 0, 120 + 1))
            for loc in schedule.locations()
        )
        assert len(merged) == per_location


class TestRevisitGaps:
    def test_constellation_gaps_tighter_than_single(self, schedule):
        wide = schedule.revisit_gaps("alpha")
        single = schedule.revisit_gaps("alpha", satellite_id=0)
        assert wide.mean() < single.mean()

    def test_empty_for_unseen_satellite(self, schedule):
        gaps = schedule.revisit_gaps("alpha", satellite_id=99)
        assert gaps.size == 0


class TestPartitioning:
    def test_buckets_cover_every_satellite_once(self, schedule):
        buckets = schedule.partition_satellites(2)
        flat = [sat for bucket in buckets for sat in bucket]
        assert sorted(flat) == sorted(schedule.satellite_ids())
        assert len(flat) == len(set(flat))

    def test_deterministic(self, schedule):
        assert schedule.partition_satellites(2) == (
            schedule.partition_satellites(2)
        )

    def test_single_bucket_is_everything(self, schedule):
        assert schedule.partition_satellites(1) == [
            list(schedule.satellite_ids())
        ]

    def test_more_shards_than_satellites_drops_empties(self, schedule):
        buckets = schedule.partition_satellites(50)
        assert len(buckets) == len(schedule.satellite_ids())
        assert all(len(bucket) == 1 for bucket in buckets)

    def test_balanced_by_visit_count(self, schedule):
        counts = schedule.visit_counts()
        buckets = schedule.partition_satellites(3)
        loads = [sum(counts[sat] for sat in bucket) for bucket in buckets]
        # Greedy LPT keeps the spread within the heaviest single item.
        assert max(loads) - min(loads) <= max(counts.values())

    def test_rejects_nonpositive_shards(self, schedule):
        with pytest.raises(ScheduleError):
            schedule.partition_satellites(0)


def test_manual_schedule_construction():
    visits = {
        "p": [
            Visit(1.0, 0, "p"),
            Visit(4.0, 1, "p"),
            Visit(9.0, 0, "p"),
        ]
    }
    schedule = VisitSchedule(visits=visits, horizon_days=10.0)
    assert [v.t_days for v in schedule.visits_in("p", 0, 5)] == [1.0, 4.0]
    gaps = schedule.revisit_gaps("p", satellite_id=0)
    assert list(gaps) == [8.0]
