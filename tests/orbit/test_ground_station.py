"""Unit tests for ground-contact planning."""

import pytest

from repro.errors import OrbitError
from repro.orbit.ground_station import ContactPlan


@pytest.fixture(scope="module")
def plan():
    return ContactPlan(n_satellites=4, contacts_per_day=7,
                       contact_duration_s=600.0, seed=6)


class TestContacts:
    def test_roughly_seven_per_day(self, plan):
        contacts = plan.contacts(0, 0.0, 10.0)
        assert 60 <= len(contacts) <= 80

    def test_sorted_in_time(self, plan):
        contacts = plan.contacts(1, 0.0, 5.0)
        times = [c.t_days for c in contacts]
        assert times == sorted(times)

    def test_window_respected(self, plan):
        contacts = plan.contacts(2, 3.0, 4.0)
        assert all(3.0 <= c.t_days < 4.0 + 0.02 for c in contacts)

    def test_duration_attached(self, plan):
        contact = plan.contacts(0, 0.0, 1.0)[0]
        assert contact.duration_s == 600.0
        assert contact.end_days > contact.t_days

    def test_deterministic(self, plan):
        a = plan.contacts(3, 0.0, 2.0)
        b = plan.contacts(3, 0.0, 2.0)
        assert a == b

    def test_satellites_have_distinct_phases(self, plan):
        t0 = plan.contacts(0, 0.0, 1.0)[0].t_days
        t1 = plan.contacts(1, 0.0, 1.0)[0].t_days
        assert t0 != t1

    def test_unknown_satellite_rejected(self, plan):
        with pytest.raises(OrbitError):
            plan.contacts(99, 0.0, 1.0)

    def test_inverted_window_rejected(self, plan):
        with pytest.raises(OrbitError):
            plan.contacts(0, 5.0, 1.0)


class TestValidation:
    def test_rejects_zero_satellites(self):
        with pytest.raises(OrbitError):
            ContactPlan(n_satellites=0)

    def test_rejects_zero_contacts(self):
        with pytest.raises(OrbitError):
            ContactPlan(n_satellites=1, contacts_per_day=0)

    def test_rejects_zero_duration(self):
        with pytest.raises(OrbitError):
            ContactPlan(n_satellites=1, contact_duration_s=0.0)

    def test_expected_contacts_between_visits(self):
        plan = ContactPlan(n_satellites=1, contacts_per_day=7)
        assert plan.contacts_between_visits(0, 2.0) == pytest.approx(14.0)
        with pytest.raises(OrbitError):
            plan.contacts_between_visits(0, -1.0)
