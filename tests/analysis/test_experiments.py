"""Unit tests for the experiment runners."""

import pytest

from repro.analysis.experiments import (
    PolicyComparison,
    compare_policies,
    run_policy,
)
from repro.analysis.figures import equal_psnr_saving
from repro.core.config import EarthPlusConfig


class TestComparePolicies:
    @pytest.fixture(scope="class")
    def comparison(self, tiny_sentinel_dataset):
        return compare_policies(
            tiny_sentinel_dataset,
            policies=("earthplus", "kodan"),
            config=EarthPlusConfig(gamma_bpp=0.3),
        )

    def test_all_policies_present(self, comparison):
        assert set(comparison.results) == {"earthplus", "kodan"}

    def test_downlink_saving_positive(self, comparison):
        saving = comparison.downlink_saving()
        assert saving > 0.5

    def test_saving_against_named_baseline(self, comparison):
        saving = comparison.downlink_saving(against="kodan")
        expected = (
            comparison.results["kodan"].downlink_bytes
            / comparison.results["earthplus"].downlink_bytes
        )
        assert saving == pytest.approx(expected)


class TestEqualPsnrSaving:
    def test_interpolation(self):
        curves = {
            "earthplus": [
                {"psnr": 35.0, "downlink_bytes": 100},
            ],
            "kodan": [
                {"psnr": 30.0, "downlink_bytes": 100},
                {"psnr": 40.0, "downlink_bytes": 400},
            ],
        }
        saving = equal_psnr_saving(curves)
        assert saving == pytest.approx(2.0, rel=0.05)  # geometric midpoint

    def test_out_of_range_gives_nan(self):
        curves = {
            "earthplus": [{"psnr": 50.0, "downlink_bytes": 100}],
            "kodan": [
                {"psnr": 30.0, "downlink_bytes": 100},
                {"psnr": 40.0, "downlink_bytes": 400},
            ],
        }
        import math

        assert math.isnan(equal_psnr_saving(curves))

    def test_picks_strongest_baseline(self):
        curves = {
            "earthplus": [{"psnr": 35.0, "downlink_bytes": 100}],
            "weak": [
                {"psnr": 30.0, "downlink_bytes": 1000},
                {"psnr": 40.0, "downlink_bytes": 4000},
            ],
            "strong": [
                {"psnr": 30.0, "downlink_bytes": 150},
                {"psnr": 40.0, "downlink_bytes": 600},
            ],
        }
        saving = equal_psnr_saving(curves)
        assert saving == pytest.approx(3.0, rel=0.05)
