"""Unit tests for the simulation-backed figure drivers (tiny configs)."""

import numpy as np
import pytest

from repro.analysis import figures as F
from repro.core.config import EarthPlusConfig


@pytest.fixture(scope="module")
def micro_dataset():
    from repro.datasets.sentinel2 import sentinel2_dataset

    return sentinel2_dataset(
        locations=["A"], bands=["B4", "B11"], horizon_days=90.0,
        image_shape=(128, 128),
    )


class TestFig11Driver:
    def test_curves_structure(self, micro_dataset):
        result = F.fig11_rate_distortion(
            micro_dataset, gammas=[0.2, 0.5],
            policies=("earthplus", "kodan"),
        )
        assert set(result["curves"]) == {"earthplus", "kodan"}
        for points in result["curves"].values():
            assert [p["gamma"] for p in points] == [0.2, 0.5]
            assert points[0]["downlink_bytes"] <= points[1]["downlink_bytes"]
            assert points[0]["psnr"] <= points[1]["psnr"] + 0.5


class TestFig12Driver:
    def test_distributions(self, micro_dataset):
        result = F.fig12_cdfs(
            micro_dataset, EarthPlusConfig(gamma_bpp=0.3),
            policies=("earthplus",),
        )
        data = result["earthplus"]
        assert len(data["fractions"]) >= 1
        assert all(0.0 <= f <= 1.0 for f in data["fractions"])
        assert 0.0 <= data["fully_downloaded"] <= 1.0


class TestFig13Driver:
    def test_series_time_ordered(self, micro_dataset):
        result = F.fig13_timeseries(
            micro_dataset, "A", EarthPlusConfig(gamma_bpp=0.3),
            policies=("earthplus",),
        )
        series = result["earthplus"]
        times = [p["t_days"] for p in series]
        assert times == sorted(times)


class TestFig17Driver:
    def test_ladder_monotone(self, micro_dataset):
        result = F.fig17_uplink_ladder(
            micro_dataset, EarthPlusConfig(gamma_bpp=0.3)
        )
        ratios = [row["ratio"] for row in result["rows"]]
        assert ratios[0] == 1.0
        assert ratios[1] > ratios[0]
        assert ratios[2] >= ratios[1] * 0.9  # deltas never much worse

    def test_update_byte_stats_present(self, micro_dataset):
        result = F.fig17_uplink_ladder(
            micro_dataset, EarthPlusConfig(gamma_bpp=0.3)
        )
        assert result["delta_update_mean_bytes"] > 0
        assert result["full_update_mean_bytes"] > 0


class TestFig18Driver:
    def test_monotone_downlink(self, micro_dataset):
        result = F.fig18_uplink_sweep(
            micro_dataset, [0, 10_000], EarthPlusConfig(gamma_bpp=0.3)
        )
        rows = result["rows"]
        assert rows[0]["downlink_bytes"] >= rows[1]["downlink_bytes"]
        assert rows[0]["updates_skipped"] >= rows[1]["updates_skipped"]


class TestFig20Driver:
    def test_downlink_ladder_degrades_gracefully(self):
        from repro.analysis.scenarios import (
            DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
            DatasetSpec,
        )

        dataset = DatasetSpec.of(
            "sentinel2",
            locations=["A"],
            bands=["B4"],
            horizon_days=60.0,
            image_shape=(128, 128),
        )
        result = F.fig20_downlink_ladder(
            dataset=dataset,
            downlink_bytes_options=[
                DEFAULT_DOWNLINK_BYTES_PER_CONTACT, 60, 25,
            ],
            config=EarthPlusConfig(gamma_bpp=0.3, n_quality_layers=3),
        )
        rows = result["rows"]
        assert rows[0]["layers_shed"] == 0
        assert rows[0]["delivered_fraction"] == 1.0
        assert any(r["layers_shed"] > 0 for r in rows[1:])
        delivered = [r["bytes_delivered"] for r in rows]
        assert delivered == sorted(delivered, reverse=True)
        for row in rows:
            assert row["bytes_delivered"] <= row["bytes_offered"]


class TestLayerAdaptationDriver:
    def test_monotone_bytes_and_quality(self):
        result = F.downlink_layer_adaptation(
            image_shape=(128, 128), n_layers=3, n_captures=2
        )
        rows = result["rows"]
        sizes = [r["bytes"] for r in rows]
        quality = [r["psnr"] for r in rows]
        assert sizes == sorted(sizes)
        assert quality == sorted(quality)
