"""Unit tests for the scenario orchestration layer."""

import pickle

import pytest

from repro.analysis.experiments import run_policy
from repro.analysis.scenarios import (
    DatasetSpec,
    ScenarioSpec,
    run_scenario,
    run_scenarios,
    sweep_specs,
)
from repro.core.config import EarthPlusConfig
from repro.errors import ConfigError, ScenarioError

SMALL_DATASET = DatasetSpec.of(
    "sentinel2",
    locations=["A"],
    bands=["B4"],
    horizon_days=30.0,
    image_shape=(128, 128),
)


class TestDatasetSpec:
    def test_build_is_memoized(self):
        assert SMALL_DATASET.build() is SMALL_DATASET.build()

    def test_equal_specs_share_cache(self):
        twin = DatasetSpec.of(
            "sentinel2",
            image_shape=(128, 128),
            horizon_days=30.0,
            bands=["B4"],
            locations=["A"],
        )
        assert twin == SMALL_DATASET
        assert twin.build() is SMALL_DATASET.build()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            DatasetSpec.of("landsat")

    def test_specs_are_picklable(self):
        spec = ScenarioSpec(policy="earthplus", dataset=SMALL_DATASET)
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.policy == "earthplus"
        assert clone.dataset == SMALL_DATASET


class TestRunScenario:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            run_scenario(ScenarioSpec(policy="magic", dataset=SMALL_DATASET))

    def test_matches_run_policy(self):
        """run_scenario and the run_policy wrapper share one path."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        via_scenario = run_scenario(
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET, config=config)
        )
        via_wrapper = run_policy(SMALL_DATASET.build(), "naive", config)
        assert via_scenario == via_wrapper


class TestRunScenarios:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigError):
            run_scenarios([], max_workers=0)

    def test_empty_batch(self):
        assert run_scenarios([]) == []

    def test_parallel_matches_sequential_byte_identical(self):
        """The acceptance criterion: a 2-policy x 2-seed batch run with
        process-parallel workers is byte-identical to sequential
        run_policy calls."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        specs = [
            ScenarioSpec(
                policy=policy, dataset=SMALL_DATASET, config=config, seed=seed
            )
            for policy in ("earthplus", "naive")
            for seed in (0, 1)
        ]
        parallel = run_scenarios(specs, max_workers=2)
        sequential = [
            run_policy(
                SMALL_DATASET.build(), spec.policy, config, seed=spec.seed
            )
            for spec in specs
        ]
        assert len(parallel) == 4
        for par, seq in zip(parallel, sequential):
            assert pickle.dumps(par) == pickle.dumps(seq)


class TestBatchFailureSemantics:
    """One failing spec names itself; finished results still stream out."""

    BAD_SPEC = ScenarioSpec(
        policy="earthplus",
        # Bypasses DatasetSpec.of validation, so the failure surfaces
        # inside run_scenario — like any mid-batch worker error would.
        dataset=DatasetSpec(kind="landsat"),
        label="the-broken-one",
    )

    def test_failure_names_the_spec(self):
        specs = [
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET),
            self.BAD_SPEC,
        ]
        with pytest.raises(ScenarioError) as excinfo:
            run_scenarios(specs)
        assert "the-broken-one" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_results_before_failure_reach_on_result(self):
        landed = []
        specs = [
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET, seed=0),
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET, seed=1),
            self.BAD_SPEC,
        ]
        with pytest.raises(ScenarioError):
            run_scenarios(
                specs,
                on_result=lambda i, spec, result: landed.append(i),
            )
        assert landed == [0, 1]

    def test_parallel_failure_names_the_spec(self):
        specs = [
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET, seed=0),
            self.BAD_SPEC,
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET, seed=1),
        ]
        with pytest.raises(ScenarioError) as excinfo:
            run_scenarios(specs, max_workers=2)
        assert "the-broken-one" in str(excinfo.value)

    def test_on_result_streams_all_indices(self):
        landed = {}
        specs = [
            ScenarioSpec(policy="naive", dataset=SMALL_DATASET, seed=seed)
            for seed in (0, 1)
        ]
        results = run_scenarios(
            specs,
            on_result=lambda i, spec, result: landed.__setitem__(i, result),
        )
        assert sorted(landed) == [0, 1]
        for index, result in landed.items():
            assert pickle.dumps(result) == pickle.dumps(results[index])


class TestSweepSpecs:
    def test_cross_product(self):
        specs = sweep_specs(
            SMALL_DATASET,
            policies=("earthplus", "kodan"),
            seeds=(0, 1),
            gammas=(0.2, 0.5),
        )
        assert len(specs) == 8
        labels = [spec.resolved_label() for spec in specs]
        assert len(set(labels)) == 8
        assert {spec.config.gamma_bpp for spec in specs} == {0.2, 0.5}
        assert all(spec.extras["gamma"] == spec.config.gamma_bpp
                   for spec in specs)

    def test_default_gamma_from_base_config(self):
        base = EarthPlusConfig(gamma_bpp=0.17)
        specs = sweep_specs(SMALL_DATASET, base_config=base)
        assert len(specs) == 1
        assert specs[0].config.gamma_bpp == 0.17
