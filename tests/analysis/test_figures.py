"""Unit tests for the per-figure experiment drivers (small sizes)."""

import numpy as np
import pytest

from repro.analysis import figures as F
from repro.core.config import EarthPlusConfig


class TestFig04:
    def test_curve_shape(self):
        result = F.fig04_change_vs_age(
            ages_days=[10, 30, 50], tiles_shape=(12, 12), n_anchors=3
        )
        measured = result["measured"]
        assert measured == sorted(measured)  # monotone growth with age
        assert 0.08 <= measured[0] <= 0.25

    def test_measured_tracks_analytic(self):
        result = F.fig04_change_vs_age(
            ages_days=[20, 40], tiles_shape=(16, 16), n_anchors=4
        )
        for measured, analytic in zip(result["measured"], result["analytic"]):
            assert abs(measured - analytic) < 0.1


class TestFig05:
    def test_constellation_dramatically_fresher(self):
        result = F.fig05_reference_age_cdf(
            n_satellites=16, horizon_days=300.0
        )
        assert result["wide_mean"] < result["local_mean"] / 4

    def test_single_satellite_degenerates(self):
        result = F.fig05_reference_age_cdf(n_satellites=1, horizon_days=400.0)
        # With one satellite both strategies see the same history.
        assert result["wide_mean"] == pytest.approx(result["local_mean"])


class TestFig08:
    def test_missed_fraction_small_and_budget_respected(self):
        result = F.fig08_downsampled_detection(
            ratios=[1, 8, 32], n_pairs=3, image_shape=(192, 192)
        )
        for row in result["rows"]:
            assert row["flagged_fraction"] == pytest.approx(0.4, abs=0.05)
            assert row["undetected_changed_fraction"] <= 0.05

    def test_compression_column(self):
        result = F.fig08_downsampled_detection(ratios=[4], n_pairs=2,
                                               image_shape=(128, 128))
        assert result["rows"][0]["compression"] == 32


class TestFig15:
    def test_paper_ordering(self):
        """Kodan needs by far the most storage; Earth+ the least."""
        rows = F.fig15_storage()
        assert rows["kodan"]["total_gb"] > rows["satroi"]["total_gb"]
        assert rows["earthplus"]["total_gb"] <= rows["satroi"]["total_gb"]

    def test_earthplus_reference_cheap(self):
        rows = F.fig15_storage()
        assert rows["earthplus"]["reference_gb"] < rows["satroi"]["reference_gb"]
        assert rows["kodan"]["reference_gb"] == 0.0


class TestFig19:
    def test_more_satellites_higher_compression(self, tiny_planet_dataset):
        result = F.fig19_constellation_size(
            sizes=[2, 8],
            image_shape=(128, 128),
            horizon_days=60.0,
            config=EarthPlusConfig(gamma_bpp=0.3),
        )
        rows = {r["satellites"]: r for r in result["rows"]}
        assert rows[0]["compression_ratio"] == 1.0
        assert rows[8]["compression_ratio"] > rows[2]["compression_ratio"]


class TestTables:
    def test_tab01_rows(self):
        rows = dict(F.tab01_specs())
        assert rows["Uplink bandwidth"] == "250 kbps"
        assert rows["Downlink bandwidth"] == "200 Mbps"
        assert rows["On-board storage"] == "360 GB"

    def test_tab02_rows(self):
        rows = F.tab02_datasets(
            sentinel_kwargs={"horizon_days": 10.0, "locations": ["A"],
                             "bands": ["B4"]},
            planet_kwargs={"horizon_days": 10.0, "n_satellites": 4},
        )
        assert rows[0]["dataset"] == "sentinel2"
        assert rows[1]["dataset"] == "planet"
        assert rows[1]["satellites"] == 4
