"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "earthplus"
        assert args.dataset == "sentinel2"
        assert args.gamma == 0.3

    def test_compare_planet_options(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "planet", "--satellites", "8"]
        )
        assert args.dataset == "planet"
        assert args.satellites == 8

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "250 kbps" in out
        assert "200 Mbps" in out

    def test_run_small(self, capsys):
        code = main(
            [
                "run", "--policy", "earthplus", "--locations", "A",
                "--bands", "B4,B11", "--days", "60", "--size", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "earthplus" in out
        assert "downlink KB" in out

    def test_calibrate_small(self, capsys):
        code = main(
            ["calibrate", "--days", "90", "--size", "128"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrated theta" in out
