"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.policy == "earthplus"
        assert args.dataset == "sentinel2"
        assert args.gamma == 0.3

    def test_compare_planet_options(self):
        args = build_parser().parse_args(
            ["compare", "--dataset", "planet", "--satellites", "8"]
        )
        assert args.dataset == "planet"
        assert args.satellites == 8

    def test_invalid_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--policy", "magic"])


class TestCommands:
    def test_specs(self, capsys):
        assert main(["specs"]) == 0
        out = capsys.readouterr().out
        assert "250 kbps" in out
        assert "200 Mbps" in out

    def test_run_small(self, capsys):
        code = main(
            [
                "run", "--policy", "earthplus", "--locations", "A",
                "--bands", "B4,B11", "--days", "60", "--size", "128",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "earthplus" in out
        assert "downlink KB" in out

    def test_calibrate_small(self, capsys):
        code = main(
            ["calibrate", "--days", "90", "--size", "128"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "calibrated theta" in out


class TestScenarioCommands:
    def test_simulate_parser_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.policy == "earthplus"
        assert args.format == "table"
        assert args.seed == 0

    def test_sweep_parser_options(self):
        args = build_parser().parse_args(
            ["sweep", "--policies", "earthplus,naive", "--seeds", "0,1",
             "--workers", "2", "--format", "csv"]
        )
        assert args.policies == "earthplus,naive"
        assert args.workers == 2
        assert args.format == "csv"

    def test_simulate_json(self, capsys):
        import json

        code = main(
            ["simulate", "--locations", "A", "--bands", "B4",
             "--days", "30", "--size", "128", "--format", "json"]
        )
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows[0]["policy"] == "earthplus"
        assert rows[0]["records"] > 0

    def test_simulate_profile_table(self, capsys):
        code = main(
            ["simulate", "--locations", "A", "--bands", "B4",
             "--days", "30", "--size", "128", "--profile"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-phase timing breakdown" in out
        for section in ("uplink", "capture", "ingest"):
            assert section in out

    def test_simulate_profile_json(self, capsys):
        import json

        code = main(
            ["simulate", "--locations", "A", "--bands", "B4",
             "--days", "30", "--size", "128", "--profile",
             "--format", "json"]
        )
        assert code == 0
        # One structured JSON document: results plus a profile section
        # (historically two concatenated documents, which json.loads on
        # the whole output rejected).
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"results", "profile"}
        assert doc["results"][0]["policy"] == "earthplus"
        profile = doc["profile"]
        sections = {row["section"] for row in profile}
        assert {"uplink", "capture", "ingest"} <= sections
        phase_rows = [r for r in profile if r["kind"] == "phase"]
        assert phase_rows and all(r["seconds"] >= 0 for r in profile)

    def test_sweep_table(self, capsys):
        code = main(
            ["sweep", "--locations", "A", "--bands", "B4", "--days", "30",
             "--size", "128", "--policies", "earthplus,naive",
             "--seeds", "0", "--gammas", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "earthplus/g0.3/s0" in out
        assert "naive/g0.3/s0" in out

    def test_sweep_unknown_policy_rejected(self):
        import pytest

        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "magic"])


    def test_sweep_gamma_flag_feeds_default_gammas(self, capsys):
        code = main(
            ["sweep", "--locations", "A", "--bands", "B4", "--days", "10",
             "--size", "128", "--policies", "naive", "--gamma", "0.2"]
        )
        assert code == 0
        assert "naive/g0.2/s0" in capsys.readouterr().out


class TestDownlinkFlags:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.downlink_bytes is None
        assert args.downlink_severity == 0.0
        assert args.layers == 1

    def test_simulate_constrained_downlink_json(self, capsys):
        import json

        code = main(
            ["simulate", "--locations", "A", "--bands", "B4",
             "--days", "30", "--size", "128", "--layers", "3",
             "--downlink-bytes", "25", "--format", "json"]
        )
        assert code == 0
        row = json.loads(capsys.readouterr().out)[0]
        assert row["layers_shed"] + row["dl_dropped"] > 0

    def test_simulate_unconstrained_reports_zero_shedding(self, capsys):
        import json

        code = main(
            ["simulate", "--locations", "A", "--bands", "B4",
             "--days", "30", "--size", "128", "--format", "json"]
        )
        assert code == 0
        row = json.loads(capsys.readouterr().out)[0]
        assert row["layers_shed"] == 0
        assert row["dl_dropped"] == 0

    def test_sweep_downlink_flags_accepted(self, capsys):
        code = main(
            ["sweep", "--locations", "A", "--bands", "B4", "--days", "20",
             "--size", "128", "--policies", "naive", "--seeds", "0",
             "--layers", "2", "--downlink-bytes", "40",
             "--downlink-severity", "0.4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "layers_shed" in out
