"""Tests for the theta-calibration workflow (paper §5 protocol)."""

import pytest

from repro.analysis.calibration import (
    ThetaEvaluation,
    evaluate_theta,
    profile_theta,
)
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.errors import PipelineError


@pytest.fixture(scope="module")
def calibration_dataset():
    return sentinel2_dataset(
        locations=["A", "B"],
        bands=["B4", "B11"],
        horizon_days=360.0,
        image_shape=(128, 128),
    )


class TestProfileTheta:
    def test_produces_plausible_threshold(self, calibration_dataset):
        theta = profile_theta(
            calibration_dataset, "A", "B4", 0.0, 180.0
        )
        # Same order of magnitude as the paper's 0.01.
        assert 0.001 <= theta <= 0.08

    def test_deterministic(self, calibration_dataset):
        a = profile_theta(calibration_dataset, "A", "B4", 0.0, 180.0)
        b = profile_theta(calibration_dataset, "A", "B4", 0.0, 180.0)
        assert a == b

    def test_stricter_fpr_target_larger_theta(self, calibration_dataset):
        loose = profile_theta(
            calibration_dataset, "A", "B4", 0.0, 180.0,
            target_false_positive_rate=0.05,
        )
        strict = profile_theta(
            calibration_dataset, "A", "B4", 0.0, 180.0,
            target_false_positive_rate=0.002,
        )
        assert strict >= loose

    def test_empty_window_rejected(self, calibration_dataset):
        with pytest.raises(PipelineError):
            profile_theta(calibration_dataset, "A", "B4", 0.0, 0.5)


class TestEvaluateTheta:
    def test_transfer_to_second_half(self, calibration_dataset):
        """The paper's protocol: calibrate on window 1, apply to window 2."""
        theta = profile_theta(calibration_dataset, "A", "B4", 0.0, 180.0)
        evaluation = evaluate_theta(
            calibration_dataset, "A", "B4", theta, 180.0, 360.0
        )
        assert isinstance(evaluation, ThetaEvaluation)
        assert evaluation.n_pairs >= 1
        assert evaluation.false_positive_rate <= 0.5
        assert evaluation.recall >= 0.5

    def test_transfer_across_locations(self, calibration_dataset):
        """Calibrated at A, applied at B (the paper applies one theta to
        all locations)."""
        theta = profile_theta(calibration_dataset, "A", "B4", 0.0, 180.0)
        evaluation = evaluate_theta(
            calibration_dataset, "B", "B4", theta, 180.0, 360.0
        )
        assert evaluation.recall >= 0.5

    def test_huge_theta_kills_recall(self, calibration_dataset):
        evaluation = evaluate_theta(
            calibration_dataset, "A", "B4", 10.0, 0.0, 360.0
        )
        assert evaluation.false_positive_rate == 0.0
        assert evaluation.recall <= 0.01 or evaluation.n_pairs == 0

    def test_zero_theta_flags_everything(self, calibration_dataset):
        evaluation = evaluate_theta(
            calibration_dataset, "A", "B4", 0.0, 0.0, 360.0
        )
        assert evaluation.recall > 0.95
