"""Unit tests for the table formatting helpers."""

from repro.analysis.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 123456.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_pairs(self):
        text = format_series([1, 2], [10.0, 20.0], "t", "value")
        assert "t" in text and "value" in text
        assert "10" in text and "20" in text


class TestFormatRows:
    ROWS = [
        {"policy": "earthplus", "psnr": 33.5},
        {"policy": "kodan", "psnr": 35.1},
    ]

    def test_table(self):
        from repro.analysis.tables import format_rows

        text = format_rows(["policy", "psnr"], self.ROWS, fmt="table",
                           title="t")
        assert text.splitlines()[0] == "t"
        assert "earthplus" in text and "35.1" in text

    def test_csv(self):
        from repro.analysis.tables import format_rows

        text = format_rows(["policy", "psnr"], self.ROWS, fmt="csv")
        lines = text.splitlines()
        assert lines[0] == "policy,psnr"
        assert lines[1] == "earthplus,33.5"

    def test_json(self):
        import json

        from repro.analysis.tables import format_rows

        parsed = json.loads(format_rows(["policy", "psnr"], self.ROWS,
                                        fmt="json"))
        assert parsed == self.ROWS

    def test_missing_keys_render_empty(self):
        from repro.analysis.tables import format_rows

        text = format_rows(["policy", "extra"], self.ROWS, fmt="csv")
        assert text.splitlines()[1] == "earthplus,"

    def test_unknown_format_rejected(self):
        import pytest

        from repro.analysis.tables import format_rows

        with pytest.raises(ValueError):
            format_rows(["a"], [], fmt="yaml")


    def test_csv_uses_lf_only(self):
        from repro.analysis.tables import format_rows

        text = format_rows(["policy"], [{"policy": "a"}, {"policy": "b"}],
                           fmt="csv")
        assert "\r" not in text

    def test_json_nonfinite_becomes_null(self):
        import json

        from repro.analysis.tables import format_rows

        parsed = json.loads(
            format_rows(["psnr"], [{"psnr": float("inf")},
                                   {"psnr": float("nan")}], fmt="json")
        )
        assert parsed == [{"psnr": None}, {"psnr": None}]
