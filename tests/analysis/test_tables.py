"""Unit tests for the table formatting helpers."""

from repro.analysis.tables import format_series, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"], [["alpha", 1.0], ["b", 123456.0]]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert lines[0].startswith("name")
        assert all(len(line) <= len(lines[1]) + 2 for line in lines)

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_float_formatting(self):
        text = format_table(["x"], [[0.123456789]])
        assert "0.1235" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and "b" in text


class TestFormatSeries:
    def test_pairs(self):
        text = format_series([1, 2], [10.0, 20.0], "t", "value")
        assert "t" in text and "value" in text
        assert "10" in text and "20" in text
