"""Unit tests for the statistics helpers."""

import math

import numpy as np
import pytest

from repro.analysis.stats import Summary, cdf, cdf_at, quantile, summarize


class TestSummarize:
    def test_basic(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert summary.n == 3
        assert summary.mean == pytest.approx(2.0)
        assert summary.median == pytest.approx(2.0)
        assert summary.minimum == 1.0
        assert summary.maximum == 3.0

    def test_drops_non_finite(self):
        summary = summarize([1.0, float("nan"), float("inf"), 3.0])
        assert summary.n == 2
        assert summary.mean == pytest.approx(2.0)

    def test_empty(self):
        summary = summarize([])
        assert summary.n == 0
        assert math.isnan(summary.mean)


class TestCDF:
    def test_sorted_output(self, rng):
        values, probs = cdf(rng.random(50))
        assert np.all(np.diff(values) >= 0)
        assert probs[-1] == pytest.approx(1.0)
        assert probs[0] == pytest.approx(1 / 50)

    def test_empty(self):
        values, probs = cdf([])
        assert values.size == 0 and probs.size == 0

    def test_cdf_at(self):
        assert cdf_at([1, 2, 3, 4], 2.5) == pytest.approx(0.5)
        assert cdf_at([1, 2], 0.0) == 0.0
        assert math.isnan(cdf_at([], 1.0))


class TestQuantile:
    def test_median(self):
        assert quantile([1, 2, 3], 0.5) == pytest.approx(2.0)

    def test_ignores_nan(self):
        assert quantile([1.0, float("nan"), 3.0], 1.0) == pytest.approx(3.0)

    def test_empty(self):
        assert math.isnan(quantile([], 0.5))
