"""Tests for the ASCII plotting helpers."""

import numpy as np

from repro.analysis.plotting import ascii_bars, ascii_cdf, ascii_plot


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot(
            {"line": ([0, 1, 2], [0, 1, 4])}, width=20, height=6,
            title="squares",
        )
        assert "squares" in text
        assert "*" in text
        assert "line" in text

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot(
            {
                "a": ([0, 1], [0, 1]),
                "b": ([0, 1], [1, 0]),
            },
            width=12,
            height=5,
        )
        assert "*" in text and "o" in text

    def test_no_finite_data(self):
        text = ascii_plot({"x": ([float("nan")], [float("nan")])})
        assert "no finite data" in text

    def test_markers_within_canvas(self):
        text = ascii_plot(
            {"s": (np.arange(50), np.arange(50) ** 2)}, width=30, height=8
        )
        lines = text.splitlines()
        plot_lines = [l for l in lines if l.startswith(" " * 11 + "|")]
        assert len(plot_lines) == 8
        for line in plot_lines:
            assert len(line) <= 11 + 1 + 30

    def test_constant_series(self):
        text = ascii_plot({"flat": ([0, 1, 2], [5, 5, 5])}, width=10, height=4)
        assert "*" in text


class TestAsciiCdf:
    def test_render(self, rng):
        text = ascii_cdf({"sample": rng.random(40)}, title="cdf")
        assert "cdf" in text
        assert "CDF" in text

    def test_empty(self):
        assert "(no data)" in ascii_cdf({"empty": []})


class TestAsciiBars:
    def test_proportional_lengths(self):
        text = ascii_bars({"small": 1.0, "big": 4.0}, width=8)
        lines = {l.split()[0]: l for l in text.splitlines()}
        small_len = lines["small"].count("#")
        big_len = lines["big"].count("#")
        assert big_len > small_len
        assert big_len == 8

    def test_unit_suffix(self):
        text = ascii_bars({"a": 2.0}, unit=" GB")
        assert "2 GB" in text

    def test_empty(self):
        assert "(no data)" in ascii_bars({})
