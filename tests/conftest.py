"""Shared fixtures: small bands, images, datasets, and trained detectors.

Session-scoped where construction is expensive (detector training, dataset
assembly) so the suite stays fast while exercising real components.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import EarthPlusConfig
from repro.core.tiles import TileGrid
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.imagery.bands import get_band
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="session")
def two_bands():
    """A visible + thermal-proxy band pair (enough for cloud features)."""
    return (get_band("B4"), get_band("B11"))


@pytest.fixture(scope="session")
def small_config():
    """Earth+ config sized for 128-256 px test images."""
    return EarthPlusConfig(tile_size=64, gamma_bpp=0.3)


@pytest.fixture(scope="session")
def test_image():
    """A deterministic 128x128 textured image in [0, 1]."""
    return fractal_noise((128, 128), seed=1234, octaves=5, base_cells=4)


@pytest.fixture(scope="session")
def small_grid():
    """Tile grid for 128x128 images with 64-px tiles."""
    return TileGrid((128, 128), 64)


@pytest.fixture(scope="session")
def small_earth(two_bands):
    """A small mixed-terrain Earth model."""
    spec = LocationSpec(
        name="testloc",
        shape=(128, 128),
        terrain_mix={
            TerrainClass.FOREST: 0.4,
            TerrainClass.AGRICULTURE: 0.4,
            TerrainClass.RIVER: 0.2,
        },
        seed=77,
    )
    return EarthModel(spec, two_bands)


@pytest.fixture(scope="session")
def tiny_sentinel_dataset():
    """One-location, two-band, 90-day Sentinel-2-like dataset."""
    return sentinel2_dataset(
        locations=["A"],
        bands=["B4", "B11"],
        horizon_days=90.0,
        image_shape=(128, 128),
    )


@pytest.fixture(scope="session")
def tiny_planet_dataset():
    """Eight-satellite, 45-day Planet-like dataset."""
    return planet_dataset(
        n_satellites=8, image_shape=(128, 128), horizon_days=45.0
    )


@pytest.fixture(scope="session")
def onboard_detector(two_bands):
    """Trained cheap on-board cloud detector (cached by the module)."""
    from repro.core.cloud import train_onboard_detector

    return train_onboard_detector(two_bands, tile_size=64)


@pytest.fixture(scope="session")
def ground_detector(two_bands):
    """Trained accurate ground cloud detector (cached by the module)."""
    from repro.core.cloud import train_ground_detector

    return train_ground_detector(two_bands)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(0xC0FFEE)
