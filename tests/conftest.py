"""Shared fixtures: small bands, images, datasets, and trained detectors.

Session-scoped where construction is expensive (detector training, dataset
assembly) so the suite stays fast while exercising real components.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Keep the suite hermetic: never read or write the developer's real
# experiment store (~/.cache/repro) — a warm real store would serve
# stale cached results to simulation tests and mask regressions.  Store
# tests opt back in with explicit ExperimentStore instances / --store
# flags on tmp paths.  Unconditional on purpose: an exported
# REPRO_STORE must not leak in either.
os.environ["REPRO_STORE"] = "off"

from repro.core.config import EarthPlusConfig
from repro.core.tiles import TileGrid
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.imagery.bands import get_band
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="session")
def two_bands():
    """A visible + thermal-proxy band pair (enough for cloud features)."""
    return (get_band("B4"), get_band("B11"))


@pytest.fixture(scope="session")
def small_config():
    """Earth+ config sized for 128-256 px test images."""
    return EarthPlusConfig(tile_size=64, gamma_bpp=0.3)


@pytest.fixture(scope="session")
def test_image():
    """A deterministic 128x128 textured image in [0, 1]."""
    return fractal_noise((128, 128), seed=1234, octaves=5, base_cells=4)


@pytest.fixture(scope="session")
def small_grid():
    """Tile grid for 128x128 images with 64-px tiles."""
    return TileGrid((128, 128), 64)


@pytest.fixture(scope="session")
def small_earth(two_bands):
    """A small mixed-terrain Earth model."""
    spec = LocationSpec(
        name="testloc",
        shape=(128, 128),
        terrain_mix={
            TerrainClass.FOREST: 0.4,
            TerrainClass.AGRICULTURE: 0.4,
            TerrainClass.RIVER: 0.2,
        },
        seed=77,
    )
    return EarthModel(spec, two_bands)


@pytest.fixture(scope="session")
def tiny_sentinel_dataset():
    """One-location, two-band, 90-day Sentinel-2-like dataset."""
    return sentinel2_dataset(
        locations=["A"],
        bands=["B4", "B11"],
        horizon_days=90.0,
        image_shape=(128, 128),
    )


@pytest.fixture(scope="session")
def tiny_planet_dataset():
    """Eight-satellite, 45-day Planet-like dataset."""
    return planet_dataset(
        n_satellites=8, image_shape=(128, 128), horizon_days=45.0
    )


@pytest.fixture(scope="session")
def onboard_detector(two_bands):
    """Trained cheap on-board cloud detector (cached by the module)."""
    from repro.core.cloud import train_onboard_detector

    return train_onboard_detector(two_bands, tile_size=64)


@pytest.fixture(scope="session")
def ground_detector(two_bands):
    """Trained accurate ground cloud detector (cached by the module)."""
    from repro.core.cloud import train_ground_detector

    return train_ground_detector(two_bands)


@pytest.fixture()
def rng():
    """Fresh deterministic RNG per test."""
    return np.random.default_rng(0xC0FFEE)


# ----------------------------------------------------------------------
# Experiment-store fixtures (tests/store/).  Defined here — not in a
# tests/store/conftest.py — because the benchmarks import *their*
# conftest by bare module name, which a second nested conftest would
# shadow.
# ----------------------------------------------------------------------

#: Smallest dataset that exercises real simulation paths.
_TINY_STORE_DATASET = None


def _tiny_store_dataset():
    global _TINY_STORE_DATASET
    if _TINY_STORE_DATASET is None:
        from repro.analysis.scenarios import DatasetSpec

        _TINY_STORE_DATASET = DatasetSpec.of(
            "sentinel2",
            locations=["A"],
            bands=["B4"],
            horizon_days=20.0,
            image_shape=(128, 128),
        )
    return _TINY_STORE_DATASET


@pytest.fixture(scope="session")
def tiny_dataset():
    """A tiny spec-named dataset for store round-trip tests."""
    return _tiny_store_dataset()


@pytest.fixture(scope="session")
def tiny_spec():
    """Factory for content-addressable scenarios on the tiny dataset."""
    from repro.analysis.scenarios import ScenarioSpec

    def factory(policy: str = "earthplus", seed: int = 0, **kwargs):
        return ScenarioSpec(
            policy=policy, dataset=_tiny_store_dataset(), seed=seed, **kwargs
        )

    return factory


@pytest.fixture(scope="session")
def result_factory():
    """Factory for synthetic (simulation-free) run results with the
    plain-scalar field types real simulations produce."""
    from repro.core.accounting import CaptureRecord, RunResult

    def factory(
        policy: str = "earthplus", n_records: int = 3, downlink: int = 1000
    ) -> RunResult:
        records = [
            CaptureRecord(
                location="A",
                satellite_id=i,
                t_days=float(i) * 2.5,
                dropped=(i % 3 == 2),
                guaranteed=(i == 0),
                cloud_coverage=0.125 * i,
                psnr=float("nan") if i % 3 == 2 else 30.0 + i,
                downloaded_fraction=0.25 * (i % 4),
                bytes_downlinked=100 * i,
                band_bytes={"B4": 60 * i, "B11": 40 * i},
                band_psnr={"B4": 31.5 + i, "B11": float("inf")},
                changed_fraction=0.1 * i,
                downlink_capacity_bytes=5000 + 100 * i,
                layers_shed=i % 2,
                downlink_deferred=(i % 3 == 2),
            )
            for i in range(n_records)
        ]
        return RunResult(
            policy=policy,
            records=records,
            downlink_bytes=downlink,
            uplink_bytes=321,
            updates_skipped=1,
            horizon_days=20.0,
            contacts_per_day=7,
            contact_duration_s=600.0,
            reference_storage_bytes=2048,
            captured_storage_bytes=512,
            uplink_stats={"updates_sent": 2, "full_update_bytes": 321},
            downlink_stats={
                "capacity_bytes": 5000 * n_records,
                "bytes_offered": downlink,
                "bytes_delivered": downlink,
                "layers_shed": n_records // 2,
                "captures_shed": min(1, n_records),
                "captures_deferred": 0,
                "captures_dropped": 0,
            },
            extra_metrics={},
        )

    return factory


@pytest.fixture()
def store(tmp_path):
    """A fresh experiment store in a per-test temp dir (unbounded)."""
    from repro.store.backend import ExperimentStore

    with ExperimentStore(tmp_path / "store", max_bytes=0x7FFFFFFF) as st:
        yield st


# ----------------------------------------------------------------------
# Lint fixtures (tests/lint/).  Defined here for the same reason as the
# store fixtures above: no nested conftest.py.
# ----------------------------------------------------------------------


@pytest.fixture
def lint_tree(tmp_path):
    """Factory: write ``{relpath: source}`` snippet files, lint the tree.

    Paths are relative to a temp root, so rule scoping by package
    directory works (``{"core/bad.py": ...}`` lands in RPR001 scope
    while ``{"obs/ok.py": ...}`` does not).  Returns the
    :class:`repro.lint.model.LintResult`.
    """
    from repro.lint import run_lint

    def _run(files, select=None, ignore=None):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(source, encoding="utf-8")
        return run_lint(
            [tmp_path], select=select, ignore=ignore, project_root=tmp_path
        )

    return _run
