"""Unit and property tests for the Gamma-Poisson change process."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.imagery.events import (
    ChangeEventProcess,
    TileChangeModel,
    expected_changed_fraction,
)


class TestClosedForm:
    def test_zero_age(self):
        assert expected_changed_fraction(0.0) == 0.0

    def test_monotone_in_age(self):
        values = [expected_changed_fraction(a) for a in [1, 5, 10, 30, 60]]
        assert values == sorted(values)

    def test_paper_figure4_anchors(self):
        """~15 % at 10 days, roughly tripling towards 50 days (Figure 4)."""
        at10 = expected_changed_fraction(10.0)
        at50 = expected_changed_fraction(50.0)
        assert 0.10 <= at10 <= 0.20
        assert 2.2 <= at50 / at10 <= 3.5

    def test_negative_age_rejected(self):
        with pytest.raises(ValueError):
            expected_changed_fraction(-1.0)


class TestChangeEventProcess:
    def test_zero_rate_no_events(self):
        process = ChangeEventProcess(rate_per_day=0.0, seed=1)
        assert process.event_count(1000.0) == 0

    def test_monotone_in_time(self):
        process = ChangeEventProcess(rate_per_day=0.5, seed=2)
        counts = [process.event_count(t) for t in [1, 5, 10, 50, 100]]
        assert counts == sorted(counts)

    def test_deterministic(self):
        a = ChangeEventProcess(rate_per_day=0.3, seed=9)
        b = ChangeEventProcess(rate_per_day=0.3, seed=9)
        assert a.event_count(40.0) == b.event_count(40.0)

    def test_consistency_of_path(self):
        """Counts at two times must be samples of ONE path: count(t1) at a
        later query equals count(t1) queried directly."""
        process = ChangeEventProcess(rate_per_day=0.8, seed=3)
        direct = process.event_count(20.0)
        assert process.event_count(20.0) == direct

    def test_rate_scales_counts(self):
        slow = ChangeEventProcess(rate_per_day=0.01, seed=4)
        fast = ChangeEventProcess(rate_per_day=2.0, seed=4)
        assert fast.event_count(100.0) > slow.event_count(100.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            ChangeEventProcess(rate_per_day=1.0, seed=0).event_count(-1.0)


class TestTileChangeModel:
    @pytest.fixture()
    def model(self):
        return TileChangeModel(tiles_shape=(16, 16), seed=5)

    def test_version_zero_at_t0(self, model):
        assert np.all(model.version_grid(0.0) == 0)

    def test_versions_monotone(self, model):
        early = model.version_grid(10.0)
        late = model.version_grid(60.0)
        assert np.all(late >= early)

    def test_changed_between_consistency(self, model):
        changed = model.changed_between(5.0, 25.0)
        versions_diff = model.version_grid(25.0) != model.version_grid(5.0)
        assert np.array_equal(changed, versions_diff)

    def test_changed_fraction_in_range(self, model):
        fraction = model.changed_fraction(0.0, 30.0)
        assert 0.0 <= fraction <= 1.0

    def test_inverted_interval_rejected(self, model):
        with pytest.raises(ValueError):
            model.changed_between(10.0, 5.0)

    def test_zero_multiplier_freezes_world(self):
        frozen = TileChangeModel((8, 8), seed=6, rate_multiplier=0.0)
        assert frozen.changed_fraction(0.0, 365.0) == 0.0

    def test_multiplier_scales_change(self):
        calm = TileChangeModel((24, 24), seed=7, rate_multiplier=0.3)
        busy = TileChangeModel((24, 24), seed=7, rate_multiplier=3.0)
        assert busy.changed_fraction(0.0, 30.0) > calm.changed_fraction(0.0, 30.0)

    def test_matches_closed_form(self):
        """Empirical changed fraction tracks the analytic marginal."""
        model = TileChangeModel((40, 40), seed=8)
        for age in [10.0, 30.0]:
            measured = model.changed_fraction(0.0, age)
            expected = expected_changed_fraction(age)
            assert abs(measured - expected) < 0.08

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            TileChangeModel((4, 4), seed=0, rate_shape=0.0)
        with pytest.raises(ValueError):
            TileChangeModel((4, 4), seed=0, rate_multiplier=-1.0)


@given(
    st.floats(0.0, 40.0),
    st.floats(0.0, 40.0),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=40, deadline=None)
def test_property_changed_between_additive(t_a, t_b, seed):
    """If a tile is unchanged on [t0,t1] and [t1,t2], it is unchanged on
    [t0,t2] (version consistency along one path)."""
    t0, t1 = sorted([t_a, t_b])
    t2 = t1 + 7.0
    model = TileChangeModel((6, 6), seed=seed)
    unchanged_01 = ~model.changed_between(t0, t1)
    unchanged_12 = ~model.changed_between(t1, t2)
    unchanged_02 = ~model.changed_between(t0, t2)
    assert np.all(unchanged_02 | ~(unchanged_01 & unchanged_12))
