"""Unit tests for the cloud climatology and rendering."""

import numpy as np
import pytest

from repro.imagery.bands import get_band
from repro.imagery.clouds import CloudModel, CloudSample


@pytest.fixture(scope="module")
def model():
    return CloudModel(seed=12, shape=(96, 96))


class TestCoverageProcess:
    def test_deterministic(self, model):
        assert model.coverage_at(5.5) == model.coverage_at(5.5)

    def test_range(self, model):
        for t in np.linspace(0, 100, 60):
            assert 0.0 <= model.coverage_at(float(t)) <= 1.0

    def test_clear_probability_controls_clear_rate(self):
        always_clear = CloudModel(seed=1, shape=(8, 8), clear_probability=1.0)
        coverages = [always_clear.coverage_at(float(t)) for t in range(50)]
        assert max(coverages) < 0.01

    def test_mean_coverage_roughly_two_thirds(self, model):
        """§3 cites ~2/3 of Earth cloud-covered on average."""
        coverages = [model.coverage_at(float(t)) for t in range(400)]
        assert 0.35 <= float(np.mean(coverages)) <= 0.75

    def test_bimodal_distribution(self, model):
        """Captures should usually be mostly-clear or mostly-overcast."""
        coverages = np.array([model.coverage_at(float(t)) for t in range(400)])
        middle = np.mean((coverages > 0.35) & (coverages < 0.65))
        assert middle < 0.30

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CloudModel(seed=0, shape=(4, 4), clear_probability=1.5)
        with pytest.raises(ValueError):
            CloudModel(seed=0, shape=(4, 4), mean_cloudy_coverage=0.0)


class TestSampling:
    def test_mask_matches_coverage(self, model):
        sample = model.sample(3.0)
        assert sample.mask.mean() == pytest.approx(sample.coverage, abs=0.02)

    def test_thickness_zero_outside_mask(self, model):
        sample = model.sample(7.0)
        assert np.all(sample.thickness[~sample.mask] == 0.0)

    def test_thickness_positive_inside_mask(self, model):
        sample = model.sample(2.0)
        if sample.mask.any():
            assert np.all(sample.thickness[sample.mask] > 0.0)

    def test_deterministic(self, model):
        a, b = model.sample(9.0), model.sample(9.0)
        assert np.array_equal(a.mask, b.mask)
        assert np.array_equal(a.thickness, b.thickness)


class TestRendering:
    def test_clear_sample_is_identity(self, model, rng):
        surface = rng.random((96, 96))
        clear = CloudSample(
            0.0,
            np.zeros((96, 96), dtype=bool),
            np.zeros((96, 96)),
        )
        out = model.render_onto(surface, get_band("B4"), clear)
        assert np.array_equal(out, surface)

    def test_visible_band_brightens(self, model):
        surface = np.full((96, 96), 0.15)
        sample = model.sample(4.0)
        if not sample.mask.any():
            pytest.skip("clear day sampled")
        out = model.render_onto(surface, get_band("B4"), sample)
        assert out[sample.mask].mean() > 0.15

    def test_cold_band_darkens(self, model):
        surface = np.full((96, 96), 0.4)
        sample = model.sample(4.0)
        if not sample.mask.any():
            pytest.skip("clear day sampled")
        out = model.render_onto(surface, get_band("B11"), sample)
        assert out[sample.mask].mean() < 0.4

    def test_clear_pixels_untouched(self, model, rng):
        surface = rng.random((96, 96))
        sample = model.sample(4.0)
        out = model.render_onto(surface, get_band("B4"), sample)
        assert np.array_equal(out[~sample.mask], surface[~sample.mask])

    def test_input_not_modified(self, model, rng):
        surface = rng.random((96, 96))
        copy = surface.copy()
        model.render_onto(surface, get_band("B4"), model.sample(1.0))
        assert np.array_equal(surface, copy)
