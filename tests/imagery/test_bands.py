"""Unit tests for the spectral band tables."""

import pytest

from repro.errors import BandError
from repro.imagery.bands import (
    Band,
    BandCategory,
    PLANET_BANDS,
    SENTINEL2_BANDS,
    band_names,
    get_band,
)


class TestTables:
    def test_sentinel2_has_13_bands(self):
        assert len(SENTINEL2_BANDS) == 13

    def test_planet_has_4_bands(self):
        assert len(PLANET_BANDS) == 4

    def test_sentinel2_band_names(self):
        names = band_names(SENTINEL2_BANDS)
        assert names == [
            "B1", "B2", "B3", "B4", "B5", "B6", "B7", "B8",
            "B8a", "B9", "B10", "B11", "B12",
        ]

    def test_air_bands(self):
        air = [b.name for b in SENTINEL2_BANDS if b.is_air_band]
        assert air == ["B1", "B9", "B10"]

    def test_vegetation_bands_most_volatile(self):
        veg = [
            b for b in SENTINEL2_BANDS if b.category is BandCategory.VEGETATION
        ]
        air = [b for b in SENTINEL2_BANDS if b.category is BandCategory.AIR]
        assert min(b.change_rate_scale for b in veg) > max(
            b.change_rate_scale for b in air
        )

    def test_some_cold_band_exists_in_both_tables(self):
        assert any(b.cloud_cold for b in SENTINEL2_BANDS)
        assert any(b.cloud_cold for b in PLANET_BANDS)

    def test_gsd_values_positive(self):
        for band in SENTINEL2_BANDS + PLANET_BANDS:
            assert band.gsd_m > 0


class TestGetBand:
    def test_lookup_sentinel(self):
        assert get_band("B8a").description == "Narrow NIR"

    def test_lookup_planet(self):
        assert get_band("NIR").category is BandCategory.VEGETATION

    def test_unknown_band_raises(self):
        with pytest.raises(BandError):
            get_band("B99")

    def test_error_lists_known_bands(self):
        with pytest.raises(BandError, match="B8a"):
            get_band("nope")


def test_band_is_frozen():
    band = SENTINEL2_BANDS[0]
    with pytest.raises(Exception):
        band.name = "X"  # type: ignore[misc]
