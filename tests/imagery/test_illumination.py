"""Unit tests for the illumination model."""

import numpy as np
import pytest

from repro.imagery.illumination import IlluminationModel, IlluminationSample


@pytest.fixture(scope="module")
def model():
    return IlluminationModel(seed=4)


class TestSampling:
    def test_deterministic(self, model):
        a, b = model.sample(12.0), model.sample(12.0)
        assert a == b

    def test_different_times_differ(self, model):
        assert model.sample(12.0) != model.sample(12.4)

    def test_gain_near_base(self, model):
        gains = [model.sample(float(t)).gain for t in range(0, 365, 7)]
        assert all(0.7 <= g <= 1.1 for g in gains)

    def test_seasonal_cycle(self, model):
        """Expected gain peaks in summer (after day 80 + quarter year)."""
        summer = model.expected_gain(171.0)
        winter = model.expected_gain(354.0)
        assert summer > winter

    def test_offset_small_positive(self, model):
        offsets = [model.sample(float(t)).offset for t in range(40)]
        assert all(0.0 < o < 0.05 for o in offsets)

    def test_jitter_bounded(self, model):
        for t in np.linspace(0, 365, 80):
            gain = model.sample(float(t)).gain
            expected = model.expected_gain(float(t))
            assert abs(gain / expected - 1.0) <= model.jitter + 1e-9

    def test_rejects_nonpositive_base(self):
        with pytest.raises(ValueError):
            IlluminationModel(seed=0, base_gain=0.0)


class TestApply:
    def test_linear_relation(self, rng):
        sample = IlluminationSample(gain=0.8, offset=0.01)
        surface = rng.random((16, 16)) * 0.5  # keep away from clipping
        out = sample.apply(surface)
        assert np.allclose(out, surface * 0.8 + 0.01)

    def test_clipping(self):
        sample = IlluminationSample(gain=2.0, offset=0.5)
        out = sample.apply(np.ones((4, 4)))
        assert np.all(out == 1.0)

    def test_static_scene_two_illuminations_linearly_related(self, model, rng):
        """The core premise of §5: illumination acts linearly, so a static
        scene under two conditions admits an exact linear alignment."""
        surface = rng.random((32, 32)) * 0.6
        s1, s2 = model.sample(10.0), model.sample(20.0)
        a = s1.apply(surface)
        b = s2.apply(surface)
        # Solve for the relative gain/offset and check residual ~ 0.
        gain = s2.gain / s1.gain
        offset = s2.offset - gain * s1.offset
        assert np.abs(a * gain + offset - b).max() < 1e-9
