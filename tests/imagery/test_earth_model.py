"""Unit tests for the procedural Earth-surface model."""

import numpy as np
import pytest

from repro.errors import ImageryError
from repro.imagery.bands import PLANET_BANDS, SENTINEL2_BANDS
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass


@pytest.fixture(scope="module")
def earth():
    spec = LocationSpec(
        name="unit",
        shape=(128, 128),
        terrain_mix={
            TerrainClass.FOREST: 0.5,
            TerrainClass.RIVER: 0.2,
            TerrainClass.CITY: 0.3,
        },
        seed=42,
    )
    return EarthModel(spec, PLANET_BANDS)


@pytest.fixture(scope="module")
def snowy_earth():
    spec = LocationSpec(
        name="snowy",
        shape=(128, 128),
        terrain_mix={TerrainClass.MOUNTAIN: 1.0},
        seed=43,
        snowy=True,
    )
    return EarthModel(spec, PLANET_BANDS)


class TestLocationSpec:
    def test_rejects_bad_shape(self):
        with pytest.raises(ImageryError):
            LocationSpec(name="x", shape=(0, 10))

    def test_rejects_empty_mix(self):
        with pytest.raises(ImageryError):
            LocationSpec(name="x", terrain_mix={})

    def test_rejects_negative_weights(self):
        with pytest.raises(ImageryError):
            LocationSpec(
                name="x", terrain_mix={TerrainClass.FOREST: -1.0}
            )

    def test_rejects_bad_cell(self):
        with pytest.raises(ImageryError):
            LocationSpec(name="x", change_cell_px=0)


class TestStaticStructure:
    def test_class_map_covers_all_pixels(self, earth):
        class_map = earth.class_map()
        assert class_map.shape == (128, 128)
        assert class_map.min() >= 0
        assert class_map.max() < 3

    def test_all_mixed_classes_present(self, earth):
        class_map = earth.class_map()
        assert len(np.unique(class_map)) == 3

    def test_base_map_range(self, earth):
        for band in PLANET_BANDS:
            base = earth.base_map(band.name)
            assert base.min() >= 0.0 and base.max() <= 1.0

    def test_base_map_cached(self, earth):
        assert earth.base_map("Red") is earth.base_map("Red")

    def test_bands_differ(self, earth):
        assert not np.array_equal(earth.base_map("Red"), earth.base_map("NIR"))

    def test_unknown_band_raises(self, earth):
        with pytest.raises(ImageryError):
            earth.ground_truth("B99", 0.0)

    def test_deterministic_across_instances(self):
        spec = LocationSpec(
            name="det", shape=(64, 64),
            terrain_mix={TerrainClass.FOREST: 1.0}, seed=7,
        )
        a = EarthModel(spec, PLANET_BANDS).ground_truth("Red", 12.0)
        b = EarthModel(spec, PLANET_BANDS).ground_truth("Red", 12.0)
        assert np.array_equal(a, b)


class TestTemporalDynamics:
    def test_t0_equals_base(self, earth):
        assert np.array_equal(
            earth.ground_truth("Red", 0.0), earth.base_map("Red")
        )

    def test_negative_time_rejected(self, earth):
        with pytest.raises(ImageryError):
            earth.ground_truth("Red", -1.0)

    def test_content_changes_accumulate(self, earth):
        g0 = earth.ground_truth("Red", 0.0)
        g90 = earth.ground_truth("Red", 90.0)
        assert not np.array_equal(g0, g90)

    def test_unchanged_tiles_identical(self, earth):
        """Pixels of tiles with no change events must be bit-identical."""
        t0, t1 = 5.0, 15.0
        changed = earth.change_model("Red").changed_between(t0, t1)
        g0 = earth.ground_truth("Red", t0)
        g1 = earth.ground_truth("Red", t1)
        cell = earth.spec.change_cell_px
        for ty, tx in zip(*np.nonzero(~changed)):
            block0 = g0[ty * cell : (ty + 1) * cell, tx * cell : (tx + 1) * cell]
            block1 = g1[ty * cell : (ty + 1) * cell, tx * cell : (tx + 1) * cell]
            assert np.array_equal(block0, block1)

    def test_changed_tiles_clear_theta(self, earth):
        """Genuinely changed tiles must have mean-abs diff above the
        paper's 0.01 threshold (else the change process is untestable)."""
        t0, t1 = 0.0, 60.0
        changed = earth.change_model("Red").changed_between(t0, t1)
        if not changed.any():
            pytest.skip("no changes in window")
        g0 = earth.ground_truth("Red", t0)
        g1 = earth.ground_truth("Red", t1)
        cell = earth.spec.change_cell_px
        diffs = []
        for ty, tx in zip(*np.nonzero(changed)):
            block0 = g0[ty * cell : (ty + 1) * cell, tx * cell : (tx + 1) * cell]
            block1 = g1[ty * cell : (ty + 1) * cell, tx * cell : (tx + 1) * cell]
            diffs.append(float(np.abs(block1 - block0).mean()))
        assert np.median(diffs) > 0.01

    def test_oracle_matches_change_model_when_not_snowy(self, earth):
        oracle = earth.true_changed_tiles("Red", 3.0, 33.0)
        model = earth.change_model("Red").changed_between(3.0, 33.0)
        assert np.array_equal(oracle, model)


class TestSnow:
    def test_non_snowy_has_no_snow(self, earth):
        assert not earth.snow_mask(15.0).any()

    def test_snowy_location_has_winter_snow(self, snowy_earth):
        assert snowy_earth.snow_mask(15.0).any()  # mid-January

    def test_summer_snow_free(self, snowy_earth):
        assert not snowy_earth.snow_mask(200.0).any()  # mid-July

    def test_albedo_fluctuates_daily(self, snowy_earth):
        g_day1 = snowy_earth.ground_truth("Red", 10.0)
        g_day2 = snowy_earth.ground_truth("Red", 11.0)
        snow = snowy_earth.snow_mask(10.0)
        assert not np.array_equal(g_day1[snow], g_day2[snow])

    def test_oracle_counts_snow_as_change(self, snowy_earth):
        oracle = snowy_earth.true_changed_tiles("Red", 10.0, 11.0)
        snow_tiles = snowy_earth._any_pixel_per_cell(
            snowy_earth.snow_mask(10.0)
        )
        assert np.all(oracle[snow_tiles])


def test_sentinel_band_set_works():
    spec = LocationSpec(
        name="s2", shape=(64, 64),
        terrain_mix={TerrainClass.AGRICULTURE: 1.0}, seed=3,
    )
    earth = EarthModel(spec, SENTINEL2_BANDS)
    for band in ("B1", "B8a", "B12"):
        image = earth.ground_truth(band, 5.0)
        assert image.shape == (64, 64)
