"""Unit tests for the satellite sensor/capture model."""

import numpy as np
import pytest

from repro.errors import ImageryError
from repro.imagery.bands import PLANET_BANDS
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
from repro.imagery.sensor import SatelliteSensor


@pytest.fixture(scope="module")
def sensor():
    spec = LocationSpec(
        name="cap",
        shape=(128, 128),
        terrain_mix={TerrainClass.FOREST: 0.6, TerrainClass.CITY: 0.4},
        seed=55,
    )
    earth = EarthModel(spec, PLANET_BANDS)
    return SatelliteSensor(earth=earth, bands=PLANET_BANDS)


class TestCapture:
    def test_all_bands_present(self, sensor):
        capture = sensor.capture(0, 5.0)
        assert set(capture.pixels) == {b.name for b in PLANET_BANDS}
        assert capture.band_names() == [b.name for b in PLANET_BANDS]

    def test_pixel_range(self, sensor):
        capture = sensor.capture(0, 5.0)
        for image in capture.pixels.values():
            assert image.min() >= 0.0 and image.max() <= 1.0

    def test_shape_property(self, sensor):
        assert sensor.capture(1, 2.0).shape == (128, 128)

    def test_metadata_fields(self, sensor):
        capture = sensor.capture(3, 7.5)
        assert capture.satellite_id == 3
        assert capture.t_days == 7.5
        assert capture.location == "cap"
        assert 0.0 <= capture.cloud_coverage <= 1.0

    def test_deterministic(self, sensor):
        a = sensor.capture(0, 9.0)
        b = sensor.capture(0, 9.0)
        for band in a.pixels:
            assert np.array_equal(a.pixels[band], b.pixels[band])

    def test_negative_time_rejected(self, sensor):
        with pytest.raises(ImageryError):
            sensor.capture(0, -0.1)

    def test_cloud_shared_across_bands(self, sensor):
        """One atmosphere per pass: the cloud mask is band-independent."""
        capture = sensor.capture(0, 5.0)
        assert capture.cloud.mask.shape == (128, 128)

    def test_sensor_noise_differs_between_satellites(self, sensor):
        a = sensor.capture(0, 5.0)
        b = sensor.capture(1, 5.0)
        # Same scene + clouds + illumination, different noise realization.
        assert not np.array_equal(a.pixels["Red"], b.pixels["Red"])
        assert np.abs(a.pixels["Red"] - b.pixels["Red"]).mean() < 0.01

    def test_noise_free_mode(self):
        spec = LocationSpec(
            name="clean", shape=(64, 64),
            terrain_mix={TerrainClass.FOREST: 1.0}, seed=8,
        )
        earth = EarthModel(spec, PLANET_BANDS)
        sensor = SatelliteSensor(earth=earth, bands=PLANET_BANDS, noise_sigma=0.0)
        a = sensor.capture(0, 5.0)
        b = sensor.capture(1, 5.0)
        for band in a.pixels:
            assert np.array_equal(a.pixels[band], b.pixels[band])

    def test_rejects_negative_noise(self):
        spec = LocationSpec(
            name="bad", shape=(32, 32),
            terrain_mix={TerrainClass.FOREST: 1.0}, seed=9,
        )
        earth = EarthModel(spec, PLANET_BANDS)
        with pytest.raises(ImageryError):
            SatelliteSensor(earth=earth, bands=PLANET_BANDS, noise_sigma=-1.0)

    def test_cloudy_capture_brighter_in_visible(self, sensor):
        """Find a heavily cloudy time and check the visible band rose."""
        for t in np.arange(0.0, 60.0, 1.7):
            capture = sensor.capture(0, float(t))
            if capture.cloud_coverage > 0.6:
                clear_surface = sensor.earth.ground_truth("Red", float(t))
                lit = capture.illumination.apply(clear_surface)
                cloudy_mean = capture.pixels["Red"][capture.cloud.mask].mean()
                assert cloudy_mean > lit[capture.cloud.mask].mean()
                return
        pytest.skip("no heavily cloudy capture in the window")
