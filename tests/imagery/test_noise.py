"""Unit tests for the procedural noise primitives."""

import numpy as np
import pytest

from repro.imagery.noise import (
    fractal_noise,
    seeded_uniform,
    smoothstep,
    stable_hash,
    value_noise,
)


class TestSmoothstep:
    def test_endpoints(self):
        assert smoothstep(np.array([0.0]))[0] == 0.0
        assert smoothstep(np.array([1.0]))[0] == 1.0

    def test_midpoint(self):
        assert smoothstep(np.array([0.5]))[0] == pytest.approx(0.5)

    def test_monotone(self):
        xs = np.linspace(0, 1, 50)
        ys = smoothstep(xs)
        assert np.all(np.diff(ys) >= 0)


class TestValueNoise:
    def test_deterministic(self):
        a = value_noise((32, 48), cells=4, seed=7)
        b = value_noise((32, 48), cells=4, seed=7)
        assert np.array_equal(a, b)

    def test_seed_changes_output(self):
        a = value_noise((32, 32), cells=4, seed=7)
        b = value_noise((32, 32), cells=4, seed=8)
        assert not np.array_equal(a, b)

    def test_range(self):
        noise = value_noise((64, 64), cells=6, seed=1)
        assert noise.min() >= 0.0 and noise.max() <= 1.0

    def test_shape(self):
        assert value_noise((17, 33), cells=3, seed=0).shape == (17, 33)

    def test_smooth_more_cells_more_variation(self):
        coarse = value_noise((64, 64), cells=2, seed=5)
        fine = value_noise((64, 64), cells=16, seed=5)
        # Finer lattice -> higher spatial frequency -> larger gradients.
        assert np.abs(np.diff(fine, axis=0)).mean() > np.abs(
            np.diff(coarse, axis=0)
        ).mean()


class TestFractalNoise:
    def test_normalized_range(self):
        noise = fractal_noise((64, 64), seed=3, octaves=4)
        assert noise.min() == pytest.approx(0.0)
        assert noise.max() == pytest.approx(1.0)

    def test_deterministic(self):
        a = fractal_noise((32, 32), seed=11)
        b = fractal_noise((32, 32), seed=11)
        assert np.array_equal(a, b)

    def test_rejects_zero_octaves(self):
        with pytest.raises(ValueError):
            fractal_noise((8, 8), seed=0, octaves=0)

    def test_octaves_add_detail(self):
        one = fractal_noise((64, 64), seed=2, octaves=1, base_cells=2)
        many = fractal_noise((64, 64), seed=2, octaves=5, base_cells=2)
        assert np.abs(np.diff(many, axis=1)).mean() > np.abs(
            np.diff(one, axis=1)
        ).mean()


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_order_sensitive(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_distinct_inputs_distinct_outputs(self):
        values = {stable_hash("x", i) for i in range(1000)}
        assert len(values) == 1000

    def test_non_negative_63_bit(self):
        value = stable_hash("anything", 42)
        assert 0 <= value < 2**63


def test_seeded_uniform_shape_and_determinism():
    a = seeded_uniform(5, 3, 4)
    b = seeded_uniform(5, 3, 4)
    assert a.shape == (3, 4)
    assert np.array_equal(a, b)


class TestFastpathParity:
    """Every value-noise implementation (reference np.ix_ gathers, memoized
    flat-index gathers, native bilerp kernel) must be bit-identical —
    imagery feeds the codec, so a single ULP would cascade into metrics."""

    @pytest.mark.parametrize(
        "shape,cells",
        [((64, 64), 4), ((192, 192), 7), ((33, 129), 5), ((3, 3), 1)],
    )
    def test_all_paths_bit_identical(self, shape, cells, monkeypatch):
        from repro import perf
        from repro.codec import registry

        with perf.fastpath_disabled():
            reference = value_noise(shape, cells, seed=1234)
        with perf.fastpath_enabled():
            fast = value_noise(shape, cells, seed=1234)
        assert np.array_equal(reference, fast)
        # Pin the numpy gather path explicitly (kernels gated off) so the
        # native-vs-numpy comparison is exercised even where the compiled
        # kernels are available.
        monkeypatch.setenv(registry.ENV_BACKEND, "vectorized")
        with perf.fastpath_enabled():
            gathered = value_noise(shape, cells, seed=1234)
        assert np.array_equal(reference, gathered)

    def test_fractal_paths_bit_identical(self):
        from repro import perf

        with perf.fastpath_disabled():
            reference = fractal_noise((96, 80), seed=77, octaves=5)
        with perf.fastpath_enabled():
            fast = fractal_noise((96, 80), seed=77, octaves=5)
        assert np.array_equal(reference, fast)
