"""Unit tests for the Kodan, SatRoI, and naive baseline policies."""

import numpy as np
import pytest

from repro.baselines.kodan import KodanPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.satroi import SatRoIPolicy
from repro.core.config import EarthPlusConfig


@pytest.fixture()
def config():
    return EarthPlusConfig(gamma_bpp=0.3)


def captures_over(dataset, n=10, satellite=0):
    sensor = dataset.sensors["A"]
    visits = dataset.schedule.visits_in("A", 0, 90)[:n]
    return [sensor.capture(v.satellite_id, v.t_days) for v in visits]


def clear_capture(dataset):
    sensor = dataset.sensors["A"]
    t = 0.0
    while t < 400:
        capture = sensor.capture(0, t)
        if capture.cloud_coverage < 0.03:
            return capture
        t += 1.7
    raise AssertionError("no clear capture")


class TestKodan:
    def test_downloads_all_noncloudy(self, config, tiny_sentinel_dataset,
                                     ground_detector):
        policy = KodanPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, ground_detector,
        )
        capture = clear_capture(tiny_sentinel_dataset)
        result = policy.process(capture)
        assert not result.dropped
        for band in result.bands:
            assert band.downloaded_tiles.mean() > 0.9

    def test_drops_heavy_cloud(self, config, tiny_sentinel_dataset,
                               ground_detector):
        policy = KodanPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, ground_detector,
        )
        dropped = 0
        for capture in captures_over(tiny_sentinel_dataset, 12):
            if policy.process(capture).dropped:
                dropped += 1
        assert dropped >= 1

    def test_no_reference_storage(self, config, tiny_sentinel_dataset,
                                  ground_detector):
        policy = KodanPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, ground_detector,
        )
        assert policy.reference_storage_bytes() == 0

    def test_no_uplink(self, config, tiny_sentinel_dataset, ground_detector):
        policy = KodanPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, ground_detector,
        )
        assert not policy.uses_uplink


class TestSatRoI:
    def test_first_clear_capture_seeds_reference(
        self, config, tiny_sentinel_dataset, onboard_detector
    ):
        policy = SatRoIPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, onboard_detector,
        )
        capture = clear_capture(tiny_sentinel_dataset)
        result = policy.process(capture)
        assert not result.dropped
        assert policy.reference_storage_bytes() > 0
        # Full-resolution reference at raw pixel width, per band.
        expected = (
            np.prod(tiny_sentinel_dataset.image_shape)
            * config.raw_bytes_per_pixel
            * len(tiny_sentinel_dataset.bands)
        )
        assert policy.reference_storage_bytes() == expected

    def test_reference_never_replaced(self, config, tiny_sentinel_dataset,
                                      onboard_detector):
        policy = SatRoIPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, onboard_detector,
        )
        capture = clear_capture(tiny_sentinel_dataset)
        policy.process(capture)
        band = tiny_sentinel_dataset.bands[0].name
        fixed = policy._references[("A", band)].copy()
        for later in captures_over(tiny_sentinel_dataset, 8):
            policy.process(later)
        assert np.array_equal(policy._references[("A", band)], fixed)

    def test_uses_reference_after_seed(self, config, tiny_sentinel_dataset,
                                       onboard_detector):
        policy = SatRoIPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, onboard_detector,
        )
        capture = clear_capture(tiny_sentinel_dataset)
        policy.process(capture)
        immediate = tiny_sentinel_dataset.sensors["A"].capture(
            1, capture.t_days + 0.01
        )
        result = policy.process(immediate)
        if result.dropped:
            pytest.skip("follow-up dropped")
        band = result.bands[0]
        assert band.had_reference
        assert band.changed_fraction < 0.5

    def test_staleness_increases_downloads(self, config, tiny_sentinel_dataset,
                                           onboard_detector):
        """The SatRoI failure mode: an aging fixed reference flags more and
        more tiles as changed."""
        policy = SatRoIPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, onboard_detector,
        )
        capture = clear_capture(tiny_sentinel_dataset)
        policy.process(capture)
        sensor = tiny_sentinel_dataset.sensors["A"]
        early = sensor.capture(0, capture.t_days + 1.0)
        late = sensor.capture(0, capture.t_days + 300.0)
        early_result = policy.process(early)
        late_result = policy.process(late)
        if early_result.dropped or late_result.dropped:
            pytest.skip("cloud interfered")
        assert (
            late_result.bands[0].changed_fraction
            >= early_result.bands[0].changed_fraction
        )


class TestNaive:
    def test_downloads_every_tile(self, config, tiny_sentinel_dataset):
        policy = NaivePolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape,
        )
        for capture in captures_over(tiny_sentinel_dataset, 4):
            result = policy.process(capture)
            assert not result.dropped
            for band in result.bands:
                assert band.downloaded_tiles.all()

    def test_most_expensive_policy(self, config, tiny_sentinel_dataset,
                                   ground_detector):
        naive = NaivePolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape,
        )
        kodan = KodanPolicy(
            config, tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape, ground_detector,
        )
        capture = clear_capture(tiny_sentinel_dataset)
        assert (
            naive.process(capture).total_bytes
            >= kodan.process(capture).total_bytes
        )
