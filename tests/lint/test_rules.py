"""Positive/negative fixture coverage for every ``repro lint`` rule.

Each rule family gets snippets that must be flagged and near-identical
snippets that must not be, so the rules stay sharp in both directions:
a rule that goes quiet regresses the contract, a rule that over-fires
gets suppressed into noise.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import resolve_rules, run_lint


def src(body: str) -> str:
    return textwrap.dedent(body).lstrip("\n")


def codes(result) -> list[str]:
    """Active finding codes, in report order."""
    return [f.rule for f in result.active]


class TestDeterminismRPR001:
    def test_wall_clock_flagged(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]
        assert "wall-clock" in result.active[0].message

    def test_monotonic_clock_allowed(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.perf_counter() + time.monotonic()
                    """
                )
            }
        )
        assert codes(result) == []

    def test_random_module_flagged(self, lint_tree):
        result = lint_tree(
            {
                "codec/noise.py": src(
                    """
                    import random

                    def jitter():
                        return random.random()
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_from_random_import_flagged(self, lint_tree):
        result = lint_tree(
            {
                "orbit/noise.py": src(
                    """
                    from random import randint

                    def pick():
                        return randint(0, 3)
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_seeded_random_class_allowed(self, lint_tree):
        result = lint_tree(
            {
                "orbit/noise.py": src(
                    """
                    import random

                    def make(seed):
                        return random.Random(seed)
                    """
                )
            }
        )
        assert codes(result) == []

    def test_np_random_legacy_flagged(self, lint_tree):
        result = lint_tree(
            {
                "analysis/sample.py": src(
                    """
                    import numpy as np

                    def draw():
                        return np.random.rand(4)
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_unseeded_default_rng_flagged(self, lint_tree):
        result = lint_tree(
            {
                "core/rng.py": src(
                    """
                    import numpy as np

                    def make():
                        return np.random.default_rng()
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]
        assert "seed" in result.active[0].message

    def test_seeded_default_rng_allowed(self, lint_tree):
        result = lint_tree(
            {
                "core/rng.py": src(
                    """
                    import numpy as np

                    def make(spec):
                        return np.random.default_rng(spec.seed)
                    """
                )
            }
        )
        assert codes(result) == []

    def test_set_iteration_flagged(self, lint_tree):
        result = lint_tree(
            {
                "core/iter.py": src(
                    """
                    def walk(names):
                        for name in set(names):
                            yield name
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]
        assert "sorted" in result.active[0].message

    def test_sorted_set_iteration_allowed(self, lint_tree):
        result = lint_tree(
            {
                "core/iter.py": src(
                    """
                    def walk(names):
                        for name in sorted(set(names)):
                            yield name
                    """
                )
            }
        )
        assert codes(result) == []

    def test_list_over_set_flagged(self, lint_tree):
        result = lint_tree(
            {
                "core/iter.py": src(
                    """
                    def order(names):
                        return list({n for n in names})
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_out_of_scope_package_ignored(self, lint_tree):
        result = lint_tree(
            {
                "obs/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()
                    """
                )
            }
        )
        assert codes(result) == []


class TestEnvFlagsRPR002:
    def test_module_scope_read_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    DEBUG = os.environ.get("ANY_VAR", "")
                    """
                )
            }
        )
        assert codes(result) == ["RPR002"]
        assert "import-time" in result.active[0].message

    def test_module_scope_subscript_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    HOME = os.environ["HOME"]
                    """
                )
            }
        )
        assert codes(result) == ["RPR002"]

    def test_module_scope_contains_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    HAVE = "REPRO_X" in os.environ
                    """
                )
            }
        )
        assert codes(result) == ["RPR002"]

    def test_call_time_repro_read_outside_accessor_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    def flag():
                        return os.environ.get("REPRO_MY_FLAG")
                    """
                )
            }
        )
        assert codes(result) == ["RPR002"]
        assert "env_flag" in result.active[0].message

    def test_indirected_name_does_not_evade(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    _VAR = "REPRO_MY_FLAG"

                    def flag():
                        return os.getenv(_VAR)
                    """
                )
            }
        )
        assert codes(result) == ["RPR002"]
        assert "REPRO_MY_FLAG" in result.active[0].message

    def test_call_time_non_repro_read_allowed(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    def home():
                        return os.environ.get("HOME", "/")
                    """
                )
            }
        )
        assert codes(result) == []

    def test_accessor_module_may_read_repro_vars(self, lint_tree):
        result = lint_tree(
            {
                "repro/perf.py": src(
                    """
                    import os

                    def env_flag(name):
                        return os.environ.get("REPRO_" + name)

                    def raw():
                        return os.environ.get("REPRO_SIM_FASTPATH")
                    """
                )
            }
        )
        assert codes(result) == []

    def test_env_write_allowed(self, lint_tree):
        result = lint_tree(
            {
                "pkg/mod.py": src(
                    """
                    import os

                    def pin():
                        os.environ["REPRO_CODEC_BACKEND"] = "reference"
                    """
                )
            }
        )
        assert codes(result) == []


class TestMonoidRPR003:
    def test_identity_without_merge_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    class Stats:
                        @classmethod
                        def identity(cls):
                            return cls()
                    """
                )
            }
        )
        assert codes(result) == ["RPR003"]
        assert "no merge()" in result.active[0].message

    def test_merge_without_identity_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    class Stats:
                        def merge(self, other):
                            return self
                    """
                )
            }
        )
        assert codes(result) == ["RPR003"]
        assert "no identity()" in result.active[0].message

    def test_merge_missing_field_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    from dataclasses import dataclass

                    @dataclass
                    class Stats:
                        sent: int = 0
                        dropped: int = 0

                        @classmethod
                        def identity(cls):
                            return cls()

                        def merge(self, other):
                            return Stats(sent=self.sent + other.sent)
                    """
                )
            }
        )
        assert codes(result) == ["RPR003"]
        assert "dropped" in result.active[0].message

    def test_complete_merge_allowed(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    from dataclasses import dataclass

                    @dataclass
                    class Stats:
                        sent: int = 0
                        dropped: int = 0

                        @classmethod
                        def identity(cls):
                            return cls()

                        def merge(self, other):
                            return Stats(
                                sent=self.sent + other.sent,
                                dropped=self.dropped + other.dropped,
                            )
                    """
                )
            }
        )
        assert codes(result) == []

    def test_fields_iteration_counts_as_full_coverage(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    import dataclasses
                    from dataclasses import dataclass

                    @dataclass
                    class Stats:
                        sent: int = 0
                        dropped: int = 0

                        @classmethod
                        def identity(cls):
                            return cls()

                        def merge(self, other):
                            kw = {
                                f.name: getattr(self, f.name)
                                + getattr(other, f.name)
                                for f in dataclasses.fields(self)
                            }
                            return Stats(**kw)
                    """
                )
            }
        )
        assert codes(result) == []

    def test_aliased_fields_import_counts(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    from dataclasses import dataclass, fields as dc_fields

                    @dataclass
                    class Stats:
                        sent: int = 0
                        dropped: int = 0

                        @classmethod
                        def identity(cls):
                            return cls()

                        def merge(self, other):
                            kw = {
                                f.name: getattr(self, f.name)
                                + getattr(other, f.name)
                                for f in dc_fields(self)
                            }
                            return Stats(**kw)
                    """
                )
            }
        )
        assert codes(result) == []

    def test_slots_fields_checked(self, lint_tree):
        result = lint_tree(
            {
                "pkg/stats.py": src(
                    """
                    class Stats:
                        __slots__ = ("sent", "dropped")

                        @classmethod
                        def identity(cls):
                            return cls()

                        def merge(self, other):
                            self.sent += other.sent
                            return self
                    """
                )
            }
        )
        assert codes(result) == ["RPR003"]
        assert "dropped" in result.active[0].message


class TestForkSafetyRPR005:
    def test_mutated_module_dict_flagged_at_definition(self, lint_tree):
        result = lint_tree(
            {
                "pkg/cache.py": src(
                    """
                    _CACHE = {}

                    def put(key, value):
                        _CACHE[key] = value
                    """
                )
            }
        )
        assert codes(result) == ["RPR005"]
        finding = result.active[0]
        assert finding.line == 1  # at the definition, not the mutation
        assert "allow(RPR005)" in finding.message

    def test_mutator_method_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/cache.py": src(
                    """
                    _SEEN = set()

                    def mark(key):
                        _SEEN.add(key)
                    """
                )
            }
        )
        assert codes(result) == ["RPR005"]

    def test_unmutated_module_dict_allowed(self, lint_tree):
        result = lint_tree(
            {
                "pkg/table.py": src(
                    """
                    _TABLE = {"a": 1, "b": 2}

                    def lookup(key):
                        return _TABLE[key]
                    """
                )
            }
        )
        assert codes(result) == []

    def test_local_shadow_not_miscounted(self, lint_tree):
        result = lint_tree(
            {
                "pkg/cache.py": src(
                    """
                    _CACHE = {}

                    def build():
                        _CACHE = {}
                        _CACHE["k"] = 1
                        return _CACHE
                    """
                )
            }
        )
        assert codes(result) == []

    def test_getstate_omitting_field_flagged(self, lint_tree):
        result = lint_tree(
            {
                "pkg/state.py": src(
                    """
                    from dataclasses import dataclass

                    @dataclass
                    class Packet:
                        payload: bytes
                        checksum: int

                        def __getstate__(self):
                            return (self.payload,)
                    """
                )
            }
        )
        assert codes(result) == ["RPR005"]
        assert "checksum" in result.active[0].message

    def test_getstate_via_dict_allowed(self, lint_tree):
        result = lint_tree(
            {
                "pkg/state.py": src(
                    """
                    from dataclasses import dataclass

                    @dataclass
                    class Packet:
                        payload: bytes
                        checksum: int

                        def __getstate__(self):
                            return dict(self.__dict__)
                    """
                )
            }
        )
        assert codes(result) == []


class TestSuppressions:
    def test_allow_on_same_line(self, lint_tree):
        result = lint_tree(
            {
                "pkg/cache.py": src(
                    """
                    _CACHE = {}  # repro: allow(RPR005): per-process cache is the design

                    def put(key, value):
                        _CACHE[key] = value
                    """
                )
            }
        )
        assert codes(result) == []
        assert len(result.suppressed) == 1
        assert (
            result.suppressed[0].justification
            == "per-process cache is the design"
        )

    def test_allow_on_line_above(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        # repro: allow(RPR001): profiling only, never keyed
                        return time.time()
                    """
                )
            }
        )
        assert codes(result) == []
        assert len(result.suppressed) == 1

    def test_allow_by_mnemonic_name(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()  # repro: allow(determinism): display only
                    """
                )
            }
        )
        assert codes(result) == []

    def test_allow_wrong_rule_does_not_suppress(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()  # repro: allow(RPR005): wrong rule
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_allow_inside_string_is_not_a_suppression(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        note = "# repro: allow(RPR001): not a comment"
                        return time.time(), note
                    """
                )
            }
        )
        assert codes(result) == ["RPR001"]

    def test_suppressed_findings_do_not_affect_exit_code(self, lint_tree):
        result = lint_tree(
            {
                "pkg/cache.py": src(
                    """
                    _CACHE = {}  # repro: allow(RPR005): declared

                    def put(key, value):
                        _CACHE[key] = value
                    """
                )
            }
        )
        assert result.exit_code == 0
        assert result.findings  # still reported, just flagged


class TestEngine:
    def test_syntax_error_becomes_rpr000(self, lint_tree):
        result = lint_tree(
            {
                "pkg/broken.py": "def nope(:\n",
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()
                    """
                ),
            }
        )
        assert sorted(codes(result)) == ["RPR000", "RPR001"]
        rpr000 = next(f for f in result.active if f.rule == "RPR000")
        assert "does not parse" in rpr000.message

    def test_select_narrows_rules(self, lint_tree):
        files = {
            "core/clock.py": src(
                """
                import time

                def stamp():
                    return time.time()
                """
            ),
            "pkg/cache.py": src(
                """
                _CACHE = {}

                def put(key, value):
                    _CACHE[key] = value
                """
            ),
        }
        everything = lint_tree(files)
        assert sorted(codes(everything)) == ["RPR001", "RPR005"]
        only_fork = lint_tree({}, select=["forksafety"])
        assert codes(only_fork) == ["RPR005"]
        assert only_fork.rules_run == ["RPR005"]

    def test_ignore_drops_rules(self, lint_tree):
        result = lint_tree(
            {
                "core/clock.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()
                    """
                )
            },
            ignore=["RPR001"],
        )
        assert codes(result) == []
        assert "RPR001" not in result.rules_run

    def test_unknown_rule_raises_lint_error(self, tmp_path):
        (tmp_path / "x.py").write_text("pass\n")
        with pytest.raises(LintError, match="unknown lint rule"):
            run_lint([tmp_path], select=["RPR999"])

    def test_missing_path_raises_lint_error(self, tmp_path):
        with pytest.raises(LintError, match="does not exist"):
            run_lint([tmp_path / "nope"])

    def test_findings_sorted_and_files_counted(self, lint_tree):
        result = lint_tree(
            {
                "core/b.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()
                    """
                ),
                "core/a.py": src(
                    """
                    import time

                    def stamp():
                        return time.time()
                    """
                ),
            }
        )
        assert result.files_checked == 2
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)

    def test_resolve_rules_roundtrip(self):
        rules = resolve_rules()
        assert [r.code for r in rules] == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
        ]
        assert resolve_rules(select=["all"], ignore=["monoid"]) == [
            r for r in rules if r.code != "RPR003"
        ]
