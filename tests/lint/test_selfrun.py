"""The linter's own acceptance gate: this repository lints clean.

This is the same invocation CI runs (``repro lint src``): every rule
enabled, zero active findings.  Suppressed findings are expected — each
is a reviewed ``# repro: allow(...)`` with a justification — and their
presence here proves the suppression path is exercised on real code,
not just fixtures.
"""

from __future__ import annotations

from pathlib import Path

from repro.lint import run_lint

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_lints_clean_under_all_rules():
    result = run_lint([REPO_ROOT / "src"], project_root=REPO_ROOT)
    assert result.rules_run == [
        "RPR001",
        "RPR002",
        "RPR003",
        "RPR004",
        "RPR005",
    ]
    assert result.files_checked > 50  # the whole src tree, not a subset
    offenders = "\n".join(
        f"{f.path}:{f.line} {f.rule} {f.message}" for f in result.active
    )
    assert not result.active, f"repo must lint clean:\n{offenders}"


def test_repo_suppressions_all_carry_justifications():
    result = run_lint([REPO_ROOT / "src"], project_root=REPO_ROOT)
    assert result.suppressed, "the repo documents at least one allow site"
    for finding in result.suppressed:
        assert finding.justification, (
            f"{finding.path}:{finding.line} suppresses {finding.rule} "
            "without a justification"
        )
