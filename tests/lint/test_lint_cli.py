"""``repro lint`` CLI contract: exit codes, formats, selection flags.

Exit codes are the CI interface: 0 clean, 1 active findings, 2 internal
error (unknown rule, missing path).  Everything here drives the real
``main()`` entry point, not the engine, so argument wiring is covered.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture()
def dirty_tree(tmp_path):
    """A tree with one deterministic RPR001 violation."""
    bad = tmp_path / "core" / "clock.py"
    bad.parent.mkdir(parents=True)
    bad.write_text(
        textwrap.dedent(
            """
            import time

            def stamp():
                return time.time()
            """
        ).lstrip("\n")
    )
    return tmp_path


class TestExitCodes:
    def test_repo_src_is_clean_exit_0(self, capsys):
        assert main(["lint", str(REPO_ROOT / "src")]) == 0
        assert "clean: 0 findings" in capsys.readouterr().out

    def test_findings_exit_1(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "RPR001" in out
        assert "1 finding" in out

    def test_unknown_rule_exit_2(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--select", "RPR999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exit_2(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "nope")]) == 2
        assert "does not exist" in capsys.readouterr().err


class TestSelection:
    def test_ignore_silences_the_only_finding(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--ignore", "RPR001"]) == 0
        assert "RPR001" not in capsys.readouterr().out

    def test_select_by_name(self, dirty_tree, capsys):
        assert (
            main(["lint", str(dirty_tree), "--select", "determinism"]) == 1
        )
        out = capsys.readouterr().out
        assert "[rules: RPR001]" in out

    def test_select_accepts_comma_list(self, dirty_tree, capsys):
        assert (
            main(
                ["lint", str(dirty_tree), "--select", "monoid,forksafety"]
            )
            == 0
        )
        assert "[rules: RPR003, RPR005]" in capsys.readouterr().out


class TestJsonFormat:
    def test_json_output_parses_with_schema(self, dirty_tree, capsys):
        assert main(["lint", str(dirty_tree), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == 1
        assert document["clean"] is False
        [finding] = document["findings"]
        assert finding["rule"] == "RPR001"
        assert finding["file"].endswith("core/clock.py")
        assert finding["suppressed"] is False

    def test_json_clean_run(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["clean"] is True


class TestUpdateGolden:
    def test_update_golden_rewrites_snapshot(self, tmp_path, capsys):
        root = tmp_path / "proj"
        for rel in (
            "src/repro/core/config.py",
            "src/repro/store/specs.py",
        ):
            target = root / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text((REPO_ROOT / rel).read_text())
        (root / "pyproject.toml").write_text("[project]\n")
        assert main(["lint", str(root / "src"), "--update-golden"]) == 0
        assert "wrote" in capsys.readouterr().out
        golden = root / "tests" / "store" / "golden_spec_fields.json"
        written = json.loads(golden.read_text())
        committed = json.loads(
            (
                REPO_ROOT / "tests" / "store" / "golden_spec_fields.json"
            ).read_text()
        )
        assert written == committed
