"""Reporter contracts: the JSON artifact schema and the human table."""

from __future__ import annotations

import json
import textwrap

from repro.lint import render_json, render_table, resolve_rules


FILES = {
    "core/clock.py": textwrap.dedent(
        """
        import time

        def stamp():
            return time.time()
        """
    ).lstrip("\n"),
    "pkg/cache.py": textwrap.dedent(
        """
        _CACHE = {}  # repro: allow(RPR005): per-process by design

        def put(key, value):
            _CACHE[key] = value
        """
    ).lstrip("\n"),
}


class TestJsonReporter:
    def test_document_schema(self, lint_tree):
        result = lint_tree(FILES)
        document = json.loads(render_json(result, resolve_rules()))
        assert document["version"] == 1
        assert document["clean"] is False
        assert document["files_checked"] == 2
        assert document["counts"] == {"active": 1, "suppressed": 1}
        assert [r["code"] for r in document["rules"]] == [
            "RPR001",
            "RPR002",
            "RPR003",
            "RPR004",
            "RPR005",
        ]
        for rule in document["rules"]:
            assert set(rule) == {"code", "name", "summary"}
            assert rule["summary"]

    def test_finding_row_schema(self, lint_tree):
        result = lint_tree(FILES)
        document = json.loads(render_json(result, resolve_rules()))
        assert len(document["findings"]) == 2
        for row in document["findings"]:
            assert set(row) == {
                "file",
                "line",
                "col",
                "rule",
                "message",
                "suppressed",
                "justification",
            }
        suppressed = [r for r in document["findings"] if r["suppressed"]]
        assert len(suppressed) == 1
        assert suppressed[0]["rule"] == "RPR005"
        assert suppressed[0]["justification"] == "per-process by design"
        active = [r for r in document["findings"] if not r["suppressed"]]
        assert active[0]["rule"] == "RPR001"
        assert active[0]["line"] >= 1
        assert active[0]["justification"] is None

    def test_clean_document(self, lint_tree):
        result = lint_tree({"pkg/ok.py": "X = 1\n"})
        document = json.loads(render_json(result, resolve_rules()))
        assert document["clean"] is True
        assert document["findings"] == []
        assert document["counts"] == {"active": 0, "suppressed": 0}


class TestTableReporter:
    def test_rows_and_summary(self, lint_tree):
        result = lint_tree(FILES)
        text = render_table(result)
        lines = text.splitlines()
        assert len(lines) == 2  # one active finding + summary
        assert "RPR001" in lines[0]
        assert "clock.py:" in lines[0]  # path:line:col prefix
        assert "1 finding (1 suppressed) across 2 files" in lines[-1]

    def test_show_suppressed_lists_justification(self, lint_tree):
        result = lint_tree(FILES)
        text = render_table(result, show_suppressed=True)
        assert "[suppressed]" in text
        assert "allow: per-process by design" in text

    def test_clean_summary(self, lint_tree):
        result = lint_tree({"pkg/ok.py": "X = 1\n"})
        text = render_table(result)
        assert text.startswith("clean: 0 findings")
        assert "RPR001" in text  # rules run are named
