"""CLI telemetry surface: --trace, repro trace, structured --profile."""

import json

import pytest

from repro import perf
from repro.cli import main
from repro.obs import export, trace

#: Smallest sweep that exercises real simulation through the CLI.
_SWEEP_ARGS = [
    "sweep", "--locations", "A", "--bands", "B4", "--days", "10",
    "--size", "64", "--policies", "naive", "--seeds", "0",
]


@pytest.fixture(autouse=True)
def clean_telemetry():
    yield
    perf.disable_profiler()
    trace.disable_tracer()
    trace.reset_context()


class TestTraceFlag:
    def test_sweep_trace_writes_chrome_file(self, tmp_path, capsys):
        path = str(tmp_path / "out.json")
        assert main(_SWEEP_ARGS + ["--trace", path]) == 0
        captured = capsys.readouterr()
        assert f"-> {path}" in captured.err  # confirmation on stderr
        doc = json.loads(open(path).read())
        names = {
            e["name"] for e in doc["traceEvents"] if e["ph"] == "X"
        }
        assert "sweep" in names
        assert {"uplink", "capture", "ingest"} <= names
        assert doc["otherData"]["format"] == "repro-trace-v1"
        # Counters ride along in the artifact.
        assert doc["otherData"]["counters"]["downlink.visits"] > 0

    def test_trace_flag_leaves_stdout_machine_readable(
        self, tmp_path, capsys
    ):
        path = str(tmp_path / "out.json")
        code = main(_SWEEP_ARGS + ["--trace", path, "--format", "json"])
        assert code == 0
        rows = json.loads(capsys.readouterr().out)
        assert isinstance(rows, list)
        assert rows[0]["policy"] == "naive"

    def test_jsonl_extension_writes_span_log(self, tmp_path, capsys):
        path = str(tmp_path / "out.jsonl")
        assert main(_SWEEP_ARGS + ["--trace", path]) == 0
        capsys.readouterr()
        spans, meta = export.read_trace(path)
        assert meta == {}
        assert {"uplink", "capture"} <= {s[0] for s in spans}

    def test_tracer_uninstalled_after_command(self, tmp_path, capsys):
        main(_SWEEP_ARGS + ["--trace", str(tmp_path / "out.json")])
        capsys.readouterr()
        assert trace.active_tracer() is None


class TestTraceSubcommand:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = str(tmp_path / "saved.json")
        spans = [
            ("sweep", 0.0, 2.0, None),
            ("spec_task", 0.5, 1.5, {"worker": 0, "scenario": "ep/s0"}),
            ("dwt", 0.6, 0.7, {"worker": 0, "scenario": "ep/s0"}),
        ]
        export.write_chrome_trace(
            path, spans, dropped=0, counters={"downlink.visits": 4}
        )
        return path

    def test_summary(self, trace_file, capsys):
        assert main(["trace", "summary", trace_file]) == 0
        out = capsys.readouterr().out
        assert "3 spans" in out
        assert "spec_task" in out
        assert "downlink.visits" in out  # counters table rides along

    def test_summary_json_matches_export_summarize(
        self, trace_file, capsys
    ):
        assert main(
            ["trace", "summary", trace_file, "--format", "json"]
        ) == 0
        rows = json.loads(capsys.readouterr().out)
        spans, _meta = export.read_trace(trace_file)
        assert rows == export.summarize(spans)

    def test_slowest(self, trace_file, capsys):
        assert main(["trace", "slowest", trace_file, "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest 2 of 3 spans" in out
        assert "driver" in out

    def test_export_roundtrip(self, trace_file, tmp_path, capsys):
        jsonl = str(tmp_path / "converted.jsonl")
        assert main(["trace", "export", trace_file, "-o", jsonl]) == 0
        capsys.readouterr()
        original, _ = export.read_trace(trace_file)
        converted, _ = export.read_trace(jsonl)
        assert [s[0] for s in converted] == [s[0] for s in original]

    def test_export_requires_output(self, trace_file):
        with pytest.raises(SystemExit):
            main(["trace", "export", trace_file])


class TestStructuredProfile:
    def test_sweep_profile_json_is_one_document(self, capsys):
        code = main(_SWEEP_ARGS + ["--profile", "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        # In-process run: no scheduler stats section.
        assert set(doc) == {"results", "profile"}
        sections = {row["section"] for row in doc["profile"]}
        assert {"uplink", "capture", "ingest"} <= sections

    def test_sweep_profile_csv_sections_are_commented(self, capsys):
        code = main(_SWEEP_ARGS + ["--profile", "--format", "csv"])
        assert code == 0
        out = capsys.readouterr().out
        assert "# profile" in out
        assert out.startswith("scenario,")

    def test_sweep_profile_table_prints_merged_breakdown(self, capsys):
        code = main(_SWEEP_ARGS + ["--profile"])
        assert code == 0
        out = capsys.readouterr().out
        assert "merged timing breakdown" in out
        assert "cpu_total" in out
