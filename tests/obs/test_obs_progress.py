"""Sweep progress meter: TTY gating, counts, rendering, ETA."""

import io

import pytest

from repro.obs.progress import SweepProgress


class _Tty(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestGating:
    def test_disabled_on_non_tty(self):
        stream = io.StringIO()
        meter = SweepProgress(total=3, stream=stream)
        assert not meter.enabled
        meter.task_started()
        meter.spec_done()
        meter.close()
        assert stream.getvalue() == ""

    def test_enabled_on_tty(self):
        stream = _Tty()
        with SweepProgress(total=2, stream=stream) as meter:
            meter.spec_done()
        output = stream.getvalue()
        assert "sweep 1/2 specs" in output
        # close() erased the line.
        assert output.endswith("\r")


class TestCounts:
    def test_render_tracks_state(self):
        meter = SweepProgress(total=8, stream=io.StringIO(), enabled=False)
        meter.add_cached(3)
        meter.task_started()
        meter.task_started()
        meter.task_finished()
        meter.spec_done()
        assert meter.done == 4
        assert meter.cached == 3
        assert meter.inflight == 1
        line = meter.render()
        assert "sweep 4/8 specs" in line
        assert "1 in-flight" in line
        assert "3 cached" in line

    def test_inflight_never_negative(self):
        meter = SweepProgress(total=1, stream=io.StringIO(), enabled=False)
        meter.task_finished()
        assert meter.inflight == 0


class TestEta:
    def test_no_eta_before_an_executed_spec(self):
        meter = SweepProgress(total=4, stream=io.StringIO(), enabled=False)
        assert meter._eta_s() is None
        # Cache hits alone never produce an ETA: they complete in
        # milliseconds and say nothing about simulation speed.
        meter.add_cached(2)
        assert meter._eta_s() is None

    def test_eta_extrapolates_from_executed_specs(self):
        meter = SweepProgress(total=4, stream=io.StringIO(), enabled=False)
        meter._started -= 10.0  # pretend 10s have elapsed
        meter.spec_done()
        meter.spec_done()
        # 2 executed in ~10s, 2 remaining -> ~10s.
        assert meter._eta_s() == pytest.approx(10.0, rel=0.1)
        assert "ETA" in meter.render()

    def test_no_eta_when_done(self):
        meter = SweepProgress(total=1, stream=io.StringIO(), enabled=False)
        meter.spec_done()
        assert meter._eta_s() is None
