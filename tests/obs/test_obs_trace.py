"""Span tracer: ring buffer, attribution, shim, zero perturbation."""

import pickle

import pytest

from repro import perf
from repro.obs import trace


@pytest.fixture(autouse=True)
def clean_telemetry():
    """Every test leaves the process-global tracer/profiler uninstalled."""
    yield
    perf.disable_profiler()
    trace.disable_tracer()
    trace.reset_context()


class TestRingBuffer:
    def test_append_below_capacity(self):
        tracer = trace.Tracer(capacity=4)
        tracer.add("a", 0.0, 1.0)
        tracer.add("b", 1.0, 2.0)
        assert len(tracer) == 2
        assert tracer.dropped == 0
        assert [s[0] for s in tracer.spans()] == ["a", "b"]

    def test_overflow_overwrites_oldest(self):
        tracer = trace.Tracer(capacity=4)
        for i in range(6):
            tracer.add(f"s{i}", float(i), float(i) + 0.5)
        assert len(tracer) == 4
        assert tracer.dropped == 2
        # Oldest-first rotation: the two earliest spans were overwritten.
        assert [s[0] for s in tracer.spans()] == ["s2", "s3", "s4", "s5"]

    def test_extend_folds_worker_partials(self):
        tracer = trace.Tracer(capacity=8)
        tracer.add("driver", 0.0, 1.0)
        tracer.extend([("w", 1.0, 2.0, {"worker": 0})], dropped=3)
        assert [s[0] for s in tracer.spans()] == ["driver", "w"]
        assert tracer.dropped == 3


class TestSpan:
    def test_disabled_returns_shared_null_span(self):
        # The near-zero-cost fast path: no allocation per call.
        assert trace.active_tracer() is None
        assert perf.active_profiler() is None
        assert trace.span("a") is trace.span("b")

    def test_records_into_tracer_with_merged_context(self):
        tracer = trace.enable_tracer()
        trace.set_context(worker=1, scenario="lbl")
        with trace.span("task", epoch=2):
            pass
        (name, begin_s, end_s, attrs), = tracer.spans()
        assert name == "task"
        assert end_s >= begin_s
        assert attrs == {"worker": 1, "scenario": "lbl", "epoch": 2}

    def test_span_attrs_win_over_context(self):
        tracer = trace.enable_tracer()
        trace.set_context(epoch=1)
        with trace.span("t", epoch=9):
            pass
        assert tracer.spans()[0][3]["epoch"] == 9

    def test_feeds_profiler_and_tracer_together(self):
        tracer = trace.enable_tracer()
        profiler = perf.enable_profiler()
        with trace.span("k"):
            pass
        assert profiler.calls == {"k": 1}
        assert [s[0] for s in tracer.spans()] == ["k"]

    def test_profiled_is_a_span_shim(self):
        tracer = trace.enable_tracer()
        with perf.profiled("legacy"):
            pass
        assert [s[0] for s in tracer.spans()] == ["legacy"]


class TestContext:
    def test_set_and_clear(self):
        trace.set_context(worker=3)
        assert trace.current_context() == {"worker": 3}
        trace.set_context(worker=None)
        assert trace.current_context() == {}

    def test_clear_context_names(self):
        trace.set_context(worker=1, epoch=2)
        trace.clear_context("epoch")
        assert trace.current_context() == {"worker": 1}

    def test_trace_context_restores_previous(self):
        trace.set_context(scenario="outer")
        with trace.trace_context(scenario="inner", shard=0):
            assert trace.current_context() == {
                "scenario": "inner",
                "shard": 0,
            }
        assert trace.current_context() == {"scenario": "outer"}


class TestZeroPerturbation:
    def test_results_byte_identical_with_tracing_on(self):
        from repro.analysis.scenarios import DatasetSpec, ScenarioSpec
        from repro.analysis.scenarios import run_scenario

        spec = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "sentinel2",
                locations=["A"],
                bands=["B4"],
                horizon_days=10.0,
                image_shape=(64, 64),
            ),
            seed=0,
        )
        untraced = pickle.dumps(run_scenario(spec))
        tracer = trace.enable_tracer()
        try:
            traced = pickle.dumps(run_scenario(spec))
        finally:
            trace.disable_tracer()
        assert traced == untraced
        # The run actually produced a timeline (phases are instrumented).
        names = {s[0] for s in tracer.spans()}
        assert {"uplink", "capture", "ingest"} <= names
