"""Trace export: Chrome trace-event schema, round-trips, summaries."""

import json

import pytest

from repro.obs import export
from repro.perf import SimProfiler

#: A tiny merged timeline: driver plus two workers, out of order.
SPANS = [
    ("spec_task", 2.0, 2.5, {"worker": 1, "scenario": "ep/s1"}),
    ("sweep", 1.0, 4.0, None),
    ("dwt", 2.1, 2.2, {"worker": 0, "scenario": "ep/s0"}),
    ("shard_task", 2.0, 3.0, {"worker": 0, "scenario": "ep/s0", "shard": 0}),
]


class TestChromeTrace:
    def test_schema(self):
        doc = export.to_chrome_trace(SPANS, dropped=2, counters={"c": 1})
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["format"] == "repro-trace-v1"
        assert doc["otherData"]["dropped"] == 2
        assert doc["otherData"]["counters"] == {"c": 1}
        events = doc["traceEvents"]
        # Metadata names the process and one thread per track.
        thread_names = {
            e["tid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert thread_names == {0: "driver", 1: "worker 0", 2: "worker 1"}
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(SPANS)
        for event in slices:
            assert event["pid"] == 1
            assert event["ts"] >= 0
            assert event["dur"] >= 0

    def test_timestamps_relative_microseconds(self):
        doc = export.to_chrome_trace(SPANS)
        sweep = next(
            e
            for e in doc["traceEvents"]
            if e["ph"] == "X" and e["name"] == "sweep"
        )
        # Earliest span (begin 1.0s) anchors t=0.
        assert sweep["ts"] == 0.0
        assert sweep["dur"] == pytest.approx(3.0 * 1e6)

    def test_empty_timeline(self):
        doc = export.to_chrome_trace([])
        assert [e["ph"] for e in doc["traceEvents"]] == ["M"]


class TestRoundTrip:
    def test_chrome_file(self, tmp_path):
        path = str(tmp_path / "trace.json")
        assert export.write_chrome_trace(path, SPANS, dropped=1) == 4
        spans, meta = export.read_trace(path)
        assert meta["dropped"] == 1
        assert [s[0] for s in spans] == [
            "sweep", "spec_task", "shard_task", "dwt",
        ]
        original = sorted(SPANS, key=lambda s: s[1])
        for (name, b, e, attrs), (name2, b2, e2, attrs2) in zip(
            original, spans
        ):
            assert name == name2
            assert attrs == attrs2
            # Timestamps survive modulo the rebasing to t0 and rounding
            # to whole microseconds.
            assert e - b == pytest.approx(e2 - b2, abs=1e-5)

    def test_jsonl_file(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        assert export.write_jsonl(path, SPANS) == 4
        spans, meta = export.read_trace(path)
        assert meta == {}
        assert spans == sorted(SPANS, key=lambda s: s[1])

    def test_jsonl_sniffed_despite_brace_first_char(self, tmp_path):
        # Every JSONL line starts with "{" exactly like a Chrome file
        # does — the sniffer must parse, not peek.
        path = str(tmp_path / "single.jsonl")
        export.write_jsonl(path, SPANS[:1])
        spans, _meta = export.read_trace(path)
        assert spans == SPANS[:1]

    def test_unrecognized_file_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        path.write_text('{"some": "object"}\n')
        with pytest.raises(ValueError):
            export.read_trace(str(path))


class TestSummaries:
    def test_summarize_matches_profiler_rows(self):
        profiler = SimProfiler()
        for name, begin_s, end_s, _attrs in SPANS:
            profiler.add(name, end_s - begin_s)
        assert export.summarize(SPANS) == profiler.rows()

    def test_slowest_ranks_and_attributes(self):
        rows = export.slowest(SPANS, limit=2)
        assert [r["span"] for r in rows] == ["sweep", "shard_task"]
        assert rows[0]["worker"] == "driver"
        assert rows[1]["worker"] == 0
        assert rows[1]["shard"] == 0
        assert rows[1]["scenario"] == "ep/s0"
