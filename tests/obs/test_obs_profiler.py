"""SimProfiler: monoid laws, row round-trips, and the profiled shim."""

import pytest
from hypothesis import given, strategies as st

from repro import perf
from repro.perf import SimProfiler


@pytest.fixture(autouse=True)
def no_installed_profiler():
    yield
    perf.disable_profiler()


def _profiler(sections: dict) -> SimProfiler:
    profiler = SimProfiler()
    for name, (seconds, calls) in sections.items():
        profiler.seconds[name] = float(seconds)
        profiler.calls[name] = calls
    return profiler


# Integer-valued seconds keep merge exactly associative; real profiles
# are float sums where associativity is approximate (like RunResult).
profilers = st.dictionaries(
    st.sampled_from(["uplink", "capture", "dwt", "codec"]),
    st.tuples(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=10**6),
    ),
    max_size=4,
).map(_profiler)


def _as_dicts(profiler: SimProfiler) -> tuple:
    return (profiler.seconds, profiler.calls)


class TestMonoid:
    @given(profilers, profilers, profilers)
    def test_merge_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert _as_dicts(left) == _as_dicts(right)

    @given(profilers)
    def test_identity_is_two_sided_unit(self, a):
        assert _as_dicts(SimProfiler.identity().merge(a)) == _as_dicts(a)
        assert _as_dicts(a.merge(SimProfiler.identity())) == _as_dicts(a)

    @given(profilers, profilers)
    def test_merge_commutative(self, a, b):
        assert _as_dicts(a.merge(b)) == _as_dicts(b.merge(a))

    @given(profilers)
    def test_from_rows_inverts_rows(self, a):
        rebuilt = SimProfiler.from_rows(a.rows())
        # rows() rounds seconds to 6 decimals; integer-valued times
        # survive exactly.
        assert _as_dicts(rebuilt) == _as_dicts(a)

    def test_merge_does_not_mutate_operands(self):
        a = _profiler({"x": (1, 1)})
        b = _profiler({"x": (2, 3)})
        merged = a.merge(b)
        assert merged.seconds == {"x": 3.0}
        assert merged.calls == {"x": 4}
        assert a.seconds == {"x": 1.0}
        assert b.calls == {"x": 3}


class TestProfiled:
    def test_disabled_fast_return_is_shared_noop(self):
        assert perf.active_profiler() is None
        assert perf.profiled("a") is perf.profiled("b")

    def test_records_when_enabled(self):
        profiler = perf.enable_profiler()
        with perf.profiled("k"):
            pass
        with perf.profiled("k"):
            pass
        assert profiler.calls == {"k": 2}
        assert profiler.seconds["k"] >= 0.0

    def test_nested_sections_both_recorded(self):
        profiler = perf.enable_profiler()
        with perf.profiled("outer"):
            with perf.profiled("inner"):
                pass
        assert profiler.calls == {"outer": 1, "inner": 1}
        # Sections are flat: the outer span contains the inner one.
        assert profiler.seconds["outer"] >= profiler.seconds["inner"]

    def test_rows_sorted_longest_first(self):
        profiler = _profiler({"fast": (1, 1), "slow": (5, 2)})
        assert [r["section"] for r in profiler.rows()] == ["slow", "fast"]
