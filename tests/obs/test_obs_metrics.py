"""Counters: monoid laws, monotonicity, and subsystem wiring."""

import pytest
from hypothesis import given, strategies as st

from repro.obs import metrics
from repro.obs.metrics import Counters, counters, reset_counters

# Integer-valued counters keep the monoid laws exact (float counters
# like sched.barrier_idle_s are approximately associative, same as
# RunResult.merge).
counter_bags = st.dictionaries(
    st.sampled_from(["a.x", "a.y", "b.z", "c"]),
    st.integers(min_value=0, max_value=10**9),
    max_size=4,
).map(Counters)


@pytest.fixture(autouse=True)
def fresh_counters():
    reset_counters()
    yield
    reset_counters()


class TestMonoid:
    @given(counter_bags, counter_bags, counter_bags)
    def test_merge_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @given(counter_bags)
    def test_identity_is_two_sided_unit(self, a):
        assert Counters.identity().merge(a) == a
        assert a.merge(Counters.identity()) == a

    @given(counter_bags, counter_bags)
    def test_merge_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @given(counter_bags, counter_bags)
    def test_merge_in_matches_merge(self, a, b):
        merged = a.merge(b)
        a.merge_in(b)
        assert a == merged


class TestCounters:
    def test_inc_and_get(self):
        bag = Counters()
        bag.inc("store.hit")
        bag.inc("store.hit", 2)
        assert bag.get("store.hit") == 3
        assert bag.get("absent") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counters().inc("x", -1)

    def test_zero_increment_creates_no_key(self):
        bag = Counters()
        bag.inc("x", 0)
        assert not bag
        assert "x" not in bag.values

    def test_diff_against_snapshot_is_the_delta(self):
        bag = Counters()
        bag.inc("a", 5)
        baseline = bag.snapshot()
        bag.inc("a", 2)
        bag.inc("b", 7)
        assert bag.diff(baseline).values == {"a": 2, "b": 7}

    def test_rows_sorted_by_name(self):
        bag = Counters({"b": 2, "a": 1})
        assert bag.rows() == [
            {"counter": "a", "value": 1},
            {"counter": "b", "value": 2},
        ]

    def test_reset_replaces_the_global_bag(self):
        counters().inc("x")
        fresh = reset_counters()
        assert fresh is counters()
        assert not counters()


class TestWiring:
    def test_codec_resolve_counts(self):
        from repro.codec import registry

        registry.resolve("reference")
        registry.resolve("reference")
        assert counters().get("codec.resolve.reference") == 2

    def test_downlink_phase_counts_visits_and_bytes(self, tiny_spec):
        from repro.analysis.scenarios import run_scenario

        run_scenario(tiny_spec(policy="naive"))
        bag = counters()
        assert bag.get("downlink.visits") > 0
        assert bag.get("downlink.delivered_bytes") > 0

    def test_store_counts_hits_misses_and_bytes(
        self, store, tiny_spec, result_factory
    ):
        spec = tiny_spec()
        key = store.key_for(spec)
        assert store.get(key) is None  # miss
        store.put(spec, result_factory(), key=key)
        assert store.get(key) is not None  # hit
        bag = counters()
        assert bag.get("store.miss") == 1
        assert bag.get("store.hit") == 1
        assert bag.get("store.put") == 1
        assert bag.get("store.put_bytes") > 0
        # The same counts persist into the store's own counters table,
        # where `repro query --stats` reads them across processes.
        persisted = store.counter_values()
        assert persisted["store.miss"] == 1
        assert persisted["store.hit"] == 1

    def test_store_stats_reports_cache_health(
        self, store, tiny_spec, result_factory
    ):
        spec = tiny_spec()
        key = store.key_for(spec)
        store.get(key)
        store.put(spec, result_factory(), key=key)
        store.get(key)
        stats = store.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["evictions"] == 0
        assert stats["written_mb"] > 0
