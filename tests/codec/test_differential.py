"""Differential harness: vectorized codec fast path vs reference coder.

The vectorized backend's entire correctness story is *bit-exactness*: for any
input, it must emit byte-identical bitstreams and byte-identical
reconstructions at every truncation point.  These tests enforce that
contract with property-style random subbands, adversarial tiles, and
whole-image container comparisons — the same interchangeability bar Duet
sets for its accelerated datapaths.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.bitplane import SubbandPlaneCoder
from repro.codec.fastpath import (
    BatchContextTable,
    BatchRangeEncoder,
    VectorizedPlaneCoder,
    probability_schedule,
)
from repro.codec.arith import ArithmeticEncoder
from repro.codec.jpeg2000 import CodecConfig, ImageCodec
from repro.codec.dwt import Wavelet
from repro.errors import BitstreamError
from repro.imagery.noise import fractal_noise


from repro.codec import registry

#: Every available engine joins the differential harness (``compiled``
#: drops out only on machines without a C toolchain).
BACKENDS = tuple(
    name for name in registry.names() if registry.get(name).available()
)


def coder_pair(shapes):
    spec = [(f"b{i}", 1, shape) for i, shape in enumerate(shapes)]
    return SubbandPlaneCoder(spec), VectorizedPlaneCoder(spec)


def all_coders(shapes):
    """One plane coder per available backend, reference first."""
    spec = [(f"b{i}", 1, shape) for i, shape in enumerate(shapes)]
    return {name: registry.get(name).coder_factory(spec) for name in BACKENDS}


def top_plane(bands):
    peak = max((int(np.abs(b).max()) for b in bands if b.size), default=0)
    return max(peak.bit_length() - 1, 0)


def assert_bitstreams_identical(bands, max_plane=None):
    """Assert byte-identical segments + identical decodes at every prefix,
    for every registered backend against the reference coder."""
    coders = all_coders([b.shape for b in bands])
    top = top_plane(bands) if max_plane is None else max_plane
    ref = coders["reference"]
    seg_ref = ref.encode(bands, top)
    for name, fast in coders.items():
        if name == "reference":
            continue
        seg_fast = fast.encode(bands, top)
        assert len(seg_ref) == len(seg_fast)
        for a, b in zip(seg_ref, seg_fast):
            assert a.plane == b.plane
            assert a.data == b.data, (
                f"{name}: plane {a.plane} codeword differs"
            )
        for keep in range(len(seg_ref) + 1):
            dec_ref = ref.decode(seg_ref[:keep], top)
            dec_fast = fast.decode(seg_fast[:keep], top)
            dec_cross = fast.decode(seg_ref[:keep], top)
            for r, f, x in zip(dec_ref, dec_fast, dec_cross):
                assert np.array_equal(r, f), name
                assert np.array_equal(r, x), name
    return seg_ref


class TestPlaneCoderDifferential:
    def test_seeded_random_subbands(self, rng):
        bands = [
            rng.integers(-500, 500, (16, 16)),
            rng.integers(-40, 40, (8, 8)),
            rng.integers(-3, 3, (8, 4)),
        ]
        assert_bitstreams_identical(bands)

    def test_multi_seed_sweep(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            bands = [
                rng.integers(-(1 << 11), 1 << 11, (12, 12)),
                rng.integers(-15, 15, (6, 9)),
            ]
            assert_bitstreams_identical(bands)

    def test_all_zero_tile(self):
        bands = [np.zeros((8, 8), dtype=np.int64), np.zeros((4, 4), dtype=np.int64)]
        assert_bitstreams_identical(bands, max_plane=0)

    def test_single_coefficient_tile(self):
        for value in (1, -1, 513, -1024):
            band = np.zeros((16, 16), dtype=np.int64)
            band[7, 9] = value
            assert_bitstreams_identical([band])

    def test_max_magnitude_tile(self):
        """Every coefficient at the 16-bit cap: maximum-rate worst case."""
        peak = (1 << 16) - 1
        band = np.full((8, 8), peak, dtype=np.int64)
        band[::2, ::2] = -peak
        assert_bitstreams_identical([band])

    def test_alternating_checkerboard(self):
        band = np.fromfunction(
            lambda y, x: ((y + x) % 2) * 200 - 100, (16, 16)
        ).astype(np.int64)
        assert_bitstreams_identical([band])

    def test_empty_band_in_set(self, rng):
        bands = [
            rng.integers(-9, 9, (4, 4)),
            np.zeros((0, 5), dtype=np.int64),
            rng.integers(-9, 9, (3, 3)),
        ]
        assert_bitstreams_identical(bands)

    def test_context_halving_stress(self, rng):
        """Streams long enough to halve counts several times per context."""
        band = rng.integers(-(1 << 14), 1 << 14, (64, 64))
        assert_bitstreams_identical([band])

    def test_duplicate_band_labels_share_contexts(self, rng):
        """Reference keys contexts by label; duplicates must share state."""
        spec = [("same", 1, (8, 8)), ("same", 1, (8, 8))]
        ref = SubbandPlaneCoder(spec)
        fast = VectorizedPlaneCoder(spec)
        bands = [rng.integers(-99, 99, (8, 8)) for _ in range(2)]
        top = top_plane(bands)
        seg_ref = ref.encode(bands, top)
        seg_fast = fast.encode(bands, top)
        for a, b in zip(seg_ref, seg_fast):
            assert a.data == b.data
        for r, f in zip(ref.decode(seg_ref, top), fast.decode(seg_fast, top)):
            assert np.array_equal(r, f)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        height=st.integers(1, 12),
        width=st.integers(1, 12),
        magnitude=st.integers(1, 1 << 15),
    )
    def test_property_random_tiles(self, seed, height, width, magnitude):
        rng = np.random.default_rng(seed)
        band = rng.integers(-magnitude, magnitude + 1, (height, width))
        assert_bitstreams_identical([band])

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), density=st.floats(0.0, 0.2))
    def test_property_sparse_tiles(self, seed, density):
        """Sparse tiles exercise the no-significance shortcut paths."""
        rng = np.random.default_rng(seed)
        band = np.zeros((16, 16), dtype=np.int64)
        mask = rng.random((16, 16)) < density
        band[mask] = rng.integers(-(1 << 12), 1 << 12, int(mask.sum()))
        assert_bitstreams_identical([band])

    def test_out_of_order_segments_rejected(self, rng):
        band = rng.integers(-8, 8, (4, 4))
        _, fast = coder_pair([(4, 4)])
        segments = fast.encode([band], 3)
        with pytest.raises(BitstreamError):
            fast.decode(list(reversed(segments)), 3)

    def test_band_mismatch_rejected(self, rng):
        _, fast = coder_pair([(4, 4)])
        with pytest.raises(BitstreamError):
            fast.encode([rng.integers(0, 4, (5, 4))], 2)


class TestBatchedCoderApi:
    def test_encode_many_matches_reference_encoder(self, rng):
        """The batched (bits, contexts) API is bit-exact vs per-bit calls."""
        n_ctx = 6
        bits = rng.integers(0, 2, 5000).tolist()
        ctxs = rng.integers(0, n_ctx, 5000).tolist()
        ref_enc = ArithmeticEncoder()
        for bit, ctx in zip(bits, ctxs):
            ref_enc.encode(bit, ctx)
        batch = BatchRangeEncoder(BatchContextTable(n_ctx))
        batch.encode_many(bits, ctxs)
        assert batch.finish() == ref_enc.finish()

    def test_probability_schedule_matches_per_bit_updates(self, rng):
        """The cumsum replay equals feeding ContextModel bit by bit."""
        from repro.codec.arith import ContextSet

        n_ctx = 4
        bits = np.asarray(rng.integers(0, 2, 20000), dtype=np.int64)
        ctxs = np.asarray(rng.integers(0, n_ctx, 20000), dtype=np.int64)
        contexts = ContextSet()
        expected = []
        for bit, ctx in zip(bits.tolist(), ctxs.tolist()):
            model = contexts.get(ctx)
            expected.append(model.probability0_scaled())
            model.update(bit)
        table = BatchContextTable(n_ctx)
        probs = probability_schedule(bits, ctxs, table)
        assert probs.tolist() == expected
        for ctx in range(n_ctx):
            model = contexts.get(ctx)
            assert table.count0[ctx] == model.count0
            assert table.count1[ctx] == model.count1


@pytest.fixture(scope="module")
def textured_image():
    return fractal_noise((128, 128), seed=4242, octaves=5, base_cells=4)


FAST_BACKENDS = [b for b in BACKENDS if b != "reference"]


class TestImageCodecDifferential:
    def codecs(self, backend="vectorized", **kwargs):
        cfg = CodecConfig(tile_size=64, **kwargs)
        return (
            ImageCodec(cfg, backend="reference"),
            ImageCodec(cfg, backend=backend),
        )

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_lossy_container_byte_identical(self, textured_image, backend):
        ref, fast = self.codecs(backend, base_step=1 / 256)
        enc_ref = ref.encode(textured_image)
        enc_fast = fast.encode(textured_image)
        assert enc_ref.to_bytes() == enc_fast.to_bytes()
        assert np.array_equal(ref.decode(enc_ref), fast.decode(enc_fast))

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_lossless_container_byte_identical(self, textured_image, backend):
        ref, fast = self.codecs(
            backend, wavelet=Wavelet.LEGALL53, bit_depth=8
        )
        enc_ref = ref.encode(textured_image)
        enc_fast = fast.encode(textured_image)
        assert enc_ref.to_bytes() == enc_fast.to_bytes()
        assert np.array_equal(ref.decode(enc_ref), fast.decode(enc_fast))

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_rate_targeted_roi_layers_byte_identical(
        self, textured_image, backend
    ):
        ref, fast = self.codecs(backend, base_step=1 / 512)
        roi = np.array([[True, False], [True, True]])
        enc_ref = ref.encode(
            textured_image, target_bytes=2000, roi=roi, n_layers=3
        )
        enc_fast = fast.encode(
            textured_image, target_bytes=2000, roi=roi, n_layers=3
        )
        assert enc_ref.to_bytes() == enc_fast.to_bytes()
        for layers in (1, 2, 3):
            assert np.array_equal(
                ref.decode(enc_ref, layers=layers),
                fast.decode(enc_fast, layers=layers),
            )

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_parallel_driver_byte_identical(self, textured_image, backend):
        serial = ImageCodec(CodecConfig(tile_size=64), backend=backend)
        parallel = ImageCodec(
            CodecConfig(tile_size=64), backend=backend, parallel_tiles=2
        )
        try:
            enc_serial = serial.encode(textured_image)
            enc_parallel = parallel.encode(textured_image)
        finally:
            parallel.close()
        assert enc_serial.to_bytes() == enc_parallel.to_bytes()
        assert np.array_equal(
            serial.decode(enc_serial), parallel.decode(enc_parallel)
        )

    @pytest.mark.parametrize("backend", FAST_BACKENDS)
    def test_cross_backend_decode(self, textured_image, backend):
        """Either backend decodes the other's serialized container."""
        from repro.codec.jpeg2000 import EncodedImage

        ref, fast = self.codecs(backend, base_step=1 / 256)
        data = ref.encode(textured_image).to_bytes()
        parsed = EncodedImage.from_bytes(data)
        assert np.array_equal(ref.decode(parsed), fast.decode(parsed))
