"""Unit and property tests for the embedded bit-plane coder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.bitplane import (
    PlaneSegment,
    SubbandPlaneCoder,
    truncation_distortions,
)
from repro.errors import BitstreamError


def make_coder(shapes):
    return SubbandPlaneCoder(
        [(f"b{i}", 1, shape) for i, shape in enumerate(shapes)]
    )


class TestRoundtrip:
    def test_single_band_exact(self, rng):
        band = rng.integers(-100, 100, (16, 16))
        coder = make_coder([(16, 16)])
        top = int(np.abs(band).max()).bit_length() - 1
        segments = coder.encode([band], top)
        decoded = coder.decode(segments, top)[0]
        assert np.array_equal(decoded, band)

    def test_multi_band_exact(self, rng):
        bands = [
            rng.integers(-50, 50, (8, 8)),
            rng.integers(-500, 500, (8, 4)),
            rng.integers(0, 2, (4, 4)),
        ]
        top = max(int(np.abs(b).max()) for b in bands).bit_length() - 1
        coder = make_coder([b.shape for b in bands])
        decoded = coder.decode(coder.encode(bands, top), top)
        for got, want in zip(decoded, bands):
            assert np.array_equal(got, want)

    def test_all_zero_band(self):
        band = np.zeros((8, 8), dtype=np.int64)
        coder = make_coder([(8, 8)])
        segments = coder.encode([band], 0)
        decoded = coder.decode(segments, 0)[0]
        assert np.array_equal(decoded, band)

    def test_empty_band_skipped(self, rng):
        bands = [rng.integers(-5, 5, (4, 4)), np.zeros((0, 3), dtype=np.int64)]
        coder = make_coder([(4, 4), (0, 3)])
        top = 3
        decoded = coder.decode(coder.encode(bands, top), top)
        assert np.array_equal(decoded[0], bands[0])
        assert decoded[1].shape == (0, 3)

    def test_sparse_band_compresses(self, rng):
        band = np.zeros((32, 32), dtype=np.int64)
        band[5, 7] = 1000
        band[20, 3] = -800
        coder = make_coder([(32, 32)])
        top = 9
        segments = coder.encode([band], top)
        total = sum(len(s.data) for s in segments)
        assert total < 300  # vastly below 1024 raw bytes
        assert np.array_equal(coder.decode(segments, top)[0], band)


class TestTruncation:
    def test_prefix_decode_monotone_error(self, rng):
        band = rng.integers(-512, 512, (16, 16))
        top = 9
        coder = make_coder([(16, 16)])
        segments = coder.encode([band], top)
        errors = []
        for keep in range(1, len(segments) + 1):
            decoded = coder.decode(segments[:keep], top)[0]
            errors.append(float(np.sum((decoded - band) ** 2)))
        assert errors == sorted(errors, reverse=True)
        assert errors[-1] == 0.0

    def test_truncated_magnitudes_are_prefixes(self, rng):
        """A k-plane decode equals the magnitude with low planes zeroed."""
        band = rng.integers(0, 256, (8, 8))
        top = 7
        coder = make_coder([(8, 8)])
        segments = coder.encode([band], top)
        for keep in range(1, 8):
            decoded = coder.decode(segments[:keep], top)[0]
            shift = top + 1 - keep
            expected = (band >> shift) << shift
            assert np.array_equal(decoded, expected)

    def test_out_of_order_segments_rejected(self, rng):
        band = rng.integers(-8, 8, (4, 4))
        coder = make_coder([(4, 4)])
        segments = coder.encode([band], 3)
        with pytest.raises(BitstreamError):
            coder.decode(list(reversed(segments)), 3)

    def test_band_count_mismatch_rejected(self, rng):
        coder = make_coder([(4, 4)])
        with pytest.raises(BitstreamError):
            coder.encode([rng.integers(0, 4, (4, 4)), rng.integers(0, 4, (4, 4))], 2)

    def test_band_shape_mismatch_rejected(self, rng):
        coder = make_coder([(4, 4)])
        with pytest.raises(BitstreamError):
            coder.encode([rng.integers(0, 4, (5, 4))], 2)


class TestTruncationDistortions:
    def test_endpoints(self, rng):
        band = rng.integers(0, 64, (8, 8))
        curve = truncation_distortions([band], 5)
        assert curve[-1] == 0.0
        assert curve[0] == float(np.sum(band.astype(np.float64) ** 2))

    def test_monotone_decreasing(self, rng):
        band = rng.integers(0, 1024, (8, 8))
        curve = truncation_distortions([band], 9)
        assert all(a >= b for a, b in zip(curve, curve[1:]))


@given(
    st.integers(1, 12),
    st.integers(1, 12),
    st.integers(0, 2**31 - 1),
    st.integers(1, 1000),
)
@settings(max_examples=40, deadline=None)
def test_property_roundtrip(height, width, seed, peak):
    """Full decode is exact for any band content."""
    band = np.random.default_rng(seed).integers(-peak, peak + 1, (height, width))
    top = max(0, int(np.abs(band).max()).bit_length() - 1)
    coder = SubbandPlaneCoder([("b", 1, (height, width))])
    segments = coder.encode([band], top)
    assert np.array_equal(coder.decode(segments, top)[0], band)
