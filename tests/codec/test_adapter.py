"""Tests for the real-codec adapter and model/real parity."""

import numpy as np
import pytest

from repro.codec.adapter import RealCodecAdapter
from repro.codec.jpeg2000 import CodecConfig
from repro.codec.ratemodel import RateModel
from repro.errors import RateControlError
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="module")
def image():
    return fractal_noise((128, 128), seed=61, octaves=5, base_cells=4)


@pytest.fixture(scope="module")
def adapter():
    return RealCodecAdapter(CodecConfig(tile_size=64, levels=3))


class TestAdapterInterface:
    def test_encode_returns_real_bytes(self, adapter, image):
        result = adapter.encode(image, base_step=1 / 512)
        assert result.coded_bytes > 0
        assert result.payload_bytes <= result.coded_bytes
        assert result.roi_pixels == image.size

    def test_roi_restriction(self, adapter, image):
        roi = np.zeros((2, 2), dtype=bool)
        roi[0, 0] = True
        result = adapter.encode(image, base_step=1 / 512, roi=roi)
        assert result.roi_pixels == 64 * 64
        full = adapter.encode(image, base_step=1 / 512)
        assert result.coded_bytes < full.coded_bytes

    def test_budget_met_by_truncation(self, adapter, image):
        for target in (1000, 3000):
            result = adapter.find_step_for_bytes(image, target)
            # Container overhead is real; allow a small header margin.
            assert result.payload_bytes <= target

    def test_quality_grows_with_budget(self, adapter, image):
        small = adapter.find_step_for_bytes(image, 800)
        large = adapter.find_step_for_bytes(image, 6000)
        assert large.psnr_roi > small.psnr_roi

    def test_rejects_nonpositive_budget(self, adapter, image):
        with pytest.raises(RateControlError):
            adapter.find_step_for_bytes(image, 0)


class TestModelRealParity:
    """The fast rate model must track the real codec."""

    def test_fixed_step_bytes_within_tolerance(self, adapter, image):
        model = RateModel(CodecConfig(tile_size=64, levels=3))
        for step in (1 / 128, 1 / 1024):
            real = adapter.encode(image, base_step=step)
            fast = model.encode(image, base_step=step)
            assert 0.6 * real.coded_bytes <= fast.coded_bytes <= 1.4 * real.coded_bytes

    def test_fixed_step_psnr_close(self, adapter, image):
        model = RateModel(CodecConfig(tile_size=64, levels=3))
        real = adapter.encode(image, base_step=1 / 512)
        fast = model.encode(image, base_step=1 / 512)
        assert abs(real.psnr_roi - fast.psnr_roi) < 1.0


class TestRealBackendPipeline:
    def test_earthplus_encoder_on_real_codec(
        self, two_bands, onboard_detector, tiny_sentinel_dataset
    ):
        """The whole on-board pipeline runs on genuine bitstreams."""
        from repro.core.config import EarthPlusConfig
        from repro.core.encoder import EarthPlusEncoder
        from repro.core.reference import OnboardReferenceCache

        encoder = EarthPlusEncoder(
            config=EarthPlusConfig(gamma_bpp=0.3, codec_backend="real"),
            bands=tiny_sentinel_dataset.bands,
            image_shape=tiny_sentinel_dataset.image_shape,
            cloud_detector=onboard_detector,
            cache=OnboardReferenceCache(lr_tile=8),
        )
        sensor = tiny_sentinel_dataset.sensors["A"]
        t = 0.0
        while t < 200:
            capture = sensor.capture(0, t)
            if capture.cloud_coverage < 0.05:
                break
            t += 1.7
        result = encoder.process_capture(capture)
        assert not result.dropped
        assert result.total_bytes > 0
        for band in result.bands:
            assert np.isfinite(band.psnr_downloaded)
            # Plane-granular truncation at ~0.3 bpp budgets: quality is
            # coarser than the model path but must stay usable.
            assert band.psnr_downloaded > 20.0

    def test_model_and_real_pipeline_agree(
        self, onboard_detector, tiny_sentinel_dataset
    ):
        """Same capture, both backends: bytes within tolerance."""
        from repro.core.config import EarthPlusConfig
        from repro.core.encoder import EarthPlusEncoder
        from repro.core.reference import OnboardReferenceCache

        sensor = tiny_sentinel_dataset.sensors["A"]
        t = 0.0
        while t < 200:
            capture = sensor.capture(0, t)
            if capture.cloud_coverage < 0.05:
                break
            t += 1.7
        totals = {}
        for backend in ("model", "real"):
            encoder = EarthPlusEncoder(
                config=EarthPlusConfig(gamma_bpp=0.3, codec_backend=backend),
                bands=tiny_sentinel_dataset.bands,
                image_shape=tiny_sentinel_dataset.image_shape,
                cloud_detector=onboard_detector,
                cache=OnboardReferenceCache(lr_tile=8),
            )
            totals[backend] = encoder.process_capture(capture).total_bytes
        ratio = totals["real"] / totals["model"]
        assert 0.5 < ratio < 2.0

    def test_reference_and_vectorized_pipeline_identical(
        self, onboard_detector, tiny_sentinel_dataset
    ):
        """The vectorized backend is bit-exact through the whole pipeline:
        identical byte counts and identical PSNR, not merely 'close'."""
        from repro.core.config import EarthPlusConfig
        from repro.core.encoder import EarthPlusEncoder
        from repro.core.reference import OnboardReferenceCache

        sensor = tiny_sentinel_dataset.sensors["A"]
        t = 0.0
        while t < 200:
            capture = sensor.capture(0, t)
            if capture.cloud_coverage < 0.05:
                break
            t += 1.7
        results = {}
        for backend in ("reference", "vectorized"):
            encoder = EarthPlusEncoder(
                config=EarthPlusConfig(gamma_bpp=0.3, codec_backend=backend),
                bands=tiny_sentinel_dataset.bands,
                image_shape=tiny_sentinel_dataset.image_shape,
                cloud_detector=onboard_detector,
                cache=OnboardReferenceCache(lr_tile=8),
            )
            results[backend] = encoder.process_capture(capture)
        ref, vec = results["reference"], results["vectorized"]
        assert ref.total_bytes == vec.total_bytes
        for band_ref, band_vec in zip(ref.bands, vec.bands):
            assert band_ref.bytes_downlinked == band_vec.bytes_downlinked
            assert band_ref.psnr_downloaded == band_vec.psnr_downloaded
            assert np.array_equal(
                band_ref.reconstruction, band_vec.reconstruction
            )
