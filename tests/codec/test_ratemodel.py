"""Tests for the fast rate model, including calibration against the coder."""

import numpy as np
import pytest

from repro.codec.jpeg2000 import CodecConfig, ImageCodec
from repro.codec.metrics import psnr
from repro.codec.ratemodel import RateModel, estimate_band_bits
from repro.errors import CodecError, RateControlError
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="module")
def image():
    return fractal_noise((128, 128), seed=31, octaves=5, base_cells=4)


@pytest.fixture(scope="module")
def model():
    return RateModel(CodecConfig(tile_size=64, levels=3))


class TestEstimateBandBits:
    def test_zero_band(self):
        bits, planes = estimate_band_bits(np.zeros((8, 8), dtype=np.int64))
        assert bits == 0.0
        assert planes == 0

    def test_empty_band(self):
        bits, planes = estimate_band_bits(np.zeros((0, 4), dtype=np.int64))
        assert bits == 0.0 and planes == 0

    def test_sparse_cheaper_than_dense(self, rng):
        dense = rng.integers(-100, 100, (16, 16))
        sparse = np.zeros((16, 16), dtype=np.int64)
        sparse[0, 0] = 100
        dense_bits, _ = estimate_band_bits(dense)
        sparse_bits, _ = estimate_band_bits(sparse)
        assert sparse_bits < dense_bits / 4

    def test_plane_count(self):
        band = np.array([[255]], dtype=np.int64)
        _, planes = estimate_band_bits(band)
        assert planes == 8


class TestAgainstRealCoder:
    @pytest.mark.parametrize("step", [1 / 128, 1 / 512, 1 / 2048])
    def test_byte_estimate_within_tolerance(self, image, model, step):
        """The rate model must track the true coder within 35 %."""
        codec = ImageCodec(CodecConfig(tile_size=64, levels=3))
        real = len(codec.encode(image, base_step=step).to_bytes())
        estimated = model.encode(image, step).coded_bytes
        assert 0.65 * real <= estimated <= 1.35 * real

    def test_psnr_matches_exactly(self, image, model):
        """Distortion is computed from the true quantized reconstruction,
        so it must equal the real decoder's within float tolerance."""
        step = 1 / 512
        codec = ImageCodec(CodecConfig(tile_size=64, levels=3))
        real_recon = codec.decode(codec.encode(image, base_step=step))
        model_result = model.encode(image, step)
        assert abs(
            psnr(image, real_recon) - model_result.psnr_roi
        ) < 0.5


class TestEncode:
    def test_monotone_rate_in_step(self, image, model):
        sizes = [
            model.encode(image, step).coded_bytes
            for step in [1 / 64, 1 / 256, 1 / 1024]
        ]
        assert sizes == sorted(sizes)

    def test_roi_restricts_cost_and_recon(self, image, model):
        roi = np.zeros((2, 2), dtype=bool)
        roi[0, 0] = True
        result = model.encode(image, 1 / 512, roi)
        full = model.encode(image, 1 / 512)
        assert result.coded_bytes < full.coded_bytes
        assert np.allclose(result.reconstruction[64:, 64:], 0.0)
        assert result.roi_pixels == 64 * 64

    def test_rejects_bad_step(self, image, model):
        with pytest.raises(CodecError):
            model.encode(image, 0.0)

    def test_rejects_non_2d(self, model):
        with pytest.raises(CodecError):
            model.encode(np.zeros((2, 2, 2)))

    def test_bits_per_roi_pixel(self, image, model):
        result = model.encode(image, 1 / 512)
        assert result.bits_per_roi_pixel == pytest.approx(
            result.coded_bytes * 8 / image.size
        )


class TestStepSearch:
    @pytest.mark.parametrize("target", [1200, 3000, 8000])
    def test_meets_budget(self, image, model, target):
        result = model.find_step_for_bytes(image, target)
        assert result.coded_bytes <= target * 1.08

    def test_larger_budget_better_quality(self, image, model):
        small = model.find_step_for_bytes(image, 1000)
        large = model.find_step_for_bytes(image, 8000)
        assert large.psnr_roi > small.psnr_roi

    def test_impossible_budget_returns_floor(self, image, model):
        result = model.find_step_for_bytes(image, 10)
        assert result.coded_bytes > 10  # best-effort floor rate

    def test_rejects_nonpositive_target(self, image, model):
        with pytest.raises(RateControlError):
            model.find_step_for_bytes(image, 0)

    def test_roi_budget(self, image, model):
        roi = np.zeros((2, 2), dtype=bool)
        roi[1, 0] = True
        result = model.find_step_for_bytes(image, 900, roi)
        assert result.coded_bytes <= 980
        assert result.roi_pixels == 64 * 64


class TestBatchedEstimate:
    """The histogram plane walk (the fast path's entropy estimate) must be
    bit-identical to the scalar estimate_band_bits walk."""

    def test_plane_walk_matches_scalar_walk(self, rng):
        from repro.codec.ratemodel import (
            _plane_walk_bits,
            _topbit_histogram,
            estimate_band_bits,
        )

        stack = rng.normal(0, 40, (7, 16, 16)).astype(np.int32)
        stack[2] = 0  # all-zero subband
        stack[4] = rng.normal(0, 3000, (16, 16)).astype(np.int32)  # deep planes
        stack[5, :, :] = 0
        stack[5, 3, 7] = 1  # single minimal coefficient
        counts, tops, size = _topbit_histogram(stack)
        bits = _plane_walk_bits(
            counts, tops, np.full(stack.shape[0], size, dtype=np.int64)
        )
        batched = [
            (float(bits[i]), int(tops[i]) + 1 if tops[i] >= 0 else 0)
            for i in range(stack.shape[0])
        ]
        scalar = [estimate_band_bits(band) for band in stack]
        assert batched == scalar

    def test_magnitude_histogram_matches_signed_quantize(self, rng):
        from repro.codec.ratemodel import (
            _magnitude_histogram,
            _quantize_stack,
            _topbit_histogram,
        )

        stack = rng.normal(0, 0.3, (5, 16, 16))
        for step in (1 / 16.0, 1 / 4096.0):
            sign_free = _magnitude_histogram(stack, step)
            signed = _topbit_histogram(_quantize_stack(stack, step))
            assert np.array_equal(sign_free[0], signed[0])
            assert np.array_equal(sign_free[1], signed[1])
            assert sign_free[2] == signed[2]

    def test_int32_wrap_steps_match_reference_encode(self, rng):
        """Absurdly fine steps wrap in int32; fast must still match."""
        from repro import perf

        model = RateModel(CodecConfig(tile_size=64))
        image = rng.random((64, 64))
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with perf.fastpath_disabled():
                ref = model.encode(image, 1e-9)
            with perf.fastpath_enabled():
                fast = model.encode(image, 1e-9)
        assert ref.coded_bytes == fast.coded_bytes
        assert ref.payload_bytes == fast.payload_bytes
        # Reconstructions too: the native dequantize must replicate even
        # numpy's int32 wrap quirk (np.abs leaves INT32_MIN negative).
        assert np.array_equal(ref.reconstruction, fast.reconstruction)

    def test_fused_payload_rows_match_per_block(self, rng):
        """The one-call fused histogram path is row-identical to the
        per-(group, subband) path (same bits, same reconstruction)."""
        import os

        from repro.codec import registry

        if registry.kernels() is None:
            pytest.skip("compiled kernels unavailable")
        model = RateModel(CodecConfig(tile_size=64))
        image = rng.random((160, 96))
        fused = model.find_step_for_bytes(image, 3000)
        saved = os.environ.get(registry.ENV_BACKEND)
        os.environ[registry.ENV_BACKEND] = "vectorized"  # kernels off
        try:
            plain = model.find_step_for_bytes(image, 3000)
        finally:
            if saved is None:
                os.environ.pop(registry.ENV_BACKEND, None)
            else:
                os.environ[registry.ENV_BACKEND] = saved
        assert fused.coded_bytes == plain.coded_bytes
        assert fused.base_step == plain.base_step
        assert np.array_equal(fused.reconstruction, plain.reconstruction)
