"""Golden bitstream fixtures: the wire format is pinned to checked-in bytes.

Each fixture under ``tests/codec/golden/`` holds a small deterministic input
tile (or image) together with the exact codeword bytes the codec emitted
when the fixture was recorded.  Any change that alters the wire format —
context modelling, range-coder arithmetic, container layout — fails these
tests loudly instead of silently invalidating every stored bitstream.

Both backends are checked against the same golden bytes, so the fixtures
double as a frozen differential baseline.

Regenerate (only when a wire-format change is intentional) with::

    PYTHONPATH=src python tests/codec/test_golden.py --regen
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.codec import registry
from repro.codec.bitplane import SubbandPlaneCoder
from repro.codec.jpeg2000 import CodecConfig, ImageCodec
from repro.codec.dwt import Wavelet

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Every available engine decodes/encodes against the same golden bytes —
#: the fixtures double as a frozen differential baseline for all of them.
BACKENDS = tuple(
    name for name in registry.names() if registry.get(name).available()
)


def _tile_cases() -> dict[str, tuple[list, list[np.ndarray], int]]:
    """Deterministic subband tiles: (band_shapes, bands, max_plane)."""
    rng = np.random.default_rng(0xEA57)
    random_bands = [
        rng.integers(-300, 300, (8, 8)),
        rng.integers(-20, 20, (4, 4)),
    ]
    sparse = np.zeros((8, 8), dtype=np.int64)
    sparse[2, 5] = 777
    sparse[6, 1] = -45
    gradient = (
        np.arange(64, dtype=np.int64).reshape(8, 8) * 3 - 96
    )
    cases = {
        "random_two_band": random_bands,
        "all_zero": [np.zeros((8, 8), dtype=np.int64)],
        "single_coefficient": [sparse],
        "gradient": [gradient],
    }
    out = {}
    for name, bands in cases.items():
        shapes = [(f"b{i}", 1, b.shape) for i, b in enumerate(bands)]
        peak = max((int(np.abs(b).max()) for b in bands), default=0)
        out[name] = (shapes, bands, max(peak.bit_length() - 1, 0))
    return out


def _image_case() -> tuple[CodecConfig, np.ndarray]:
    """A deterministic 16x16 image for the full-container fixture."""
    rng = np.random.default_rng(0x90FD)
    image = rng.random((16, 16))
    config = CodecConfig(
        tile_size=16, levels=2, wavelet=Wavelet.CDF97, base_step=1.0 / 128.0
    )
    return config, image


def _tile_fixture_payload(name, shapes, bands, max_plane) -> dict:
    coder = SubbandPlaneCoder(shapes)
    segments = coder.encode(bands, max_plane)
    return {
        "name": name,
        "band_shapes": [[key, level, list(shape)] for key, level, shape in shapes],
        "bands": [band.tolist() for band in bands],
        "max_plane": max_plane,
        "segments": [
            {"plane": seg.plane, "hex": seg.data.hex()} for seg in segments
        ],
    }


def _image_fixture_payload() -> dict:
    config, image = _image_case()
    codec = ImageCodec(config, backend="reference")
    encoded = codec.encode(image, n_layers=2)
    return {
        "name": "image_container",
        "container_hex": encoded.to_bytes().hex(),
    }


def regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, (shapes, bands, max_plane) in _tile_cases().items():
        payload = _tile_fixture_payload(name, shapes, bands, max_plane)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(f"wrote {path}")
    payload = _image_fixture_payload()
    path = GOLDEN_DIR / "image_container.json"
    path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"wrote {path}")


def _load(name: str) -> dict:
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"golden fixture {path} missing; regenerate with "
        "PYTHONPATH=src python tests/codec/test_golden.py --regen"
    )
    return json.loads(path.read_text())


@pytest.mark.parametrize("case_name", sorted(_tile_cases()))
@pytest.mark.parametrize("backend", BACKENDS)
def test_tile_bitstreams_match_golden(case_name, backend):
    shapes, bands, max_plane = _tile_cases()[case_name]
    fixture = _load(case_name)
    # The fixture's stored inputs must match the generator (guards against
    # editing one side only).
    assert fixture["max_plane"] == max_plane
    for stored, band in zip(fixture["bands"], bands):
        assert np.array_equal(np.asarray(stored), band)
    coder = registry.get(backend).coder_factory(shapes)
    segments = coder.encode(bands, max_plane)
    assert len(segments) == len(fixture["segments"])
    for seg, want in zip(segments, fixture["segments"]):
        assert seg.plane == want["plane"]
        assert seg.data.hex() == want["hex"], (
            f"{case_name} plane {seg.plane}: wire format changed; if "
            "intentional, regenerate the golden fixtures"
        )
    # The stored codewords must also decode back to the original bands.
    decoded = coder.decode(segments, max_plane)
    for got, band in zip(decoded, bands):
        assert np.array_equal(got, band)


@pytest.mark.parametrize("backend", BACKENDS)
def test_image_container_matches_golden(backend):
    config, image = _image_case()
    fixture = _load("image_container")
    codec = ImageCodec(config, backend=backend)
    encoded = codec.encode(image, n_layers=2)
    assert encoded.to_bytes().hex() == fixture["container_hex"], (
        "EncodedImage wire format changed; if intentional, regenerate the "
        "golden fixtures"
    )


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
