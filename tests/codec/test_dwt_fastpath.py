"""Vectorized-DWT differential harness and golden lifting fixtures.

Two layers of protection for the fast-path lifting kernels:

* **Differential**: the vectorized whole-array lifting must match the
  retained per-sample reference loops — bit-exact for LeGall 5/3,
  float-identical (exact ``==``, not approximate) for CDF 9/7 — across
  odd/even/1-pixel/non-square shapes and random content, including the
  batched :func:`~repro.codec.dwt.dwt_many`/:func:`~repro.codec.dwt.idwt_many`
  APIs.

* **Golden**: checked-in fixtures pin the exact 5/3 analysis outputs and
  bit-exact roundtrips (plus 9/7 subbands) for deterministic inputs, so a
  regression that changed *both* implementations in lockstep would still
  fail loudly.

Regenerate fixtures (only when the transform is intentionally changed)::

    PYTHONPATH=src python tests/codec/test_dwt_fastpath.py --regen
"""

import math
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.codec.dwt import (
    Wavelet,
    dwt_many,
    forward_dwt2d,
    idwt_many,
    inverse_dwt2d,
)

GOLDEN_PATH = Path(__file__).parent / "golden" / "dwt_lifting.npz"

#: Shape/level cases covering even, odd, single-pixel rows/columns, and
#: non-square geometry (the encoder's edge tiles).
GOLDEN_CASES = [
    ("even_square", (64, 64), 3),
    ("odd_square", (63, 61), 3),
    ("non_square", (17, 33), 2),
    ("one_row", (1, 9), 1),
    ("one_col", (9, 1), 1),
    ("one_pixel", (1, 1), 1),
    ("tiny_even", (2, 2), 1),
]


def _golden_inputs():
    """Deterministic integer (5/3) and float (9/7) inputs per case."""
    out = {}
    for name, shape, levels in GOLDEN_CASES:
        rng = np.random.default_rng(0xD77 + len(name) * 131 + shape[0] * 7 + shape[1])
        out[name] = (
            shape,
            levels,
            rng.integers(-2048, 2048, shape),
            rng.random(shape),
        )
    return out


def _flatten_subbands(coeffs):
    """Subbands as a dict of arrays keyed by ``name_level``."""
    return {
        f"{name}_{level}_{idx}": band
        for idx, (name, level, band) in enumerate(coeffs.subbands())
    }


def regenerate() -> None:
    """Write the golden fixture from the reference (loop) implementation."""
    payload = {}
    with perf.fastpath_disabled():
        for name, (shape, levels, ints, floats) in _golden_inputs().items():
            c53 = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
            c97 = forward_dwt2d(floats, levels, Wavelet.CDF97)
            payload[f"{name}__input53"] = ints
            payload[f"{name}__input97"] = floats
            for key, band in _flatten_subbands(c53).items():
                payload[f"{name}__53__{key}"] = band
            for key, band in _flatten_subbands(c97).items():
                payload[f"{name}__97__{key}"] = band
    GOLDEN_PATH.parent.mkdir(exist_ok=True)
    np.savez_compressed(GOLDEN_PATH, **payload)
    print(f"wrote {GOLDEN_PATH} ({len(payload)} arrays)")


@pytest.fixture(scope="module")
def golden():
    if not GOLDEN_PATH.exists():
        pytest.fail(
            "missing golden DWT fixture; regenerate with "
            "`PYTHONPATH=src python tests/codec/test_dwt_fastpath.py --regen`"
        )
    return np.load(GOLDEN_PATH)


class TestGoldenLifting:
    @pytest.mark.parametrize("name,shape,levels", GOLDEN_CASES)
    def test_53_analysis_pinned(self, golden, name, shape, levels):
        """Vectorized 5/3 analysis reproduces the checked-in subbands."""
        _, _, ints, _ = _golden_inputs()[name]
        assert np.array_equal(ints, golden[f"{name}__input53"])
        coeffs = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
        for key, band in _flatten_subbands(coeffs).items():
            assert np.array_equal(band, golden[f"{name}__53__{key}"]), (
                f"{name}: subband {key} diverged from golden"
            )

    @pytest.mark.parametrize("name,shape,levels", GOLDEN_CASES)
    def test_53_roundtrip_bit_exact(self, golden, name, shape, levels):
        """5/3 synthesis of the pinned subbands recovers the pinned input."""
        _, _, ints, _ = _golden_inputs()[name]
        recon = inverse_dwt2d(forward_dwt2d(ints, levels, Wavelet.LEGALL53))
        assert recon.dtype == np.int64
        assert np.array_equal(recon, ints)

    @pytest.mark.parametrize("name,shape,levels", GOLDEN_CASES)
    def test_97_analysis_pinned(self, golden, name, shape, levels):
        """Vectorized 9/7 analysis is float-identical to the pinned bytes."""
        _, _, _, floats = _golden_inputs()[name]
        coeffs = forward_dwt2d(floats, levels, Wavelet.CDF97)
        for key, band in _flatten_subbands(coeffs).items():
            assert np.array_equal(band, golden[f"{name}__97__{key}"]), (
                f"{name}: subband {key} diverged from golden"
            )


class TestDifferential:
    """Vectorized lifting vs retained reference loops on random arrays."""

    @pytest.mark.parametrize("name,shape,levels", GOLDEN_CASES)
    def test_case_shapes(self, name, shape, levels, rng):
        ints = rng.integers(-4096, 4096, shape)
        floats = rng.random(shape)
        with perf.fastpath_disabled():
            ref53 = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
            ref97 = forward_dwt2d(floats, levels, Wavelet.CDF97)
            ref53_inv = inverse_dwt2d(ref53)
            ref97_inv = inverse_dwt2d(ref97)
        with perf.fastpath_enabled():
            fast53 = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
            fast97 = forward_dwt2d(floats, levels, Wavelet.CDF97)
            fast53_inv = inverse_dwt2d(fast53)
            fast97_inv = inverse_dwt2d(fast97)
        for (_, _, a), (_, _, b) in zip(ref53.subbands(), fast53.subbands()):
            assert np.array_equal(a, b)
        for (_, _, a), (_, _, b) in zip(ref97.subbands(), fast97.subbands()):
            assert np.array_equal(a, b)
        assert np.array_equal(ref53_inv, fast53_inv)
        assert np.array_equal(ref97_inv, fast97_inv)

    @given(
        st.integers(1, 40),
        st.integers(1, 40),
        st.integers(1, 3),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_vectorized_matches_reference(
        self, height, width, levels, seed
    ):
        feasible = max(1, int(math.floor(math.log2(max(1, min(height, width))))))
        levels = min(levels, feasible)
        item_rng = np.random.default_rng(seed)
        ints = item_rng.integers(-1 << 12, 1 << 12, (height, width))
        floats = item_rng.random((height, width))
        with perf.fastpath_disabled():
            ref53 = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
            ref97 = forward_dwt2d(floats, levels, Wavelet.CDF97)
        with perf.fastpath_enabled():
            fast53 = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
            fast97 = forward_dwt2d(floats, levels, Wavelet.CDF97)
        for (_, _, a), (_, _, b) in zip(ref53.subbands(), fast53.subbands()):
            assert np.array_equal(a, b)
        for (_, _, a), (_, _, b) in zip(ref97.subbands(), fast97.subbands()):
            assert np.array_equal(a, b)


class TestBatchedTransforms:
    def test_dwt_many_matches_singles(self, rng):
        tiles = [rng.random((64, 64)) for _ in range(7)]
        batch = dwt_many(tiles, 3, Wavelet.CDF97)
        for tile, coeffs in zip(tiles, batch):
            solo = forward_dwt2d(tile, 3, Wavelet.CDF97)
            for (_, _, a), (_, _, b) in zip(
                coeffs.subbands(), solo.subbands()
            ):
                assert np.array_equal(a, b)

    def test_dwt_many_53_bit_exact(self, rng):
        tiles = [rng.integers(0, 4096, (33, 31)) for _ in range(5)]
        batch = dwt_many(tiles, 2, Wavelet.LEGALL53)
        for tile, coeffs in zip(tiles, batch):
            solo = forward_dwt2d(tile, 2, Wavelet.LEGALL53)
            for (_, _, a), (_, _, b) in zip(
                coeffs.subbands(), solo.subbands()
            ):
                assert np.array_equal(a, b)

    def test_idwt_many_matches_singles(self, rng):
        tiles = [rng.random((48, 40)) for _ in range(6)]
        batch = dwt_many(tiles, 2, Wavelet.CDF97)
        recon_stack = idwt_many(batch)
        for idx, tile in enumerate(tiles):
            solo = inverse_dwt2d(forward_dwt2d(tile, 2, Wavelet.CDF97))
            assert np.array_equal(recon_stack[idx], solo)

    def test_dwt_many_stack_input(self, rng):
        stack = rng.random((4, 32, 32))
        from_list = dwt_many([stack[i] for i in range(4)], 2)
        from_stack = dwt_many(stack, 2)
        for a, b in zip(from_list, from_stack):
            assert np.array_equal(a.approx, b.approx)

    def test_dwt_many_empty(self):
        assert dwt_many([], 2) == []
        assert idwt_many([]).size == 0

    def test_dwt_many_rejects_mixed_shapes(self, rng):
        from repro.errors import CodecError

        with pytest.raises(CodecError):
            dwt_many([rng.random((8, 8)), rng.random((8, 9))], 1)


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print("usage: test_dwt_fastpath.py --regen")
