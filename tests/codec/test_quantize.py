"""Unit tests for dead-zone quantization."""

import numpy as np
import pytest

from repro.codec.dwt import Wavelet, forward_dwt2d
from repro.codec.quantize import (
    QuantizerSpec,
    dequantize_coeffs,
    max_bitplane,
    quantize_coeffs,
    subband_step,
)
from repro.errors import CodecError


@pytest.fixture()
def decomposition(rng):
    return forward_dwt2d(rng.random((64, 64)), 3, Wavelet.CDF97)


class TestSubbandStep:
    def test_ll_finer_than_hh(self):
        assert subband_step(0.01, "LL", 1) < subband_step(0.01, "HH", 1)

    def test_coarser_levels_get_finer_steps(self):
        assert subband_step(0.01, "HL", 3) < subband_step(0.01, "HL", 1)

    def test_scales_with_base(self):
        assert subband_step(0.02, "LH", 2) == pytest.approx(
            2 * subband_step(0.01, "LH", 2)
        )

    def test_rejects_nonpositive_base(self):
        with pytest.raises(CodecError):
            subband_step(0.0, "LL", 1)

    def test_rejects_unknown_orientation(self):
        with pytest.raises(CodecError):
            subband_step(0.01, "XX", 1)


class TestQuantizeRoundtrip:
    def test_error_bounded_by_step(self, decomposition):
        spec = QuantizerSpec(base_step=1 / 256)
        quantized = quantize_coeffs(decomposition, spec)
        dequantized = dequantize_coeffs(quantized, spec)
        for (name, level, orig), (_, _, recon) in zip(
            decomposition.subbands(), dequantized
        ):
            step = spec.step_for(name, level)
            # Dead-zone: |error| < step inside the zone, <= step/2 outside.
            assert np.abs(orig - recon).max() <= step + 1e-12

    def test_zero_maps_to_zero(self, decomposition):
        spec = QuantizerSpec(base_step=1 / 64)
        quantized = quantize_coeffs(decomposition, spec)
        dequantized = dequantize_coeffs(quantized, spec)
        for (_, _, q), (_, _, d) in zip(quantized, dequantized):
            assert np.all((q == 0) == (d == 0.0))

    def test_signs_preserved(self, decomposition):
        spec = QuantizerSpec(base_step=1 / 512)
        quantized = quantize_coeffs(decomposition, spec)
        dequantized = dequantize_coeffs(quantized, spec)
        for (_, _, q), (_, _, d) in zip(quantized, dequantized):
            nonzero = q != 0
            assert np.all(np.sign(q[nonzero]) == np.sign(d[nonzero]))

    def test_coarser_step_fewer_nonzero(self, decomposition):
        fine = quantize_coeffs(decomposition, QuantizerSpec(1 / 512))
        coarse = quantize_coeffs(decomposition, QuantizerSpec(1 / 16))
        fine_nonzero = sum(int((b != 0).sum()) for _, _, b in fine)
        coarse_nonzero = sum(int((b != 0).sum()) for _, _, b in coarse)
        assert coarse_nonzero < fine_nonzero


class TestMaxBitplane:
    def test_all_zero(self):
        bands = [("LL", 1, np.zeros((4, 4), dtype=np.int32))]
        assert max_bitplane(bands) == -1

    def test_single_coefficient(self):
        bands = [("LL", 1, np.array([[9]], dtype=np.int32))]
        assert max_bitplane(bands) == 3  # 9 = 0b1001

    def test_negative_values_counted_by_magnitude(self):
        bands = [("HH", 1, np.array([[-16]], dtype=np.int32))]
        assert max_bitplane(bands) == 4

    def test_across_bands(self):
        bands = [
            ("LL", 1, np.array([[3]], dtype=np.int32)),
            ("HH", 1, np.array([[120]], dtype=np.int32)),
        ]
        assert max_bitplane(bands) == 6
