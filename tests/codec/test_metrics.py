"""Unit tests for quality/rate metrics."""

import math

import numpy as np
import pytest

from repro.codec.metrics import (
    compression_ratio,
    mse,
    psnr,
    weighted_mean_psnr,
)


class TestMSE:
    def test_identical_is_zero(self, rng):
        image = rng.random((8, 8))
        assert mse(image, image) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 0.5)
        assert mse(a, b) == pytest.approx(0.25)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_symmetric(self, rng):
        a, b = rng.random((5, 5)), rng.random((5, 5))
        assert mse(a, b) == pytest.approx(mse(b, a))


class TestPSNR:
    def test_identical_is_inf(self, rng):
        image = rng.random((4, 4))
        assert math.isinf(psnr(image, image))

    def test_known_value(self):
        a = np.zeros((10, 10))
        b = np.full((10, 10), 0.1)
        assert psnr(a, b) == pytest.approx(20.0)

    def test_max_value_scaling(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 25.5)
        assert psnr(a, b, max_value=255.0) == pytest.approx(20.0)

    def test_smaller_error_higher_psnr(self, rng):
        truth = rng.random((8, 8))
        small = truth + 0.01
        large = truth + 0.1
        assert psnr(truth, small) > psnr(truth, large)


class TestCompressionRatio:
    def test_basic(self):
        assert compression_ratio(1000, 100) == pytest.approx(10.0)

    def test_zero_coded_is_inf(self):
        assert math.isinf(compression_ratio(1000, 0))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            compression_ratio(-1, 10)


class TestWeightedMeanPSNR:
    def test_single_value(self):
        assert weighted_mean_psnr([30.0]) == pytest.approx(30.0)

    def test_pooled_in_mse_domain(self):
        # 20 dB (MSE 0.01) and 40 dB (MSE 0.0001): pooled MSE 0.00505.
        pooled = weighted_mean_psnr([20.0, 40.0])
        assert pooled == pytest.approx(-10 * math.log10(0.00505), abs=1e-6)
        # The pool is dominated by the worse image, unlike a dB average.
        assert pooled < 30.0

    def test_weights(self):
        uniform = weighted_mean_psnr([20.0, 40.0])
        skewed = weighted_mean_psnr([20.0, 40.0], [1.0, 9.0])
        assert skewed > uniform

    def test_inf_contributes_zero_mse(self):
        assert weighted_mean_psnr([math.inf, math.inf]) == math.inf
        assert weighted_mean_psnr([30.0, math.inf]) > 30.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean_psnr([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            weighted_mean_psnr([30.0], [1.0, 2.0])
