"""Truncated/corrupted bitstream handling across every decoder entry point.

The contract: a decoder fed garbage, a truncated prefix, or a bit-flipped
stream either succeeds (producing some reconstruction — embedded streams
legitimately decode from prefixes) or raises :class:`BitstreamError`.  It
must never leak ``IndexError``, ``struct.error``, ``OverflowError`` or any
other non-repro exception, and never hang or allocate absurdly.
"""

import numpy as np
import pytest

from repro.codec import registry
from repro.codec.arith import ArithmeticDecoder, ContextSet
from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.fastpath import BatchContextTable, BatchRangeDecoder
from repro.codec.jpeg2000 import CodecConfig, EncodedImage, ImageCodec
from repro.errors import BitstreamError, ReproError
from repro.imagery.noise import fractal_noise

#: Every registered entropy engine available on this machine — the
#: corruption contract is engine-independent, so each engine takes the
#: same battery (``compiled`` drops out only without a C toolchain).
BACKENDS = tuple(
    name for name in registry.names() if registry.get(name).available()
)


class TestArithDecoderEntryPoint:
    def test_empty_data_eventually_raises(self):
        # Bypass bits consume input fastest; adaptive decode of an empty
        # stream legitimately yields zero bits for a long while (embedded
        # truncation semantics) before tripping the far-past-end guard.
        decoder = ArithmeticDecoder(b"")
        with pytest.raises(BitstreamError):
            for _ in range(10_000):
                decoder.decode_bit_raw()

    def test_truncated_data_eventually_raises(self):
        decoder = ArithmeticDecoder(b"\x13\x37")
        with pytest.raises(BitstreamError):
            for _ in range(10_000):
                decoder.decode_bit_raw()

    def test_garbage_decodes_or_raises_bitstream_error(self, rng):
        for seed in range(20):
            data = bytes(np.random.default_rng(seed).integers(0, 256, 24, dtype=np.uint8))
            decoder = ArithmeticDecoder(data)
            try:
                for _ in range(2000):
                    decoder.decode("ctx")
            except BitstreamError:
                pass

    def test_batched_decoder_matches_reference_on_truncated_data(self):
        """The fast-path decoder emits the same bits, then raises the same
        overrun error, as the reference decoder on truncated data.

        Rotating over many near-fresh contexts keeps every probability near
        1/2, so the decoders consume input fast enough to trip the
        far-past-end guard within the loop budget.
        """
        n_ctx = 1024
        data = b"\x42"
        reference = ArithmeticDecoder(data, ContextSet())
        batched = BatchRangeDecoder(data, BatchContextTable(n_ctx))
        ref_error = fast_error = False
        ref_bits: list[int] = []
        fast_bits: list[int] = []
        for i in range(50_000):
            try:
                ref_bits.append(reference.decode(i % n_ctx))
            except BitstreamError:
                ref_error = True
                break
        for i in range(50_000):
            # One bit per call so the decoded prefix survives the raise.
            try:
                fast_bits.extend(batched.decode_ref_pass(1, i % n_ctx))
            except BitstreamError:
                fast_error = True
                break
        assert ref_error and fast_error
        assert ref_bits == fast_bits


class TestBitReaderEntryPoint:
    def test_read_bit_past_end(self):
        reader = BitReader(b"")
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_read_bytes_past_end(self):
        reader = BitReader(b"ab")
        with pytest.raises(BitstreamError):
            reader.read_bytes(3)

    def test_truncated_uvarint(self):
        writer = BitWriter()
        writer.write_uvarint(300)
        data = writer.getvalue()[:-1]  # drop the terminating byte
        with pytest.raises(BitstreamError):
            BitReader(data).read_uvarint()

    def test_unterminated_uvarint_rejected(self):
        with pytest.raises(BitstreamError):
            BitReader(b"\x80" * 12).read_uvarint()

    def test_fuzzed_reads_never_leak_index_error(self):
        rng = np.random.default_rng(99)
        for _ in range(50):
            data = bytes(rng.integers(0, 256, int(rng.integers(0, 12)), dtype=np.uint8))
            reader = BitReader(data)
            ops = [
                lambda: reader.read_bit(),
                lambda: reader.read_bits(int(rng.integers(0, 16))),
                lambda: reader.read_bytes(int(rng.integers(0, 8))),
                lambda: (reader.align(), reader.read_uvarint()),
            ]
            try:
                for _ in range(8):
                    ops[int(rng.integers(0, len(ops)))]()
            except BitstreamError:
                pass


@pytest.fixture(scope="module")
def valid_container() -> bytes:
    image = fractal_noise((64, 64), seed=31337, octaves=4, base_cells=4)
    codec = ImageCodec(CodecConfig(tile_size=32, base_step=1 / 128))
    return codec.encode(image, n_layers=2).to_bytes()


class TestContainerEntryPoint:
    def test_bad_magic(self):
        with pytest.raises(BitstreamError):
            EncodedImage.from_bytes(b"NOPE" + b"\x00" * 64)

    def test_empty_and_tiny_inputs(self):
        for n in range(8):
            with pytest.raises(BitstreamError):
                EncodedImage.from_bytes(b"\xff" * n)

    def test_every_truncated_prefix_raises_bitstream_error(self, valid_container):
        """No prefix of a valid container may leak a non-repro exception."""
        data = valid_container
        for cut in range(len(data)):
            with pytest.raises(BitstreamError):
                EncodedImage.from_bytes(data[:cut])

    def test_single_byte_corruptions_parse_or_raise(self, valid_container):
        """Flip every byte (sampled) → parse + decode never leak raw errors."""
        data = bytearray(valid_container)
        codec = ImageCodec(CodecConfig(tile_size=32, base_step=1 / 128))
        rng = np.random.default_rng(7)
        positions = rng.choice(len(data), size=min(160, len(data)), replace=False)
        for pos in positions:
            corrupted = bytearray(data)
            corrupted[pos] ^= int(rng.integers(1, 256))
            try:
                parsed = EncodedImage.from_bytes(bytes(corrupted))
                codec.decode(parsed)
            except ReproError:
                # BitstreamError/CodecError are the sanctioned failures.
                pass

    def test_fuzzed_random_blobs(self):
        magic_prefixed = np.random.default_rng(3)
        for seed in range(40):
            rng = np.random.default_rng(seed)
            blob = bytes(rng.integers(0, 256, int(rng.integers(0, 96)), dtype=np.uint8))
            if magic_prefixed.random() < 0.5:
                blob = b"EPJ2" + blob
            with pytest.raises(BitstreamError):
                EncodedImage.from_bytes(blob)

    def test_truncated_payload_rejected_not_garbled(self, valid_container):
        """Cutting inside the payload area must raise, not mis-decode."""
        with pytest.raises(BitstreamError):
            EncodedImage.from_bytes(valid_container[: len(valid_container) - 1])

    def test_corrupt_plane_segments_decode_or_raise(self, valid_container):
        """Garbage segment payloads stay inside the BitstreamError contract."""
        parsed = EncodedImage.from_bytes(valid_container)
        rng = np.random.default_rng(17)
        for tile in parsed.tiles:
            for segment in tile.segments:
                segment.data = bytes(
                    rng.integers(0, 256, len(segment.data), dtype=np.uint8)
                )
        for backend in BACKENDS:
            codec = ImageCodec(
                CodecConfig(tile_size=32, base_step=1 / 128), backend=backend
            )
            try:
                out = codec.decode(parsed)
                assert np.all(np.isfinite(out))
            except BitstreamError:
                pass


class TestTruncationOverrunParity:
    """Every engine shares one overrun contract, byte for byte.

    The embedded streams legitimately decode from prefixes, but a decoder
    that reads 64 bytes past the end of a segment must raise
    :class:`BitstreamError` — and since all engines are bit-exact, a given
    truncated container must produce the *same* outcome (identical
    reconstruction, or the same error) under every registered engine.
    """

    def _truncate_segments(self, container: bytes, keep) -> EncodedImage:
        parsed = EncodedImage.from_bytes(container)
        for tile in parsed.tiles:
            for segment in tile.segments:
                segment.data = segment.data[: keep(len(segment.data))]
        return parsed

    def _outcome(self, parsed: EncodedImage, backend: str):
        codec = ImageCodec(
            CodecConfig(tile_size=32, base_step=1 / 128), backend=backend
        )
        try:
            return ("ok", codec.decode(parsed))
        except BitstreamError as exc:
            return ("error", str(exc))

    @pytest.mark.parametrize(
        "backend", [b for b in BACKENDS if b != "reference"]
    )
    @pytest.mark.parametrize(
        "keep",
        [
            pytest.param(lambda n: 0, id="empty"),
            pytest.param(lambda n: 1, id="one-byte"),
            pytest.param(lambda n: n // 2, id="half"),
            pytest.param(lambda n: max(n - 1, 0), id="all-but-one"),
        ],
    )
    def test_truncated_segments_match_reference(
        self, valid_container, backend, keep
    ):
        parsed = self._truncate_segments(valid_container, keep)
        kind_ref, value_ref = self._outcome(parsed, "reference")
        kind, value = self._outcome(parsed, backend)
        assert kind == kind_ref
        if kind == "ok":
            assert np.array_equal(value, value_ref)
        else:
            assert value == value_ref

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_far_past_end_raises_bitstream_error(self, backend):
        """Zero-extension stops 64 bytes past the end, never runs away."""
        image = fractal_noise((64, 64), seed=5, octaves=3, base_cells=4)
        codec = ImageCodec(
            CodecConfig(tile_size=32, base_step=1 / 64), backend=backend
        )
        parsed = EncodedImage.from_bytes(codec.encode(image).to_bytes())
        for tile in parsed.tiles:
            for segment in tile.segments:
                segment.data = b""
        try:
            codec.decode(parsed)
        except BitstreamError as exc:
            assert "past end" in str(exc)
