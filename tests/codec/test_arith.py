"""Unit and property tests for the adaptive arithmetic coder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.arith import (
    ArithmeticDecoder,
    ArithmeticEncoder,
    ContextModel,
    ContextSet,
)


class TestContextModel:
    def test_initial_probability_is_half(self):
        model = ContextModel()
        assert abs(model.probability0_scaled() - 32768) <= 1

    def test_update_shifts_probability(self):
        model = ContextModel()
        for _ in range(100):
            model.update(0)
        assert model.probability0_scaled() > 60000

    def test_probability_bounds(self):
        model = ContextModel()
        for _ in range(10_000):
            model.update(1)
        p0 = model.probability0_scaled()
        assert 1 <= p0 <= 65535

    def test_counts_are_halved(self):
        model = ContextModel()
        for _ in range(10_000):
            model.update(0)
        assert model.count0 + model.count1 < 5000


class TestRoundtrip:
    def test_empty_stream(self):
        enc = ArithmeticEncoder()
        data = enc.finish()
        assert len(data) == 4  # flush bytes only

    def test_single_bit(self):
        for bit in (0, 1):
            enc = ArithmeticEncoder()
            enc.encode(bit, "c")
            dec = ArithmeticDecoder(enc.finish())
            assert dec.decode("c") == bit

    def test_all_zeros_compresses(self):
        enc = ArithmeticEncoder()
        for _ in range(10_000):
            enc.encode(0, "c")
        data = enc.finish()
        assert len(data) < 100
        dec = ArithmeticDecoder(data)
        assert all(dec.decode("c") == 0 for _ in range(10_000))

    def test_alternating_pattern(self):
        bits = [i % 2 for i in range(500)]
        enc = ArithmeticEncoder()
        for i, bit in enumerate(bits):
            enc.encode(bit, i % 2)  # context tracks position parity
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode(i % 2) for i in range(500)] == bits

    def test_multiple_contexts_keep_independent_stats(self):
        rng = np.random.default_rng(3)
        bits = []
        ctxs = []
        for _ in range(2000):
            ctx = int(rng.integers(0, 3))
            prob1 = [0.05, 0.5, 0.95][ctx]
            bits.append(int(rng.random() < prob1))
            ctxs.append(ctx)
        enc = ArithmeticEncoder()
        for bit, ctx in zip(bits, ctxs):
            enc.encode(bit, ctx)
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode(c) for c in ctxs] == bits

    def test_bypass_bits_roundtrip(self):
        rng = np.random.default_rng(5)
        bits = [int(b) for b in rng.integers(0, 2, 300)]
        enc = ArithmeticEncoder()
        for bit in bits:
            enc.encode_bit_raw(bit)
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode_bit_raw() for _ in bits] == bits

    def test_mixed_adaptive_and_bypass(self):
        rng = np.random.default_rng(6)
        ops = []
        enc = ArithmeticEncoder()
        for _ in range(1000):
            bit = int(rng.integers(0, 2))
            if rng.random() < 0.3:
                enc.encode_bit_raw(bit)
                ops.append(("raw", bit))
            else:
                ctx = int(rng.integers(0, 4))
                enc.encode(bit, ctx)
                ops.append((ctx, bit))
        dec = ArithmeticDecoder(enc.finish())
        for ctx, bit in ops:
            if ctx == "raw":
                assert dec.decode_bit_raw() == bit
            else:
                assert dec.decode(ctx) == bit


class TestCompressionEfficiency:
    @pytest.mark.parametrize("p1", [0.01, 0.1, 0.3])
    def test_near_entropy_rate(self, p1):
        """Coded size should approach the Shannon bound for skewed sources."""
        rng = np.random.default_rng(42)
        n = 20_000
        bits = (rng.random(n) < p1).astype(int)
        enc = ArithmeticEncoder()
        for bit in bits:
            enc.encode(int(bit), "c")
        coded_bits = len(enc.finish()) * 8
        entropy = -(p1 * np.log2(p1) + (1 - p1) * np.log2(1 - p1))
        assert coded_bits < n * entropy * 1.15 + 200


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 7)),
        min_size=0,
        max_size=600,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_any_sequence(pairs):
    """decode(encode(bits)) == bits for arbitrary (bit, context) sequences."""
    enc = ArithmeticEncoder()
    for bit, ctx in pairs:
        enc.encode(bit, ctx)
    dec = ArithmeticDecoder(enc.finish())
    for bit, ctx in pairs:
        assert dec.decode(ctx) == bit


def test_context_set_creates_on_demand():
    contexts = ContextSet()
    first = contexts.get("a")
    assert contexts.get("a") is first
    assert contexts.get("b") is not first
