"""Unit and property tests for the adaptive arithmetic coder."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.arith import (
    _MAX_TOTAL,
    ArithmeticDecoder,
    ArithmeticEncoder,
    ContextModel,
    ContextSet,
    clamp_probability0,
)


class TestContextModel:
    def test_initial_probability_is_half(self):
        model = ContextModel()
        assert abs(model.probability0_scaled() - 32768) <= 1

    def test_update_shifts_probability(self):
        model = ContextModel()
        for _ in range(100):
            model.update(0)
        assert model.probability0_scaled() > 60000

    def test_probability_bounds(self):
        model = ContextModel()
        for _ in range(10_000):
            model.update(1)
        p0 = model.probability0_scaled()
        assert 1 <= p0 <= 65535

    def test_counts_are_halved(self):
        model = ContextModel()
        for _ in range(10_000):
            model.update(0)
        assert model.count0 + model.count1 < 5000


class TestProbabilityClamp:
    """The centralized 1..65535 clamp shared by both coder backends."""

    def test_clamp_bounds(self):
        assert clamp_probability0(-5) == 1
        assert clamp_probability0(0) == 1
        assert clamp_probability0(1) == 1
        assert clamp_probability0(32768) == 32768
        assert clamp_probability0(65535) == 65535
        assert clamp_probability0(65536) == 65535
        assert clamp_probability0(10**9) == 65535

    def test_model_probability_goes_through_clamp(self):
        """probability0_scaled == clamp of the raw scaled ratio, always."""
        model = ContextModel()
        rng = np.random.default_rng(11)
        for _ in range(20_000):
            raw = (model.count0 << 16) // (model.count0 + model.count1)
            assert model.probability0_scaled() == clamp_probability0(raw)
            model.update(int(rng.integers(0, 2)))

    def test_clamp_is_noop_for_legal_counts(self):
        """With Laplace counts >= 1 and total < _MAX_TOTAL the raw value is
        already in 1..65535, so both backends may inline the division."""
        for count0 in (1, 2, _MAX_TOTAL // 2, _MAX_TOTAL - 2):
            for count1 in (1, 2, _MAX_TOTAL - 1 - count0):
                if count1 < 1 or count0 + count1 >= _MAX_TOTAL:
                    continue
                raw = (count0 << 16) // (count0 + count1)
                assert 1 <= raw <= 65535
                assert clamp_probability0(raw) == raw


class TestAdaptiveHalving:
    """Pins the exact count evolution around the _MAX_TOTAL boundary."""

    def test_halving_triggers_exactly_at_max_total(self):
        model = ContextModel()
        # Drive the total to _MAX_TOTAL - 1 (no halving yet: the check is
        # post-update, and totals below the cap are left untouched).
        for _ in range(_MAX_TOTAL - 3):
            model.update(0)
        assert model.count0 + model.count1 == _MAX_TOTAL - 1
        assert model.count0 == _MAX_TOTAL - 2
        assert model.count1 == 1
        # The update that reaches _MAX_TOTAL halves both counts, rounding up.
        model.update(0)
        assert model.count0 == _MAX_TOTAL // 2
        assert model.count1 == 1

    def test_halving_rounds_up_both_counts(self):
        model = ContextModel()
        model.count0 = 2047
        model.count1 = 2048
        model.update(1)  # total hits 4096 with count1 = 2049
        assert model.count0 == (2047 + 1) >> 1
        assert model.count1 == (2049 + 1) >> 1

    def test_total_never_reaches_max_after_update(self):
        model = ContextModel()
        rng = np.random.default_rng(5)
        for _ in range(3 * _MAX_TOTAL):
            model.update(int(rng.integers(0, 2)))
            assert model.count0 + model.count1 < _MAX_TOTAL
            assert model.count0 >= 1
            assert model.count1 >= 1

    def test_halving_preserves_probability_skew(self):
        """Halving keeps the learned skew (ratio) approximately intact."""
        model = ContextModel()
        for _ in range(_MAX_TOTAL):  # heavily zero-biased, multiple halvings
            model.update(0)
        assert model.probability0_scaled() > 60000


class TestRoundtrip:
    def test_empty_stream(self):
        enc = ArithmeticEncoder()
        data = enc.finish()
        assert len(data) == 4  # flush bytes only

    def test_single_bit(self):
        for bit in (0, 1):
            enc = ArithmeticEncoder()
            enc.encode(bit, "c")
            dec = ArithmeticDecoder(enc.finish())
            assert dec.decode("c") == bit

    def test_all_zeros_compresses(self):
        enc = ArithmeticEncoder()
        for _ in range(10_000):
            enc.encode(0, "c")
        data = enc.finish()
        assert len(data) < 100
        dec = ArithmeticDecoder(data)
        assert all(dec.decode("c") == 0 for _ in range(10_000))

    def test_alternating_pattern(self):
        bits = [i % 2 for i in range(500)]
        enc = ArithmeticEncoder()
        for i, bit in enumerate(bits):
            enc.encode(bit, i % 2)  # context tracks position parity
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode(i % 2) for i in range(500)] == bits

    def test_multiple_contexts_keep_independent_stats(self):
        rng = np.random.default_rng(3)
        bits = []
        ctxs = []
        for _ in range(2000):
            ctx = int(rng.integers(0, 3))
            prob1 = [0.05, 0.5, 0.95][ctx]
            bits.append(int(rng.random() < prob1))
            ctxs.append(ctx)
        enc = ArithmeticEncoder()
        for bit, ctx in zip(bits, ctxs):
            enc.encode(bit, ctx)
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode(c) for c in ctxs] == bits

    def test_bypass_bits_roundtrip(self):
        rng = np.random.default_rng(5)
        bits = [int(b) for b in rng.integers(0, 2, 300)]
        enc = ArithmeticEncoder()
        for bit in bits:
            enc.encode_bit_raw(bit)
        dec = ArithmeticDecoder(enc.finish())
        assert [dec.decode_bit_raw() for _ in bits] == bits

    def test_mixed_adaptive_and_bypass(self):
        rng = np.random.default_rng(6)
        ops = []
        enc = ArithmeticEncoder()
        for _ in range(1000):
            bit = int(rng.integers(0, 2))
            if rng.random() < 0.3:
                enc.encode_bit_raw(bit)
                ops.append(("raw", bit))
            else:
                ctx = int(rng.integers(0, 4))
                enc.encode(bit, ctx)
                ops.append((ctx, bit))
        dec = ArithmeticDecoder(enc.finish())
        for ctx, bit in ops:
            if ctx == "raw":
                assert dec.decode_bit_raw() == bit
            else:
                assert dec.decode(ctx) == bit


class TestCompressionEfficiency:
    @pytest.mark.parametrize("p1", [0.01, 0.1, 0.3])
    def test_near_entropy_rate(self, p1):
        """Coded size should approach the Shannon bound for skewed sources."""
        rng = np.random.default_rng(42)
        n = 20_000
        bits = (rng.random(n) < p1).astype(int)
        enc = ArithmeticEncoder()
        for bit in bits:
            enc.encode(int(bit), "c")
        coded_bits = len(enc.finish()) * 8
        entropy = -(p1 * np.log2(p1) + (1 - p1) * np.log2(1 - p1))
        assert coded_bits < n * entropy * 1.15 + 200


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(0, 7)),
        min_size=0,
        max_size=600,
    )
)
@settings(max_examples=60, deadline=None)
def test_property_roundtrip_any_sequence(pairs):
    """decode(encode(bits)) == bits for arbitrary (bit, context) sequences."""
    enc = ArithmeticEncoder()
    for bit, ctx in pairs:
        enc.encode(bit, ctx)
    dec = ArithmeticDecoder(enc.finish())
    for bit, ctx in pairs:
        assert dec.decode(ctx) == bit


def test_context_set_creates_on_demand():
    contexts = ContextSet()
    first = contexts.get("a")
    assert contexts.get("a") is first
    assert contexts.get("b") is not first
