"""Unit tests for the bit-level serialization primitives."""

import pytest

from repro.codec.bitstream import BitReader, BitWriter
from repro.errors import BitstreamError


class TestBitWriter:
    def test_single_bits_roundtrip(self):
        writer = BitWriter()
        bits = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1]
        for bit in bits:
            writer.write_bit(bit)
        reader = BitReader(writer.getvalue())
        assert [reader.read_bit() for _ in range(len(bits))] == bits

    def test_write_bits_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b1011, 4)
        writer.write_bits(0b0010, 4)
        assert writer.getvalue() == bytes([0b10110010])

    def test_write_bits_value_too_large(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_bits(16, 4)

    def test_write_bits_negative_count(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_bits(0, -1)

    def test_len_counts_partial_byte(self):
        writer = BitWriter()
        assert len(writer) == 0
        writer.write_bit(1)
        assert len(writer) == 1
        writer.write_bits(0, 7)
        assert len(writer) == 1
        writer.write_bit(0)
        assert len(writer) == 2

    def test_align_pads_with_zeros(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.align()
        assert writer.getvalue() == bytes([0b10000000])

    def test_varint_requires_alignment(self):
        writer = BitWriter()
        writer.write_bit(1)
        with pytest.raises(BitstreamError):
            writer.write_uvarint(5)

    def test_varint_rejects_negative(self):
        writer = BitWriter()
        with pytest.raises(BitstreamError):
            writer.write_uvarint(-1)

    def test_raw_bytes_require_alignment(self):
        writer = BitWriter()
        writer.write_bit(0)
        with pytest.raises(BitstreamError):
            writer.write_bytes(b"xy")


class TestVarints:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 16383, 16384, 2**32, 2**62]
    )
    def test_roundtrip(self, value):
        writer = BitWriter()
        writer.write_uvarint(value)
        reader = BitReader(writer.getvalue())
        assert reader.read_uvarint() == value

    def test_sequence_roundtrip(self):
        values = [0, 5, 1000, 7, 2**40, 1]
        writer = BitWriter()
        for value in values:
            writer.write_uvarint(value)
        reader = BitReader(writer.getvalue())
        assert [reader.read_uvarint() for _ in values] == values

    def test_truncated_varint_raises(self):
        writer = BitWriter()
        writer.write_uvarint(300)
        data = writer.getvalue()[:1]
        reader = BitReader(data)
        with pytest.raises(BitstreamError):
            reader.read_uvarint()


class TestBitReader:
    def test_read_past_end_raises(self):
        reader = BitReader(b"")
        with pytest.raises(BitstreamError):
            reader.read_bit()

    def test_read_bytes_past_end_raises(self):
        reader = BitReader(b"ab")
        with pytest.raises(BitstreamError):
            reader.read_bytes(3)

    def test_mixed_content_roundtrip(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        writer.align()
        writer.write_uvarint(99)
        writer.write_bytes(b"hello")
        writer.write_bits(0b11, 2)
        data = writer.getvalue()
        reader = BitReader(data)
        assert reader.read_bits(3) == 0b101
        reader.align()
        assert reader.read_uvarint() == 99
        assert reader.read_bytes(5) == b"hello"
        assert reader.read_bits(2) == 0b11

    def test_remaining_bytes(self):
        reader = BitReader(b"abcd")
        assert reader.remaining_bytes() == 4
        reader.read_bytes(1)
        assert reader.remaining_bytes() == 3
        reader.read_bit()
        assert reader.remaining_bytes() == 2
