"""Backend registry: resolution precedence, aliasing, fallback, kernels gate.

The registry is the single resolution path for every layer that names an
entropy engine (``ImageCodec``, the adapter, the encoder stack, the CLI),
so its precedence chain — explicit > config > ``$REPRO_CODEC_BACKEND`` >
default — and its graceful no-toolchain fallback are pinned here.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.codec import _ckernels, registry
from repro.codec.jpeg2000 import CodecConfig, ImageCodec
from repro.errors import CodecError


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(registry.ENV_BACKEND, raising=False)
    registry.reset_fallback_warnings()


class TestResolution:
    def test_builtins_registered_in_speed_order(self):
        assert registry.names() == ("reference", "vectorized", "compiled")

    def test_default_is_reference(self):
        assert registry.resolve_name() == "reference"

    def test_explicit_beats_everything(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_BACKEND, "reference")
        assert (
            registry.resolve_name(
                explicit="vectorized", config_backend="reference"
            )
            == "vectorized"
        )

    def test_config_beats_env(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_BACKEND, "reference")
        assert registry.resolve_name(config_backend="vectorized") == "vectorized"

    def test_env_beats_default_and_is_read_at_call_time(self, monkeypatch):
        assert registry.resolve_name() == "reference"
        monkeypatch.setenv(registry.ENV_BACKEND, "vectorized")
        assert registry.resolve_name() == "vectorized"

    def test_real_alias_is_best_available(self):
        best = registry.best_available()
        assert registry.resolve_name(explicit="real") == best.name
        if registry.get("compiled").available():
            assert best.name == "compiled"
        else:
            assert best.name == "vectorized"

    def test_unknown_name_lists_valid_ones(self):
        with pytest.raises(CodecError, match="backend must be one of"):
            registry.get("turbo")
        with pytest.raises(CodecError, match="turbo"):
            registry.resolve(explicit="turbo")

    def test_real_is_a_reserved_name(self):
        with pytest.raises(CodecError, match="reserved"):
            registry.register(
                registry.CodecBackend(
                    name="real", description="", coder_factory=lambda s: None
                )
            )

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CodecError, match="already registered"):
            registry.register(registry.get("vectorized"))


class TestCapabilityFlags:
    def test_flags(self):
        assert not registry.get("reference").batched
        assert registry.get("vectorized").batched
        compiled = registry.get("compiled")
        assert compiled.batched and compiled.compiled

    def test_availability_probe_reference_and_vectorized_always_usable(self):
        assert registry.get("reference").available()
        assert registry.get("vectorized").available()


class TestNoToolchainFallback:
    """REPRO_CODEC_CC= (empty) simulates a machine without a compiler."""

    @pytest.fixture(autouse=True)
    def _no_toolchain(self, monkeypatch):
        monkeypatch.setenv("REPRO_CODEC_CC", "")
        _ckernels.reset_for_tests()
        registry.reset_fallback_warnings()
        yield
        _ckernels.reset_for_tests()

    def test_compiled_reports_unavailable(self):
        assert not registry.get("compiled").available()
        assert "REPRO_CODEC_CC" in _ckernels.unavailable_reason()

    def test_resolve_warns_once_and_falls_back_to_vectorized(self):
        with pytest.warns(RuntimeWarning, match="falling back to 'vectorized'"):
            resolved = registry.resolve(explicit="compiled")
        assert resolved.name == "vectorized"
        # Second resolve is silent (warn-once) but still falls back.
        assert registry.resolve(explicit="compiled").name == "vectorized"

    def test_real_alias_degrades_to_vectorized(self):
        assert registry.resolve_name(explicit="real") == "vectorized"

    def test_codec_still_produces_identical_bitstreams(self):
        rng = np.random.default_rng(11)
        image = rng.random((64, 64))
        config = CodecConfig(tile_size=32, base_step=1 / 128)
        with pytest.warns(RuntimeWarning):
            fallback = ImageCodec(config, backend="compiled")
        assert fallback.backend == "vectorized"
        reference = ImageCodec(config, backend="vectorized")
        assert (
            fallback.encode(image).to_bytes()
            == reference.encode(image).to_bytes()
        )

    def test_kernels_gate_closed(self):
        assert registry.kernels() is None


class TestKernelsGate:
    def test_env_pinning_pure_python_disables_kernels(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_BACKEND, "vectorized")
        assert not registry.kernels_enabled()
        monkeypatch.setenv(registry.ENV_BACKEND, "reference")
        assert not registry.kernels_enabled()

    def test_gate_matches_library_availability(self):
        if _ckernels.load() is None:
            assert registry.kernels() is None
        else:
            assert registry.kernels() is _ckernels.load()
