"""Unit and property tests for the lifting DWT."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.codec.dwt import (
    Wavelet,
    WaveletCoeffs,
    forward_dwt2d,
    inverse_dwt2d,
)
from repro.errors import CodecError


class TestShapes:
    @pytest.mark.parametrize(
        "shape", [(64, 64), (63, 61), (17, 33), (2, 2), (1, 9), (9, 1)]
    )
    def test_coefficient_count_preserved(self, shape, rng):
        image = rng.random(shape)
        levels = 1
        coeffs = forward_dwt2d(image, levels, Wavelet.CDF97)
        assert coeffs.total_coefficients() == image.size

    def test_subband_list_structure(self, rng):
        coeffs = forward_dwt2d(rng.random((64, 64)), 3, Wavelet.CDF97)
        names = [(n, l) for n, l, _ in coeffs.subbands()]
        assert names[0] == ("LL", 3)
        assert names[1:4] == [("HL", 3), ("LH", 3), ("HH", 3)]
        assert names[-3:] == [("HL", 1), ("LH", 1), ("HH", 1)]

    def test_levels_property(self, rng):
        coeffs = forward_dwt2d(rng.random((32, 32)), 2, Wavelet.CDF97)
        assert coeffs.levels == 2

    def test_rejects_1d_input(self):
        with pytest.raises(CodecError):
            forward_dwt2d(np.zeros(16), 1)

    def test_rejects_zero_levels(self):
        with pytest.raises(CodecError):
            forward_dwt2d(np.zeros((8, 8)), 0)

    def test_rejects_too_deep(self):
        with pytest.raises(CodecError):
            forward_dwt2d(np.zeros((8, 8)), 5)


class TestPerfectReconstruction:
    @pytest.mark.parametrize(
        "shape,levels",
        [
            ((64, 64), 3),
            ((63, 61), 3),
            ((17, 33), 2),
            ((5, 5), 1),
            ((1, 7), 1),
            ((128, 32), 3),
        ],
    )
    def test_cdf97_reconstruction(self, shape, levels, rng):
        image = rng.random(shape)
        recon = inverse_dwt2d(forward_dwt2d(image, levels, Wavelet.CDF97))
        assert np.abs(recon - image).max() < 1e-9

    @pytest.mark.parametrize(
        "shape,levels",
        [((64, 64), 3), ((63, 61), 2), ((5, 9), 1), ((33, 31), 3)],
    )
    def test_legall53_bit_exact(self, shape, levels, rng):
        image = rng.integers(0, 1024, shape)
        recon = inverse_dwt2d(forward_dwt2d(image, levels, Wavelet.LEGALL53))
        assert np.array_equal(recon, image)

    def test_legall53_negative_values(self, rng):
        image = rng.integers(-512, 512, (32, 32))
        recon = inverse_dwt2d(forward_dwt2d(image, 2, Wavelet.LEGALL53))
        assert np.array_equal(recon, image)

    def test_constant_image(self):
        image = np.full((32, 32), 0.5)
        coeffs = forward_dwt2d(image, 2, Wavelet.CDF97)
        recon = inverse_dwt2d(coeffs)
        assert np.abs(recon - image).max() < 1e-10


class TestEnergyCompaction:
    def test_smooth_image_energy_in_ll(self, rng):
        """Most energy of a smooth image must land in the LL subband."""
        xs = np.linspace(0, 1, 64)
        image = np.outer(np.sin(3 * xs) + 1, np.cos(2 * xs) + 1)
        coeffs = forward_dwt2d(image, 3, Wavelet.CDF97)
        ll_energy = float(np.sum(coeffs.approx**2))
        total = sum(
            float(np.sum(band**2)) for _, _, band in coeffs.subbands()
        )
        assert ll_energy / total > 0.95

    def test_detail_bands_near_zero_for_constant(self):
        image = np.full((64, 64), 0.3)
        coeffs = forward_dwt2d(image, 2, Wavelet.CDF97)
        for name, _, band in coeffs.subbands():
            if name != "LL" and band.size:
                assert np.abs(band).max() < 1e-10


@given(
    st.integers(2, 40),
    st.integers(2, 40),
    st.integers(1, 3),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_cdf97_reconstruction(height, width, levels, seed):
    """Perfect reconstruction for arbitrary shapes and levels."""
    import math

    feasible = max(1, int(math.floor(math.log2(min(height, width)))))
    levels = min(levels, feasible)
    image = np.random.default_rng(seed).random((height, width))
    recon = inverse_dwt2d(forward_dwt2d(image, levels, Wavelet.CDF97))
    assert np.abs(recon - image).max() < 1e-8


@given(
    st.integers(2, 32),
    st.integers(2, 32),
    st.integers(0, 2**31 - 1),
)
@settings(max_examples=60, deadline=None)
def test_property_legall53_lossless(height, width, seed):
    """Bit-exact integer reconstruction for arbitrary shapes."""
    image = np.random.default_rng(seed).integers(0, 4096, (height, width))
    recon = inverse_dwt2d(forward_dwt2d(image, 1, Wavelet.LEGALL53))
    assert np.array_equal(recon, image)


def test_wavelet_coeffs_roundtrip_via_subbands(rng):
    """Reassembling subbands() output must reproduce the decomposition."""
    image = rng.random((48, 48))
    coeffs = forward_dwt2d(image, 2, Wavelet.CDF97)
    flat = coeffs.subbands()
    rebuilt = WaveletCoeffs(
        approx=flat[0][2],
        details=[
            (flat[1 + 3 * i][2], flat[2 + 3 * i][2], flat[3 + 3 * i][2])
            for i in range(2)
        ],
        shape=image.shape,
        wavelet=Wavelet.CDF97,
    )
    assert np.abs(inverse_dwt2d(rebuilt) - image).max() < 1e-9
