"""Regression tests: the tile-pool must be closed, not leaked.

``ImageCodec`` lazily spawns a ``ProcessPoolExecutor`` when
``parallel_tiles > 1``.  The pool used to have no owner: nothing ever
shut it down, so every codec constructed over a process's lifetime left
``parallel_tiles`` worker processes behind until interpreter exit.  These
tests pin the fix — one pool per codec reused across encodes, an
idempotent ``close()``, context-manager support, and the same lifecycle
surfaced through ``RealCodecAdapter`` and the encoder stack.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro.codec.adapter import RealCodecAdapter
from repro.codec.jpeg2000 import CodecConfig, ImageCodec


@pytest.fixture(scope="module")
def image():
    rng = np.random.default_rng(7)
    base = rng.random((128, 128))
    yy, xx = np.mgrid[0:128, 0:128]
    return np.clip(0.6 * base + 0.4 * np.sin(yy * 0.2) * np.cos(xx * 0.13), 0, 1)


def _worker_count() -> int:
    return len(mp.active_children())


class TestImageCodecPool:
    def test_repeated_encodes_do_not_accumulate_workers(self, image):
        """The original leak: every encode must reuse one bounded pool."""
        baseline = _worker_count()
        codec = ImageCodec(CodecConfig(tile_size=64), parallel_tiles=2)
        try:
            for _ in range(4):
                codec.encode(image)
                assert _worker_count() - baseline <= 2
        finally:
            codec.close()

    def test_close_terminates_workers(self, image):
        baseline = _worker_count()
        codec = ImageCodec(CodecConfig(tile_size=64), parallel_tiles=2)
        codec.encode(image)
        assert _worker_count() > baseline
        codec.close()
        assert _worker_count() == baseline

    def test_close_is_idempotent_and_codec_stays_usable(self, image):
        codec = ImageCodec(CodecConfig(tile_size=64), parallel_tiles=2)
        first = codec.encode(image).to_bytes()
        codec.close()
        codec.close()  # second close is a no-op, not an error
        # The pool is rebuilt lazily; results are unchanged.
        try:
            assert codec.encode(image).to_bytes() == first
        finally:
            codec.close()

    def test_context_manager_closes_pool(self, image):
        baseline = _worker_count()
        with ImageCodec(CodecConfig(tile_size=64), parallel_tiles=2) as codec:
            codec.encode(image)
            assert _worker_count() > baseline
        assert _worker_count() == baseline

    def test_serial_codec_close_is_harmless(self, image):
        with ImageCodec(CodecConfig(tile_size=64)) as codec:
            codec.encode(image)


class TestAdapterAndEncoderClose:
    def test_adapter_delegates_close(self, image):
        baseline = _worker_count()
        with RealCodecAdapter(
            CodecConfig(tile_size=64), parallel_tiles=2
        ) as adapter:
            adapter.encode(image)
            assert _worker_count() > baseline
        assert _worker_count() == baseline

    def test_encoder_stack_closes_pool(self, image):
        from repro.core.config import EarthPlusConfig
        from repro.core.encoder import build_rate_model

        baseline = _worker_count()
        config = EarthPlusConfig().with_overrides(
            codec_backend="vectorized", codec_parallel_tiles=2
        )
        model = build_rate_model(config)
        model.encode(image)
        assert _worker_count() > baseline
        model.close()
        assert _worker_count() == baseline
