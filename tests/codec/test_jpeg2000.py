"""Unit tests for the tile/image codec: ROI, layers, rate targeting."""

import numpy as np
import pytest

from repro.codec.dwt import Wavelet
from repro.codec.jpeg2000 import (
    CodecConfig,
    EncodedImage,
    ImageCodec,
    effective_levels,
    subband_shapes,
)
from repro.codec.metrics import psnr
from repro.errors import CodecError
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="module")
def image():
    return fractal_noise((128, 128), seed=9, octaves=5, base_cells=4)


@pytest.fixture(scope="module")
def codec():
    return ImageCodec(CodecConfig(tile_size=64, levels=3, base_step=1 / 512))


class TestSubbandShapes:
    def test_matches_forward_transform(self, rng):
        from repro.codec.dwt import forward_dwt2d

        for shape in [(64, 64), (63, 61), (17, 9)]:
            levels = effective_levels(shape, 3)
            coeffs = forward_dwt2d(rng.random(shape), levels, Wavelet.CDF97)
            expected = [
                (name, level, band.shape)
                for name, level, band in coeffs.subbands()
            ]
            got = subband_shapes(shape, levels)
            assert [(n, l, tuple(s)) for n, l, s in got] == [
                (n, l, tuple(s)) for n, l, s in expected
            ]

    def test_effective_levels_small_tiles(self):
        assert effective_levels((64, 64), 3) == 3
        assert effective_levels((8, 64), 3) == 3
        assert effective_levels((4, 4), 3) == 2
        assert effective_levels((1, 64), 3) == 1


class TestLossyRoundtrip:
    def test_quality_monotone_in_step(self, image):
        quality = []
        for step in [1 / 64, 1 / 256, 1 / 1024]:
            codec = ImageCodec(CodecConfig(tile_size=64, base_step=step))
            recon = codec.decode(codec.encode(image))
            quality.append(psnr(image, recon))
        assert quality == sorted(quality)

    def test_bytes_monotone_in_step(self, image):
        sizes = []
        for step in [1 / 64, 1 / 256, 1 / 1024]:
            codec = ImageCodec(CodecConfig(tile_size=64, base_step=step))
            sizes.append(codec.encode(image).total_bytes)
        assert sizes == sorted(sizes)

    def test_reasonable_quality(self, codec, image):
        recon = codec.decode(codec.encode(image))
        assert psnr(image, recon) > 40.0

    def test_rejects_non_2d(self, codec):
        with pytest.raises(CodecError):
            codec.encode(np.zeros((4, 4, 3)))

    def test_odd_sized_image(self, codec):
        image = fractal_noise((100, 90), seed=2, octaves=4)
        recon = codec.decode(codec.encode(image))
        assert recon.shape == (100, 90)
        assert psnr(image, recon) > 35.0


class TestContainer:
    def test_serialization_roundtrip(self, codec, image):
        encoded = codec.encode(image, n_layers=2)
        data = encoded.to_bytes()
        parsed = EncodedImage.from_bytes(data)
        recon_a = codec.decode(encoded)
        recon_b = codec.decode(parsed)
        assert np.array_equal(recon_a, recon_b)

    def test_total_bytes_is_serialized_size(self, codec, image):
        encoded = codec.encode(image)
        assert encoded.total_bytes == len(encoded.to_bytes())

    def test_bad_magic_rejected(self):
        with pytest.raises(Exception):
            EncodedImage.from_bytes(b"XXXX" + b"\x00" * 64)

    def test_payload_bytes_sum_over_layers(self, codec, image):
        encoded = codec.encode(image, n_layers=3)
        total = sum(encoded.layer_bytes(k) for k in range(3))
        assert total == encoded.payload_bytes()


class TestROI:
    def test_only_roi_tiles_encoded(self, codec, image):
        roi = np.zeros((2, 2), dtype=bool)
        roi[0, 1] = True
        encoded = codec.encode(image, roi=roi)
        assert len(encoded.tiles) == 1
        assert encoded.tiles[0].tile_index == (0, 1)

    def test_roi_quality_matches_full(self, codec, image):
        roi = np.zeros((2, 2), dtype=bool)
        roi[1, 1] = True
        recon = codec.decode(codec.encode(image, roi=roi))
        assert psnr(image[64:, 64:], recon[64:, 64:]) > 40.0

    def test_non_roi_filled_from_background(self, codec, image):
        roi = np.zeros((2, 2), dtype=bool)
        roi[0, 0] = True
        background = np.full(image.shape, 0.25)
        recon = codec.decode(codec.encode(image, roi=roi), background=background)
        assert np.allclose(recon[64:, 64:], 0.25)

    def test_roi_smaller_than_full(self, codec, image):
        roi = np.zeros((2, 2), dtype=bool)
        roi[0, 0] = True
        partial = codec.encode(image, roi=roi).total_bytes
        full = codec.encode(image).total_bytes
        assert partial < full / 2

    def test_roi_shape_mismatch_rejected(self, codec, image):
        with pytest.raises(CodecError):
            codec.encode(image, roi=np.ones((3, 3), dtype=bool))


class TestRateTargeting:
    def test_respects_budget(self, codec, image):
        for target in [800, 2000, 5000]:
            encoded = codec.encode(image, target_bytes=target)
            assert encoded.payload_bytes() <= target

    def test_quality_grows_with_budget(self, codec, image):
        quality = []
        for target in [600, 2000, 6000]:
            encoded = codec.encode(image, target_bytes=target)
            quality.append(psnr(image, codec.decode(encoded)))
        assert quality == sorted(quality)


class TestLayers:
    def test_layer_quality_monotone(self, codec, image):
        encoded = codec.encode(image, n_layers=3)
        quality = [
            psnr(image, codec.decode(encoded, layers=k)) for k in (1, 2, 3)
        ]
        assert quality[0] <= quality[1] <= quality[2]

    def test_layer_bytes_cumulative(self, codec, image):
        encoded = codec.encode(image, n_layers=3)
        assert encoded.payload_bytes(1) <= encoded.payload_bytes(2)
        assert encoded.payload_bytes(2) <= encoded.payload_bytes(3)

    def test_invalid_layer_count_rejected(self, codec, image):
        with pytest.raises(CodecError):
            codec.encode(image, n_layers=0)
        encoded = codec.encode(image, n_layers=2)
        with pytest.raises(CodecError):
            codec.decode(encoded, layers=3)


class TestLossless:
    def test_bit_exact_at_configured_depth(self, image):
        codec = ImageCodec(
            CodecConfig(tile_size=64, wavelet=Wavelet.LEGALL53, bit_depth=10)
        )
        recon = codec.decode(codec.encode(image))
        scale = 1023
        assert np.array_equal(
            np.rint(image * scale), np.rint(recon * scale)
        )

    def test_lossless_compresses(self, image):
        codec = ImageCodec(
            CodecConfig(tile_size=64, wavelet=Wavelet.LEGALL53, bit_depth=10)
        )
        encoded = codec.encode(image)
        raw = image.size * 10 // 8
        assert encoded.total_bytes < raw
