"""Unit and property tests for reference management."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.reference import (
    GroundMosaic,
    OnboardReferenceCache,
    ReferenceUpdate,
    dequantize_reference,
    downsample_image,
    quantize_reference,
    upsample_image,
)
from repro.errors import ReferenceError_


class TestResampling:
    def test_downsample_shape(self):
        assert downsample_image(np.zeros((64, 64)), 8).shape == (8, 8)

    def test_downsample_ragged(self):
        assert downsample_image(np.zeros((65, 63)), 8).shape == (9, 8)

    def test_downsample_is_block_mean(self):
        image = np.arange(16, dtype=np.float64).reshape(4, 4)
        lr = downsample_image(image, 2)
        assert lr[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_ratio_one_identity(self, rng):
        image = rng.random((8, 8))
        assert np.array_equal(downsample_image(image, 1), image)

    def test_upsample_restores_shape(self, rng):
        lr = rng.random((8, 8))
        up = upsample_image(lr, 8, (64, 64))
        assert up.shape == (64, 64)
        assert np.all(up[:8, :8] == lr[0, 0])

    def test_upsample_ragged_target(self, rng):
        up = upsample_image(rng.random((9, 8)), 8, (65, 63))
        assert up.shape == (65, 63)

    def test_down_up_preserves_means(self, rng):
        image = rng.random((64, 64))
        roundtrip = upsample_image(downsample_image(image, 8), 8, (64, 64))
        assert abs(roundtrip.mean() - image.mean()) < 0.01

    def test_invalid_ratio_rejected(self):
        with pytest.raises(ReferenceError_):
            downsample_image(np.zeros((4, 4)), 0)
        with pytest.raises(ReferenceError_):
            upsample_image(np.zeros((4, 4)), 0, (8, 8))

    def test_quantize_roundtrip_error_bounded(self, rng):
        image = rng.random((16, 16))
        restored = dequantize_reference(quantize_reference(image))
        assert np.abs(restored - image).max() <= 0.5 / 255 + 1e-9


class TestReferenceUpdateWire:
    def test_full_update_roundtrip(self, rng):
        update = ReferenceUpdate(
            location="loc", band="B4", t_days=3.25, full=True,
            lr_shape=(8, 8), tile_indices=[],
            payload=rng.integers(0, 256, 64).astype(np.uint8),
            lr_tile=4,
            validity=rng.random((8, 8)) > 0.3,
        )
        parsed = ReferenceUpdate.from_bytes(update.to_bytes())
        assert parsed.location == "loc"
        assert parsed.band == "B4"
        assert parsed.t_days == pytest.approx(3.25, abs=1e-3)
        assert parsed.full
        assert np.array_equal(parsed.payload, update.payload)
        assert np.array_equal(parsed.validity, update.validity)

    def test_delta_update_roundtrip(self, rng):
        update = ReferenceUpdate(
            location="x", band="NIR", t_days=1.0, full=False,
            lr_shape=(8, 8), tile_indices=[(0, 1), (1, 0)],
            payload=rng.integers(0, 256, 32).astype(np.uint8),
            lr_tile=4, validity=np.ones((8, 8), dtype=bool),
        )
        parsed = ReferenceUpdate.from_bytes(update.to_bytes())
        assert parsed.tile_indices == [(0, 1), (1, 0)]
        assert not parsed.full

    def test_n_bytes_matches_serialization(self, rng):
        update = ReferenceUpdate(
            location="a", band="b", t_days=0.0, full=True,
            lr_shape=(4, 4), tile_indices=[],
            payload=np.zeros(16, dtype=np.uint8), lr_tile=4,
        )
        assert update.n_bytes == len(update.to_bytes())


class TestOnboardCache:
    def test_full_then_get(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        reference = rng.random((8, 8))
        cache.apply_update(cache.build_update("L", "B", 1.0, reference))
        t_days, stored = cache.get("L", "B")
        assert t_days == 1.0
        assert np.abs(stored - reference).max() <= 0.5 / 255 + 1e-9

    def test_missing_reference_raises(self):
        cache = OnboardReferenceCache()
        assert not cache.has("L", "B")
        with pytest.raises(ReferenceError_):
            cache.get("L", "B")
        with pytest.raises(ReferenceError_):
            cache.get_validity("L", "B")

    def test_age(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        cache.apply_update(cache.build_update("L", "B", 2.0, rng.random((8, 8))))
        assert cache.age_days("L", "B", 10.0) == pytest.approx(8.0)

    def test_identical_reference_no_update(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        reference = rng.random((8, 8))
        cache.apply_update(cache.build_update("L", "B", 1.0, reference))
        assert cache.build_update("L", "B", 2.0, reference) is None

    def test_delta_smaller_than_full(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        reference = rng.random((16, 16))
        cache.apply_update(cache.build_update("L", "B", 1.0, reference))
        changed = reference.copy()
        changed[0:4, 0:4] = rng.random((4, 4))
        delta = cache.build_update("L", "B", 2.0, changed)
        full = cache.build_update("L", "B", 2.0, changed, delta=False)
        assert not delta.full
        assert delta.n_bytes < full.n_bytes

    def test_delta_equals_full_apply(self, rng):
        """Invariant: applying the delta reproduces the full reference."""
        cache_a = OnboardReferenceCache(lr_tile=4)
        cache_b = OnboardReferenceCache(lr_tile=4)
        reference = rng.random((16, 16))
        for cache in (cache_a, cache_b):
            cache.apply_update(cache.build_update("L", "B", 1.0, reference))
        changed = reference.copy()
        changed[4:12, 8:16] = rng.random((8, 8))
        cache_a.apply_update(cache_a.build_update("L", "B", 2.0, changed))
        cache_b.apply_update(
            cache_b.build_update("L", "B", 2.0, changed, delta=False)
        )
        assert np.array_equal(cache_a.get("L", "B")[1], cache_b.get("L", "B")[1])

    def test_delta_for_uncached_rejected(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        update = ReferenceUpdate(
            location="L", band="B", t_days=1.0, full=False,
            lr_shape=(8, 8), tile_indices=[(0, 0)],
            payload=np.zeros(16, dtype=np.uint8), lr_tile=4,
        )
        with pytest.raises(ReferenceError_):
            cache.apply_update(update)

    def test_validity_updates_propagate(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        reference = rng.random((8, 8))
        validity = np.zeros((8, 8), dtype=bool)
        validity[:4] = True
        cache.apply_update(
            cache.build_update("L", "B", 1.0, reference, validity=validity)
        )
        assert np.array_equal(cache.get_validity("L", "B"), validity)
        # Validity-only change still produces an update.
        update = cache.build_update(
            "L", "B", 2.0, reference, validity=np.ones((8, 8), dtype=bool)
        )
        assert update is not None
        cache.apply_update(update)
        assert cache.get_validity("L", "B").all()

    def test_storage_bytes(self, rng):
        cache = OnboardReferenceCache(lr_tile=4)
        cache.apply_update(cache.build_update("L", "B", 1.0, rng.random((8, 8))))
        cache.apply_update(cache.build_update("L", "C", 1.0, rng.random((8, 8))))
        assert cache.storage_bytes() == 128

    def test_invalid_lr_tile_rejected(self):
        with pytest.raises(ReferenceError_):
            OnboardReferenceCache(lr_tile=0)


class TestGroundMosaic:
    def test_ingest_and_read(self, rng):
        mosaic = GroundMosaic((64, 64), 32)
        image = rng.random((64, 64))
        tiles = np.ones((2, 2), dtype=bool)
        mosaic.ingest_tiles("L", "B", 1.0, image, tiles)
        assert np.array_equal(mosaic.image("L", "B"), image)
        assert mosaic.filled_mask("L", "B").all()

    def test_missing_content_raises(self):
        mosaic = GroundMosaic((64, 64), 32)
        assert not mosaic.has("L", "B")
        with pytest.raises(ReferenceError_):
            mosaic.image("L", "B")
        with pytest.raises(ReferenceError_):
            mosaic.tile_ages("L", "B", 0.0)

    def test_partial_ingest_keeps_other_tiles(self, rng):
        mosaic = GroundMosaic((64, 64), 32)
        first = rng.random((64, 64))
        mosaic.ingest_tiles("L", "B", 1.0, first, np.ones((2, 2), dtype=bool))
        second = rng.random((64, 64))
        only_one = np.zeros((2, 2), dtype=bool)
        only_one[0, 0] = True
        mosaic.ingest_tiles("L", "B", 2.0, second, only_one)
        image = mosaic.image("L", "B")
        assert np.array_equal(image[:32, :32], second[:32, :32])
        assert np.array_equal(image[32:, 32:], first[32:, 32:])
        ages = mosaic.tile_ages("L", "B", 3.0)
        assert ages[0, 0] == pytest.approx(1.0)
        assert ages[1, 1] == pytest.approx(2.0)

    def test_pixel_valid_masking(self, rng):
        mosaic = GroundMosaic((64, 64), 32)
        first = np.zeros((64, 64))
        mosaic.ingest_tiles("L", "B", 1.0, first, np.ones((2, 2), dtype=bool))
        second = np.ones((64, 64))
        valid = np.zeros((64, 64), dtype=bool)
        valid[:16, :16] = True
        mosaic.ingest_tiles(
            "L", "B", 2.0, second, np.ones((2, 2), dtype=bool), valid
        )
        image = mosaic.image("L", "B")
        assert np.all(image[:16, :16] == 1.0)
        assert np.all(image[16:, :] == 0.0)

    def test_reference_lr_averages_filled_only(self):
        mosaic = GroundMosaic((64, 64), 32)
        image = np.full((64, 64), 0.8)
        valid = np.zeros((64, 64), dtype=bool)
        valid[:, :32] = True
        mosaic.ingest_tiles("L", "B", 1.0, image, np.ones((2, 2), dtype=bool), valid)
        lr = mosaic.reference_lr("L", "B", 32)
        validity = mosaic.reference_validity_lr("L", "B", 32)
        assert lr[0, 0] == pytest.approx(0.8)  # left half filled
        assert validity[0, 0] and validity[0, 1] is not None
        # Right half has no filled pixels at all -> invalid.
        assert not validity[0, 1]


@given(
    st.integers(0, 2**31 - 1),
    st.integers(1, 4),
    st.integers(8, 24),
)
@settings(max_examples=30, deadline=None)
def test_property_delta_equals_full(seed, lr_tile, size):
    """Delta application always reconstructs the exact new reference."""
    rng = np.random.default_rng(seed)
    cache = OnboardReferenceCache(lr_tile=lr_tile)
    ref1 = rng.random((size, size))
    cache.apply_update(cache.build_update("L", "B", 1.0, ref1))
    ref2 = ref1.copy()
    # Mutate a random sub-rectangle.
    y0, x0 = rng.integers(0, size, 2)
    y1 = int(min(size, y0 + rng.integers(1, size)))
    x1 = int(min(size, x0 + rng.integers(1, size)))
    ref2[y0:y1, x0:x1] = rng.random((y1 - y0, x1 - x0))
    update = cache.build_update("L", "B", 2.0, ref2, tolerance=0)
    if update is not None:
        cache.apply_update(update)
    _, stored = cache.get("L", "B")
    assert np.array_equal(
        quantize_reference(ref2), quantize_reference(stored)
    )
