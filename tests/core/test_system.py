"""Unit tests for the end-to-end constellation simulator."""

import numpy as np
import pytest

from repro.analysis.experiments import run_policy
from repro.core.config import EarthPlusConfig
from repro.core.system import CaptureRecord, RunResult
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def earthplus_result(tiny_sentinel_dataset):
    return run_policy(
        tiny_sentinel_dataset, "earthplus", EarthPlusConfig(gamma_bpp=0.3)
    )


class TestRunResult:
    def test_records_cover_all_visits(self, tiny_sentinel_dataset,
                                      earthplus_result):
        n_visits = len(tiny_sentinel_dataset.schedule.all_visits_sorted())
        assert len(earthplus_result.records) == n_visits

    def test_records_time_ordered(self, earthplus_result):
        times = [r.t_days for r in earthplus_result.records]
        assert times == sorted(times)

    def test_downlink_bytes_sum_of_records(self, earthplus_result):
        total = sum(r.bytes_downlinked for r in earthplus_result.records)
        assert earthplus_result.downlink_bytes == total

    def test_dropped_captures_cost_nothing(self, earthplus_result):
        for record in earthplus_result.records:
            if record.dropped:
                assert record.bytes_downlinked == 0

    def test_band_bytes_sum_to_record(self, earthplus_result):
        for record in earthplus_result.records:
            assert sum(record.band_bytes.values()) == record.bytes_downlinked

    def test_required_downlink_bps(self, earthplus_result):
        expected = earthplus_result.downlink_bytes * 8 / (
            earthplus_result.horizon_days * 7 * 600.0
        )
        assert earthplus_result.required_downlink_bps() == pytest.approx(expected)

    def test_mean_psnr_finite(self, earthplus_result):
        assert 20.0 < earthplus_result.mean_psnr() < 60.0

    def test_per_band_and_location_partitions(self, earthplus_result):
        assert sum(earthplus_result.per_band_bytes().values()) == \
            earthplus_result.downlink_bytes
        assert sum(earthplus_result.per_location_bytes().values()) == \
            earthplus_result.downlink_bytes

    def test_timeseries_filters_location(self, earthplus_result):
        series = earthplus_result.timeseries("A")
        assert all(r.location == "A" for r in series)
        assert all(not r.dropped for r in series)

    def test_some_guaranteed_downloads_happen(self, earthplus_result):
        """Over 90 days with a 30-day period, guaranteed downloads must
        have fired at least once."""
        assert any(r.guaranteed for r in earthplus_result.records)

    def test_uplink_used(self, earthplus_result):
        assert earthplus_result.uplink_bytes > 0

    def test_reference_storage_tracked(self, earthplus_result):
        assert earthplus_result.reference_storage_bytes > 0


class TestConservation:
    def test_every_tile_accounted(self, tiny_sentinel_dataset):
        """Simulator invariant: per delivered band, downloaded, cloudy and
        skipped tiles partition the grid (no tile double-counted)."""
        from repro.core.cloud import train_onboard_detector
        from repro.core.system import EarthPlusPolicy

        config = EarthPlusConfig(gamma_bpp=0.3)
        detector = train_onboard_detector(
            tiny_sentinel_dataset.bands, tile_size=64
        )
        policy = EarthPlusPolicy(
            config,
            tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape,
            detector,
        )
        sensor = tiny_sentinel_dataset.sensors["A"]
        for visit in tiny_sentinel_dataset.schedule.visits_in("A", 0, 90):
            capture = sensor.capture(visit.satellite_id, visit.t_days)
            result = policy.process(capture, guaranteed_due=False)
            if result.dropped:
                continue
            for band in result.bands:
                overlap = band.downloaded_tiles & band.cloudy_tiles
                assert not overlap.any()


class TestPolicies:
    def test_unknown_policy_rejected(self, tiny_sentinel_dataset):
        with pytest.raises(ConfigError):
            run_policy(tiny_sentinel_dataset, "nonsense")

    def test_naive_downloads_everything(self, tiny_sentinel_dataset):
        result = run_policy(
            tiny_sentinel_dataset, "naive", EarthPlusConfig(gamma_bpp=0.2)
        )
        assert result.mean_downloaded_fraction() == pytest.approx(1.0)
        assert not any(r.dropped for r in result.records)

    def test_earthplus_beats_naive_on_bytes(self, tiny_sentinel_dataset,
                                            earthplus_result):
        naive = run_policy(
            tiny_sentinel_dataset, "naive", EarthPlusConfig(gamma_bpp=0.3)
        )
        assert earthplus_result.downlink_bytes < naive.downlink_bytes

    def test_zero_uplink_disables_references(self, tiny_sentinel_dataset):
        """With no uplink, Earth+ degrades towards download-all behaviour."""
        config = EarthPlusConfig(gamma_bpp=0.3)
        no_uplink = run_policy(
            tiny_sentinel_dataset, "earthplus", config,
            uplink_bytes_per_contact=0,
        )
        with_uplink = run_policy(tiny_sentinel_dataset, "earthplus", config)
        assert no_uplink.uplink_bytes == 0
        assert (
            no_uplink.mean_downloaded_fraction()
            >= with_uplink.mean_downloaded_fraction()
        )

    def test_deterministic_runs(self, tiny_sentinel_dataset, earthplus_result):
        again = run_policy(
            tiny_sentinel_dataset, "earthplus", EarthPlusConfig(gamma_bpp=0.3)
        )
        assert again.downlink_bytes == earthplus_result.downlink_bytes
        assert again.uplink_bytes == earthplus_result.uplink_bytes
