"""Unit tests for configuration objects."""

import pytest

from repro.core.config import DovesSpec, EarthPlusConfig
from repro.errors import ConfigError


class TestDovesSpec:
    def test_table1_defaults(self):
        spec = DovesSpec()
        assert spec.ground_contact_duration_s == 600.0
        assert spec.ground_contacts_per_day == 7
        assert spec.uplink_bps == 250e3
        assert spec.downlink_bps == 200e6
        assert spec.onboard_storage_bytes == 360 * 10**9
        assert spec.image_resolution == (4400, 6600)
        assert spec.image_channels == 4
        assert spec.raw_image_bytes == 150 * 10**6
        assert spec.ground_sampling_distance_m == 3.7

    def test_image_pixels(self):
        assert DovesSpec().image_pixels == 4400 * 6600

    def test_image_area_km2(self):
        """6600x4400 at 3.7 m GSD is ~400 km^2 (paper footnote 3)."""
        assert DovesSpec().image_area_km2 == pytest.approx(397.6, abs=1.0)

    def test_bytes_per_km2_near_paper_estimate(self):
        """Appendix A estimates 0.87 MB/km^2 for ~300 MB double-frame; our
        150 MB single frame gives ~0.38 MB/km^2, same order."""
        assert 0.3e6 < DovesSpec().bytes_per_km2 < 1.0e6

    def test_link_bytes_per_contact(self):
        spec = DovesSpec()
        assert spec.uplink_bytes_per_contact == 18_750_000
        assert spec.downlink_bytes_per_contact == 15_000_000_000


class TestEarthPlusConfig:
    def test_paper_defaults(self):
        config = EarthPlusConfig()
        assert config.tile_size == 64
        assert config.theta == 0.01
        assert config.guaranteed_download_days == 30.0
        assert config.cache_references_onboard
        assert config.delta_reference_updates

    def test_reference_compression_ratio(self):
        config = EarthPlusConfig(reference_downsample=36)
        # 36^2 x 2 bytes / 1 byte = 2592x, the paper's ~2601x point.
        assert config.reference_compression_ratio() == pytest.approx(2592.0)

    def test_with_overrides(self):
        config = EarthPlusConfig().with_overrides(gamma_bpp=1.5)
        assert config.gamma_bpp == 1.5
        assert config.tile_size == 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"tile_size": 0},
            {"theta": -0.1},
            {"gamma_bpp": 0.0},
            {"reference_downsample": 0},
            {"reference_max_cloud": 1.5},
            {"drop_cloud_fraction": 0.0},
            {"guaranteed_download_days": 0.0},
            {"n_quality_layers": 0},
            {"codec_backend": "kakadu"},
            {"codec_parallel_tiles": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            EarthPlusConfig(**kwargs)

    @pytest.mark.parametrize(
        "backend", ["model", "real", "reference", "vectorized"]
    )
    def test_codec_backends_accepted(self, backend):
        assert EarthPlusConfig(codec_backend=backend).codec_backend == backend

    def test_delta_requires_cache(self):
        with pytest.raises(ConfigError):
            EarthPlusConfig(
                cache_references_onboard=False, delta_reference_updates=True
            )

    def test_frozen(self):
        config = EarthPlusConfig()
        with pytest.raises(Exception):
            config.theta = 0.5  # type: ignore[misc]
