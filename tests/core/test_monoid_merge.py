"""Monoid laws for the sharded runner's merge operations.

`UplinkStats`, `DownlinkStats`, and `RunResult` each form a monoid under
`merge()` — associative, with `identity()` as the two-sided unit — and
the stats classes are additionally commutative (field-wise integer
sums).  `RunResult.merge` commutes on disjoint shard partials (distinct
visit keys, the only case the runner produces), which is asserted here
at the pickle-byte level the differential tests care about.
"""

import pickle
from dataclasses import fields

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.accounting import CaptureRecord, DownlinkStats, RunResult
from repro.core.ground_segment import UplinkStats

counts = st.integers(min_value=0, max_value=10**9)


def _stats_strategy(cls):
    names = [f.name for f in fields(cls)]
    return st.builds(
        lambda values: cls(**dict(zip(names, values))),
        st.tuples(*([counts] * len(names))),
    )


uplink_stats = _stats_strategy(UplinkStats)
downlink_stats = _stats_strategy(DownlinkStats)


@st.composite
def capture_records(draw):
    return CaptureRecord(
        location=draw(st.sampled_from(["A", "B", "C"])),
        satellite_id=draw(st.integers(0, 7)),
        t_days=draw(
            st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)
        ),
        dropped=draw(st.booleans()),
        guaranteed=draw(st.booleans()),
        cloud_coverage=draw(st.floats(0.0, 1.0)),
        psnr=draw(st.floats(0.0, 60.0)),
        downloaded_fraction=draw(st.floats(0.0, 1.0)),
        bytes_downlinked=draw(counts),
        band_bytes={"B4": draw(counts)},
        band_psnr={"B4": draw(st.floats(0.0, 60.0))},
    )


def _result(**overrides) -> RunResult:
    values = dict(
        policy="earthplus",
        records=[],
        downlink_bytes=0,
        uplink_bytes=0,
        updates_skipped=0,
        horizon_days=30.0,
        contacts_per_day=7,
        contact_duration_s=600.0,
        reference_storage_bytes=0,
        captured_storage_bytes=0,
        uplink_stats={},
        downlink_stats={},
        extra_metrics={},
    )
    values.update(overrides)
    return RunResult(**values)


@st.composite
def run_results(draw):
    return _result(
        records=draw(st.lists(capture_records(), max_size=4)),
        downlink_bytes=draw(counts),
        uplink_bytes=draw(counts),
        updates_skipped=draw(counts),
        reference_storage_bytes=draw(counts),
        captured_storage_bytes=draw(counts),
        uplink_stats=draw(uplink_stats).as_run_stats(),
        downlink_stats=draw(downlink_stats).as_run_stats(),
    )


class TestStatsMonoids:
    @settings(max_examples=100, deadline=None)
    @given(a=uplink_stats, b=uplink_stats, c=uplink_stats)
    def test_uplink_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=100, deadline=None)
    @given(a=uplink_stats, b=uplink_stats)
    def test_uplink_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=50, deadline=None)
    @given(a=uplink_stats)
    def test_uplink_identity(self, a):
        assert UplinkStats.identity().merge(a) == a
        assert a.merge(UplinkStats.identity()) == a

    @settings(max_examples=50, deadline=None)
    @given(a=uplink_stats)
    def test_uplink_run_stats_round_trip(self, a):
        assert UplinkStats.from_run_stats(a.as_run_stats()) == a

    @settings(max_examples=100, deadline=None)
    @given(a=downlink_stats, b=downlink_stats, c=downlink_stats)
    def test_downlink_associative(self, a, b, c):
        assert a.merge(b).merge(c) == a.merge(b.merge(c))

    @settings(max_examples=100, deadline=None)
    @given(a=downlink_stats, b=downlink_stats)
    def test_downlink_commutative(self, a, b):
        assert a.merge(b) == b.merge(a)

    @settings(max_examples=50, deadline=None)
    @given(a=downlink_stats)
    def test_downlink_identity(self, a):
        assert DownlinkStats.identity().merge(a) == a
        assert a.merge(DownlinkStats.identity()) == a

    @settings(max_examples=50, deadline=None)
    @given(a=downlink_stats)
    def test_downlink_run_stats_round_trip(self, a):
        assert DownlinkStats.from_run_stats(a.as_run_stats()) == a


class TestRunResultMonoid:
    @settings(max_examples=60, deadline=None)
    @given(a=run_results(), b=run_results(), c=run_results())
    def test_associative(self, a, b, c):
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert pickle.dumps(left) == pickle.dumps(right)

    @settings(max_examples=60, deadline=None)
    @given(a=run_results(), b=run_results())
    def test_commutative_on_disjoint_partials(self, a, b):
        # The runner only merges partials over disjoint visit sets; make
        # the operands disjoint by keying records to distinct locations.
        for record in a.records:
            record.location = "A"
        for record in b.records:
            record.location = "B"
        assert pickle.dumps(a.merge(b)) == pickle.dumps(b.merge(a))

    @settings(max_examples=60, deadline=None)
    @given(a=run_results())
    def test_identity(self, a):
        assert pickle.dumps(RunResult.identity().merge(a)) == pickle.dumps(a)
        assert pickle.dumps(a.merge(RunResult.identity())) == pickle.dumps(a)

    def test_identity_is_its_own_unit(self):
        both = RunResult.identity().merge(RunResult.identity())
        assert pickle.dumps(both) == pickle.dumps(RunResult.identity())

    def test_refuses_mismatched_config(self):
        with pytest.raises(ValueError, match="horizon_days"):
            _result(horizon_days=30.0).merge(_result(horizon_days=60.0))

    def test_refuses_mismatched_policy(self):
        with pytest.raises(ValueError, match="polic"):
            _result(policy="earthplus").merge(_result(policy="naive"))

    def test_empty_shard_adopts_policy(self):
        merged = _result(policy="").merge(_result(policy="naive"))
        assert merged.policy == "naive"

    def test_refuses_extra_metrics(self):
        with pytest.raises(ValueError, match="extra_metrics"):
            _result(extra_metrics={"x": 1}).merge(_result())


class TestMetricsAccumulatorIdentity:
    """`MetricsAccumulator.identity()` is a two-sided merge unit.

    The accumulator is the pre-`finalize` fold state; its identity uses
    zero-valued contact geometry as sentinel state, so the unit laws
    must hold even against accumulators whose geometry differs — and
    even against ones carrying collectors, which populated merges
    refuse.
    """

    def _populated(self):
        from repro.core.accounting import MetricsAccumulator

        acc = MetricsAccumulator(contacts_per_day=7, contact_duration_s=600.0)
        acc.policy_name = "earthplus"
        acc.downlink_bytes = 12345
        acc.peak_reference_bytes = 99
        return acc

    def test_identity_is_left_and_right_unit(self):
        from repro.core.accounting import MetricsAccumulator

        acc = self._populated()
        assert MetricsAccumulator.identity().merge(acc) is acc
        assert acc.merge(MetricsAccumulator.identity()) is acc

    def test_identity_merges_with_identity(self):
        from repro.core.accounting import MetricsAccumulator

        both = MetricsAccumulator.identity().merge(
            MetricsAccumulator.identity()
        )
        assert both._is_identity()

    def test_identity_unit_skips_collector_refusal(self):
        # Collectors normally make an accumulator unmergeable; the unit
        # laws still hold because identity adopts the other operand.
        from repro.core.accounting import MetricsAccumulator

        class _Collector:
            name = "probe"

        acc = self._populated()
        acc.collectors = [_Collector()]
        assert MetricsAccumulator.identity().merge(acc) is acc
        assert acc.merge(MetricsAccumulator.identity()) is acc

    def test_populated_merges_still_refuse_collectors(self):
        class _Collector:
            name = "probe"

        left = self._populated()
        left.collectors = [_Collector()]
        with pytest.raises(ValueError, match="collector"):
            left.merge(self._populated())
