"""Unit tests for the decision-tree cloud detectors."""

import numpy as np
import pytest

from repro.core.cloud import (
    DecisionTree,
    _training_captures,
    cloud_features,
    evaluate_detector,
    train_ground_detector,
    train_onboard_detector,
)
from repro.core.tiles import TileGrid
from repro.errors import PipelineError


class TestDecisionTree:
    def test_learns_simple_threshold(self, rng):
        x = rng.random((400, 1))
        y = x[:, 0] > 0.5
        tree = DecisionTree(max_depth=2).fit(x, y)
        preds = tree.predict(np.array([[0.1], [0.9]]))
        assert not preds[0] and preds[1]

    def test_learns_2d_rule(self, rng):
        x = rng.random((600, 2))
        y = (x[:, 0] > 0.5) & (x[:, 1] > 0.5)
        tree = DecisionTree(max_depth=3).fit(x, y)
        grid = np.array([[0.9, 0.9], [0.9, 0.1], [0.1, 0.9], [0.1, 0.1]])
        preds = tree.predict(grid)
        assert list(preds) == [True, False, False, False]

    def test_min_confidence_biases_precision(self, rng):
        x = rng.random((500, 1))
        noise = rng.random(500) < 0.15
        y = (x[:, 0] > 0.5) ^ noise  # noisy labels
        tree = DecisionTree(max_depth=2, min_leaf=20).fit(x, y)
        lenient = tree.predict(x, min_confidence=0.5).sum()
        strict = tree.predict(x, min_confidence=0.98).sum()
        assert strict <= lenient

    def test_pure_labels_single_leaf(self):
        x = np.zeros((50, 1))
        y = np.ones(50, dtype=bool)
        tree = DecisionTree().fit(x, y)
        assert tree.depth() == 0
        assert tree.predict(np.zeros((1, 1)))[0]

    def test_depth_bounded(self, rng):
        x = rng.random((1000, 3))
        y = rng.random(1000) < 0.5
        tree = DecisionTree(max_depth=3, min_leaf=5).fit(x, y)
        assert tree.depth() <= 3

    def test_unfitted_predict_rejected(self):
        with pytest.raises(PipelineError):
            DecisionTree().predict(np.zeros((1, 1)))

    def test_bad_inputs_rejected(self):
        with pytest.raises(PipelineError):
            DecisionTree().fit(np.zeros((3,)), np.zeros(3, dtype=bool))
        with pytest.raises(PipelineError):
            DecisionTree().fit(np.zeros((3, 1)), np.zeros(4, dtype=bool))
        with pytest.raises(PipelineError):
            DecisionTree(max_depth=0)


class TestCloudFeatures:
    def test_shape(self, two_bands, rng):
        pixels = {b.name: rng.random((16, 16)) for b in two_bands}
        features = cloud_features(pixels, two_bands)
        assert features.shape == (16, 16, 3)

    def test_contrast_is_difference(self, two_bands):
        pixels = {
            "B4": np.full((4, 4), 0.8),
            "B11": np.full((4, 4), 0.1),
        }
        features = cloud_features(pixels, two_bands)
        assert np.allclose(features[..., 2], 0.7)

    def test_requires_a_bright_band(self):
        from repro.imagery.bands import get_band

        cold_only = (get_band("B11"),)
        with pytest.raises(PipelineError):
            cloud_features({"B11": np.zeros((2, 2))}, cold_only)


class TestTrainedDetectors:
    def test_onboard_detector_cached(self, two_bands):
        a = train_onboard_detector(two_bands, tile_size=64)
        b = train_onboard_detector(two_bands, tile_size=64)
        assert a is b

    def test_detect_returns_full_res_mask(
        self, two_bands, onboard_detector, rng
    ):
        grid = TileGrid((128, 128), 64)
        pixels = {b.name: rng.random((128, 128)) for b in two_bands}
        mask = onboard_detector.detect(pixels, two_bands, grid)
        assert mask.shape == (128, 128)
        assert mask.dtype == bool

    def test_onboard_block_granularity(self, onboard_detector):
        assert onboard_detector.granularity == "block"
        assert onboard_detector.block_px >= 4

    def test_ground_detector_high_quality(self, two_bands, ground_detector):
        """The accurate detector must be near-oracle on held-out captures."""
        captures = _training_captures(two_bands, seed=777, n_captures=6,
                                      shape=(128, 128))
        grid = TileGrid((128, 128), 64)
        quality = evaluate_detector(ground_detector, captures, two_bands, grid)
        assert quality.precision > 0.9
        assert quality.recall > 0.9

    def test_onboard_detector_useful(self, two_bands, onboard_detector):
        captures = _training_captures(two_bands, seed=778, n_captures=6,
                                      shape=(128, 128))
        grid = TileGrid((128, 128), 64)
        quality = evaluate_detector(
            onboard_detector, captures, two_bands, grid
        )
        assert quality.precision > 0.85
        assert quality.recall > 0.6

    def test_onboard_paper_precision_claim(self, two_bands, onboard_detector):
        """Paper §5: >99 % of *areas* the cheap detector flags are cloudy.

        Measured at detection-block granularity: a flagged block counts as
        correct when it is majority-cloudy."""
        captures = _training_captures(two_bands, seed=779, n_captures=8,
                                      shape=(128, 128))
        block_grid = TileGrid((128, 128), onboard_detector.block_px)
        flagged_correct = 0
        flagged_total = 0
        for pixels, oracle in captures:
            mask = onboard_detector.detect(
                pixels, two_bands, TileGrid((128, 128), 64)
            )
            flagged_blocks = block_grid.reduce_fraction(mask) > 0.5
            cloudy_blocks = block_grid.reduce_fraction(oracle) > 0.4
            flagged_correct += int((flagged_blocks & cloudy_blocks).sum())
            flagged_total += int(flagged_blocks.sum())
        assert flagged_total > 0
        assert flagged_correct / flagged_total > 0.95

    def test_clear_scene_not_flagged(self, two_bands, onboard_detector, small_earth):
        """A cloud-free scene must produce (almost) no cloud detections."""
        grid = TileGrid((128, 128), 64)
        pixels = {
            b.name: small_earth.ground_truth(b.name, 5.0) * 0.9
            for b in two_bands
        }
        mask = onboard_detector.detect(pixels, two_bands, grid)
        assert mask.mean() < 0.05

    def test_unknown_granularity_rejected(self, two_bands, onboard_detector, rng):
        from dataclasses import replace

        broken = replace(onboard_detector, granularity="weird")
        grid = TileGrid((128, 128), 64)
        pixels = {b.name: rng.random((128, 128)) for b in two_bands}
        with pytest.raises(PipelineError):
            broken.detect(pixels, two_bands, grid)

    def test_coverage_helper(self, two_bands, ground_detector, rng):
        grid = TileGrid((128, 128), 64)
        pixels = {b.name: rng.random((128, 128)) for b in two_bands}
        coverage = ground_detector.coverage(pixels, two_bands, grid)
        assert 0.0 <= coverage <= 1.0
