"""Tests for the shared boolean environment-switch parser (repro.perf)."""

from __future__ import annotations

import pytest

from repro import perf


class TestParseFlag:
    @pytest.mark.parametrize("word", ["1", "true", "TRUE", "Yes", "on", " ON "])
    def test_true_words(self, word):
        assert perf.parse_flag(word) is True

    @pytest.mark.parametrize(
        "word", ["0", "false", "FALSE", "No", "off", "OFF", ""]
    )
    def test_false_words(self, word):
        assert perf.parse_flag(word) is False

    @pytest.mark.parametrize("word", ["~/.cache/repro", "2", "maybe"])
    def test_non_flags_are_none(self, word):
        assert perf.parse_flag(word) is None


class TestEnvFlag:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_FLAG", raising=False)
        assert perf.env_flag("REPRO_TEST_FLAG", True) is True
        assert perf.env_flag("REPRO_TEST_FLAG", False) is False

    @pytest.mark.parametrize(
        ("value", "expected"),
        [("1", True), ("on", True), ("0", False), ("FALSE", False),
         ("off", False), ("No", False)],
    )
    def test_set_values(self, monkeypatch, value, expected):
        monkeypatch.setenv("REPRO_TEST_FLAG", value)
        assert perf.env_flag("REPRO_TEST_FLAG", not expected) is expected

    def test_garbage_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAG", "maybe")
        with pytest.raises(ValueError, match="REPRO_TEST_FLAG"):
            perf.env_flag("REPRO_TEST_FLAG", True)

    def test_fastpath_regression_spellings(self, monkeypatch):
        """The bug that motivated env_flag: FALSE/off used to enable."""
        for spelling in ("FALSE", "off", "No", "OFF"):
            monkeypatch.setenv("REPRO_SIM_FASTPATH", spelling)
            assert perf.env_flag("REPRO_SIM_FASTPATH", True) is False

    def test_import_time_parse_warns_instead_of_raising(self, monkeypatch):
        """Garbage in the env must not brick module import (CLI --help)."""
        monkeypatch.setenv("REPRO_TEST_FLAG", "garbage")
        with pytest.warns(UserWarning, match="REPRO_TEST_FLAG"):
            assert perf._env_flag_lenient("REPRO_TEST_FLAG", True) is True
        with pytest.warns(UserWarning):
            assert perf._env_flag_lenient("REPRO_TEST_FLAG", False) is False


class TestFastpathCallTimeEnv:
    """REPRO_SIM_FASTPATH is honored at call time, not import time.

    The switch used to be read once at module import, so the order of
    "import repro.perf" vs "export REPRO_SIM_FASTPATH=0" silently decided
    whether it worked.  Both orders must behave identically now.
    """

    @pytest.fixture(autouse=True)
    def _no_override(self):
        perf.clear_simulation_fastpath()
        yield
        perf.clear_simulation_fastpath()

    def test_env_set_after_first_call_still_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_FASTPATH", raising=False)
        assert perf.simulation_fastpath() is True  # default, already read
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        assert perf.simulation_fastpath() is False  # export after import/call
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "on")
        assert perf.simulation_fastpath() is True

    def test_env_set_before_first_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "off")
        assert perf.simulation_fastpath() is False
        monkeypatch.delenv("REPRO_SIM_FASTPATH")
        assert perf.simulation_fastpath() is True

    def test_explicit_override_beats_env_until_cleared(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        perf.set_simulation_fastpath(True)
        assert perf.simulation_fastpath() is True
        perf.clear_simulation_fastpath()
        assert perf.simulation_fastpath() is False

    def test_context_managers_restore_env_following(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "1")
        with perf.fastpath_disabled():
            assert perf.simulation_fastpath() is False
            monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
            assert perf.simulation_fastpath() is False  # override still wins
        assert perf.simulation_fastpath() is False  # now the env decides


class TestSimWorkersEnv:
    """REPRO_SIM_WORKERS is read at call time, exactly like REPRO_SIM_SHARDS."""

    def test_unset_is_sequential(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_WORKERS", raising=False)
        assert perf.sim_workers() == 1

    def test_set_after_import_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "4")
        assert perf.sim_workers() == 4

    @pytest.mark.parametrize("value", ["zero", "1.5", "-2", "0"])
    def test_garbage_raises(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_SIM_WORKERS", value)
        with pytest.raises(ValueError, match="REPRO_SIM_WORKERS"):
            perf.sim_workers()

    def test_blank_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_WORKERS", "  ")
        assert perf.sim_workers() == 1


class TestStorePathResolution:
    """REPRO_STORE is path-or-flag, parsed through the same words."""

    def test_false_words_disable(self, monkeypatch):
        from repro.store.backend import resolve_store_path

        for word in ("off", "0", "FALSE"):
            monkeypatch.setenv("REPRO_STORE", word)
            assert resolve_store_path() is None

    def test_true_words_pick_default(self, monkeypatch):
        from repro.store.backend import DEFAULT_STORE_DIR, resolve_store_path

        monkeypatch.setenv("REPRO_STORE", "on")
        assert resolve_store_path() == DEFAULT_STORE_DIR.expanduser()

    def test_path_value(self, monkeypatch, tmp_path):
        from repro.store.backend import resolve_store_path

        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "mystore"))
        assert resolve_store_path() == tmp_path / "mystore"
