"""Unit tests for the on-board Earth+ encoder pipeline."""

import numpy as np
import pytest

from repro.core.config import EarthPlusConfig
from repro.core.encoder import EarthPlusEncoder
from repro.core.reference import OnboardReferenceCache, downsample_image
from repro.errors import PipelineError


@pytest.fixture()
def encoder(two_bands, onboard_detector, tiny_sentinel_dataset):
    config = EarthPlusConfig(gamma_bpp=0.3)
    cache = OnboardReferenceCache(lr_tile=8)
    return EarthPlusEncoder(
        config=config,
        bands=tiny_sentinel_dataset.bands,
        image_shape=tiny_sentinel_dataset.image_shape,
        cloud_detector=onboard_detector,
        cache=cache,
    )


def clear_capture(dataset, t_start=0.0):
    """First capture in the dataset with true coverage below 5 %."""
    sensor = dataset.sensors["A"]
    t = t_start
    while t < 400:
        capture = sensor.capture(0, t)
        if capture.cloud_coverage < 0.05:
            return capture
        t += 1.7
    raise AssertionError("no clear capture found")


def cloudy_capture(dataset, min_cov=0.7):
    sensor = dataset.sensors["A"]
    t = 0.0
    while t < 400:
        capture = sensor.capture(0, t)
        if capture.cloud_coverage > min_cov:
            return capture
        t += 1.7
    raise AssertionError("no cloudy capture found")


class TestColdStart:
    def test_no_reference_downloads_noncloudy(self, encoder, tiny_sentinel_dataset):
        capture = clear_capture(tiny_sentinel_dataset)
        result = encoder.process_capture(capture)
        assert not result.dropped
        for band in result.bands:
            assert not band.had_reference
            assert band.downloaded_tiles.mean() > 0.8
            assert band.bytes_downlinked > 0

    def test_byte_budget_tracks_gamma(self, two_bands, onboard_detector,
                                       tiny_sentinel_dataset):
        capture = clear_capture(tiny_sentinel_dataset)
        sizes = {}
        for gamma in (0.2, 0.8):
            cache = OnboardReferenceCache(lr_tile=8)
            encoder = EarthPlusEncoder(
                config=EarthPlusConfig(gamma_bpp=gamma),
                bands=tiny_sentinel_dataset.bands,
                image_shape=tiny_sentinel_dataset.image_shape,
                cloud_detector=onboard_detector,
                cache=cache,
            )
            sizes[gamma] = encoder.process_capture(capture).total_bytes
        assert sizes[0.8] > sizes[0.2] * 1.5


class TestCloudHandling:
    def test_heavy_cloud_dropped(self, encoder, tiny_sentinel_dataset):
        capture = cloudy_capture(tiny_sentinel_dataset)
        result = encoder.process_capture(capture)
        assert result.dropped
        assert result.bands == []
        assert result.total_bytes == 0

    def test_detected_cloud_pixels_zeroed_not_downloaded(
        self, encoder, tiny_sentinel_dataset
    ):
        sensor = tiny_sentinel_dataset.sensors["A"]
        t = 0.0
        while t < 400:
            capture = sensor.capture(0, t)
            result = encoder.process_capture(capture)
            if not result.dropped and result.bands[0].cloudy_tiles.any():
                band = result.bands[0]
                assert not (band.downloaded_tiles & band.cloudy_tiles).any()
                return
            t += 1.7
        pytest.skip("no partially cloudy capture found")


class TestWithReference:
    def seed_reference(self, encoder, capture, t_days):
        """Install a reference built from a clear capture."""
        for band in encoder.bands:
            clean = capture.pixels[band.name]
            lr = downsample_image(clean, encoder.config.reference_downsample)
            update = encoder.cache.build_update(
                capture.location, band.name, t_days, lr
            )
            encoder.cache.apply_update(update)

    def test_fresh_reference_few_downloads(self, encoder, tiny_sentinel_dataset):
        capture = clear_capture(tiny_sentinel_dataset)
        self.seed_reference(encoder, capture, capture.t_days)
        # Re-observe almost immediately: content identical, illumination new.
        later = tiny_sentinel_dataset.sensors["A"].capture(
            1, capture.t_days + 0.01
        )
        if later.cloud_coverage > 0.05:
            pytest.skip("follow-up capture cloudy")
        result = encoder.process_capture(later)
        for band in result.bands:
            assert band.had_reference
            assert band.changed_fraction < 0.3

    def test_guaranteed_download_overrides_detection(
        self, encoder, tiny_sentinel_dataset
    ):
        capture = clear_capture(tiny_sentinel_dataset)
        self.seed_reference(encoder, capture, capture.t_days)
        result = encoder.process_capture(capture, guaranteed_due=True)
        assert result.guaranteed
        for band in result.bands:
            assert band.downloaded_tiles.mean() > 0.8

    def test_guaranteed_needs_clear_sky(self, encoder, tiny_sentinel_dataset):
        sensor = tiny_sentinel_dataset.sensors["A"]
        t = 0.0
        while t < 400:
            capture = sensor.capture(0, t)
            if 0.1 < capture.cloud_coverage < 0.45:
                result = encoder.process_capture(capture, guaranteed_due=True)
                if not result.dropped and result.cloud_coverage_detected > 0.05:
                    assert not result.guaranteed
                    return
            t += 1.7
        pytest.skip("no moderately cloudy capture found")

    def test_alignment_fitted_against_reference(self, encoder, tiny_sentinel_dataset):
        capture = clear_capture(tiny_sentinel_dataset)
        self.seed_reference(encoder, capture, capture.t_days)
        later = tiny_sentinel_dataset.sensors["A"].capture(
            1, capture.t_days + 0.01
        )
        if later.cloud_coverage > 0.05:
            pytest.skip("follow-up capture cloudy")
        result = encoder.process_capture(later)
        band = result.bands[0]
        assert 0.5 <= band.gain <= 2.0

    def test_shape_mismatch_rejected(self, encoder, tiny_sentinel_dataset):
        from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
        from repro.imagery.sensor import SatelliteSensor

        spec = LocationSpec(
            name="A", shape=(64, 64),
            terrain_mix={TerrainClass.FOREST: 1.0}, seed=123,
        )
        small_sensor = SatelliteSensor(
            earth=EarthModel(spec, tiny_sentinel_dataset.bands),
            bands=tiny_sentinel_dataset.bands,
        )
        capture = small_sensor.capture(0, 1.0)
        with pytest.raises(PipelineError):
            encoder.process_capture(capture)
