"""Unit tests for the ground segment (mosaic, scoring, upload planning)."""

import numpy as np
import pytest

from repro.core.config import EarthPlusConfig
from repro.core.encoder import EarthPlusEncoder
from repro.core.ground_segment import GroundSegment
from repro.core.reference import OnboardReferenceCache
from repro.errors import PipelineError


@pytest.fixture()
def segment(two_bands, ground_detector, tiny_sentinel_dataset):
    return GroundSegment(
        config=EarthPlusConfig(gamma_bpp=0.3),
        bands=tiny_sentinel_dataset.bands,
        image_shape=tiny_sentinel_dataset.image_shape,
        ground_detector=ground_detector,
    )


@pytest.fixture()
def encoder(onboard_detector, tiny_sentinel_dataset):
    return EarthPlusEncoder(
        config=EarthPlusConfig(gamma_bpp=0.3),
        bands=tiny_sentinel_dataset.bands,
        image_shape=tiny_sentinel_dataset.image_shape,
        cloud_detector=onboard_detector,
        cache=OnboardReferenceCache(lr_tile=8),
    )


def first_clear(dataset, satellite=0):
    sensor = dataset.sensors["A"]
    t = 0.0
    while t < 400:
        capture = sensor.capture(satellite, t)
        if capture.cloud_coverage < 0.05:
            return capture
        t += 1.7
    raise AssertionError("no clear capture")


class TestIngest:
    def test_dropped_capture_returns_none(self, segment, encoder,
                                          tiny_sentinel_dataset):
        sensor = tiny_sentinel_dataset.sensors["A"]
        t = 0.0
        while t < 400:
            capture = sensor.capture(0, t)
            result = encoder.process_capture(capture)
            if result.dropped:
                assert segment.ingest(result, capture) is None
                return
            t += 1.7
        pytest.skip("no dropped capture found")

    def test_clear_download_scores_well(self, segment, encoder,
                                        tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        result = encoder.process_capture(capture)
        score = segment.ingest(result, capture)
        assert score is not None
        assert score.psnr > 30.0
        assert score.bytes_downlinked == result.total_bytes

    def test_mosaic_populated_after_ingest(self, segment, encoder,
                                           tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        result = encoder.process_capture(capture)
        segment.ingest(result, capture)
        for band in tiny_sentinel_dataset.bands:
            assert segment.mosaic.has("A", band.name)
            assert segment.mosaic.filled_mask("A", band.name).mean() > 0.5

    def test_mosaic_content_close_to_truth(self, segment, encoder,
                                           tiny_sentinel_dataset):
        """Ingested mosaic content must track the (normalized) surface."""
        capture = first_clear(tiny_sentinel_dataset)
        result = encoder.process_capture(capture)
        segment.ingest(result, capture)
        band = tiny_sentinel_dataset.bands[0].name
        mosaic = segment.mosaic.image("A", band)
        filled = segment.mosaic.filled_mask("A", band)
        truth = tiny_sentinel_dataset.earth_models["A"].ground_truth(
            band, capture.t_days
        )
        corr = np.corrcoef(mosaic[filled], truth[filled])[0, 1]
        assert corr > 0.9


class TestUploadPlanning:
    def test_no_content_no_updates(self, segment):
        cache = OnboardReferenceCache(lr_tile=8)
        plan = segment.plan_uploads(cache, ["A"], 1.0, 10**9)
        assert plan.updates == []
        assert plan.bytes_used == 0

    def test_updates_fill_cache(self, segment, encoder, tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        segment.ingest(encoder.process_capture(capture), capture)
        cache = OnboardReferenceCache(lr_tile=8)
        plan = segment.plan_uploads(cache, ["A"], capture.t_days + 1, 10**9)
        assert len(plan.updates) == len(tiny_sentinel_dataset.bands)
        for band in tiny_sentinel_dataset.bands:
            assert cache.has("A", band.name)

    def test_budget_zero_skips_everything(self, segment, encoder,
                                          tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        segment.ingest(encoder.process_capture(capture), capture)
        cache = OnboardReferenceCache(lr_tile=8)
        plan = segment.plan_uploads(cache, ["A"], capture.t_days + 1, 0)
        assert plan.updates == []
        assert plan.skipped == len(tiny_sentinel_dataset.bands)
        assert not cache.has("A", tiny_sentinel_dataset.bands[0].name)

    def test_partial_budget_partially_applies(self, segment, encoder,
                                              tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        segment.ingest(encoder.process_capture(capture), capture)
        cache = OnboardReferenceCache(lr_tile=8)
        probe = OnboardReferenceCache(lr_tile=8)
        full_plan = segment.plan_uploads(probe, ["A"], capture.t_days + 1, 10**9)
        one_update = full_plan.updates[0].n_bytes
        plan = segment.plan_uploads(
            cache, ["A"], capture.t_days + 1, one_update
        )
        assert len(plan.updates) >= 1
        assert plan.skipped >= 1
        assert plan.bytes_used <= one_update

    def test_uplink_accounting_accumulates(self, segment, encoder,
                                           tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        segment.ingest(encoder.process_capture(capture), capture)
        cache = OnboardReferenceCache(lr_tile=8)
        before = segment.uplink_bytes_total
        plan = segment.plan_uploads(cache, ["A"], capture.t_days + 1, 10**9)
        assert segment.uplink_bytes_total == before + plan.bytes_used

    def test_negative_budget_rejected(self, segment):
        cache = OnboardReferenceCache(lr_tile=8)
        with pytest.raises(PipelineError):
            segment.plan_uploads(cache, ["A"], 0.0, -1)

    def test_second_plan_no_change_no_bytes(self, segment, encoder,
                                            tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        segment.ingest(encoder.process_capture(capture), capture)
        cache = OnboardReferenceCache(lr_tile=8)
        segment.plan_uploads(cache, ["A"], capture.t_days + 1, 10**9)
        repeat = segment.plan_uploads(cache, ["A"], capture.t_days + 2, 10**9)
        assert repeat.bytes_used == 0


class TestUplinkStatsCompleteness:
    """as_run_stats carries the complete update-level accounting."""

    def test_includes_bytes_sent_and_skips(self, segment, encoder,
                                           tiny_sentinel_dataset):
        capture = first_clear(tiny_sentinel_dataset)
        segment.ingest(encoder.process_capture(capture), capture)
        cache = OnboardReferenceCache(lr_tile=8)
        # One generous plan (sends), one zero-budget plan (skips).
        plan = segment.plan_uploads(cache, ["A"], capture.t_days + 1, 10**9)
        fresh = OnboardReferenceCache(lr_tile=8)
        segment.plan_uploads(fresh, ["A"], capture.t_days + 2, 0)
        stats = segment.stats.as_run_stats()
        assert stats["bytes_sent"] == plan.bytes_used
        assert stats["updates_skipped"] == len(tiny_sentinel_dataset.bands)
        assert stats["updates_sent"] == len(plan.updates)
        # Every dataclass field is mirrored into the run-level dict.
        import dataclasses

        from repro.core.ground_segment import UplinkStats

        assert set(stats) == {
            f.name for f in dataclasses.fields(UplinkStats)
        }


class TestDegenerateScores:
    """Fully-cloudy and band-less ingests score as finite sentinels."""

    def test_bandless_result_scores_without_warnings(
        self, segment, tiny_sentinel_dataset
    ):
        import warnings

        from repro.core.encoder import CaptureEncodeResult

        capture = first_clear(tiny_sentinel_dataset)
        result = CaptureEncodeResult(
            location="A",
            satellite_id=0,
            t_days=capture.t_days,
            dropped=False,
            guaranteed=False,
            cloud_coverage_detected=0.4,
            bands=[],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            score = segment.ingest(result, capture)
        assert score is not None
        assert score.psnr == 0.0
        assert score.downloaded_tile_fraction == 0.0

    def test_fully_cloudy_capture_scores_zero_sentinel(
        self, segment, encoder, tiny_sentinel_dataset
    ):
        """Every tile cloudy -> no scoreable pixels -> psnr sentinel 0.0,
        and aggregation stays warning-free."""
        import warnings

        import repro.core.accounting as accounting
        from repro.core.encoder import BandEncodeResult, CaptureEncodeResult

        shape = tiny_sentinel_dataset.image_shape
        grid_shape = segment.grid.grid_shape
        capture = first_clear(tiny_sentinel_dataset)
        band = BandEncodeResult(
            band=tiny_sentinel_dataset.bands[0].name,
            downloaded_tiles=np.zeros(grid_shape, dtype=bool),
            cloudy_tiles=np.ones(grid_shape, dtype=bool),
            changed_fraction=0.0,
            bytes_downlinked=8,
            psnr_downloaded=float("inf"),
            reconstruction=np.zeros(shape),
            gain=1.0,
            offset=0.0,
            had_reference=False,
            cloudy_pixels=np.ones(shape, dtype=bool),
        )
        result = CaptureEncodeResult(
            location="A",
            satellite_id=0,
            t_days=capture.t_days,
            dropped=False,
            guaranteed=False,
            cloud_coverage_detected=1.0,
            bands=[band],
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            score = segment.ingest(result, capture)
        assert score is not None
        assert score.psnr == 0.0
        assert np.isfinite(score.psnr)
        # The sentinel never enters the pooled PSNR.
        from repro.core.accounting import CaptureRecord, RunResult

        record = CaptureRecord(
            location="A",
            satellite_id=0,
            t_days=capture.t_days,
            dropped=False,
            guaranteed=False,
            cloud_coverage=1.0,
            psnr=score.psnr,
            downloaded_fraction=0.0,
            bytes_downlinked=8,
        )
        run = RunResult(
            policy="earthplus",
            records=[record],
            downlink_bytes=8,
            uplink_bytes=0,
            updates_skipped=0,
            horizon_days=1.0,
            contacts_per_day=7,
            contact_duration_s=600.0,
            reference_storage_bytes=0,
            captured_storage_bytes=0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert run.mean_psnr() == float("inf")
            assert run.mean_downloaded_fraction() == 0.0
