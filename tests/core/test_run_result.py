"""Hand-computed expectations for RunResult aggregation helpers."""

import math

import pytest

from repro.core.accounting import CaptureRecord, RunResult


def make_record(
    location: str = "A",
    psnr: float = 30.0,
    bytes_downlinked: int = 100,
    band_bytes: dict | None = None,
    dropped: bool = False,
    downloaded_fraction: float = 0.5,
) -> CaptureRecord:
    return CaptureRecord(
        location=location,
        satellite_id=0,
        t_days=1.0,
        dropped=dropped,
        guaranteed=False,
        cloud_coverage=0.0,
        psnr=psnr,
        downloaded_fraction=downloaded_fraction,
        bytes_downlinked=bytes_downlinked,
        band_bytes=band_bytes if band_bytes is not None else {},
    )


def make_result(records, downlink_bytes=0, horizon_days=10.0) -> RunResult:
    return RunResult(
        policy="test",
        records=records,
        downlink_bytes=downlink_bytes,
        uplink_bytes=0,
        updates_skipped=0,
        horizon_days=horizon_days,
        contacts_per_day=7,
        contact_duration_s=600.0,
        reference_storage_bytes=0,
        captured_storage_bytes=0,
    )


class TestMeanPsnr:
    def test_pools_in_mse_domain(self):
        """PSNRs of 10 and 20 dB pool via mean MSE, not mean dB.

        MSEs are 0.1 and 0.01; their mean is 0.055, and
        -10*log10(0.055) = 12.5964 dB — well below the 15 dB naive
        average.
        """
        result = make_result([make_record(psnr=10.0), make_record(psnr=20.0)])
        assert result.mean_psnr() == pytest.approx(
            -10.0 * math.log10(0.055), rel=1e-9
        )
        assert result.mean_psnr() == pytest.approx(12.5964, abs=1e-3)

    def test_infinite_psnr_excluded_from_pool(self):
        """Records with infinite PSNR (nothing downloaded, perfect trivially)
        are excluded from the pool rather than dragging the mean up."""
        result = make_result(
            [make_record(psnr=10.0), make_record(psnr=float("inf"))]
        )
        assert result.mean_psnr() == pytest.approx(10.0, rel=1e-9)

    def test_dropped_and_nan_records_excluded(self):
        result = make_result(
            [
                make_record(psnr=10.0),
                make_record(psnr=40.0, dropped=True),
                make_record(psnr=float("nan")),
            ]
        )
        assert result.mean_psnr() == pytest.approx(10.0, rel=1e-9)

    def test_no_delivered_records_is_infinite(self):
        assert make_result([]).mean_psnr() == float("inf")


class TestRequiredDownlinkBps:
    def test_hand_computed_rate(self):
        """5250 bytes over 10 days x 7 contacts x 600 s = 42 000 contact
        seconds is exactly 1 bit per second."""
        result = make_result([], downlink_bytes=5250, horizon_days=10.0)
        assert result.required_downlink_bps() == pytest.approx(1.0, rel=1e-12)

    def test_zero_horizon_is_zero_demand(self):
        result = make_result([], downlink_bytes=1000, horizon_days=0.0)
        assert result.required_downlink_bps() == 0.0


class TestPerBandBytes:
    def test_sums_across_records(self):
        result = make_result(
            [
                make_record(band_bytes={"B4": 100, "B11": 50}),
                make_record(band_bytes={"B4": 25}),
            ]
        )
        assert result.per_band_bytes() == {"B4": 125, "B11": 50}

    def test_includes_dropped_records(self):
        """Per-band totals partition *all* downlink bytes, and dropped
        captures carry none."""
        result = make_result(
            [
                make_record(band_bytes={"B4": 100}),
                make_record(band_bytes={}, dropped=True, bytes_downlinked=0),
            ]
        )
        assert result.per_band_bytes() == {"B4": 100}


class TestPerLocationPsnr:
    def test_pools_per_location(self):
        result = make_result(
            [
                make_record(location="A", psnr=10.0),
                make_record(location="A", psnr=20.0),
                make_record(location="B", psnr=30.0),
            ]
        )
        pooled = result.per_location_psnr()
        assert set(pooled) == {"A", "B"}
        assert pooled["A"] == pytest.approx(12.5964, abs=1e-3)
        assert pooled["B"] == pytest.approx(30.0, rel=1e-9)

    def test_dropped_locations_absent(self):
        result = make_result([make_record(location="C", dropped=True)])
        assert result.per_location_psnr() == {}


class TestPerLocationBytes:
    def test_partitions_downlink(self):
        result = make_result(
            [
                make_record(location="A", bytes_downlinked=100),
                make_record(location="B", bytes_downlinked=40),
                make_record(location="A", bytes_downlinked=10),
            ]
        )
        assert result.per_location_bytes() == {"A": 110, "B": 40}


class TestPsnrSentinel:
    def test_zero_sentinel_excluded_from_pool(self):
        """The 0.0 'nothing scoreable' sentinel never drags the pool down
        (exactly as the old inf sentinel was excluded)."""
        result = make_result(
            [make_record(psnr=30.0), make_record(psnr=0.0)]
        )
        assert result.mean_psnr() == pytest.approx(30.0)

    def test_all_sentinels_pool_to_infinity(self):
        result = make_result([make_record(psnr=0.0)])
        assert result.mean_psnr() == float("inf")

    def test_sentinel_excluded_per_location(self):
        result = make_result(
            [
                make_record(location="A", psnr=30.0),
                make_record(location="A", psnr=0.0),
                make_record(location="B", psnr=0.0),
            ]
        )
        per_location = result.per_location_psnr()
        assert per_location["A"] == pytest.approx(30.0)
        assert "B" not in per_location


class TestDownlinkAccounting:
    def test_downlink_stats_default_empty(self):
        assert make_result([]).downlink_stats == {}

    def test_layers_shed_sums_records(self):
        records = [make_record(), make_record(), make_record()]
        records[0].layers_shed = 2
        records[2].layers_shed = 1
        assert make_result(records).layers_shed() == 3

    def test_record_downlink_defaults(self):
        record = make_record()
        assert record.downlink_capacity_bytes == 0
        assert record.layers_shed == 0
        assert record.downlink_deferred is False
