"""Unit tests for the downlink phase: budgets, shedding, deferral."""

import numpy as np
import pytest

from repro.codec.ratemodel import QualityLayer
from repro.core.encoder import ALIGNMENT_BYTES, BandEncodeResult, CaptureEncodeResult
from repro.core.phases import DownlinkPhase, SatelliteState, VisitEvent
from repro.errors import PipelineError
from repro.orbit.links import FluctuationModel
from repro.orbit.schedule import Visit


def make_band(name: str, layer_bytes: tuple[int, ...]) -> BandEncodeResult:
    """A synthetic coded band whose layer views truncate to layer_bytes."""
    shape = (8, 8)
    layers = tuple(
        QualityLayer(
            coded_bytes=nbytes,
            psnr_roi=20.0 + 5.0 * index,
            reconstruction=np.full(shape, float(index)),
        )
        for index, nbytes in enumerate(layer_bytes)
    )
    return BandEncodeResult(
        band=name,
        downloaded_tiles=np.ones((1, 1), dtype=bool),
        cloudy_tiles=np.zeros((1, 1), dtype=bool),
        changed_fraction=1.0,
        bytes_downlinked=layer_bytes[-1] + ALIGNMENT_BYTES,
        psnr_downloaded=20.0 + 5.0 * (len(layer_bytes) - 1),
        reconstruction=np.full(shape, float(len(layer_bytes) - 1)),
        gain=1.0,
        offset=0.0,
        had_reference=True,
        layers=layers,
    )


def make_result(bands, guaranteed: bool = False) -> CaptureEncodeResult:
    return CaptureEncodeResult(
        location="A",
        satellite_id=0,
        t_days=5.0,
        dropped=False,
        guaranteed=guaranteed,
        cloud_coverage_detected=0.0,
        bands=list(bands),
        onboard_encoded_bytes=sum(b.bytes_downlinked for b in bands),
    )


def make_event(result, t_days: float = 5.0, policy=None) -> VisitEvent:
    class _Policy:
        name = "test"
        uses_uplink = False

    state = SatelliteState(satellite_id=0, policy=policy or _Policy())
    if result is not None and result.guaranteed:
        state.last_guaranteed["A"] = result.t_days
    return VisitEvent(
        visit=Visit(t_days=t_days, satellite_id=0, location="A"),
        state=state,
        result=result,
    )


def phase(budget: int, contacts_per_day: int = 1, **kwargs) -> DownlinkPhase:
    return DownlinkPhase(
        downlink_bytes_per_contact=budget,
        contacts_per_day=contacts_per_day,
        **kwargs,
    )


class TestBudgetArithmetic:
    def test_requires_capture_phase(self):
        with pytest.raises(PipelineError, match="capture"):
            phase(1000).run(make_event(None))

    def test_rejects_negative_budget(self):
        with pytest.raises(PipelineError):
            phase(-1)

    def test_capacity_accumulates_capped_contacts(self):
        """Capacity = contacts banked since last visit x bytes, capped."""
        event = make_event(make_result([make_band("B4", (100, 200, 300))]),
                           t_days=10.0)
        downlink = phase(1000, contacts_per_day=3, max_accumulation_days=2.0)
        downlink.run(event)
        # gap capped at 2 days -> 6 contacts -> 6000 B.
        assert event.downlink.capacity_bytes == 6000
        assert event.state.downlink_contact_count == 1
        assert event.state.last_downlink_days == 10.0

    def test_fluctuation_scales_capacity(self):
        fluct = FluctuationModel(seed=3, severity=0.8)
        constant = make_event(make_result([make_band("B4", (10, 20, 30))]))
        phase(1000).run(constant)
        fluctuating = make_event(make_result([make_band("B4", (10, 20, 30))]))
        phase(1000, fluctuation=fluct).run(fluctuating)
        from repro.orbit.links import DOWNLINK_STREAM

        expected = int(
            constant.downlink.capacity_bytes
            * fluct.multiplier(0, 0, stream=DOWNLINK_STREAM)
        )
        assert fluctuating.downlink.capacity_bytes == expected

    def test_dropped_capture_reports_zero_offer(self):
        result = make_result([make_band("B4", (100, 200))])
        result.dropped = True
        result.bands = []
        event = make_event(result)
        phase(1000).run(event)
        assert event.downlink.offered_bytes == 0
        assert event.downlink.delivered_bytes == 0
        assert not event.downlink.dropped


class TestDelivery:
    def test_fitting_capture_untouched(self):
        result = make_result([make_band("B4", (100, 200, 300))])
        event = make_event(result)
        phase(10_000).run(event)
        assert event.result is result  # same object: no mutation at all
        assert event.downlink.delivered_bytes == result.total_bytes
        assert event.downlink.layers_shed == 0

    def test_sheds_trailing_layers_to_fit(self):
        result = make_result([make_band("B4", (100, 200, 300))])
        event = make_event(result, t_days=1.0)
        phase(250).run(event)  # 1 contact -> 250 B < 308 offered
        band = event.result.bands[0]
        assert band.layers_shed == 1
        assert band.bytes_downlinked == 200 + ALIGNMENT_BYTES
        assert band.psnr_downloaded == pytest.approx(25.0)
        assert np.all(band.reconstruction == 1.0)
        assert len(band.layers) == 2
        assert event.downlink.layers_shed == 1
        assert event.downlink.delivered_bytes == 200 + ALIGNMENT_BYTES
        assert event.downlink.delivered_bytes <= event.downlink.capacity_bytes

    def test_sheds_most_expensive_band_first(self):
        cheap = make_band("B4", (50, 80))
        costly = make_band("B11", (100, 400))
        result = make_result([cheap, costly])
        event = make_event(result, t_days=1.0)
        # Offered: (80+8) + (400+8) = 496; budget 300 sheds B11 only.
        phase(300).run(event)
        by_name = {b.band: b for b in event.result.bands}
        assert by_name["B4"].layers_shed == 0
        assert by_name["B11"].layers_shed == 1
        assert event.result.total_bytes == (80 + 8) + (100 + 8)

    def test_unlayered_capture_dropped_when_over_budget(self):
        band = make_band("B4", (300,))
        band.layers = None  # n_quality_layers == 1: nothing to shed
        result = make_result([band])
        event = make_event(result, t_days=1.0)
        phase(100).run(event)
        assert event.result.dropped
        assert event.result.bands == []
        assert event.downlink.dropped
        assert not event.downlink.deferred
        assert event.downlink.delivered_bytes == 0

    def test_guaranteed_capture_deferred_and_rearmed(self):
        result = make_result([make_band("B4", (300, 600))], guaranteed=True)
        event = make_event(result, t_days=1.0)
        assert "A" in event.state.last_guaranteed
        phase(100).run(event)  # even base layer (308 B) cannot fit
        assert event.result.dropped
        assert not event.result.guaranteed
        assert event.downlink.deferred
        assert not event.downlink.dropped
        # The guarantee timer is re-armed: the promise retries next pass.
        assert "A" not in event.state.last_guaranteed

    def test_layer_views_materialize_only_under_pressure(self):
        """Views cost extra codec work, so they are built lazily: an
        unconstrained delivery must never invoke the factory; a
        constrained one materializes exactly once."""
        calls = []

        def make_lazy_band():
            template = make_band("B4", (100, 200, 300))
            views = template.layers

            def factory():
                calls.append(1)
                return views

            template.layers = None
            template.layers_factory = factory
            return template

        fits = make_event(make_result([make_lazy_band()]), t_days=1.0)
        phase(10_000).run(fits)
        assert calls == []

        tight = make_event(make_result([make_lazy_band()]), t_days=1.0)
        phase(250).run(tight)
        assert calls == [1]
        assert tight.result.bands[0].layers_shed == 1

    def test_onboard_bytes_survive_shedding(self):
        """Shedding happens at downlink; on-board storage held the full
        encode."""
        result = make_result([make_band("B4", (100, 200, 300))])
        onboard = result.onboard_encoded_bytes
        event = make_event(result, t_days=1.0)
        phase(150).run(event)
        assert event.result.onboard_encoded_bytes == onboard
        assert event.result.layers_shed == 2
