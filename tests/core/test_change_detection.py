"""Unit tests for illumination alignment and change detection."""

import numpy as np
import pytest

from repro.core.change_detection import (
    align_illumination,
    calibrate_threshold,
    changed_tile_mask,
    detect_changes,
    tile_difference_scores,
)
from repro.core.reference import downsample_image
from repro.core.tiles import TileGrid
from repro.errors import PipelineError
from repro.imagery.noise import fractal_noise


@pytest.fixture(scope="module")
def scene():
    return fractal_noise((128, 128), seed=21, octaves=5, base_cells=4) * 0.6


class TestAlignIllumination:
    def test_exact_linear_recovery(self, scene):
        capture = scene * 0.85 + 0.03
        gain, offset = align_illumination(scene, capture)
        assert gain == pytest.approx(0.85, abs=1e-6)
        assert offset == pytest.approx(0.03, abs=1e-6)

    def test_identity_for_equal_images(self, scene):
        gain, offset = align_illumination(scene, scene)
        assert gain == pytest.approx(1.0)
        assert offset == pytest.approx(0.0, abs=1e-9)

    def test_constant_reference_falls_back(self):
        reference = np.full((16, 16), 0.5)
        gain, offset = align_illumination(reference, reference * 0.9)
        assert (gain, offset) == (1.0, 0.0)

    def test_tiny_sample_falls_back(self):
        gain, offset = align_illumination(np.zeros((1, 2)), np.zeros((1, 2)))
        assert (gain, offset) == (1.0, 0.0)

    def test_valid_mask_excludes_outliers(self, scene):
        capture = scene * 0.9 + 0.01
        corrupted = capture.copy()
        corrupted[:32, :32] = 1.0  # a big cloud
        valid = np.ones_like(scene, dtype=bool)
        valid[:32, :32] = False
        gain, offset = align_illumination(scene, corrupted, valid)
        assert gain == pytest.approx(0.9, abs=1e-6)

    def test_robust_refit_handles_unmasked_outliers(self, scene):
        capture = scene * 0.9 + 0.01
        corrupted = capture.copy()
        corrupted[:20, :20] = 1.0  # undetected cloud
        gain, offset = align_illumination(scene, corrupted)
        assert gain == pytest.approx(0.9, abs=0.08)

    def test_degenerate_fit_clamped_to_identity(self, scene, rng):
        unrelated = rng.random(scene.shape)
        gain, offset = align_illumination(scene, unrelated * 40.0 - 20.0)
        assert (gain, offset) == (1.0, 0.0)

    def test_shape_mismatch_rejected(self, scene):
        with pytest.raises(PipelineError):
            align_illumination(scene, scene[:64])

    def test_bad_mask_shape_rejected(self, scene):
        with pytest.raises(PipelineError):
            align_illumination(scene, scene, np.ones((2, 2), dtype=bool))


class TestTileScores:
    def test_identical_images_zero_scores(self, scene):
        grid = TileGrid((128, 128), 64)
        lr = downsample_image(scene, 8)
        scores = tile_difference_scores(lr, lr, grid, 8)
        assert np.all(scores == 0.0)

    def test_localized_change_hits_right_tile(self, scene):
        grid = TileGrid((128, 128), 64)
        changed = scene.copy()
        changed[70:120, 70:120] += 0.2
        ref_lr = downsample_image(scene, 8)
        cap_lr = downsample_image(changed, 8)
        scores = tile_difference_scores(ref_lr, cap_lr, grid, 8)
        assert scores[1, 1] > 0.05
        assert scores[0, 0] < 0.01

    def test_valid_mask_zeroes_invalid(self, scene):
        grid = TileGrid((128, 128), 64)
        ref_lr = downsample_image(scene, 8)
        cap_lr = ref_lr + 0.5
        invalid = np.zeros_like(ref_lr, dtype=bool)
        scores = tile_difference_scores(ref_lr, cap_lr, grid, 8, invalid)
        assert np.all(scores == 0.0)

    def test_shape_mismatch_rejected(self, scene):
        grid = TileGrid((128, 128), 64)
        with pytest.raises(PipelineError):
            tile_difference_scores(
                np.zeros((16, 16)), np.zeros((8, 8)), grid, 8
            )


class TestDetectChanges:
    def test_zero_false_positives_static_scene(self, scene):
        """Invariant: a static scene under pure linear illumination change
        yields no changed tiles at full resolution."""
        grid = TileGrid((128, 128), 64)
        capture = scene * 0.8 + 0.02
        result = detect_changes(scene, capture, grid, 1, theta=0.01)
        assert not result.changed_tiles.any()
        assert result.gain == pytest.approx(0.8, abs=1e-6)

    def test_zero_false_positives_downsampled(self, scene):
        grid = TileGrid((128, 128), 64)
        ref_lr = downsample_image(scene, 8)
        cap_lr = downsample_image(scene * 0.8 + 0.02, 8)
        result = detect_changes(ref_lr, cap_lr, grid, 8, theta=0.01)
        assert not result.changed_tiles.any()

    def test_detects_genuine_change(self, scene):
        grid = TileGrid((128, 128), 64)
        changed = scene * 0.9 + 0.01
        changed[:50, :50] += 0.15
        ref_lr = downsample_image(scene, 8)
        cap_lr = downsample_image(changed, 8)
        result = detect_changes(ref_lr, cap_lr, grid, 8, theta=0.01)
        assert result.changed_tiles[0, 0]
        assert not result.changed_tiles[1, 1]

    def test_changed_fraction(self, scene):
        grid = TileGrid((128, 128), 64)
        result = detect_changes(scene, scene, grid, 1, theta=0.01)
        assert result.changed_fraction == 0.0

    def test_negative_theta_rejected(self):
        with pytest.raises(PipelineError):
            changed_tile_mask(np.zeros((2, 2)), -0.1)


class TestCalibration:
    def test_picks_threshold_above_unchanged_scores(self, rng):
        scores = [rng.random((8, 8)) * 0.005 for _ in range(5)]
        truth = [np.zeros((8, 8), dtype=bool) for _ in range(5)]
        theta = calibrate_threshold(scores, truth)
        assert theta >= 0.004

    def test_ignores_changed_tiles(self, rng):
        scores = []
        truth = []
        for _ in range(5):
            s = rng.random((8, 8)) * 0.005
            t = np.zeros((8, 8), dtype=bool)
            s[0, 0] = 0.5  # changed tile with a huge score
            t[0, 0] = True
            scores.append(s)
            truth.append(t)
        theta = calibrate_threshold(scores, truth)
        assert theta < 0.01

    def test_empty_profiles_rejected(self):
        with pytest.raises(PipelineError):
            calibrate_threshold([], [])

    def test_mismatched_shapes_rejected(self, rng):
        with pytest.raises(PipelineError):
            calibrate_threshold(
                [rng.random((4, 4))], [np.zeros((2, 2), dtype=bool)]
            )
