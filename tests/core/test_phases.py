"""Unit tests for the event-phase simulation kernel."""

import pytest

from repro.analysis.experiments import run_policy
from repro.baselines.kodan import KodanPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.satroi import SatRoIPolicy
from repro.core.config import EarthPlusConfig
from repro.core.ground_segment import GroundSegment
from repro.core.phases import UplinkReceiver
from repro.core.system import ConstellationSimulator, EarthPlusPolicy
from repro.errors import PipelineError


class TestUplinkReceiverProtocol:
    def test_earthplus_policy_is_receiver(self, small_config, two_bands,
                                          onboard_detector):
        policy = EarthPlusPolicy(
            small_config, two_bands, (128, 128), onboard_detector
        )
        assert isinstance(policy, UplinkReceiver)
        assert policy.uplink_cache() is policy.cache

    def test_baselines_are_not_receivers(self, small_config, two_bands,
                                         onboard_detector, ground_detector):
        shape = (128, 128)
        policies = [
            NaivePolicy(small_config, two_bands, shape),
            KodanPolicy(small_config, two_bands, shape, ground_detector),
            SatRoIPolicy(small_config, two_bands, shape, onboard_detector),
        ]
        for policy in policies:
            assert not policy.uses_uplink
            assert not isinstance(policy, UplinkReceiver)

    def test_uses_uplink_without_receiver_rejected(self, tiny_sentinel_dataset,
                                                   small_config, two_bands,
                                                   onboard_detector):
        """A policy claiming uses_uplink must expose its cache."""

        class BrokenPolicy(NaivePolicy):
            uses_uplink = True

        ground = GroundSegment(
            small_config,
            tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape,
            ground_detector=None,
        )
        simulator = ConstellationSimulator(
            sensors=tiny_sentinel_dataset.sensors,
            bands=tiny_sentinel_dataset.bands,
            schedule=tiny_sentinel_dataset.schedule,
            image_shape=tiny_sentinel_dataset.image_shape,
            config=small_config,
            policy_factory=lambda sid: BrokenPolicy(
                small_config,
                tiny_sentinel_dataset.bands,
                tiny_sentinel_dataset.image_shape,
            ),
            ground_segment=ground,
        )
        with pytest.raises(PipelineError, match="UplinkReceiver"):
            simulator.run()


class TestBaselinesNeverUplinked:
    @pytest.mark.parametrize("policy", ["kodan", "naive"])
    def test_no_uploads_planned(self, tiny_sentinel_dataset, policy):
        """Policies with uses_uplink=False get no planned uploads even
        with a generous uplink budget available."""
        result = run_policy(
            tiny_sentinel_dataset,
            policy,
            EarthPlusConfig(gamma_bpp=0.3),
            uplink_bytes_per_contact=10**9,
        )
        assert result.uplink_bytes == 0
        assert result.uplink_stats["updates_sent"] == 0
        assert result.updates_skipped == 0


class TestPluggableMetrics:
    def test_collector_observes_every_visit(self, tiny_sentinel_dataset,
                                            small_config):
        """A plugged-in MetricCollector sees each event and lands its
        value in RunResult.extra_metrics."""

        class VisitCounter:
            name = "visit_count"

            def __init__(self):
                self.count = 0

            def observe(self, event):
                assert event.result is not None
                self.count += 1

            def value(self):
                return self.count

        counter = VisitCounter()
        ground = GroundSegment(
            small_config,
            tiny_sentinel_dataset.bands,
            tiny_sentinel_dataset.image_shape,
            ground_detector=None,
        )
        simulator = ConstellationSimulator(
            sensors=tiny_sentinel_dataset.sensors,
            bands=tiny_sentinel_dataset.bands,
            schedule=tiny_sentinel_dataset.schedule,
            image_shape=tiny_sentinel_dataset.image_shape,
            config=small_config,
            policy_factory=lambda sid: NaivePolicy(
                small_config,
                tiny_sentinel_dataset.bands,
                tiny_sentinel_dataset.image_shape,
            ),
            ground_segment=ground,
            collectors=[counter],
        )
        result = simulator.run()
        n_visits = len(tiny_sentinel_dataset.schedule.all_visits_sorted())
        assert counter.count == n_visits
        assert result.extra_metrics == {"visit_count": n_visits}
        assert len(result.records) == n_visits


class TestGuaranteeSharedAcrossSatellites:
    def test_guarantee_is_constellation_wide(self, tiny_planet_dataset):
        """The guaranteed-download timer is per location, not per
        satellite: with 8 satellites revisiting one location, guaranteed
        downloads stay spaced by the configured period rather than firing
        once per satellite."""
        config = EarthPlusConfig(gamma_bpp=0.3, guaranteed_download_days=15.0)
        result = run_policy(tiny_planet_dataset, "earthplus", config)
        guaranteed_times = [
            r.t_days for r in result.records if r.guaranteed
        ]
        assert guaranteed_times, "no guaranteed downloads over 45 days"
        for earlier, later in zip(guaranteed_times, guaranteed_times[1:]):
            assert later - earlier >= config.guaranteed_download_days - 1e-9
