"""Unit and property tests for the tile grid."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.tiles import TileGrid
from repro.errors import ConfigError


class TestGeometry:
    def test_exact_grid(self):
        grid = TileGrid((128, 192), 64)
        assert grid.grid_shape == (2, 3)
        assert grid.n_tiles == 6

    def test_ragged_grid(self):
        grid = TileGrid((130, 65), 64)
        assert grid.grid_shape == (3, 2)

    def test_tile_bounds_interior(self):
        grid = TileGrid((128, 128), 64)
        assert grid.tile_bounds(1, 0) == (64, 128, 0, 64)

    def test_tile_bounds_edge_clipped(self):
        grid = TileGrid((100, 100), 64)
        assert grid.tile_bounds(1, 1) == (64, 100, 64, 100)

    def test_out_of_range_rejected(self):
        grid = TileGrid((64, 64), 64)
        with pytest.raises(ConfigError):
            grid.tile_bounds(1, 0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            TileGrid((0, 10), 4)
        with pytest.raises(ConfigError):
            TileGrid((10, 10), 0)

    def test_partition_no_overlap_full_cover(self):
        """Invariant: tiles exactly partition the image."""
        grid = TileGrid((70, 90), 32)
        counter = np.zeros((70, 90), dtype=np.int64)
        for ty, tx in grid.iter_tiles():
            y0, y1, x0, x1 = grid.tile_bounds(ty, tx)
            counter[y0:y1, x0:x1] += 1
        assert np.all(counter == 1)

    def test_tile_pixel_counts_sum_to_image(self):
        grid = TileGrid((70, 90), 32)
        assert grid.tile_pixel_counts().sum() == 70 * 90


class TestReductions:
    def test_reduce_mean_exact_tiles(self):
        grid = TileGrid((4, 4), 2)
        image = np.arange(16, dtype=np.float64).reshape(4, 4)
        means = grid.reduce_mean(image)
        assert means[0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_reduce_mean_ragged(self):
        grid = TileGrid((3, 3), 2)
        image = np.ones((3, 3))
        assert np.allclose(grid.reduce_mean(image), 1.0)

    def test_reduce_max(self):
        grid = TileGrid((4, 4), 2)
        image = np.zeros((4, 4))
        image[3, 3] = 7.0
        assert grid.reduce_max(image)[1, 1] == 7.0

    def test_reduce_any(self):
        grid = TileGrid((4, 4), 2)
        mask = np.zeros((4, 4), dtype=bool)
        mask[0, 1] = True
        result = grid.reduce_any(mask)
        assert result[0, 0] and not result[1, 1]

    def test_reduce_fraction(self):
        grid = TileGrid((2, 2), 2)
        mask = np.array([[True, False], [False, False]])
        assert grid.reduce_fraction(mask)[0, 0] == pytest.approx(0.25)

    def test_shape_mismatch_rejected(self):
        grid = TileGrid((4, 4), 2)
        with pytest.raises(ConfigError):
            grid.reduce_mean(np.zeros((5, 5)))


class TestExpand:
    def test_expand_roundtrip_with_reduce(self, rng):
        grid = TileGrid((8, 8), 4)
        tile_values = rng.random((2, 2))
        expanded = grid.expand(tile_values)
        assert np.allclose(grid.reduce_mean(expanded), tile_values)

    def test_expand_ragged_shape(self):
        grid = TileGrid((5, 7), 4)
        expanded = grid.expand(np.ones(grid.grid_shape))
        assert expanded.shape == (5, 7)

    def test_expand_rejects_wrong_shape(self):
        grid = TileGrid((8, 8), 4)
        with pytest.raises(ConfigError):
            grid.expand(np.zeros((3, 3)))

    def test_tile_view_writes_through(self, rng):
        grid = TileGrid((8, 8), 4)
        image = np.zeros((8, 8))
        view = grid.tile_view(image, 1, 1)
        view[:] = 5.0
        assert np.all(image[4:, 4:] == 5.0)
        assert np.all(image[:4, :] == 0.0)


@given(
    st.integers(1, 50),
    st.integers(1, 50),
    st.integers(1, 17),
)
@settings(max_examples=80, deadline=None)
def test_property_partition(height, width, tile):
    """Every pixel belongs to exactly one tile, for any geometry."""
    grid = TileGrid((height, width), tile)
    counter = np.zeros((height, width), dtype=np.int64)
    for ty, tx in grid.iter_tiles():
        y0, y1, x0, x1 = grid.tile_bounds(ty, tx)
        counter[y0:y1, x0:x1] += 1
    assert np.all(counter == 1)
    assert grid.tile_pixel_counts().sum() == height * width


@given(st.integers(1, 30), st.integers(1, 30), st.integers(1, 9))
@settings(max_examples=50, deadline=None)
def test_property_expand_constant(height, width, tile):
    """Expanding a constant tile grid reproduces a constant image."""
    grid = TileGrid((height, width), tile)
    expanded = grid.expand(np.full(grid.grid_shape, 3.5))
    assert expanded.shape == (height, width)
    assert np.all(expanded == 3.5)
