"""Unit tests for the runtime cost model (Figure 16)."""

import pytest

from repro.core.compute import (
    PAPER_STAGE_SECONDS,
    RuntimeCostModel,
    measure_stage_timings,
)
from repro.core.reference import downsample_image
from repro.core.tiles import TileGrid
from repro.errors import ConfigError


class TestCostModel:
    def test_paper_constants(self):
        assert PAPER_STAGE_SECONDS["encode"] == 0.65
        assert PAPER_STAGE_SECONDS["cloud_cheap"] == 0.12
        assert PAPER_STAGE_SECONDS["cloud_accurate"] == 0.39

    def test_earthplus_is_fastest(self):
        """Figure 16's headline: Earth+'s total runtime is the lowest."""
        model = RuntimeCostModel()
        earth = model.policy_total("earthplus")
        assert earth < model.policy_total("kodan")
        assert earth < model.policy_total("satroi")

    def test_encode_shared_across_policies(self):
        model = RuntimeCostModel()
        for policy in ("earthplus", "kodan", "satroi"):
            stages = {t.stage: t.seconds for t in model.policy_stages(policy)}
            assert stages["encode"] == 0.65

    def test_kodan_pays_for_accurate_cloud(self):
        model = RuntimeCostModel()
        kodan = {t.stage: t.seconds for t in model.policy_stages("kodan")}
        earth = {t.stage: t.seconds for t in model.policy_stages("earthplus")}
        assert kodan["cloud_detection"] > earth["cloud_detection"]

    def test_satroi_pays_for_fullres_change_detection(self):
        model = RuntimeCostModel()
        satroi = {t.stage: t.seconds for t in model.policy_stages("satroi")}
        earth = {t.stage: t.seconds for t in model.policy_stages("earthplus")}
        assert satroi["change_detection"] > earth["change_detection"]

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeCostModel().policy_stages("magic")

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigError):
            RuntimeCostModel({"encode": -1.0})


class TestMeasuredTimings:
    def test_orderings_hold_on_real_kernels(
        self, two_bands, onboard_detector, ground_detector, small_earth
    ):
        """The paper's runtime orderings must hold for OUR kernels too:
        cheap detector faster than accurate, low-res change detection
        faster than full-res."""
        grid = TileGrid((128, 128), 64)
        pixels = {
            b.name: small_earth.ground_truth(b.name, 3.0) for b in two_bands
        }
        reference = small_earth.ground_truth(two_bands[0].name, 1.0)
        # Wall-clock comparisons can flake under load: retry a few times
        # and require the ordering to hold at least once (it holds with a
        # wide margin on a quiet machine, see the Figure 16 bench).
        for attempt in range(4):
            timings = measure_stage_timings(
                pixels,
                two_bands,
                grid,
                onboard_detector,
                ground_detector,
                reference,
                repeats=5,
            )
            if (
                timings["cloud_cheap"] < timings["cloud_accurate"]
                and timings["change_lowres"] < timings["change_fullres"]
            ):
                return
        raise AssertionError(f"stage orderings never held: {timings}")
