"""Setuptools shim.

The execution environment has setuptools but no ``wheel`` package, so PEP 660
editable installs (which must build a wheel) fail.  This shim lets
``pip install -e . --no-use-pep517`` take the legacy ``setup.py develop``
path, which needs no wheel.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
