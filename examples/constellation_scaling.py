"""Constellation scaling: more satellites, fresher references, fewer bytes.

Reproduces the paper's Figure 19 narrative interactively: as the
constellation grows, *someone* has seen every location recently, so the
reference ages shrink and the changed-tile fraction (and with it the
downlink) collapses.

Run:
    python examples/constellation_scaling.py
"""

from repro import EarthPlusConfig, run_policy
from repro.analysis.tables import format_table
from repro.datasets.planet import planet_dataset


def main() -> None:
    config = EarthPlusConfig(gamma_bpp=0.3)
    rows = [["download everything", "-", "1.0x", "-"]]
    for size in (1, 2, 4, 8, 16):
        print(f"Simulating a {size}-satellite constellation...")
        dataset = planet_dataset(
            n_satellites=size, image_shape=(192, 192), horizon_days=60.0
        )
        result = run_policy(dataset, "earthplus", config)
        fraction = result.mean_downloaded_fraction()
        gaps = dataset.schedule.revisit_gaps(dataset.locations[0])
        revisit = float(gaps.mean()) if gaps.size else float("nan")
        rows.append(
            [
                f"Earth+ {size} satellites",
                f"{revisit:.1f} d",
                f"{1.0 / fraction:.1f}x" if fraction > 0 else "n/a",
                f"{result.downlink_bytes / 1e3:.0f} KB",
            ]
        )
    print()
    print(
        format_table(
            ["configuration", "mean revisit", "compression ratio",
             "downlink"],
            rows,
            title="Figure 19 narrative - compression vs constellation size",
        )
    )
    print()
    print(
        "The constellation-wide reference pool is Earth+'s core idea: the"
        " satellites jointly keep each other's references fresh."
    )


if __name__ == "__main__":
    main()
