"""Wildfire monitoring: how compression efficiency becomes reaction speed.

The paper's introduction motivates Earth+ with ground applications like
forest-fire alerts whose *reaction delay* is bounded by the downlink: a
capture is useless until its bytes reach the ground, and captures queue
behind each other on a fixed-rate link.  Earth+ shrinks every capture by
~3x, so the queue drains ~3x faster — which is exactly the "reduces
reaction delays by up to 3x" claim.

This example simulates a constrained downlink: each policy's captures
enter a FIFO byte queue drained at a fixed rate during ground contacts,
and we measure how long each capture waits before it is fully received.

Run:
    python examples/wildfire_monitoring.py
"""

import numpy as np

from repro import EarthPlusConfig, run_policy, sentinel2_dataset
from repro.analysis.tables import format_table


def delivery_delays(records, drain_bytes_per_day: float) -> list[float]:
    """FIFO drain: when does each capture finish downloading?

    Args:
        records: Delivered capture records (time-ordered).
        drain_bytes_per_day: Downlink throughput available to this
            location's data.

    Returns:
        Per-capture delay (days) between capture and full reception.
    """
    delays = []
    backlog_free_at = 0.0
    for record in records:
        start = max(record.t_days, backlog_free_at)
        transfer_days = record.bytes_downlinked / drain_bytes_per_day
        finished = start + transfer_days
        delays.append(finished - record.t_days)
        backlog_free_at = finished
    return delays


def main() -> None:
    print("Simulating a fire-prone forest location for one year...")
    dataset = sentinel2_dataset(
        locations=["C"],  # forest/mountain mix
        bands=["B4", "B8", "B11"],  # red + NIR + SWIR: the fire bands
        horizon_days=365.0,
        image_shape=(256, 256),
    )
    config = EarthPlusConfig(gamma_bpp=0.3)
    results = {
        policy: run_policy(dataset, policy, config)
        for policy in ("earthplus", "kodan")
    }
    # Provision the downlink so that Kodan is mildly backlogged — the
    # regime where compression efficiency turns into reaction speed.
    kodan_daily = results["kodan"].downlink_bytes / 365.0
    drain = kodan_daily * 1.2
    rows = []
    for policy, result in results.items():
        delays = delivery_delays(result.delivered(), drain)
        rows.append(
            [
                policy,
                f"{result.downlink_bytes / 1e3:.1f}",
                f"{np.mean(delays):.2f}",
                f"{np.max(delays):.2f}",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "downlink KB/year", "mean delay (days)",
             "worst delay (days)"],
            rows,
            title="Reaction delay under a constrained downlink",
        )
    )
    earth_delay = np.mean(
        delivery_delays(results["earthplus"].delivered(), drain)
    )
    kodan_delay = np.mean(
        delivery_delays(results["kodan"].delivered(), drain)
    )
    print()
    print(
        f"Earth+ mean reaction delay is {kodan_delay / max(earth_delay, 1e-9):.1f}x "
        "shorter than Kodan's at the same link rate — fresher fire alerts "
        "from the same radio."
    )


if __name__ == "__main__":
    main()
