"""Quickstart: compress a constellation's year with Earth+ vs the baselines.

Builds a small Sentinel-2-like dataset (one location, two bands), runs
Earth+, Kodan, and SatRoI through the same simulator, and prints the
downlink / quality / uplink summary — the smallest end-to-end tour of the
system.

Run:
    python examples/quickstart.py
"""

from repro import EarthPlusConfig, run_policy, sentinel2_dataset
from repro.analysis.tables import format_table


def main() -> None:
    print("Building a Sentinel-2-like dataset (1 location, 2 bands, 6 months)...")
    dataset = sentinel2_dataset(
        locations=["A"],
        bands=["B4", "B11"],
        horizon_days=180.0,
        image_shape=(256, 256),
    )
    config = EarthPlusConfig(gamma_bpp=0.3)
    rows = []
    for policy in ("earthplus", "kodan", "satroi"):
        print(f"Simulating {policy} ...")
        result = run_policy(dataset, policy, config)
        delivered = result.delivered()
        rows.append(
            [
                policy,
                f"{result.downlink_bytes / 1e3:.1f}",
                f"{result.mean_psnr():.1f}",
                f"{result.mean_downloaded_fraction():.2f}",
                f"{result.uplink_bytes / 1e3:.1f}",
                f"{len(delivered)}/{len(result.records)}",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "downlink KB", "PSNR dB", "tiles downloaded",
             "uplink KB", "delivered"],
            rows,
            title="Earth+ vs baselines (same codec, clouds, and scoring)",
        )
    )
    print()
    print(
        "Earth+ downloads only tiles that changed versus a fresh,"
        " constellation-wide reference; Kodan re-downloads everything"
        " non-cloudy; SatRoI diffs against a fixed, aging reference."
    )


if __name__ == "__main__":
    main()
