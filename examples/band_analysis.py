"""Band analysis: why Earth+ helps some spectral bands more than others.

§5 of the paper observes that Sentinel-2's bands behave very differently:
vegetation bands (B7/B8/B8a) churn quickly with temperature, visible
ground bands change moderately, and air bands (B1/B9/B10) barely change on
cloud-free ground — so Earth+ detects changes *band by band* and downloads
different amounts per band.  This example measures both the underlying
change rates and the resulting per-band downlink.

Run:
    python examples/band_analysis.py
"""

from repro import EarthPlusConfig, run_policy, sentinel2_dataset
from repro.analysis.tables import format_table
from repro.imagery.bands import get_band

BANDS = ["B2", "B4", "B8", "B9", "B11"]


def main() -> None:
    print("Measuring 60-day content-change rates per band...")
    dataset = sentinel2_dataset(
        locations=["B"],  # agriculture-heavy: strong band contrast
        bands=BANDS,
        horizon_days=240.0,
        image_shape=(192, 192),
    )
    earth = dataset.earth_models["B"]
    change_rows = []
    for name in BANDS:
        band = get_band(name)
        fraction = earth.change_model(name).changed_fraction(0.0, 60.0)
        change_rows.append(
            [name, band.category.value, f"{fraction:.1%}"]
        )
    print()
    print(
        format_table(
            ["band", "category", "tiles changed in 60 d"],
            change_rows,
            title="Underlying change rates (vegetation > ground > air)",
        )
    )

    print()
    print("Simulating Earth+ and measuring per-band downlink...")
    config = EarthPlusConfig(gamma_bpp=0.3)
    earth_result = run_policy(dataset, "earthplus", config)
    kodan_result = run_policy(dataset, "kodan", config)
    earth_bytes = earth_result.per_band_bytes()
    kodan_bytes = kodan_result.per_band_bytes()
    rows = []
    for name in BANDS:
        saving = (
            kodan_bytes.get(name, 0) / earth_bytes[name]
            if earth_bytes.get(name)
            else float("nan")
        )
        rows.append(
            [
                name,
                f"{earth_bytes.get(name, 0) / 1e3:.1f}",
                f"{kodan_bytes.get(name, 0) / 1e3:.1f}",
                f"{saving:.2f}x",
            ]
        )
    print()
    print(
        format_table(
            ["band", "Earth+ KB", "Kodan KB", "saving"],
            rows,
            title="Per-band downlink (Figure 14, bottom)",
        )
    )
    print()
    print(
        "Earth+ treats each band separately (§5): a nearly-static water-"
        "vapour band costs almost nothing, while vegetation bands are "
        "re-downloaded where chlorophyll actually moved."
    )


if __name__ == "__main__":
    main()
