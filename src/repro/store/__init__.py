"""Persistent experiment store: content-addressed run caching.

PR 3 made every simulation deterministic and byte-identical across the
fast path, so a :class:`~repro.analysis.scenarios.ScenarioSpec` is a true
content address for its :class:`~repro.core.accounting.RunResult`.  This
package turns that invariant into a persistent cache:

* :mod:`repro.store.specs` — canonical, versioned serialization of
  scenario specs into stable content keys (sha256 over a canonical JSON
  document, salted with :data:`~repro.store.specs.SCHEMA_VERSION` so
  codec/kernel changes invalidate old entries);
* :mod:`repro.store.backend` — the on-disk store: an SQLite index (WAL
  mode, advisory-locked writes so concurrent sweep workers coordinate
  safely) over npz/json payload files, committed atomically by
  write-then-rename, bounded in size with LRU eviction;
* :mod:`repro.store.runner` — cache-aware batch execution wrapping
  :func:`~repro.analysis.scenarios.run_scenarios`: cached specs are pure
  reads, missing specs stream into the store as each lands, and an
  interrupted sweep resumes from whatever already committed.

See docs/architecture.md, "Experiment store".
"""

from repro.store.backend import (
    DEFAULT_STORE_DIR,
    ExperimentStore,
    default_store,
    open_store,
    resolve_store_path,
)
from repro.store.runner import (
    ENV_DEFAULT,
    CachedSweep,
    run_scenario_cached,
    run_scenarios_cached,
)
from repro.store.specs import (
    SCHEMA_VERSION,
    is_cacheable,
    spec_document,
    spec_key,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "ExperimentStore",
    "default_store",
    "open_store",
    "resolve_store_path",
    "ENV_DEFAULT",
    "CachedSweep",
    "run_scenario_cached",
    "run_scenarios_cached",
    "SCHEMA_VERSION",
    "is_cacheable",
    "spec_document",
    "spec_key",
]
