"""Canonical spec serialization: scenario specs as stable content keys.

A :class:`~repro.analysis.scenarios.ScenarioSpec` determines its
:class:`~repro.core.accounting.RunResult` byte-for-byte (the scenario
layer's determinism contract), so a stable serialization of the spec is a
content address for the result.  :func:`spec_document` renders a spec into
a canonical JSON document — defaults resolved, dict parameters sorted,
display-only fields (``label``, ``extras``) excluded — and
:func:`spec_key` hashes that document with sha256.

Versioning: the document embeds :data:`SCHEMA_VERSION`, which must be
bumped whenever *any* change alters simulation output for an unchanged
spec (codec wire format, kernel numerics, detector training, default
resolution).  Old store entries then simply stop matching; no migration
is ever attempted.

Specs that carry state this module cannot reproduce from plain data — an
already-built dataset instead of a :class:`DatasetSpec`, a custom
fluctuation-model subclass, non-scalar dataset parameters — raise
:class:`~repro.errors.UncacheableSpecError`; such scenarios still run,
they just bypass the store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict

import numpy as np

from repro.analysis.scenarios import (
    DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
    DEFAULT_UPLINK_BYTES_PER_CONTACT,
    DatasetSpec,
    ScenarioSpec,
)
from repro.core.config import EarthPlusConfig
from repro.errors import UncacheableSpecError
from repro.orbit.links import FluctuationModel

#: Bump whenever simulation output changes for an unchanged spec (codec
#: wire format, kernel numerics, detector training, default resolution).
#: Old entries stop matching; the store never migrates payloads.
#: 2: the downlink budget is enforced (DownlinkPhase; RunResult gained
#: downlink_stats and per-record downlink columns).
#: 3: EarthPlusConfig gained ground_sync_days (epoch-synchronized ground
#: state — semantics, so it keys) and the canonical visit ordering
#: tie-breaks by (location, satellite), not time alone.  The shard count
#: deliberately does NOT enter the key: sharding never changes results.
SCHEMA_VERSION = 3


def _leaf(value):
    """Validate/normalize one scalar leaf of a canonical document."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    raise UncacheableSpecError(
        f"cannot canonicalize value of type {type(value).__name__}: {value!r}"
    )


def _jsonable(value):
    """Canonical tuples/dicts/lists as plain JSON-ready structures."""
    if isinstance(value, dict):
        return {
            str(k): _jsonable(v) for k, v in sorted(value.items())
        }
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return _leaf(value)


def _dataset_document(dataset) -> dict:
    if not isinstance(dataset, DatasetSpec):
        raise UncacheableSpecError(
            f"dataset of type {type(dataset).__name__} is not content-"
            "addressable; use DatasetSpec so workers (and the store) can "
            "rebuild it from plain data"
        )
    return {"kind": dataset.kind, "params": _jsonable(dataset.params)}


def _config_document(config: EarthPlusConfig | None) -> dict:
    resolved = config if config is not None else EarthPlusConfig()
    if type(resolved) is not EarthPlusConfig:
        raise UncacheableSpecError(
            f"config of type {type(resolved).__name__} is not a plain "
            "EarthPlusConfig; unknown subclass state cannot be hashed"
        )
    document = _jsonable(asdict(resolved))
    # Engine-only settings never change results, so they must never enter
    # the key (mirroring the shard-count exclusion): every real-codec
    # entropy engine (reference/vectorized/compiled/real) produces byte-
    # identical bitstreams — differential-tested — so they all collapse to
    # the canonical "real", and the tile-pool width is erased entirely.  A
    # compiled run therefore warms the cache for a vectorized run and vice
    # versa; only the model-vs-real-codec choice keys (it changes byte
    # accounting).
    if document["codec_backend"] != "model":
        document["codec_backend"] = "real"
    document["codec_parallel_tiles"] = 1
    return document


def _fluctuation_document(fluctuation) -> dict | None:
    if fluctuation is None:
        return None
    if type(fluctuation) is not FluctuationModel:
        raise UncacheableSpecError(
            f"fluctuation of type {type(fluctuation).__name__} is not a "
            "plain FluctuationModel; unknown subclass state cannot be hashed"
        )
    return {
        "seed": _leaf(fluctuation.seed),
        "severity": _leaf(fluctuation.severity),
        "floor": _leaf(fluctuation.floor),
        "ceiling": _leaf(fluctuation.ceiling),
    }


def spec_document(spec: ScenarioSpec) -> dict:
    """The canonical document a spec's content key hashes.

    Defaults are resolved (a ``config=None`` spec and an explicit
    default-config spec share one key — and a change to the defaults
    changes the key); ``label`` and ``extras`` are excluded because they
    are display-only and never affect the result.

    Raises:
        UncacheableSpecError: When the spec carries state that cannot be
            reproduced from plain data.
    """
    uplink = (
        spec.uplink_bytes_per_contact
        if spec.uplink_bytes_per_contact is not None
        else DEFAULT_UPLINK_BYTES_PER_CONTACT
    )
    downlink = (
        spec.downlink_bytes_per_contact
        if spec.downlink_bytes_per_contact is not None
        else DEFAULT_DOWNLINK_BYTES_PER_CONTACT
    )
    return {
        "schema": SCHEMA_VERSION,
        "policy": spec.policy,
        "dataset": _dataset_document(spec.dataset),
        "config": _config_document(spec.config),
        "uplink_bytes_per_contact": _leaf(uplink),
        "downlink_bytes_per_contact": _leaf(downlink),
        "fluctuation": _fluctuation_document(spec.fluctuation),
        "downlink_severity": _leaf(float(spec.downlink_severity)),
        "ground_detector_for_scoring": bool(spec.ground_detector_for_scoring),
        "seed": _leaf(spec.seed),
    }


def canonical_json(document: dict) -> str:
    """Deterministic JSON rendering (sorted keys, no whitespace)."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def spec_key(spec: ScenarioSpec) -> str:
    """The spec's content key: sha256 over its canonical document.

    Raises:
        UncacheableSpecError: When the spec cannot be content-addressed.
    """
    try:
        rendered = canonical_json(spec_document(spec))
    except ValueError as exc:  # e.g. a NaN parameter
        raise UncacheableSpecError(
            f"spec is not canonically serializable: {exc}"
        ) from exc
    return hashlib.sha256(rendered.encode("utf-8")).hexdigest()


def is_cacheable(spec: ScenarioSpec) -> bool:
    """Whether the spec can be content-addressed (never raises)."""
    try:
        spec_key(spec)
    except UncacheableSpecError:
        return False
    return True
