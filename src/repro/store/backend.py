"""On-disk experiment store: SQLite index over npz/json run payloads.

Layout (under the store root, default ``~/.cache/repro`` or wherever
``REPRO_STORE``/``--store`` points)::

    index.sqlite                 # WAL-mode index + summary columns
    objects/<k2>/<key>/          # one directory per content key
        result.json              #   run scalars, per-record strings/dicts
        records.npz              #   per-record numeric columns

Commits are atomic: payloads are written into a fresh temporary directory
and renamed into place, then the index row lands in a single
``BEGIN IMMEDIATE`` transaction — SQLite's advisory write lock is what
lets concurrent sweep workers share one store without a daemon.  Because
keys are content addresses of deterministic runs, two writers racing on
one key produce identical payloads, so "first rename wins" is safe.

Reads are misses unless everything checks out: a row whose payload
directory is gone, fails to parse, or carries an unexpected payload
version is dropped from the index and reported as absent — the runner
then simply re-simulates.  Total payload size is bounded
(``REPRO_STORE_MAX_MB``, default 2048); least-recently-*used* entries are
evicted after each write, so a hot figure's runs stay resident.
"""

from __future__ import annotations

import json
import os
import shutil
import sqlite3
import time
import uuid
import zipfile
from pathlib import Path

import numpy as np

from repro import perf
from repro.analysis.scenarios import ScenarioSpec
from repro.core.accounting import CaptureRecord, RunResult
from repro.core.config import EarthPlusConfig
from repro.errors import StoreError
from repro.obs.metrics import counters
from repro.obs.trace import span
from repro.store import specs as spec_hashing

#: Where the store lives when neither ``--store`` nor ``REPRO_STORE``
#: names a path.
DEFAULT_STORE_DIR = Path("~/.cache/repro")

#: Version of the payload file layout (independent of the spec schema:
#: bumping this invalidates how results are *stored*, not what they are).
#: 2: downlink_stats document entry + per-record downlink columns.
PAYLOAD_VERSION = 2

#: Default size bound, overridable via ``REPRO_STORE_MAX_MB`` (0 or a
#: negative value disables eviction).
DEFAULT_MAX_MB = 2048.0

#: Numeric per-record columns persisted in ``records.npz``.
_RECORD_COLUMNS = (
    ("satellite_id", np.int64),
    ("t_days", np.float64),
    ("dropped", np.bool_),
    ("guaranteed", np.bool_),
    ("cloud_coverage", np.float64),
    ("psnr", np.float64),
    ("downloaded_fraction", np.float64),
    ("bytes_downlinked", np.int64),
    ("changed_fraction", np.float64),
    ("downlink_capacity_bytes", np.int64),
    ("layers_shed", np.int64),
    ("downlink_deferred", np.bool_),
)

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS runs (
    key TEXT PRIMARY KEY,
    schema_version INTEGER NOT NULL,
    policy TEXT NOT NULL,
    dataset_kind TEXT NOT NULL,
    gamma REAL,
    seed INTEGER NOT NULL,
    label TEXT,
    spec_json TEXT NOT NULL,
    payload_bytes INTEGER NOT NULL,
    created_at REAL NOT NULL,
    last_used_at REAL NOT NULL,
    downlink_bytes INTEGER NOT NULL,
    uplink_bytes INTEGER NOT NULL,
    psnr_db REAL,
    downloaded_fraction REAL,
    delivered INTEGER NOT NULL,
    records INTEGER NOT NULL,
    layers_shed INTEGER NOT NULL DEFAULT 0,
    updates_skipped INTEGER NOT NULL DEFAULT 0,
    dl_dropped INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS runs_policy ON runs (policy);
CREATE INDEX IF NOT EXISTS runs_dataset ON runs (dataset_kind);
CREATE INDEX IF NOT EXISTS runs_lru ON runs (last_used_at);
CREATE TABLE IF NOT EXISTS counters (
    name TEXT PRIMARY KEY,
    value REAL NOT NULL DEFAULT 0
);
"""

#: Summary columns added after the index first shipped; opening an older
#: store adds them in place (``ALTER TABLE`` with a constant default is
#: cheap and idempotent — a lost race with another opener is harmless).
_SCHEMA_MIGRATIONS = (
    "ALTER TABLE runs ADD COLUMN layers_shed INTEGER NOT NULL DEFAULT 0",
    "ALTER TABLE runs ADD COLUMN updates_skipped INTEGER NOT NULL DEFAULT 0",
    "ALTER TABLE runs ADD COLUMN dl_dropped INTEGER NOT NULL DEFAULT 0",
)

#: Columns :meth:`ExperimentStore.query` rows expose, in display order.
QUERY_COLUMNS = (
    "key",
    "policy",
    "dataset",
    "gamma",
    "seed",
    "label",
    "psnr_db",
    "downloaded_fraction",
    "downlink_kb",
    "uplink_kb",
    "delivered",
    "records",
    "layers_shed",
    "updates_skipped",
    "dl_dropped",
    "payload_kb",
    "age_days",
)


def resolve_store_path() -> Path | None:
    """The store root the environment selects, or None when disabled.

    ``REPRO_STORE`` may be a path, a true-word (use the default
    location), or a false-word (``0``/``off``/... — store disabled).
    Unset means the default location.
    """
    raw = os.environ.get("REPRO_STORE")
    if raw is None:
        return DEFAULT_STORE_DIR.expanduser()
    flag = perf.parse_flag(raw)
    if flag is False:
        return None
    if flag is True:
        return DEFAULT_STORE_DIR.expanduser()
    return Path(raw).expanduser()


def _max_bytes_from_env() -> int | None:
    raw = os.environ.get("REPRO_STORE_MAX_MB")
    try:
        max_mb = float(raw) if raw is not None else DEFAULT_MAX_MB
    except ValueError:
        raise StoreError(
            f"REPRO_STORE_MAX_MB={raw!r} is not a number"
        ) from None
    if max_mb <= 0:
        return None
    return int(max_mb * 1e6)


def _result_document(result: RunResult) -> dict:
    """The json half of a payload (everything but numeric record columns)."""
    try:
        extra = json.loads(json.dumps(result.extra_metrics))
    except (TypeError, ValueError) as exc:
        raise StoreError(
            f"extra_metrics are not JSON-serializable: {exc}"
        ) from exc
    if extra != result.extra_metrics:
        # e.g. tuples coerce to lists, NaN breaks equality: storing the
        # coerced copy would break the byte-identical warm-read
        # guarantee, so refuse (the runner downgrades this to a warning
        # and the run simply stays uncached).
        raise StoreError(
            "extra_metrics do not round-trip through JSON exactly; "
            "collector values must be plain JSON types"
        )
    return {
        "payload_version": PAYLOAD_VERSION,
        "policy": result.policy,
        "downlink_bytes": result.downlink_bytes,
        "uplink_bytes": result.uplink_bytes,
        "updates_skipped": result.updates_skipped,
        "horizon_days": result.horizon_days,
        "contacts_per_day": result.contacts_per_day,
        "contact_duration_s": result.contact_duration_s,
        "reference_storage_bytes": result.reference_storage_bytes,
        "captured_storage_bytes": result.captured_storage_bytes,
        "uplink_stats": dict(result.uplink_stats),
        "downlink_stats": dict(result.downlink_stats),
        "extra_metrics": extra,
        "locations": [r.location for r in result.records],
        "band_bytes": [r.band_bytes for r in result.records],
        "band_psnr": [r.band_psnr for r in result.records],
    }


def _record_arrays(result: RunResult) -> dict[str, np.ndarray]:
    return {
        name: np.array(
            [getattr(record, name) for record in result.records], dtype=dtype
        )
        for name, dtype in _RECORD_COLUMNS
    }


def _rebuild_result(document: dict, arrays: dict[str, np.ndarray]) -> RunResult:
    """Reverse of :func:`_result_document`/:func:`_record_arrays`.

    Numeric columns come back through ``ndarray.item()``, which restores
    the plain Python scalars the simulation produced — this is what makes
    a warm read pickle-byte-identical to the cold run.
    """
    n_records = len(document["locations"])
    columns = {
        name: arrays[name] for name, _ in _RECORD_COLUMNS
    }
    records = [
        CaptureRecord(
            location=document["locations"][i],
            satellite_id=columns["satellite_id"][i].item(),
            t_days=columns["t_days"][i].item(),
            dropped=columns["dropped"][i].item(),
            guaranteed=columns["guaranteed"][i].item(),
            cloud_coverage=columns["cloud_coverage"][i].item(),
            psnr=columns["psnr"][i].item(),
            downloaded_fraction=columns["downloaded_fraction"][i].item(),
            bytes_downlinked=columns["bytes_downlinked"][i].item(),
            band_bytes=document["band_bytes"][i],
            band_psnr=document["band_psnr"][i],
            changed_fraction=columns["changed_fraction"][i].item(),
            downlink_capacity_bytes=(
                columns["downlink_capacity_bytes"][i].item()
            ),
            layers_shed=columns["layers_shed"][i].item(),
            downlink_deferred=columns["downlink_deferred"][i].item(),
        )
        for i in range(n_records)
    ]
    return RunResult(
        policy=document["policy"],
        records=records,
        downlink_bytes=document["downlink_bytes"],
        uplink_bytes=document["uplink_bytes"],
        updates_skipped=document["updates_skipped"],
        horizon_days=document["horizon_days"],
        contacts_per_day=document["contacts_per_day"],
        contact_duration_s=document["contact_duration_s"],
        reference_storage_bytes=document["reference_storage_bytes"],
        captured_storage_bytes=document["captured_storage_bytes"],
        uplink_stats=document["uplink_stats"],
        downlink_stats=document["downlink_stats"],
        extra_metrics=document["extra_metrics"],
    )


class ExperimentStore:
    """A content-addressed cache of scenario results on local disk.

    Safe for concurrent use by multiple processes: the index serializes
    writers through SQLite's advisory locking (WAL mode keeps readers
    unblocked), and payload commits are write-then-rename.

    Args:
        root: Store directory (created on first use).
        max_bytes: Total payload budget; least-recently-used entries are
            evicted after each put.  None reads ``REPRO_STORE_MAX_MB``
            (default 2048 MB; 0 disables eviction).
    """

    def __init__(self, root: str | Path, max_bytes: int | None = None):
        self.root = Path(root).expanduser()
        self.max_bytes = (
            max_bytes if max_bytes is not None else _max_bytes_from_env()
        )
        self.objects_dir = self.root / "objects"
        self.objects_dir.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.root / "index.sqlite", timeout=30.0, isolation_level=None
        )
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute("PRAGMA busy_timeout=30000")
        self._conn.executescript(_SCHEMA_SQL)
        existing = {
            row[1]
            for row in self._conn.execute("PRAGMA table_info(runs)")
        }
        for migration in _SCHEMA_MIGRATIONS:
            column = migration.split(" ADD COLUMN ")[1].split()[0]
            if column in existing:
                continue
            try:
                self._conn.execute(migration)
            except sqlite3.OperationalError:
                pass  # concurrent opener added it first

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Close the index connection (payload files need no teardown)."""
        self._conn.close()

    def __enter__(self) -> "ExperimentStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- telemetry -----------------------------------------------------
    def _count(self, deltas: dict) -> None:
        """Bump cache-health counters, in-process and persistently.

        The in-process bump feeds the sweep's merged counter view; the
        SQLite ``counters`` table accumulates across processes and
        sessions so ``repro query --stats`` reports cache health without
        running anything.  Persistence is best-effort: a locked or
        read-only index must never fail the get/put it decorates.
        """
        bag = counters()
        for name, amount in deltas.items():
            bag.inc(name, amount)
        try:
            self._conn.executemany(
                "INSERT INTO counters (name, value) VALUES (?, ?) "
                "ON CONFLICT(name) DO UPDATE SET "
                "value = value + excluded.value",
                list(deltas.items()),
            )
        except sqlite3.Error:
            pass

    def counter_values(self) -> dict:
        """The persistent cache-health counters (``store.*`` names)."""
        try:
            rows = self._conn.execute(
                "SELECT name, value FROM counters"
            ).fetchall()
        except sqlite3.Error:
            return {}
        return {name: value for name, value in rows}

    # -- addressing ----------------------------------------------------
    def key_for(self, spec: ScenarioSpec) -> str:
        """The spec's content key (see :func:`repro.store.specs.spec_key`).

        Raises:
            UncacheableSpecError: When the spec cannot be hashed.
        """
        return spec_hashing.spec_key(spec)

    def _payload_dir(self, key: str) -> Path:
        return self.objects_dir / key[:2] / key

    # -- reads ---------------------------------------------------------
    def contains(self, key: str) -> bool:
        """Whether the index currently lists ``key`` (payload unchecked)."""
        row = self._conn.execute(
            "SELECT 1 FROM runs WHERE key = ?", (key,)
        ).fetchone()
        return row is not None

    def _load(self, key: str) -> RunResult | None:
        """Load one *indexed* key's payload, healing on corruption.

        The caller has already established index presence; entries whose
        payload is missing, corrupt, or of an unexpected payload version
        are dropped and reported as misses.  A successful load refreshes
        the entry's LRU stamp.
        """
        payload = self._payload_dir(key)
        try:
            with open(payload / "result.json", "r", encoding="utf-8") as fh:
                document = json.load(fh)
            if document.get("payload_version") != PAYLOAD_VERSION:
                raise StoreError(
                    f"payload version {document.get('payload_version')!r}, "
                    f"expected {PAYLOAD_VERSION}"
                )
            with np.load(payload / "records.npz") as npz:
                result = _rebuild_result(document, dict(npz))
        except (OSError, ValueError, KeyError, StoreError, zipfile.BadZipFile):
            self.delete(key)
            return None
        self._conn.execute(
            "UPDATE runs SET last_used_at = ? WHERE key = ?",
            (time.time(), key),
        )
        return result

    def get(self, spec_or_key: ScenarioSpec | str) -> RunResult | None:
        """Load a cached result, or None on a miss.

        A hit refreshes the entry's LRU stamp.  Entries whose payload is
        missing, corrupt, or of an unexpected payload version are dropped
        and reported as misses — the caller re-simulates and overwrites.
        """
        with span("store.get"):
            key = (
                spec_or_key
                if isinstance(spec_or_key, str)
                else self.key_for(spec_or_key)
            )
            result = self._load(key) if self.contains(key) else None
        self._count(
            {"store.hit" if result is not None else "store.miss": 1}
        )
        return result

    #: SQLite's default variable limit is 999; chunk IN-lists well below.
    _IN_CHUNK = 500

    def get_many(self, keys) -> dict[str, RunResult | None]:
        """Load many cached results with one presence query per chunk.

        The batch analog of :meth:`get` for sweep hit-scans: presence of
        all ``keys`` resolves through ``SELECT ... WHERE key IN (...)``
        (one round-trip per :data:`_IN_CHUNK` keys instead of one per
        key), then only the present keys touch payload files.  Semantics
        per key match :meth:`get` exactly — corrupt entries heal to
        misses, hits refresh their LRU stamp.

        Args:
            keys: Content keys to resolve (duplicates collapse).

        Returns:
            ``{key: RunResult | None}`` covering every requested key.
        """
        with span("store.get_many"):
            unique = list(dict.fromkeys(keys))
            results: dict[str, RunResult | None] = {
                key: None for key in unique
            }
            present: list[str] = []
            for start in range(0, len(unique), self._IN_CHUNK):
                chunk = unique[start : start + self._IN_CHUNK]
                placeholders = ",".join("?" * len(chunk))
                present.extend(
                    row[0]
                    for row in self._conn.execute(
                        f"SELECT key FROM runs WHERE key IN ({placeholders})",
                        chunk,
                    )
                )
            for key in present:
                results[key] = self._load(key)
        hits = sum(1 for value in results.values() if value is not None)
        deltas = {}
        if hits:
            deltas["store.hit"] = hits
        if len(results) - hits:
            deltas["store.miss"] = len(results) - hits
        if deltas:
            self._count(deltas)
        return results

    # -- writes --------------------------------------------------------
    def put(
        self, spec: ScenarioSpec, result: RunResult, key: str | None = None
    ) -> str:
        """Persist one run atomically and return its content key.

        Args:
            spec: The scenario the result came from.
            result: Its run result.
            key: Precomputed content key (recomputed when omitted).

        Raises:
            UncacheableSpecError: When the spec cannot be hashed.
            StoreError: When the payload cannot be serialized.
        """
        with span("store.put"):
            return self._put(spec, result, key)

    def _put(
        self, spec: ScenarioSpec, result: RunResult, key: str | None
    ) -> str:
        key = key if key is not None else self.key_for(spec)
        document = _result_document(result)
        arrays = _record_arrays(result)
        staging = self.objects_dir / f".tmp-{os.getpid()}-{uuid.uuid4().hex}"
        staging.mkdir(parents=True)
        try:
            with open(staging / "result.json", "w", encoding="utf-8") as fh:
                json.dump(document, fh, separators=(",", ":"))
            np.savez_compressed(staging / "records.npz", **arrays)
            payload_bytes = sum(
                path.stat().st_size for path in staging.iterdir()
            )
            target = self._payload_dir(key)
            target.parent.mkdir(parents=True, exist_ok=True)
            try:
                os.rename(staging, target)
            except OSError as exc:
                # Another writer committed this key first; content keys
                # address deterministic runs, so the payloads are
                # identical and the earlier commit stands.  Any other
                # rename failure must not leave a payload-less index row.
                if not target.exists():
                    raise StoreError(
                        f"could not commit payload for {key}: {exc}"
                    ) from exc
        finally:
            if staging.exists():
                shutil.rmtree(staging, ignore_errors=True)
        now = time.time()
        config = spec.config if spec.config is not None else EarthPlusConfig()
        dataset_kind = getattr(spec.dataset, "kind", type(spec.dataset).__name__)
        self._conn.execute("BEGIN IMMEDIATE")
        try:
            self._conn.execute(
                """
                INSERT OR REPLACE INTO runs (
                    key, schema_version, policy, dataset_kind, gamma, seed,
                    label, spec_json, payload_bytes, created_at,
                    last_used_at, downlink_bytes, uplink_bytes, psnr_db,
                    downloaded_fraction, delivered, records, layers_shed,
                    updates_skipped, dl_dropped
                ) VALUES (
                    ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?,
                    ?, ?
                )
                """,
                (
                    key,
                    spec_hashing.SCHEMA_VERSION,
                    spec.policy,
                    dataset_kind,
                    config.gamma_bpp,
                    spec.seed,
                    spec.resolved_label(),
                    spec_hashing.canonical_json(spec_hashing.spec_document(spec)),
                    payload_bytes,
                    now,
                    now,
                    result.downlink_bytes,
                    result.uplink_bytes,
                    result.mean_psnr(),
                    result.mean_downloaded_fraction(),
                    len(result.delivered()),
                    len(result.records),
                    result.downlink_stats.get("layers_shed", 0),
                    result.updates_skipped,
                    (
                        result.downlink_stats.get("captures_deferred", 0)
                        + result.downlink_stats.get("captures_dropped", 0)
                    ),
                ),
            )
            self._conn.execute("COMMIT")
        except BaseException:
            self._conn.execute("ROLLBACK")
            raise
        self._count({"store.put": 1, "store.put_bytes": payload_bytes})
        self.evict()
        return key

    def delete(self, key: str) -> bool:
        """Drop one entry (row first, payload second); True if it existed."""
        cursor = self._conn.execute("DELETE FROM runs WHERE key = ?", (key,))
        shutil.rmtree(self._payload_dir(key), ignore_errors=True)
        return cursor.rowcount > 0

    def evict(self, max_bytes: int | None = None) -> int:
        """Evict least-recently-used entries down to the size budget.

        Args:
            max_bytes: Budget override (defaults to the store's).

        Returns:
            Number of entries evicted.
        """
        budget = max_bytes if max_bytes is not None else self.max_bytes
        if budget is None:
            return 0
        total = self._conn.execute(
            "SELECT COALESCE(SUM(payload_bytes), 0) FROM runs"
        ).fetchone()[0]
        evicted = 0
        if total <= budget:
            return 0
        rows = self._conn.execute(
            "SELECT key, payload_bytes FROM runs ORDER BY last_used_at ASC"
        ).fetchall()
        for key, payload_bytes in rows:
            if total <= budget:
                break
            self.delete(key)
            total -= payload_bytes
            evicted += 1
        if evicted:
            self._count({"store.evict": evicted})
        return evicted

    # -- inspection ----------------------------------------------------
    def query(
        self,
        policy: str | None = None,
        dataset: str | None = None,
        seed: int | None = None,
        gamma: float | None = None,
        label: str | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        """Summary rows of stored runs, newest first.

        Args:
            policy: Exact policy-name filter.
            dataset: Exact dataset-kind filter (``sentinel2``/``planet``).
            seed: Exact seed filter.
            gamma: Exact gamma (``gamma_bpp``) filter.
            label: Substring filter on the stored display label.
            limit: Maximum rows.

        Returns:
            One dict per run with :data:`QUERY_COLUMNS` keys (metrics
            come from the index's summary columns; payloads stay closed).
        """
        clauses, params = [], []
        for column, value in (
            ("policy", policy),
            ("dataset_kind", dataset),
            ("seed", seed),
            ("gamma", gamma),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        if label is not None:
            clauses.append("label LIKE ?")
            params.append(f"%{label}%")
        sql = (
            "SELECT key, policy, dataset_kind, gamma, seed, label, psnr_db,"
            " downloaded_fraction, downlink_bytes, uplink_bytes, delivered,"
            " records, layers_shed, updates_skipped, dl_dropped,"
            " payload_bytes, created_at FROM runs"
        )
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY created_at DESC"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        now = time.time()
        rows = []
        for (
            key, run_policy, dataset_kind, run_gamma, run_seed, run_label,
            psnr_db, downloaded_fraction, downlink_bytes, uplink_bytes,
            delivered, records, layers_shed, updates_skipped, dl_dropped,
            payload_bytes, created_at,
        ) in self._conn.execute(sql, params):
            rows.append(
                {
                    "key": key[:12],
                    "policy": run_policy,
                    "dataset": dataset_kind,
                    "gamma": run_gamma,
                    "seed": run_seed,
                    "label": run_label,
                    "psnr_db": round(psnr_db, 2) if psnr_db is not None else None,
                    "downloaded_fraction": (
                        round(downloaded_fraction, 4)
                        if downloaded_fraction is not None
                        else None
                    ),
                    "downlink_kb": round(downlink_bytes / 1e3, 3),
                    "uplink_kb": round(uplink_bytes / 1e3, 3),
                    "delivered": delivered,
                    "records": records,
                    "layers_shed": layers_shed,
                    "updates_skipped": updates_skipped,
                    "dl_dropped": dl_dropped,
                    "payload_kb": round(payload_bytes / 1e3, 1),
                    "age_days": round((now - created_at) / 86400.0, 3),
                }
            )
        return rows

    def stats(self) -> dict:
        """Store totals plus lifetime cache health.

        Entry count / payload size / budget describe the store's current
        contents; hits / misses / hit_rate / evictions / written_mb come
        from the persistent ``counters`` table and accumulate over the
        store's whole life across processes (``repro query --stats``).
        """
        entries, payload_bytes = self._conn.execute(
            "SELECT COUNT(*), COALESCE(SUM(payload_bytes), 0) FROM runs"
        ).fetchone()
        lifetime = self.counter_values()
        hits = int(lifetime.get("store.hit", 0))
        misses = int(lifetime.get("store.miss", 0))
        return {
            "root": str(self.root),
            "entries": entries,
            "payload_mb": round(payload_bytes / 1e6, 3),
            "max_mb": (
                round(self.max_bytes / 1e6, 3)
                if self.max_bytes is not None
                else None
            ),
            "schema_version": spec_hashing.SCHEMA_VERSION,
            "hits": hits,
            "misses": misses,
            "hit_rate": (
                round(hits / (hits + misses), 4) if hits + misses else None
            ),
            "evictions": int(lifetime.get("store.evict", 0)),
            "written_mb": round(
                lifetime.get("store.put_bytes", 0) / 1e6, 3
            ),
        }


#: Open stores memoized per resolved root, so one process reuses one
#: SQLite connection per store.
# repro: allow(RPR005): per-process connection pool by design — SQLite connections cannot cross fork(); cross-process consistency is the WAL database's job, not this dict's
_OPEN_STORES: dict[str, ExperimentStore] = {}


def open_store(root: str | Path) -> ExperimentStore:
    """Open (or reuse) the store rooted at ``root``."""
    resolved = str(Path(root).expanduser())
    store = _OPEN_STORES.get(resolved)
    if store is None:
        store = ExperimentStore(resolved)
        _OPEN_STORES[resolved] = store
    return store


def default_store() -> ExperimentStore | None:
    """The environment-selected store, or None when disabled."""
    path = resolve_store_path()
    if path is None:
        return None
    return open_store(path)
