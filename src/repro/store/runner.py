"""Cache-aware scenario execution: lookups, streaming writes, resume.

:func:`run_scenarios_cached` is the store-backed twin of
:func:`~repro.analysis.scenarios.run_scenarios`: specs already in the
store are pure reads, the rest are simulated (optionally
process-parallel) and persisted *as each result lands* through the batch
runner's streaming ``on_result`` hook.  That streaming commit is what
makes sweeps resumable: when a batch dies midway — a failing spec, a
kill signal between scenarios — everything that finished is already on
disk, and re-running the same sweep (``repro sweep --resume``) executes
only the specs still missing.  No bookkeeping beyond the content
address is needed; "resume" and "warm cache" are the same mechanism.

Uncacheable specs (built datasets, custom fluctuation subclasses) run
exactly as before and simply bypass the store, so every existing caller
can be wired through this layer unconditionally.
"""

from __future__ import annotations

import sqlite3
import warnings
from dataclasses import dataclass, field
from typing import Sequence

import repro.analysis.scenarios as scenarios
from repro.analysis.scenarios import ScenarioSpec, run_scenarios
from repro.core.accounting import RunResult
from repro.errors import StoreError, UncacheableSpecError
from repro.store.backend import ExperimentStore, default_store

#: Sentinel default for ``store=`` parameters: resolve the store from the
#: environment (``REPRO_STORE``).  Pass None to bypass the store, or an
#: :class:`ExperimentStore` to use one explicitly.
ENV_DEFAULT = object()

#: Caching is best-effort: a failed write from any of these (serialization,
#: disk full, an index lock held past the busy timeout) downgrades to a
#: warning — the simulation result is already in hand.
_WRITE_ERRORS = (StoreError, OSError, sqlite3.Error)


def _resolve(store) -> ExperimentStore | None:
    return default_store() if store is ENV_DEFAULT else store


@dataclass
class CachedSweep:
    """Outcome of one cache-aware batch.

    Attributes:
        results: One :class:`RunResult` per spec, in spec order.
        keys: Per-spec content key (None for uncacheable specs).
        cached: Indices served from the store without simulating.
        executed: Indices whose scenario was actually simulated this
            batch (one representative per distinct content key).
        deduplicated: Indices that shared a content key with an executed
            representative and received its result without simulating.
        uncacheable: Indices that bypassed the store entirely.
    """

    results: list[RunResult]
    keys: list[str | None] = field(default_factory=list)
    cached: tuple[int, ...] = ()
    executed: tuple[int, ...] = ()
    deduplicated: tuple[int, ...] = ()
    uncacheable: tuple[int, ...] = ()

    def summary(self) -> str:
        """One status line: how the batch split between cache and compute."""
        parts = [
            f"{len(self.cached)} reused",
            f"{len(self.executed)} simulated",
        ]
        if self.deduplicated:
            parts.append(f"{len(self.deduplicated)} duplicate")
        if self.uncacheable:
            parts.append(f"{len(self.uncacheable)} uncacheable")
        return ", ".join(parts)


def run_scenarios_cached(
    specs: Sequence[ScenarioSpec],
    max_workers: int | None = None,
    store: ExperimentStore | None = ENV_DEFAULT,  # type: ignore[assignment]
    refresh: bool = False,
    shards: int | None = None,
    stats_sink=None,
    profile_sink=None,
    progress=None,
) -> CachedSweep:
    """Execute a batch through the experiment store.

    Results are byte-identical to :func:`run_scenarios` on the same
    specs: cache hits were persisted by an earlier identical run (same
    content key, same deterministic simulation) and round-trip exactly.
    Duplicate specs within one batch are simulated once and fanned out.

    Args:
        specs: The scenarios to run.
        max_workers: Worker-pool size for the specs that must simulate
            (composes with ``shards`` over one pool; see
            :func:`~repro.analysis.scenarios.run_scenarios`).
        store: An :class:`ExperimentStore`, None to bypass caching, or
            :data:`ENV_DEFAULT` to resolve from ``REPRO_STORE``.
        refresh: Ignore existing entries and re-simulate everything
            (results still persist, overwriting).
        shards: When > 1, shard each simulated scenario across worker
            processes (see
            :func:`~repro.analysis.scenarios.run_scenario_sharded`).
            The shard count never enters content keys — a sharded run
            hits, and is hit by, sequential entries.
        stats_sink: Optional hook receiving the scheduler's per-sweep
            :class:`~repro.analysis.scheduler.SchedulerStats` when the
            simulated remainder ran on a worker pool.
        profile_sink: Optional per-task profiler-rows hook (see
            :func:`~repro.analysis.scenarios.run_scenarios`); cache hits
            produce no rows — nothing simulated, nothing timed.
        progress: Optional :class:`~repro.obs.progress.SweepProgress`
            (or duck-type); cache hits report through ``add_cached``,
            simulated specs through the scheduler's task callbacks.

    Returns:
        The :class:`CachedSweep` (``.results`` is the per-spec list).

    Raises:
        ScenarioError: When any simulated scenario fails.  Scenarios that
            completed first are already persisted, so a re-run resumes.
    """
    specs = list(specs)
    store = _resolve(store)
    keys: list[str | None] = []
    for spec in specs:
        if store is None:
            keys.append(None)
            continue
        try:
            keys.append(store.key_for(spec))
        except UncacheableSpecError:
            keys.append(None)
    results: list[RunResult | None] = [None] * len(specs)
    cached: list[int] = []
    if store is not None and not refresh:
        # One batched presence query for the whole sweep (the hit-scan
        # used to issue a sequential store.get round-trip per spec).
        loaded = store.get_many(key for key in keys if key is not None)
        for index, key in enumerate(keys):
            if key is not None and loaded[key] is not None:
                results[index] = loaded[key]
                cached.append(index)
        if progress is not None and cached:
            progress.add_cached(len(cached))
    # One representative spec per missing content key (duplicates share
    # its result); every uncacheable spec runs individually.
    pending: list[int] = []
    seen_keys: set[str] = set()
    for index, key in enumerate(keys):
        if results[index] is not None:
            continue
        if key is not None:
            if key in seen_keys:
                continue
            seen_keys.add(key)
        pending.append(index)

    def persist(batch_index: int, spec: ScenarioSpec, result: RunResult) -> None:
        index = pending[batch_index]
        results[index] = result
        key = keys[index]
        if store is None or key is None:
            return
        try:
            store.put(spec, result, key=key)
        except _WRITE_ERRORS as exc:
            warnings.warn(
                f"experiment store write failed for "
                f"{spec.resolved_label()!r}: {exc}",
                stacklevel=2,
            )

    run_scenarios(
        [specs[index] for index in pending],
        max_workers=max_workers,
        on_result=persist,
        shards=shards,
        stats_sink=stats_sink,
        profile_sink=profile_sink,
        progress=progress,
    )
    # Fan shared-key results out to duplicate specs.
    by_key = {
        keys[index]: results[index]
        for index in pending
        if keys[index] is not None
    }
    deduplicated = []
    for index, key in enumerate(keys):
        if results[index] is None and key is not None:
            results[index] = by_key[key]
            deduplicated.append(index)
    if progress is not None and deduplicated:
        # Duplicates land like cache hits: complete without simulating.
        progress.add_cached(len(deduplicated))
    return CachedSweep(
        results=results,  # type: ignore[arg-type]
        keys=keys,
        cached=tuple(cached),
        executed=tuple(pending),
        deduplicated=tuple(deduplicated),
        uncacheable=tuple(i for i, key in enumerate(keys) if key is None),
    )


def run_scenario_cached(
    spec: ScenarioSpec,
    store: ExperimentStore | None = ENV_DEFAULT,  # type: ignore[assignment]
    refresh: bool = False,
    shards: int | None = None,
) -> RunResult:
    """The cached analog of :func:`~repro.analysis.scenarios.run_scenario`.

    Unlike the batch runner, failures propagate unwrapped — exactly as
    ``run_scenario`` raises them — so single-run callers
    (:func:`~repro.analysis.experiments.run_policy`, ``repro simulate``)
    keep their original exception contracts.  ``shards > 1`` simulates
    through :func:`~repro.analysis.scenarios.run_scenario_sharded`;
    because sharding never changes bytes, the persisted entry is
    indistinguishable from a sequential run's.
    """
    store = _resolve(store)
    key = None
    if store is not None:
        try:
            key = store.key_for(spec)
        except UncacheableSpecError:
            key = None
    if key is not None and not refresh:
        hit = store.get(key)
        if hit is not None:
            return hit
    if shards is not None and shards > 1:
        result = scenarios.run_scenario_sharded(spec, shards=shards)
    else:
        result = scenarios.run_scenario(spec)
    if key is not None:
        try:
            store.put(spec, result, key=key)
        except _WRITE_ERRORS as exc:
            warnings.warn(
                f"experiment store write failed for "
                f"{spec.resolved_label()!r}: {exc}",
                stacklevel=2,
            )
    return result
