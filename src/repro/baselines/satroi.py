"""SatRoI baseline: reference-based encoding against a fixed reference.

SatRoI (Schwartz et al., Sensors'23 [61]) pioneered region-of-interest
satellite compression against an on-board reference image — but the
reference is *fixed*: chosen once (the first sufficiently clear capture)
and stored at full resolution on board, it ages over the mission.  As the
gap grows, more and more tiles legitimately differ from it (the paper's
Figure 4 dynamic), until SatRoI downloads nearly everything (Figure 12).

Its change detection also runs at full resolution, which is why its runtime
exceeds Earth+'s in Figure 16.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselinePolicy
from repro.core.change_detection import detect_changes
from repro.core.cloud import CloudDetector
from repro.core.config import EarthPlusConfig
from repro.core.encoder import CaptureEncodeResult
from repro.imagery.bands import Band
from repro.imagery.sensor import Capture


class SatRoIPolicy(BaselinePolicy):
    """Fixed-reference ROI encoding with the cheap cloud detector.

    Args:
        config: Shared tunables.
        bands: Band set.
        image_shape: Capture pixel shape.
        cloud_detector: The cheap detector (same as Earth+).
        reference_max_cloud: Cloud ceiling for a capture to become the
            fixed reference.
    """

    name = "satroi"

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
        cloud_detector: CloudDetector,
        reference_max_cloud: float = 0.05,
    ) -> None:
        super().__init__(config, bands, image_shape)
        self.cloud_detector = cloud_detector
        self.reference_max_cloud = reference_max_cloud
        # (location, band) -> fixed full-resolution reference image.
        self._references: dict[tuple[str, str], np.ndarray] = {}

    def reference_storage_bytes(self) -> int:
        """Full-resolution references at raw pixel width."""
        return sum(
            ref.size * self.config.raw_bytes_per_pixel
            for ref in self._references.values()
        )

    def process(
        self, capture: Capture, guaranteed_due: bool = False
    ) -> CaptureEncodeResult:
        """ROI-encode changes against the fixed reference (if any)."""
        cloud_pixels = self.cloud_detector.detect(
            capture.pixels, capture.bands, self.grid
        )
        coverage = float(cloud_pixels.mean())
        if coverage > self.config.drop_cloud_fraction:
            return self.assemble(capture, dropped=True, coverage=coverage,
                                 band_results=[])
        cloudy_tiles = self.grid.reduce_fraction(cloud_pixels) > 0.5
        band_results = []
        can_seed_reference = coverage <= self.reference_max_cloud
        for band in self.bands:
            image = capture.pixels[band.name]
            cleaned = np.where(cloud_pixels, 0.0, image)
            key = (capture.location, band.name)
            reference = self._references.get(key)
            if reference is None:
                # No reference yet: download everything non-cloudy; seed the
                # fixed reference if the sky is clear enough.
                download = ~cloudy_tiles
                result = self.encode_band(
                    capture,
                    band,
                    cleaned,
                    download,
                    cloudy_tiles,
                    changed_fraction=float(download.mean()),
                    cloudy_pixels=cloud_pixels,
                )
                if can_seed_reference:
                    self._references[key] = image.copy()
                band_results.append(result)
                continue
            detection = detect_changes(
                reference,
                cleaned,
                self.grid,
                downsample=1,
                theta=self.config.theta,
                valid_lr=~cloud_pixels,
            )
            download = detection.changed_tiles & ~cloudy_tiles
            band_results.append(
                self.encode_band(
                    capture,
                    band,
                    cleaned,
                    download,
                    cloudy_tiles,
                    changed_fraction=detection.changed_fraction,
                    gain=detection.gain,
                    offset=detection.offset,
                    had_reference=True,
                    cloudy_pixels=cloud_pixels,
                )
            )
        return self.assemble(
            capture, dropped=False, coverage=coverage, band_results=band_results
        )
