"""Shared machinery for baseline compression policies.

Every baseline shares Earth+'s codec, tile grid, and gamma (bits per
downloaded pixel) so quality comparisons are apples-to-apples; they differ
only in *which tiles they download*.  :class:`BaselinePolicy` provides the
common ROI encoding and result assembly.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import EarthPlusConfig
from repro.core.encoder import (
    ALIGNMENT_BYTES as _ALIGNMENT_BYTES,
    BandEncodeResult,
    CaptureEncodeResult,
    RoiRateController,
)
from repro.core.tiles import TileGrid
from repro.imagery.bands import Band
from repro.imagery.sensor import Capture


class BaselinePolicy:
    """Base class: ROI encoding at gamma bpp over a chosen tile mask.

    Baselines never receive uplinked reference updates
    (``uses_uplink = False``), so the simulator's uplink phase skips them
    entirely — they do not implement
    :class:`~repro.core.phases.UplinkReceiver`.

    Args:
        config: Shared tunables (tile size, gamma, drop threshold).
        bands: Band set.
        image_shape: Capture pixel shape.
    """

    uses_uplink = False
    name = "baseline"

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
    ) -> None:
        self.config = config
        self.bands = bands
        self.image_shape = image_shape
        self.grid = TileGrid(image_shape, config.tile_size)
        # Same warm-started rate search as the Earth+ encoder, so every
        # policy hits identical rate operating points.
        self.rate = RoiRateController(config)

    def close(self) -> None:
        """Release the rate controller's codec resources (idempotent)."""
        self.rate.close()

    def reference_storage_bytes(self) -> int:
        """Baselines keep no reference imagery unless they override this."""
        return 0

    # ------------------------------------------------------------------
    def encode_band(
        self,
        capture: Capture,
        band: Band,
        image: np.ndarray,
        download: np.ndarray,
        cloudy_tiles: np.ndarray,
        changed_fraction: float,
        gain: float = 1.0,
        offset: float = 0.0,
        had_reference: bool = False,
        cloudy_pixels: np.ndarray | None = None,
    ) -> BandEncodeResult:
        """Encode the masked tiles of one band at gamma bits per pixel."""
        if not download.any():
            return BandEncodeResult(
                band=band.name,
                downloaded_tiles=download,
                cloudy_tiles=cloudy_tiles,
                changed_fraction=changed_fraction,
                bytes_downlinked=_ALIGNMENT_BYTES,
                psnr_downloaded=float("inf"),
                reconstruction=np.zeros(self.image_shape, dtype=np.float64),
                gain=gain,
                offset=offset,
                had_reference=had_reference,
                cloudy_pixels=cloudy_pixels,
            )
        roi_pixels = int(
            (self.grid.tile_pixel_counts() * download.astype(np.int64)).sum()
        )
        target_bytes = max(64, int(self.config.gamma_bpp * roi_pixels / 8.0))
        result = self.rate.encode_roi(
            (capture.location, band.name), image, download, target_bytes
        )
        return BandEncodeResult(
            band=band.name,
            downloaded_tiles=download,
            cloudy_tiles=cloudy_tiles,
            changed_fraction=changed_fraction,
            bytes_downlinked=result.coded_bytes + _ALIGNMENT_BYTES,
            psnr_downloaded=result.psnr_roi,
            reconstruction=result.reconstruction,
            gain=gain,
            offset=offset,
            had_reference=had_reference,
            cloudy_pixels=cloudy_pixels,
            layers=result.layers,
            layers_factory=result.layers_factory,
        )

    @staticmethod
    def assemble(
        capture: Capture,
        dropped: bool,
        coverage: float,
        band_results: list[BandEncodeResult],
        guaranteed: bool = False,
    ) -> CaptureEncodeResult:
        """Package per-band results into a capture result."""
        return CaptureEncodeResult(
            location=capture.location,
            satellite_id=capture.satellite_id,
            t_days=capture.t_days,
            dropped=dropped,
            guaranteed=guaranteed,
            cloud_coverage_detected=coverage,
            bands=band_results,
            onboard_encoded_bytes=sum(b.bytes_downlinked for b in band_results),
        )
