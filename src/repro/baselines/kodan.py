"""Kodan baseline: accurate on-board cloud filtering, download the rest.

Kodan (Denby et al., ASPLOS'23 [37]) attacks the downlink bottleneck by
discarding *low-value* data — clouds — on board, using an accurate (and
therefore expensive, Figure 16) cloud detector, then downloading every
surviving tile.  It never exploits temporal redundancy: an unchanged field
is re-downloaded on every clear pass, which is exactly the gap Earth+
targets.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselinePolicy
from repro.core.cloud import CloudDetector
from repro.core.config import EarthPlusConfig
from repro.core.encoder import CaptureEncodeResult
from repro.imagery.bands import Band
from repro.imagery.sensor import Capture


class KodanPolicy(BaselinePolicy):
    """Drop detected cloud, download all remaining tiles at gamma bpp.

    Args:
        config: Shared tunables.
        bands: Band set.
        image_shape: Capture pixel shape.
        cloud_detector: The *accurate* detector (Kodan spends compute here).
    """

    name = "kodan"

    def __init__(
        self,
        config: EarthPlusConfig,
        bands: tuple[Band, ...],
        image_shape: tuple[int, int],
        cloud_detector: CloudDetector,
    ) -> None:
        super().__init__(config, bands, image_shape)
        self.cloud_detector = cloud_detector

    def process(
        self, capture: Capture, guaranteed_due: bool = False
    ) -> CaptureEncodeResult:
        """Cloud-filter and download everything that survives."""
        cloud_pixels = self.cloud_detector.detect(
            capture.pixels, capture.bands, self.grid
        )
        coverage = float(cloud_pixels.mean())
        if coverage > self.config.drop_cloud_fraction:
            return self.assemble(capture, dropped=True, coverage=coverage,
                                 band_results=[])
        cloudy_tiles = self.grid.reduce_fraction(cloud_pixels) > 0.5
        download = ~cloudy_tiles
        band_results = []
        for band in self.bands:
            cleaned = np.where(cloud_pixels, 0.0, capture.pixels[band.name])
            band_results.append(
                self.encode_band(
                    capture,
                    band,
                    cleaned,
                    download,
                    cloudy_tiles,
                    changed_fraction=float(download.mean()),
                    cloudy_pixels=cloud_pixels,
                )
            )
        return self.assemble(
            capture, dropped=False, coverage=coverage, band_results=band_results
        )
