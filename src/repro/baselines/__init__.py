"""Baseline on-board compression policies the paper evaluates against.

* :class:`~repro.baselines.kodan.KodanPolicy` — Kodan (ASPLOS'23 [37]):
  drop low-value cloudy data with an *accurate but expensive* on-board
  cloud detector, then download every remaining non-cloudy tile.
* :class:`~repro.baselines.satroi.SatRoIPolicy` — SatRoI (Sensors'23 [61]):
  reference-based region-of-interest encoding against a *fixed* on-board
  full-resolution reference that ages over the mission.
* :class:`~repro.baselines.naive.NaivePolicy` — download everything,
  the Figure 19 "Download everything" anchor.

All baselines run inside the same :class:`repro.core.system.ConstellationSimulator`
loop as Earth+, sharing cloud fields, illumination, the codec, and scoring,
so comparisons isolate exactly the policy difference.
"""

from repro.baselines.base import BaselinePolicy
from repro.baselines.kodan import KodanPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.satroi import SatRoIPolicy

__all__ = ["BaselinePolicy", "KodanPolicy", "NaivePolicy", "SatRoIPolicy"]
