"""Download-everything baseline: no filtering, no references.

The anchor of the paper's Figure 19 ("Download everything") and the upper
bound on downlink demand: every tile of every capture is encoded at gamma
bits per pixel and shipped down.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselinePolicy
from repro.core.encoder import CaptureEncodeResult
from repro.imagery.sensor import Capture


class NaivePolicy(BaselinePolicy):
    """Encode and download every tile of every capture."""

    name = "naive"

    def process(
        self, capture: Capture, guaranteed_due: bool = False
    ) -> CaptureEncodeResult:
        """Download the full frame, clouds and all."""
        download = np.ones(self.grid.grid_shape, dtype=bool)
        no_cloud = np.zeros(self.grid.grid_shape, dtype=bool)
        band_results = [
            self.encode_band(
                capture,
                band,
                capture.pixels[band.name],
                download,
                no_cloud,
                changed_fraction=1.0,
            )
            for band in self.bands
        ]
        return self.assemble(
            capture, dropped=False, coverage=0.0, band_results=band_results
        )
