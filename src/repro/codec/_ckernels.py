"""Build and load the compiled codec kernels (C via the system toolchain).

The ``compiled`` backend promises the exact arithmetic of the reference
coder at native speed.  numba is not part of the baked toolchain, so the
kernels are plain C99 compiled on first use with the system compiler
(``cc``/``gcc``/``clang``) into a cached shared object and called through
:mod:`ctypes`.  Every kernel is a line-for-line port of the corresponding
Python inner loop:

* the Subbotin range coder (``BatchRangeEncoder.encode_with_probs`` /
  ``BatchRangeDecoder.decode_sig_pass`` / ``decode_ref_pass``) with the
  same 32-bit masking discipline — state is held in ``uint64_t`` and
  masked exactly where the Python code masks, so the unmasked
  ``low ^ (low + range)`` renormalization test is preserved verbatim;
* the 5/3 and 9/7 DWT lifting passes, compiled with ``-ffp-contract=off``
  (no fused multiply-add, no fast-math) so every float operation rounds
  exactly like the numpy elementwise pipeline;
* the rate model's magnitude→top-bit histogram and descending plane walk
  (the entropy matrix stays in numpy — ``np.log2`` — so transcendental
  rounding can never drift between backends).

Float identity therefore holds to the last ulp, and the integer kernels
are trivially exact; the differential/golden/corruption suites enforce
both.  When no C compiler is available the build fails soft:
:func:`load` returns None, :func:`unavailable_reason` says why, and the
backend registry falls back to ``vectorized`` with a warning.

Set ``REPRO_CODEC_CC`` to choose a specific compiler, or to the empty
string to simulate a machine without a toolchain (used by the CI
fallback job).
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>
#include <math.h>
#include <string.h>

#define MASK32 0xFFFFFFFFULL
#define RC_TOP (1ULL << 24)
#define RC_BOTTOM (1ULL << 16)
#define RC_MAX_TOTAL (1LL << 12)

/* ------------------------------------------------------------------ */
/* Subbotin range coder                                               */
/* ------------------------------------------------------------------ */

/* Encode one plane segment (precomputed probability schedule) from a
 * fresh coder state, including the 4-byte flush.  Returns the number of
 * bytes written, or -1 if `cap` is too small (caller retries bigger). */
int64_t rc_encode_segment(const int64_t *bits, const int64_t *probs,
                          int64_t n, uint8_t *out, int64_t cap) {
    uint64_t low = 0, rng = MASK32;
    int64_t len = 0;
    for (int64_t i = 0; i < n; i++) {
        uint64_t split = (rng >> 16) * (uint64_t)probs[i];
        if (bits[i]) {
            low = (low + split) & MASK32;
            rng -= split;
        } else {
            rng = split;
        }
        for (;;) {
            if ((low ^ (low + rng)) < RC_TOP) {
                /* pass: high bytes settled, emit below */
            } else if (rng < RC_BOTTOM) {
                rng = (0 - low) & (RC_BOTTOM - 1);
            } else {
                break;
            }
            if (len >= cap) return -1;
            out[len++] = (uint8_t)((low >> 24) & 0xFF);
            low = (low << 8) & MASK32;
            rng = (rng << 8) & MASK32;
        }
    }
    for (int k = 0; k < 4; k++) {
        if (len >= cap) return -1;
        out[len++] = (uint8_t)((low >> 24) & 0xFF);
        low = (low << 8) & MASK32;
    }
    return len;
}

/* Adaptive-decode one bit under context `ctx`.  Returns 0, or 1 when the
 * decoder ran more than 64 bytes past the end of data (BitstreamError in
 * the caller).  Context counts commit before renormalization, exactly as
 * in BatchRangeDecoder. */
static int rc_decode_bit(const uint8_t *data, int64_t n_data, int64_t limit,
                         int64_t *pos, uint64_t *low, uint64_t *rng,
                         uint64_t *code, int64_t *count0, int64_t *count1,
                         int64_t ctx, int *bit_out) {
    int64_t n0 = count0[ctx];
    int64_t n1 = count1[ctx];
    uint64_t p0 = (uint64_t)((n0 << 16) / (n0 + n1));
    uint64_t split = (*rng >> 16) * p0;
    int bit;
    if (((*code - *low) & MASK32) < split) {
        bit = 0;
        *rng = split;
        n0 += 1;
    } else {
        bit = 1;
        *low = (*low + split) & MASK32;
        *rng -= split;
        n1 += 1;
    }
    if (n0 + n1 >= RC_MAX_TOTAL) {
        n0 = (n0 + 1) >> 1;
        n1 = (n1 + 1) >> 1;
    }
    count0[ctx] = n0;
    count1[ctx] = n1;
    for (;;) {
        if ((*low ^ (*low + *rng)) < RC_TOP) {
        } else if (*rng < RC_BOTTOM) {
            *rng = (0 - *low) & (RC_BOTTOM - 1);
        } else {
            break;
        }
        uint64_t byte = (*pos < n_data) ? data[*pos] : 0;
        *pos += 1;
        if (*pos > limit) return 1;
        *code = ((*code << 8) | byte) & MASK32;
        *low = (*low << 8) & MASK32;
        *rng = (*rng << 8) & MASK32;
    }
    *bit_out = bit;
    return 0;
}

/* Significance pass: one adaptive bit per ctxs[i]; each 1 bit is
 * followed by an adaptive sign bit under sign_ctx.  State commits to the
 * *_io scalars only on success (the Python decoder leaves its attributes
 * untouched when it raises mid-pass).  Returns 0 ok / 1 overrun. */
int rc_decode_sig_pass(const uint8_t *data, int64_t n_data, int64_t limit,
                       int64_t *pos_io, uint64_t *low_io, uint64_t *rng_io,
                       uint64_t *code_io, int64_t *count0, int64_t *count1,
                       const int64_t *ctxs, int64_t n, int64_t sign_ctx,
                       uint8_t *bits_out, uint8_t *signs_out,
                       int64_t *n_signs_io) {
    int64_t pos = *pos_io;
    uint64_t low = *low_io, rng = *rng_io, code = *code_io;
    int64_t n_signs = 0;
    for (int64_t i = 0; i < n; i++) {
        int bit;
        if (rc_decode_bit(data, n_data, limit, &pos, &low, &rng, &code,
                          count0, count1, ctxs[i], &bit))
            return 1;
        bits_out[i] = (uint8_t)bit;
        if (bit) {
            int sbit;
            if (rc_decode_bit(data, n_data, limit, &pos, &low, &rng, &code,
                              count0, count1, sign_ctx, &sbit))
                return 1;
            signs_out[n_signs++] = (uint8_t)sbit;
        }
    }
    *pos_io = pos;
    *low_io = low;
    *rng_io = rng;
    *code_io = code;
    *n_signs_io = n_signs;
    return 0;
}

/* Refinement pass: `count` bits under one context.  Counts stay in
 * locals and only commit on success, mirroring decode_ref_pass. */
int rc_decode_ref_pass(const uint8_t *data, int64_t n_data, int64_t limit,
                       int64_t *pos_io, uint64_t *low_io, uint64_t *rng_io,
                       uint64_t *code_io, int64_t *count0, int64_t *count1,
                       int64_t count, int64_t ctx, uint8_t *bits_out) {
    int64_t pos = *pos_io;
    uint64_t low = *low_io, rng = *rng_io, code = *code_io;
    int64_t n0 = count0[ctx];
    int64_t n1 = count1[ctx];
    for (int64_t i = 0; i < count; i++) {
        uint64_t p0 = (uint64_t)((n0 << 16) / (n0 + n1));
        uint64_t split = (rng >> 16) * p0;
        int bit;
        if (((code - low) & MASK32) < split) {
            bit = 0;
            rng = split;
            n0 += 1;
        } else {
            bit = 1;
            low = (low + split) & MASK32;
            rng -= split;
            n1 += 1;
        }
        if (n0 + n1 >= RC_MAX_TOTAL) {
            n0 = (n0 + 1) >> 1;
            n1 = (n1 + 1) >> 1;
        }
        for (;;) {
            if ((low ^ (low + rng)) < RC_TOP) {
            } else if (rng < RC_BOTTOM) {
                rng = (0 - low) & (RC_BOTTOM - 1);
            } else {
                break;
            }
            uint64_t byte = (pos < n_data) ? data[pos] : 0;
            pos += 1;
            if (pos > limit) return 1;
            code = ((code << 8) | byte) & MASK32;
            low = (low << 8) & MASK32;
            rng = (rng << 8) & MASK32;
        }
        bits_out[i] = (uint8_t)bit;
    }
    count0[ctx] = n0;
    count1[ctx] = n1;
    *pos_io = pos;
    *low_io = low;
    *rng_io = rng;
    *code_io = code;
    return 0;
}

/* One whole plane, fused: walk every band's significance and refinement
 * passes (exactly the decision stream _prepare_band_plane assembles) and
 * feed each decision straight through the adaptive model + range coder.
 * Bands are coded in order against one shared context table; each band's
 * significance state updates after its two passes, before the next
 * band's.  Fresh coder state + 4-byte flush per call, like
 * rc_encode_segment.  Returns bytes written, or -1 when `cap` is too
 * small (caller retries bigger). */
int64_t rc_encode_plane(const int64_t *mag_ptrs, const int64_t *sign_ptrs,
                        const int64_t *sig_ptrs, const int64_t *heights,
                        const int64_t *widths, const int64_t *bases,
                        int64_t n_bands, int64_t plane,
                        int64_t *count0, int64_t *count1,
                        uint8_t *out, int64_t cap) {
    uint64_t low = 0, rng = MASK32;
    int64_t len = 0;

/* Adaptive-encode one bit: model probability, count update + halving,
 * then the Subbotin renormalization (same loop as rc_encode_segment). */
#define RC_PUT_BIT(bit_v, ctx_v)                                          \
    do {                                                                  \
        int64_t ctx_ = (ctx_v);                                           \
        int64_t n0_ = count0[ctx_], n1_ = count1[ctx_];                   \
        uint64_t p0_ = (uint64_t)((n0_ << 16) / (n0_ + n1_));             \
        uint64_t split_ = (rng >> 16) * p0_;                              \
        if (bit_v) {                                                      \
            low = (low + split_) & MASK32;                                \
            rng -= split_;                                                \
            n1_ += 1;                                                     \
        } else {                                                          \
            rng = split_;                                                 \
            n0_ += 1;                                                     \
        }                                                                 \
        if (n0_ + n1_ >= RC_MAX_TOTAL) {                                  \
            n0_ = (n0_ + 1) >> 1;                                         \
            n1_ = (n1_ + 1) >> 1;                                         \
        }                                                                 \
        count0[ctx_] = n0_;                                               \
        count1[ctx_] = n1_;                                               \
        for (;;) {                                                        \
            if ((low ^ (low + rng)) < RC_TOP) {                           \
            } else if (rng < RC_BOTTOM) {                                 \
                rng = (0 - low) & (RC_BOTTOM - 1);                        \
            } else {                                                      \
                break;                                                    \
            }                                                             \
            if (len >= cap) return -1;                                    \
            out[len++] = (uint8_t)((low >> 24) & 0xFF);                   \
            low = (low << 8) & MASK32;                                    \
            rng = (rng << 8) & MASK32;                                    \
        }                                                                 \
    } while (0)

    for (int64_t b = 0; b < n_bands; b++) {
        const int64_t *mag = (const int64_t *)(uintptr_t)mag_ptrs[b];
        const uint8_t *sgn = (const uint8_t *)(uintptr_t)sign_ptrs[b];
        uint8_t *sig = (uint8_t *)(uintptr_t)sig_ptrs[b];
        int64_t h = heights[b], w = widths[b];
        int64_t base = bases[b];
        int64_t sign_ctx = base + 3; /* _SIGN_OFFSET */
        int64_t ref_ctx = base + 4;  /* _REF_OFFSET */
        /* Significance pass: row-major over previously-insignificant
         * positions, context from the pre-plane neighbour state, each 1
         * bit followed by its sign bit. */
        for (int64_t y = 0; y < h; y++) {
            for (int64_t x = 0; x < w; x++) {
                int64_t i = y * w + x;
                if (sig[i]) continue;
                int nb = 0;
                for (int64_t dy = -1; dy <= 1; dy++) {
                    int64_t yy = y + dy;
                    if (yy < 0 || yy >= h) continue;
                    for (int64_t dx = -1; dx <= 1; dx++) {
                        int64_t xx = x + dx;
                        if (xx < 0 || xx >= w || (dy == 0 && dx == 0))
                            continue;
                        nb += sig[yy * w + xx];
                    }
                }
                int64_t ctx = base + (nb >= 3 ? 2 : (nb >= 1 ? 1 : 0));
                int bit = (int)((mag[i] >> plane) & 1);
                RC_PUT_BIT(bit, ctx);
                if (bit)
                    RC_PUT_BIT(sgn[i], sign_ctx);
            }
        }
        /* Refinement pass: previously-significant positions, row-major,
         * one shared context. */
        for (int64_t i = 0; i < h * w; i++) {
            if (!sig[i]) continue;
            RC_PUT_BIT((int)((mag[i] >> plane) & 1), ref_ctx);
        }
        /* Both passes read the pre-plane state; update it now. */
        for (int64_t i = 0; i < h * w; i++)
            if ((mag[i] >> plane) & 1) sig[i] = 1;
    }
#undef RC_PUT_BIT
    for (int k = 0; k < 4; k++) {
        if (len >= cap) return -1;
        out[len++] = (uint8_t)((low >> 24) & 0xFF);
        low = (low << 8) & MASK32;
    }
    return len;
}

/* ------------------------------------------------------------------ */
/* DWT lifting (whole-point symmetric extension along axis 0,          */
/* m contiguous columns)                                               */
/* ------------------------------------------------------------------ */

/* Mirrored source index of sample 2i+2 (always even), divided by 2. */
static int64_t predict_right(int64_t i, int64_t length) {
    int64_t period = 2 * (length - 1);
    int64_t idx = (2 * i + 2) % period;
    if (idx >= length) idx = period - idx;
    return idx / 2;
}

void dwt97_analysis(const double *x, int64_t length, int64_t m,
                    double *even, double *odd) {
    const double ALPHA = -1.586134342059924;
    const double BETA = -0.052980118572961;
    const double GAMMA = 0.882911075530934;
    const double DELTA = 0.443506852043971;
    const double KAPPA = 1.230174104914001;
    int64_t n_even = (length + 1) / 2;
    int64_t n_odd = length / 2;
    for (int64_t i = 0; i < n_even; i++)
        memcpy(even + i * m, x + 2 * i * m, (size_t)m * sizeof(double));
    for (int64_t i = 0; i < n_odd; i++)
        memcpy(odd + i * m, x + (2 * i + 1) * m, (size_t)m * sizeof(double));
    for (int64_t i = 0; i < n_odd; i++) {
        const double *r1 = even + predict_right(i, length) * m;
        const double *e = even + i * m;
        double *o = odd + i * m;
        for (int64_t j = 0; j < m; j++) o[j] += ALPHA * (e[j] + r1[j]);
    }
    for (int64_t i = 0; i < n_even; i++) {
        int64_t dl = i - 1 < 0 ? 0 : (i - 1 >= n_odd ? n_odd - 1 : i - 1);
        int64_t dr = i >= n_odd ? n_odd - 1 : i;
        const double *ol = odd + dl * m;
        const double *orr = odd + dr * m;
        double *e = even + i * m;
        for (int64_t j = 0; j < m; j++) e[j] += BETA * (ol[j] + orr[j]);
    }
    for (int64_t i = 0; i < n_odd; i++) {
        int64_t sr = i + 1 >= n_even ? n_even - 1 : i + 1;
        const double *e = even + i * m;
        const double *er = even + sr * m;
        double *o = odd + i * m;
        for (int64_t j = 0; j < m; j++) o[j] += GAMMA * (e[j] + er[j]);
    }
    for (int64_t i = 0; i < n_even; i++) {
        int64_t dl = i - 1 < 0 ? 0 : (i - 1 >= n_odd ? n_odd - 1 : i - 1);
        int64_t dr = i >= n_odd ? n_odd - 1 : i;
        const double *ol = odd + dl * m;
        const double *orr = odd + dr * m;
        double *e = even + i * m;
        for (int64_t j = 0; j < m; j++) e[j] += DELTA * (ol[j] + orr[j]);
    }
    for (int64_t i = 0; i < n_even * m; i++) even[i] *= KAPPA;
    for (int64_t i = 0; i < n_odd * m; i++) odd[i] /= KAPPA;
}

void dwt97_synthesis(const double *approx, const double *detail,
                     int64_t length, int64_t m, double *out) {
    const double ALPHA = -1.586134342059924;
    const double BETA = -0.052980118572961;
    const double GAMMA = 0.882911075530934;
    const double DELTA = 0.443506852043971;
    const double KAPPA = 1.230174104914001;
    int64_t n_even = (length + 1) / 2;
    int64_t n_odd = length / 2;
    /* even[i] lives at out[2i], odd[i] at out[2i+1] (strided rows). */
#define EV(i) (out + 2 * (i) * m)
#define OD(i) (out + (2 * (i) + 1) * m)
    for (int64_t i = 0; i < n_even; i++) {
        const double *a = approx + i * m;
        double *e = EV(i);
        for (int64_t j = 0; j < m; j++) e[j] = a[j] / KAPPA;
    }
    for (int64_t i = 0; i < n_odd; i++) {
        const double *d = detail + i * m;
        double *o = OD(i);
        for (int64_t j = 0; j < m; j++) o[j] = d[j] * KAPPA;
    }
    for (int64_t i = 0; i < n_even; i++) {
        int64_t dl = i - 1 < 0 ? 0 : (i - 1 >= n_odd ? n_odd - 1 : i - 1);
        int64_t dr = i >= n_odd ? n_odd - 1 : i;
        const double *ol = OD(dl);
        const double *orr = OD(dr);
        double *e = EV(i);
        for (int64_t j = 0; j < m; j++) e[j] -= DELTA * (ol[j] + orr[j]);
    }
    for (int64_t i = 0; i < n_odd; i++) {
        int64_t sr = i + 1 >= n_even ? n_even - 1 : i + 1;
        const double *e = EV(i);
        const double *er = EV(sr);
        double *o = OD(i);
        for (int64_t j = 0; j < m; j++) o[j] -= GAMMA * (e[j] + er[j]);
    }
    for (int64_t i = 0; i < n_even; i++) {
        int64_t dl = i - 1 < 0 ? 0 : (i - 1 >= n_odd ? n_odd - 1 : i - 1);
        int64_t dr = i >= n_odd ? n_odd - 1 : i;
        const double *ol = OD(dl);
        const double *orr = OD(dr);
        double *e = EV(i);
        for (int64_t j = 0; j < m; j++) e[j] -= BETA * (ol[j] + orr[j]);
    }
    for (int64_t i = 0; i < n_odd; i++) {
        const double *e = EV(i);
        const double *er = EV(predict_right(i, length));
        double *o = OD(i);
        for (int64_t j = 0; j < m; j++) o[j] -= ALPHA * (e[j] + er[j]);
    }
#undef EV
#undef OD
}

void dwt53_analysis(const int64_t *x, int64_t length, int64_t m,
                    int64_t *even, int64_t *odd) {
    int64_t n_even = (length + 1) / 2;
    int64_t n_odd = length / 2;
    for (int64_t i = 0; i < n_even; i++)
        memcpy(even + i * m, x + 2 * i * m, (size_t)m * sizeof(int64_t));
    for (int64_t i = 0; i < n_odd; i++)
        memcpy(odd + i * m, x + (2 * i + 1) * m, (size_t)m * sizeof(int64_t));
    for (int64_t i = 0; i < n_odd; i++) {
        const int64_t *r = even + predict_right(i, length) * m;
        const int64_t *e = even + i * m;
        int64_t *o = odd + i * m;
        for (int64_t j = 0; j < m; j++) o[j] -= (e[j] + r[j]) >> 1;
    }
    for (int64_t i = 0; i < n_even; i++) {
        int64_t dl = i - 1 < 0 ? 0 : (i - 1 >= n_odd ? n_odd - 1 : i - 1);
        int64_t dr = i >= n_odd ? n_odd - 1 : i;
        const int64_t *ol = odd + dl * m;
        const int64_t *orr = odd + dr * m;
        int64_t *e = even + i * m;
        for (int64_t j = 0; j < m; j++) e[j] += (ol[j] + orr[j] + 2) >> 2;
    }
}

void dwt53_synthesis(const int64_t *approx, const int64_t *detail,
                     int64_t length, int64_t m, int64_t *out) {
    int64_t n_even = (length + 1) / 2;
    int64_t n_odd = length / 2;
#define EV(i) (out + 2 * (i) * m)
#define OD(i) (out + (2 * (i) + 1) * m)
    for (int64_t i = 0; i < n_even; i++) {
        int64_t dl = i - 1 < 0 ? 0 : (i - 1 >= n_odd ? n_odd - 1 : i - 1);
        int64_t dr = i >= n_odd ? n_odd - 1 : i;
        const int64_t *ol = detail + dl * m;
        const int64_t *orr = detail + dr * m;
        const int64_t *a = approx + i * m;
        int64_t *e = EV(i);
        for (int64_t j = 0; j < m; j++)
            e[j] = a[j] - ((ol[j] + orr[j] + 2) >> 2);
    }
    for (int64_t i = 0; i < n_odd; i++) {
        const int64_t *e = EV(i);
        const int64_t *er = EV(predict_right(i, length));
        const int64_t *d = detail + i * m;
        int64_t *o = OD(i);
        for (int64_t j = 0; j < m; j++) o[j] = d[j] + ((e[j] + er[j]) >> 1);
    }
#undef EV
#undef OD
}

/* ------------------------------------------------------------------ */
/* Rate model kernels                                                  */
/* ------------------------------------------------------------------ */

/* Top-bit histogram of floor(|x| / step) per row.  counts is a zeroed
 * (n_rows, n_bins_cap) matrix; top bits at or above the cap are clamped
 * into the last bin but reported truthfully in `tops`, so the caller's
 * >= 31 wrap check fires exactly like the numpy path. */
void rc_magnitude_histogram(const double *data, int64_t n_rows, int64_t size,
                            double step, int64_t *counts, int64_t n_bins_cap,
                            int64_t *tops) {
    for (int64_t r = 0; r < n_rows; r++) {
        const double *row = data + r * size;
        int64_t *crow = counts + r * n_bins_cap;
        int64_t top = -1;
        for (int64_t j = 0; j < size; j++) {
            double mag = floor(fabs(row[j]) / step);
            if (mag > 0.0) {
                int64_t t = (int64_t)ilogb(mag);
                if (t > top) top = t;
                crow[t < n_bins_cap ? t : n_bins_cap - 1] += 1;
            }
        }
        tops[r] = top;
    }
}

/* Descending plane walk over top-bit histograms.  The entropy matrix is
 * precomputed by the caller (numpy log2) so transcendental rounding
 * matches the vectorized path bit for bit; this kernel replays only the
 * integer statistics and the three accumulator additions per plane, in
 * the exact order of the numpy walk. */
void rc_plane_walk_bits(const int64_t *counts, const int64_t *tops,
                        const int64_t *sizes, const double *entropy_mat,
                        int64_t n_rows, int64_t n_planes, double *bits_out) {
    for (int64_t r = 0; r < n_rows; r++) {
        const int64_t *crow = counts + r * n_planes;
        const double *erow = entropy_mat + r * n_planes;
        double bits = 0.0;
        int64_t n_sig = 0;
        for (int64_t p = n_planes - 1; p >= 0; p--) {
            int64_t n_insig = sizes[r] - n_sig;
            int active = p <= tops[r];
            int contributes = active && n_insig > 0;
            if (contributes) {
                bits += (double)n_insig * erow[p];
                bits += (double)crow[p];
            }
            if (active) bits += 0.95 * (double)n_sig;
            n_sig += crow[p];
        }
        bits_out[r] = bits;
    }
}

/* Fused dead-zone dequantize: sign(q) * (|q| + offset) * step, 0 stays 0.
 * The magnitude is the WRAPPING int32 absolute value — np.abs on int32
 * leaves INT32_MIN negative, and bit-exactness with the numpy path wins
 * over mathematical niceness in that (quantizer-overflow) corner. */
void rc_dequantize(const int32_t *q, int64_t n, double step, double offset,
                   double *out) {
    for (int64_t i = 0; i < n; i++) {
        int32_t v = q[i];
        if (v == 0) {
            out[i] = 0.0;
        } else {
            int32_t wrapped =
                (int32_t)(v < 0 ? (uint32_t)0 - (uint32_t)v : (uint32_t)v);
            double s = v > 0 ? 1.0 : -1.0;
            out[i] = s * ((double)wrapped + offset) * step;
        }
    }
}

/* Multi-block variants: one library call per batch instead of one per
 * (tile group, subband), amortizing the ctypes call overhead that
 * dominates these tiny per-subband kernels.  Block data stays in place —
 * the caller passes raw array addresses (int64) rather than copying the
 * blocks into one buffer. */

void rc_magnitude_histogram_multi(const int64_t *ptrs, const int64_t *rows,
                                  const int64_t *sizes, const double *steps,
                                  int64_t n_blocks, int64_t *counts,
                                  int64_t n_bins_cap, int64_t *tops) {
    int64_t row0 = 0;
    for (int64_t b = 0; b < n_blocks; b++) {
        rc_magnitude_histogram((const double *)(uintptr_t)ptrs[b], rows[b],
                               sizes[b], steps[b],
                               counts + row0 * n_bins_cap, n_bins_cap,
                               tops + row0);
        row0 += rows[b];
    }
}

void rc_dequantize_multi(const int64_t *ptrs, const int64_t *ns,
                         const double *steps, double offset,
                         int64_t n_blocks, double *out) {
    int64_t off = 0;
    for (int64_t b = 0; b < n_blocks; b++) {
        rc_dequantize((const int32_t *)(uintptr_t)ptrs[b], ns[b], steps[b],
                      offset, out + off);
        off += ns[b];
    }
}

/* Bilinear value-noise interpolation: gather four lattice corners per
 * pixel and blend with precomputed Hermite weights.  The arithmetic is
 * exactly numpy's broadcast expression, term for term:
 *   top    = v00 * (1 - tx) + v01 * tx
 *   bottom = v10 * (1 - tx) + v11 * tx
 *   out    = top * (1 - ty) + bottom * ty
 * (no fused multiply-add: built with -ffp-contract=off). */
void noise_bilerp(const double *lattice, int64_t stride,
                  const int64_t *flat00, const double *ty, const double *tx,
                  int64_t height, int64_t width, double *out) {
    for (int64_t y = 0; y < height; y++) {
        double wy = ty[y];
        const int64_t *f = flat00 + y * width;
        double *o = out + y * width;
        for (int64_t x = 0; x < width; x++) {
            const double *cell = lattice + f[x];
            double wx = tx[x];
            double top = cell[0] * (1.0 - wx) + cell[1] * wx;
            double bottom =
                cell[stride] * (1.0 - wx) + cell[stride + 1] * wx;
            o[x] = top * (1.0 - wy) + bottom * wy;
        }
    }
}
"""

#: Compiler candidates tried in order when REPRO_CODEC_CC is unset.
_COMPILERS = ("cc", "gcc", "clang")

#: Flags that guarantee float identity with the numpy pipeline: no FMA
#: contraction, no fast-math value changes.
_CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

_ENV_CC = "REPRO_CODEC_CC"

_cached: "CompiledKernels | None" = None
_cached_reason: str | None = None
_probed = False

_i64p = ctypes.POINTER(ctypes.c_int64)
_u64p = ctypes.POINTER(ctypes.c_uint64)


def _find_compiler() -> str | None:
    """The compiler to use, or None when the toolchain is unavailable."""
    override = os.environ.get(_ENV_CC)
    if override is not None:
        if override.strip() == "":
            return None  # explicit "no toolchain" (CI fallback job)
        return shutil.which(override) or None
    for name in _COMPILERS:
        path = shutil.which(name)
        if path:
            return path
    return None


def _cache_dir() -> Path:
    try:
        base = Path.home() / ".cache" / "repro" / "ckernels"
        base.mkdir(parents=True, exist_ok=True)
        return base
    except OSError:
        return Path(tempfile.gettempdir()) / "repro-ckernels"


def _build(compiler: str) -> Path:
    """Compile the kernel library (cached by source+compiler+flags hash)."""
    tag = hashlib.sha256(
        "\x00".join([_C_SOURCE, compiler, " ".join(_CFLAGS)]).encode()
    ).hexdigest()[:16]
    cache = _cache_dir()
    cache.mkdir(parents=True, exist_ok=True)
    lib_path = cache / f"repro_ckernels_{tag}.so"
    if lib_path.exists():
        return lib_path
    src_path = cache / f"repro_ckernels_{tag}.c"
    src_path.write_text(_C_SOURCE)
    # Build to a unique temp name then rename: concurrent builders (tile
    # pool workers) race benignly, os.replace is atomic.
    fd, tmp_out = tempfile.mkstemp(suffix=".so", dir=str(cache))
    os.close(fd)
    try:
        subprocess.run(
            [compiler, *_CFLAGS, "-o", tmp_out, str(src_path), "-lm"],
            check=True,
            capture_output=True,
            text=True,
        )
        os.replace(tmp_out, lib_path)
    except subprocess.CalledProcessError as exc:
        raise RuntimeError(
            f"kernel compilation failed: {exc.stderr.strip()[:500]}"
        ) from exc
    finally:
        if os.path.exists(tmp_out):
            os.unlink(tmp_out)
    return lib_path


class CompiledKernels:
    """numpy-facing wrappers over the compiled kernel library."""

    def __init__(self, lib: ctypes.CDLL) -> None:
        self._lib = lib
        lib.rc_encode_segment.restype = ctypes.c_int64
        lib.rc_encode_plane.restype = ctypes.c_int64
        lib.rc_decode_sig_pass.restype = ctypes.c_int
        lib.rc_decode_ref_pass.restype = ctypes.c_int
        for name in (
            "dwt97_analysis",
            "dwt97_synthesis",
            "dwt53_analysis",
            "dwt53_synthesis",
            "rc_magnitude_histogram",
            "rc_magnitude_histogram_multi",
            "rc_plane_walk_bits",
            "rc_dequantize",
            "rc_dequantize_multi",
            "noise_bilerp",
        ):
            getattr(lib, name).restype = None

    # -- range coder ---------------------------------------------------
    def encode_segment(self, bits: np.ndarray, probs: np.ndarray) -> bytes:
        """Encode one plane segment (fresh state + flush) and return it."""
        n = int(bits.size)
        cap = 4 * n + 64
        while True:
            out = np.empty(cap, dtype=np.uint8)
            written = self._lib.rc_encode_segment(
                ctypes.c_void_p(bits.ctypes.data),
                ctypes.c_void_p(probs.ctypes.data),
                ctypes.c_int64(n),
                ctypes.c_void_p(out.ctypes.data),
                ctypes.c_int64(cap),
            )
            if written >= 0:
                return out[:written].tobytes()
            cap *= 2

    def encode_plane(
        self,
        mag_ptrs: np.ndarray,
        sign_ptrs: np.ndarray,
        sig_ptrs: np.ndarray,
        heights: np.ndarray,
        widths: np.ndarray,
        bases: np.ndarray,
        plane: int,
        count0: np.ndarray,
        count1: np.ndarray,
        total_size: int,
    ) -> bytes:
        """Fused encode of one whole plane across all bands.

        The pointer/shape arrays describe each band's contiguous int64
        magnitudes, uint8 signs, and uint8 significance map (the caller
        builds them once per encode); the significance maps and the
        shared ``count0``/``count1`` context table update in place,
        exactly as the per-decision reference coder would.

        Unlike :meth:`encode_segment`, the call mutates coder state, so
        it cannot be retried with a bigger buffer — the cap is a hard
        bound instead: the range coder emits at most 2 bytes per decision
        (each decision shrinks the range by at least 2^-16, each output
        byte grows it by 2^8) and a plane codes at most 2 decisions per
        coefficient (significance + sign, or refinement).
        """
        cap = 4 * total_size + 64
        out = np.empty(cap, dtype=np.uint8)
        written = self._lib.rc_encode_plane(
            ctypes.c_void_p(mag_ptrs.ctypes.data),
            ctypes.c_void_p(sign_ptrs.ctypes.data),
            ctypes.c_void_p(sig_ptrs.ctypes.data),
            ctypes.c_void_p(heights.ctypes.data),
            ctypes.c_void_p(widths.ctypes.data),
            ctypes.c_void_p(bases.ctypes.data),
            ctypes.c_int64(mag_ptrs.size),
            ctypes.c_int64(plane),
            ctypes.c_void_p(count0.ctypes.data),
            ctypes.c_void_p(count1.ctypes.data),
            ctypes.c_void_p(out.ctypes.data),
            ctypes.c_int64(cap),
        )
        if written < 0:  # unreachable by the bound above
            raise RuntimeError("rc_encode_plane output exceeded hard bound")
        return out[:written].tobytes()

    def decode_sig_pass(
        self,
        data: np.ndarray,
        limit: int,
        state: np.ndarray,
        count0: np.ndarray,
        count1: np.ndarray,
        ctxs: np.ndarray,
        sign_ctx: int,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """One significance+sign pass; None signals overrun (BitstreamError)."""
        n = int(ctxs.size)
        bits = np.empty(n, dtype=np.uint8)
        signs = np.empty(n, dtype=np.uint8)
        n_signs = ctypes.c_int64(0)
        status = self._lib.rc_decode_sig_pass(
            ctypes.c_void_p(data.ctypes.data),
            ctypes.c_int64(data.size),
            ctypes.c_int64(limit),
            state[:1].ctypes.data_as(_i64p),
            state[1:2].ctypes.data_as(_u64p),
            state[2:3].ctypes.data_as(_u64p),
            state[3:4].ctypes.data_as(_u64p),
            ctypes.c_void_p(count0.ctypes.data),
            ctypes.c_void_p(count1.ctypes.data),
            ctypes.c_void_p(ctxs.ctypes.data),
            ctypes.c_int64(n),
            ctypes.c_int64(sign_ctx),
            ctypes.c_void_p(bits.ctypes.data),
            ctypes.c_void_p(signs.ctypes.data),
            ctypes.byref(n_signs),
        )
        if status:
            return None
        return bits, signs[: n_signs.value]

    def decode_ref_pass(
        self,
        data: np.ndarray,
        limit: int,
        state: np.ndarray,
        count0: np.ndarray,
        count1: np.ndarray,
        count: int,
        ctx: int,
    ) -> np.ndarray | None:
        """`count` refinement bits under one context; None on overrun."""
        bits = np.empty(count, dtype=np.uint8)
        status = self._lib.rc_decode_ref_pass(
            ctypes.c_void_p(data.ctypes.data),
            ctypes.c_int64(data.size),
            ctypes.c_int64(limit),
            state[:1].ctypes.data_as(_i64p),
            state[1:2].ctypes.data_as(_u64p),
            state[2:3].ctypes.data_as(_u64p),
            state[3:4].ctypes.data_as(_u64p),
            ctypes.c_void_p(count0.ctypes.data),
            ctypes.c_void_p(count1.ctypes.data),
            ctypes.c_int64(count),
            ctypes.c_int64(ctx),
            ctypes.c_void_p(bits.ctypes.data),
        )
        if status:
            return None
        return bits

    # -- DWT lifting ---------------------------------------------------
    def dwt97_analysis(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """9/7 analysis of a contiguous (length, m) float64 array."""
        length, m = x.shape
        even = np.empty(((length + 1) // 2, m), dtype=np.float64)
        odd = np.empty((length // 2, m), dtype=np.float64)
        self._lib.dwt97_analysis(
            ctypes.c_void_p(x.ctypes.data),
            ctypes.c_int64(length),
            ctypes.c_int64(m),
            ctypes.c_void_p(even.ctypes.data),
            ctypes.c_void_p(odd.ctypes.data),
        )
        return even, odd

    def dwt97_synthesis(
        self, approx: np.ndarray, detail: np.ndarray, length: int
    ) -> np.ndarray:
        """9/7 synthesis back to a (length, m) float64 array."""
        m = approx.shape[1]
        out = np.empty((length, m), dtype=np.float64)
        self._lib.dwt97_synthesis(
            ctypes.c_void_p(approx.ctypes.data),
            ctypes.c_void_p(detail.ctypes.data),
            ctypes.c_int64(length),
            ctypes.c_int64(m),
            ctypes.c_void_p(out.ctypes.data),
        )
        return out

    def dwt53_analysis(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """5/3 analysis of a contiguous (length, m) int64 array."""
        length, m = x.shape
        even = np.empty(((length + 1) // 2, m), dtype=np.int64)
        odd = np.empty((length // 2, m), dtype=np.int64)
        self._lib.dwt53_analysis(
            ctypes.c_void_p(x.ctypes.data),
            ctypes.c_int64(length),
            ctypes.c_int64(m),
            ctypes.c_void_p(even.ctypes.data),
            ctypes.c_void_p(odd.ctypes.data),
        )
        return even, odd

    def dwt53_synthesis(
        self, approx: np.ndarray, detail: np.ndarray, length: int
    ) -> np.ndarray:
        """5/3 synthesis back to a (length, m) int64 array."""
        m = approx.shape[1]
        out = np.empty((length, m), dtype=np.int64)
        self._lib.dwt53_synthesis(
            ctypes.c_void_p(approx.ctypes.data),
            ctypes.c_void_p(detail.ctypes.data),
            ctypes.c_int64(length),
            ctypes.c_int64(m),
            ctypes.c_void_p(out.ctypes.data),
        )
        return out

    # -- rate model ----------------------------------------------------
    def magnitude_histogram(
        self, stack: np.ndarray, step: float, n_bins_cap: int = 64
    ) -> tuple[np.ndarray, np.ndarray]:
        """Top-bit histogram of floor(|stack| / step) per row.

        ``stack`` must be a contiguous (n_rows, size) float64 array.
        Returns ``(counts, tops)`` with counts shaped (n_rows,
        n_bins_cap); the caller trims to the occupied planes.
        """
        n_rows, size = stack.shape
        counts = np.zeros((n_rows, n_bins_cap), dtype=np.int64)
        tops = np.empty(n_rows, dtype=np.int64)
        self._lib.rc_magnitude_histogram(
            ctypes.c_void_p(stack.ctypes.data),
            ctypes.c_int64(n_rows),
            ctypes.c_int64(size),
            ctypes.c_double(step),
            ctypes.c_void_p(counts.ctypes.data),
            ctypes.c_int64(n_bins_cap),
            ctypes.c_void_p(tops.ctypes.data),
        )
        return counts, tops

    def magnitude_histogram_multi(
        self,
        stacks: "list[np.ndarray]",
        steps: "list[float]",
        n_bins_cap: int = 64,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`magnitude_histogram` over many subband stacks.

        Each stack must be a contiguous (n_rows, size) float64 array; the
        block results land consecutively in one ``(total_rows,
        n_bins_cap)`` counts matrix and ``(total_rows,)`` tops vector, in
        block order.
        """
        n_blocks = len(stacks)
        ptrs = np.fromiter(
            (s.ctypes.data for s in stacks), dtype=np.int64, count=n_blocks
        )
        rows = np.fromiter(
            (s.shape[0] for s in stacks), dtype=np.int64, count=n_blocks
        )
        sizes = np.fromiter(
            (s.shape[1] for s in stacks), dtype=np.int64, count=n_blocks
        )
        steps_arr = np.fromiter(steps, dtype=np.float64, count=n_blocks)
        total = int(rows.sum())
        counts = np.zeros((total, n_bins_cap), dtype=np.int64)
        tops = np.empty(total, dtype=np.int64)
        self._lib.rc_magnitude_histogram_multi(
            ctypes.c_void_p(ptrs.ctypes.data),
            ctypes.c_void_p(rows.ctypes.data),
            ctypes.c_void_p(sizes.ctypes.data),
            ctypes.c_void_p(steps_arr.ctypes.data),
            ctypes.c_int64(n_blocks),
            ctypes.c_void_p(counts.ctypes.data),
            ctypes.c_int64(n_bins_cap),
            ctypes.c_void_p(tops.ctypes.data),
        )
        return counts, tops

    def plane_walk_bits(
        self,
        counts: np.ndarray,
        tops: np.ndarray,
        sizes: np.ndarray,
        entropy_mat: np.ndarray,
    ) -> np.ndarray:
        """Descending plane walk (same accumulation order as numpy)."""
        n_rows, n_planes = counts.shape
        bits = np.empty(n_rows, dtype=np.float64)
        self._lib.rc_plane_walk_bits(
            ctypes.c_void_p(counts.ctypes.data),
            ctypes.c_void_p(tops.ctypes.data),
            ctypes.c_void_p(sizes.ctypes.data),
            ctypes.c_void_p(entropy_mat.ctypes.data),
            ctypes.c_int64(n_rows),
            ctypes.c_int64(n_planes),
            ctypes.c_void_p(bits.ctypes.data),
        )
        return bits

    def dequantize(
        self, q: np.ndarray, step: float, offset: float
    ) -> np.ndarray:
        """Fused dead-zone dequantize of a contiguous int32 array."""
        out = np.empty(q.shape, dtype=np.float64)
        self._lib.rc_dequantize(
            ctypes.c_void_p(q.ctypes.data),
            ctypes.c_int64(q.size),
            ctypes.c_double(step),
            ctypes.c_double(offset),
            ctypes.c_void_p(out.ctypes.data),
        )
        return out

    def dequantize_multi(
        self,
        blocks: "list[np.ndarray]",
        steps: "list[float]",
        offset: float,
    ) -> "list[np.ndarray]":
        """Batched :meth:`dequantize` over many contiguous int32 arrays.

        Returns one float64 array per block (views into a single shared
        buffer), each shaped like its input block.
        """
        n_blocks = len(blocks)
        ptrs = np.fromiter(
            (b.ctypes.data for b in blocks), dtype=np.int64, count=n_blocks
        )
        ns = np.fromiter(
            (b.size for b in blocks), dtype=np.int64, count=n_blocks
        )
        steps_arr = np.fromiter(steps, dtype=np.float64, count=n_blocks)
        total = int(ns.sum())
        out = np.empty(total, dtype=np.float64)
        self._lib.rc_dequantize_multi(
            ctypes.c_void_p(ptrs.ctypes.data),
            ctypes.c_void_p(ns.ctypes.data),
            ctypes.c_void_p(steps_arr.ctypes.data),
            ctypes.c_double(offset),
            ctypes.c_int64(n_blocks),
            ctypes.c_void_p(out.ctypes.data),
        )
        views = []
        off = 0
        for block in blocks:
            views.append(out[off : off + block.size].reshape(block.shape))
            off += block.size
        return views

    # -- procedural noise ----------------------------------------------
    def noise_bilerp(
        self,
        lattice: np.ndarray,
        stride: int,
        flat00: np.ndarray,
        ty: np.ndarray,
        tx: np.ndarray,
    ) -> np.ndarray:
        """Bilinear lattice interpolation for one value-noise octave.

        ``lattice`` is the contiguous float64 lattice (raveled indexing),
        ``flat00`` the contiguous (height, width) int64 flat index of each
        pixel's top-left corner, ``ty``/``tx`` the contiguous per-row /
        per-column Hermite weights.  Bit-identical to the numpy broadcast
        blend in :func:`repro.imagery.noise.value_noise`.
        """
        height, width = flat00.shape
        out = np.empty((height, width), dtype=np.float64)
        self._lib.noise_bilerp(
            ctypes.c_void_p(lattice.ctypes.data),
            ctypes.c_int64(stride),
            ctypes.c_void_p(flat00.ctypes.data),
            ctypes.c_void_p(ty.ctypes.data),
            ctypes.c_void_p(tx.ctypes.data),
            ctypes.c_int64(height),
            ctypes.c_int64(width),
            ctypes.c_void_p(out.ctypes.data),
        )
        return out


def load() -> CompiledKernels | None:
    """Build (first use) and load the kernels; None when unavailable."""
    global _cached, _cached_reason, _probed
    if _probed:
        return _cached
    _probed = True
    compiler = _find_compiler()
    if compiler is None:
        override = os.environ.get(_ENV_CC)
        if override is not None and override.strip() == "":
            _cached_reason = f"disabled via {_ENV_CC}="
        elif override is not None:
            _cached_reason = f"{_ENV_CC}={override!r} not found on PATH"
        else:
            _cached_reason = (
                "no C compiler found (tried " + ", ".join(_COMPILERS) + ")"
            )
        return None
    try:
        lib_path = _build(compiler)
        _cached = CompiledKernels(ctypes.CDLL(str(lib_path)))
    except (OSError, RuntimeError, AttributeError) as exc:
        _cached = None
        _cached_reason = str(exc)
    return _cached


def unavailable_reason() -> str | None:
    """Why :func:`load` returned None (None when kernels are available)."""
    load()
    return _cached_reason


def reset_for_tests() -> None:
    """Forget the cached probe so tests can flip ``REPRO_CODEC_CC``."""
    global _cached, _cached_reason, _probed
    _cached = None
    _cached_reason = None
    _probed = False
    from repro.codec import registry

    registry.reset_kernels_cache()
