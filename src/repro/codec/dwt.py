"""Multilevel 2-D lifting discrete wavelet transform.

Implements the two wavelets JPEG 2000 standardizes, both via lifting with
whole-point symmetric boundary extension and support for arbitrary (odd)
lengths:

* **CDF 9/7** — the irreversible float transform used for lossy coding;
* **LeGall 5/3** — the reversible integer transform used for lossless
  coding (bit-exact perfect reconstruction on integer inputs).

Coefficients are organized pywt-style: ``[LL_n, (HL_n, LH_n, HH_n), ...,
(HL_1, LH_1, HH_1)]`` coarsest-first.  Perfect reconstruction for every
shape/level combination is property-tested.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import CodecError

# CDF 9/7 lifting constants (ITU-T T.800 Annex F).
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
_KAPPA = 1.230174104914001


class Wavelet(enum.Enum):
    """Supported wavelet filters."""

    CDF97 = "cdf97"
    LEGALL53 = "legall53"


@dataclass
class WaveletCoeffs:
    """Multilevel DWT coefficients.

    Attributes:
        approx: The coarsest LL subband.
        details: Detail triples ``(HL, LH, HH)`` coarsest-first.
        shape: Original image shape (needed to invert odd sizes).
        wavelet: Which filter produced the decomposition.
    """

    approx: np.ndarray
    details: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    shape: tuple[int, int]
    wavelet: Wavelet

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)

    def subbands(self) -> list[tuple[str, int, np.ndarray]]:
        """Flatten to ``(name, level, array)`` triples, coarsest-first.

        Level numbering follows JPEG 2000: level ``levels`` is coarsest.
        """
        out: list[tuple[str, int, np.ndarray]] = [
            ("LL", self.levels, self.approx)
        ]
        for idx, (hl, lh, hh) in enumerate(self.details):
            level = self.levels - idx
            out.append(("HL", level, hl))
            out.append(("LH", level, lh))
            out.append(("HH", level, hh))
        return out

    def total_coefficients(self) -> int:
        """Total coefficient count (equals the pixel count of the image)."""
        total = self.approx.size
        for hl, lh, hh in self.details:
            total += hl.size + lh.size + hh.size
        return total


def _sym_index(idx: int, length: int) -> int:
    """Whole-point symmetric extension index for out-of-range ``idx``."""
    if length == 1:
        return 0
    period = 2 * (length - 1)
    idx = idx % period
    if idx < 0:
        idx += period
    if idx >= length:
        idx = period - idx
    return idx


def _analysis_53(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """1-D LeGall 5/3 analysis along the first axis (integer, reversible)."""
    length = signal.shape[0]
    if length == 1:
        return signal.copy(), signal[:0].copy()
    even = signal[0::2].astype(np.int64)
    odd = signal[1::2].astype(np.int64)
    n_odd = odd.shape[0]
    # Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
    left = even[:n_odd]
    right_idx = [_sym_index(2 * i + 2, length) for i in range(n_odd)]
    right = signal[right_idx].astype(np.int64)
    detail = odd - ((left + right) >> 1)
    # Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
    n_even = even.shape[0]
    d_left = np.empty_like(even)
    d_right = np.empty_like(even)
    for i in range(n_even):
        li = i - 1
        ri = i
        if li < 0:
            li = 0 if n_odd > 0 else -1
        if ri >= n_odd:
            ri = n_odd - 1
        d_left[i] = detail[li] if n_odd > 0 else 0
        d_right[i] = detail[ri] if n_odd > 0 else 0
    approx = even + ((d_left + d_right + 2) >> 2)
    return approx, detail


def _synthesis_53(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """Inverse of :func:`_analysis_53`; bit-exact on integer inputs."""
    if length == 1:
        return approx.copy()
    n_even = approx.shape[0]
    n_odd = detail.shape[0]
    d_left = np.empty_like(approx)
    d_right = np.empty_like(approx)
    for i in range(n_even):
        li = i - 1
        ri = i
        if li < 0:
            li = 0 if n_odd > 0 else -1
        if ri >= n_odd:
            ri = n_odd - 1
        d_left[i] = detail[li] if n_odd > 0 else 0
        d_right[i] = detail[ri] if n_odd > 0 else 0
    even = approx - ((d_left + d_right + 2) >> 2)
    signal = np.empty((length,) + approx.shape[1:], dtype=np.int64)
    signal[0::2] = even
    if n_odd:
        left = even[:n_odd]
        right = np.empty_like(detail)
        for i in range(n_odd):
            src = _sym_index(2 * i + 2, length)
            # After reconstruction, even samples live at even indices; the
            # mirrored index is always even for whole-point extension of an
            # even-start signal, so it maps into `even` directly.
            right[i] = even[src // 2] if src % 2 == 0 else 0
        signal[1::2] = detail + ((left + right) >> 1)
    return signal


def _analysis_97(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """1-D CDF 9/7 lifting analysis along the first axis (float)."""
    length = signal.shape[0]
    if length == 1:
        return signal.astype(np.float64) * _KAPPA, signal[:0].astype(np.float64)
    x = signal.astype(np.float64)
    even = x[0::2].copy()
    odd = x[1::2].copy()
    n_odd = odd.shape[0]
    n_even = even.shape[0]

    def mirrored_even(position: int) -> np.ndarray:
        src = _sym_index(position, length)
        if src % 2 == 0:
            return even[src // 2]
        return odd[src // 2]

    # Step 1 (predict with alpha): d += alpha * (left_even + right_even)
    right1 = np.empty_like(odd)
    for i in range(n_odd):
        right1[i] = mirrored_even(2 * i + 2)
    odd += _ALPHA * (even[:n_odd] + right1)
    # Step 2 (update with beta): s += beta * (left_detail + right_detail)
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even += _BETA * (d_pad_left + d_pad_right)
    # Step 3 (predict with gamma)
    if n_odd:
        s_right = np.concatenate([even[1:], even[-1:]])[:n_odd]
        odd += _GAMMA * (even[:n_odd] + s_right)
    # Step 4 (update with delta)
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even += _DELTA * (d_pad_left + d_pad_right)
    # Scaling
    even *= _KAPPA
    odd /= _KAPPA
    return even, odd


def _synthesis_97(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """Inverse of :func:`_analysis_97` (floating point)."""
    if length == 1:
        return approx / _KAPPA
    even = approx.astype(np.float64) / _KAPPA
    odd = detail.astype(np.float64) * _KAPPA
    n_odd = odd.shape[0]
    n_even = even.shape[0]
    # Undo step 4
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even -= _DELTA * (d_pad_left + d_pad_right)
    # Undo step 3
    if n_odd:
        s_right = np.concatenate([even[1:], even[-1:]])[:n_odd]
        odd -= _GAMMA * (even[:n_odd] + s_right)
    # Undo step 2
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even -= _BETA * (d_pad_left + d_pad_right)
    # Undo step 1
    if n_odd:
        signal = np.empty((length,) + even.shape[1:], dtype=np.float64)
        signal[0::2] = even

        def mirrored_even(position: int) -> np.ndarray:
            src = _sym_index(position, length)
            if src % 2 == 0:
                return even[src // 2]
            return odd[src // 2] - 0.0  # odd branch cannot occur (see below)

        right1 = np.empty_like(odd)
        for i in range(n_odd):
            right1[i] = mirrored_even(2 * i + 2)
        odd -= _ALPHA * (even[:n_odd] + right1)
        signal[1::2] = odd
        return signal
    signal = np.empty((length,) + even.shape[1:], dtype=np.float64)
    signal[0::2] = even
    return signal


def _transform_axis(
    data: np.ndarray, axis: int, wavelet: Wavelet
) -> tuple[np.ndarray, np.ndarray]:
    """Apply 1-D analysis along ``axis`` of a 2-D array."""
    moved = np.moveaxis(data, axis, 0)
    if wavelet is Wavelet.LEGALL53:
        approx, detail = _analysis_53(moved)
    else:
        approx, detail = _analysis_97(moved)
    return np.moveaxis(approx, 0, axis), np.moveaxis(detail, 0, axis)


def _inverse_axis(
    approx: np.ndarray,
    detail: np.ndarray,
    axis: int,
    length: int,
    wavelet: Wavelet,
) -> np.ndarray:
    """Apply 1-D synthesis along ``axis``."""
    approx_m = np.moveaxis(approx, axis, 0)
    detail_m = np.moveaxis(detail, axis, 0)
    if wavelet is Wavelet.LEGALL53:
        merged = _synthesis_53(approx_m, detail_m, length)
    else:
        merged = _synthesis_97(approx_m, detail_m, length)
    return np.moveaxis(merged, 0, axis)


def forward_dwt2d(
    image: np.ndarray, levels: int, wavelet: Wavelet = Wavelet.CDF97
) -> WaveletCoeffs:
    """Multilevel 2-D forward DWT.

    Args:
        image: 2-D array.  For :data:`Wavelet.LEGALL53` it must hold integer
            values (any dtype castable to int64 without loss).
        levels: Number of decomposition levels (>= 1).
        wavelet: Filter to use.

    Returns:
        The multilevel decomposition.

    Raises:
        CodecError: For invalid level counts or non-2-D input.
    """
    if image.ndim != 2:
        raise CodecError(f"expected 2-D image, got shape {image.shape}")
    if levels < 1:
        raise CodecError(f"levels must be >= 1, got {levels}")
    max_levels = int(np.floor(np.log2(max(1, min(image.shape)))))
    if levels > max(1, max_levels):
        raise CodecError(
            f"levels={levels} too deep for image of shape {image.shape}"
        )
    current = image
    details: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for _ in range(levels):
        low_rows, high_rows = _transform_axis(current, 0, wavelet)
        ll, hl = _transform_axis(low_rows, 1, wavelet)
        lh, hh = _transform_axis(high_rows, 1, wavelet)
        details.append((hl, lh, hh))
        current = ll
    details.reverse()
    return WaveletCoeffs(
        approx=current, details=details, shape=image.shape, wavelet=wavelet
    )


def inverse_dwt2d(coeffs: WaveletCoeffs) -> np.ndarray:
    """Invert :func:`forward_dwt2d`.

    Returns:
        The reconstructed image: float64 for CDF 9/7, int64 for LeGall 5/3.
    """
    current = coeffs.approx
    # Reconstruct level shapes top-down: we must know each level's row/col
    # counts, derived by repeatedly halving the original shape.
    shapes = [coeffs.shape]
    for _ in range(coeffs.levels - 1):
        height, width = shapes[-1]
        shapes.append(((height + 1) // 2, (width + 1) // 2))
    for (hl, lh, hh), target in zip(coeffs.details, reversed(shapes)):
        height, width = target
        low_rows = _inverse_axis(current, hl, 1, width, coeffs.wavelet)
        high_rows = _inverse_axis(lh, hh, 1, width, coeffs.wavelet)
        current = _inverse_axis(low_rows, high_rows, 0, height, coeffs.wavelet)
    return current
