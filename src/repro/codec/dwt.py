"""Multilevel 2-D lifting discrete wavelet transform.

Implements the two wavelets JPEG 2000 standardizes, both via lifting with
whole-point symmetric boundary extension and support for arbitrary (odd)
lengths:

* **CDF 9/7** — the irreversible float transform used for lossy coding;
* **LeGall 5/3** — the reversible integer transform used for lossless
  coding (bit-exact perfect reconstruction on integer inputs).

Coefficients are organized pywt-style: ``[LL_n, (HL_n, LH_n, HH_n), ...,
(HL_1, LH_1, HH_1)]`` coarsest-first.  Perfect reconstruction for every
shape/level combination is property-tested.

Two implementations of the 1-D lifting steps coexist:

* the **vectorized** lifting (default) does whole-array predict/update
  steps with precomputed symmetric-extension index vectors — no Python
  loop touches a sample;
* the **reference** lifting retains the original per-sample loops and is
  kept as the differential-test oracle (``tests/codec/test_dwt.py`` pins
  the two bit-exact against each other for 5/3 and float-identical for
  9/7).

:func:`simulation_fastpath <repro.perf.simulation_fastpath>` selects
between them at call time.  :func:`dwt_many`/:func:`idwt_many` batch the
transform over a stack of same-shape images (all bands/tiles of a capture
in one call): the lifting kernels operate along one axis with arbitrary
trailing dimensions, so the batched transform is float-identical to
transforming each image alone.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import perf
from repro.errors import CodecError

# CDF 9/7 lifting constants (ITU-T T.800 Annex F).
_ALPHA = -1.586134342059924
_BETA = -0.052980118572961
_GAMMA = 0.882911075530934
_DELTA = 0.443506852043971
_KAPPA = 1.230174104914001


class Wavelet(enum.Enum):
    """Supported wavelet filters."""

    CDF97 = "cdf97"
    LEGALL53 = "legall53"


@dataclass
class WaveletCoeffs:
    """Multilevel DWT coefficients.

    Attributes:
        approx: The coarsest LL subband.
        details: Detail triples ``(HL, LH, HH)`` coarsest-first.
        shape: Original image shape (needed to invert odd sizes).
        wavelet: Which filter produced the decomposition.
    """

    approx: np.ndarray
    details: list[tuple[np.ndarray, np.ndarray, np.ndarray]]
    shape: tuple[int, int]
    wavelet: Wavelet

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)

    def subbands(self) -> list[tuple[str, int, np.ndarray]]:
        """Flatten to ``(name, level, array)`` triples, coarsest-first.

        Level numbering follows JPEG 2000: level ``levels`` is coarsest.
        """
        out: list[tuple[str, int, np.ndarray]] = [
            ("LL", self.levels, self.approx)
        ]
        for idx, (hl, lh, hh) in enumerate(self.details):
            level = self.levels - idx
            out.append(("HL", level, hl))
            out.append(("LH", level, lh))
            out.append(("HH", level, hh))
        return out

    def total_coefficients(self) -> int:
        """Total coefficient count (equals the pixel count of the image)."""
        total = self.approx.size
        for hl, lh, hh in self.details:
            total += hl.size + lh.size + hh.size
        return total


def _sym_index(idx: int, length: int) -> int:
    """Whole-point symmetric extension index for out-of-range ``idx``."""
    if length == 1:
        return 0
    period = 2 * (length - 1)
    idx = idx % period
    if idx < 0:
        idx += period
    if idx >= length:
        idx = period - idx
    return idx


@lru_cache(maxsize=512)
def _predict_right_indices(length: int) -> np.ndarray:
    """Symmetric-extension source index of ``x[2i+2]`` for each odd sample.

    For whole-point extension of an even-start signal the mirrored index is
    always even, so predict steps can gather straight from the original
    signal (5/3) or the even half (9/7, using ``index // 2``).
    """
    n_odd = length // 2
    out = np.empty(n_odd, dtype=np.intp)
    for i in range(n_odd):
        out[i] = _sym_index(2 * i + 2, length)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=512)
def _succ_even_indices(length: int) -> np.ndarray:
    """Index of each odd sample's right even neighbour, edge-clamped.

    ``min(i + 1, n_even - 1)`` for each odd index ``i`` — the elements the
    reference's ``concatenate([even[1:], even[-1:]])[:n_odd]`` padding
    selects.
    """
    n_even = (length + 1) // 2
    n_odd = length // 2
    out = np.minimum(np.arange(1, n_odd + 1, dtype=np.intp), n_even - 1)
    out.setflags(write=False)
    return out


@lru_cache(maxsize=512)
def _update_neighbor_indices(length: int) -> tuple[np.ndarray, np.ndarray]:
    """Detail indices ``(d[i-1], d[i])`` feeding each even sample's update.

    Boundary details clamp to the valid range, exactly as the reference
    per-sample loop does.
    """
    n_even = (length + 1) // 2
    n_odd = length // 2
    idx = np.arange(n_even, dtype=np.intp)
    left = np.clip(idx - 1, 0, max(0, n_odd - 1))
    right = np.clip(idx, 0, max(0, n_odd - 1))
    left.setflags(write=False)
    right.setflags(write=False)
    return left, right


# ----------------------------------------------------------------------
# LeGall 5/3 — reference (per-sample loops, kept as the test oracle)
# ----------------------------------------------------------------------
def _analysis_53_reference(
    signal: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """1-D LeGall 5/3 analysis along the first axis (integer, reversible)."""
    length = signal.shape[0]
    if length == 1:
        return signal.copy(), signal[:0].copy()
    even = signal[0::2].astype(np.int64)
    odd = signal[1::2].astype(np.int64)
    n_odd = odd.shape[0]
    # Predict: d[i] = x[2i+1] - floor((x[2i] + x[2i+2]) / 2)
    left = even[:n_odd]
    right_idx = [_sym_index(2 * i + 2, length) for i in range(n_odd)]
    right = signal[right_idx].astype(np.int64)
    detail = odd - ((left + right) >> 1)
    # Update: s[i] = x[2i] + floor((d[i-1] + d[i] + 2) / 4)
    n_even = even.shape[0]
    d_left = np.empty_like(even)
    d_right = np.empty_like(even)
    for i in range(n_even):
        li = i - 1
        ri = i
        if li < 0:
            li = 0 if n_odd > 0 else -1
        if ri >= n_odd:
            ri = n_odd - 1
        d_left[i] = detail[li] if n_odd > 0 else 0
        d_right[i] = detail[ri] if n_odd > 0 else 0
    approx = even + ((d_left + d_right + 2) >> 2)
    return approx, detail


def _synthesis_53_reference(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """Inverse of :func:`_analysis_53_reference`; bit-exact on integers."""
    if length == 1:
        return approx.copy()
    n_even = approx.shape[0]
    n_odd = detail.shape[0]
    d_left = np.empty_like(approx)
    d_right = np.empty_like(approx)
    for i in range(n_even):
        li = i - 1
        ri = i
        if li < 0:
            li = 0 if n_odd > 0 else -1
        if ri >= n_odd:
            ri = n_odd - 1
        d_left[i] = detail[li] if n_odd > 0 else 0
        d_right[i] = detail[ri] if n_odd > 0 else 0
    even = approx - ((d_left + d_right + 2) >> 2)
    signal = np.empty((length,) + approx.shape[1:], dtype=np.int64)
    signal[0::2] = even
    if n_odd:
        left = even[:n_odd]
        right = np.empty_like(detail)
        for i in range(n_odd):
            src = _sym_index(2 * i + 2, length)
            # After reconstruction, even samples live at even indices; the
            # mirrored index is always even for whole-point extension of an
            # even-start signal, so it maps into `even` directly.
            right[i] = even[src // 2] if src % 2 == 0 else 0
        signal[1::2] = detail + ((left + right) >> 1)
    return signal


# ----------------------------------------------------------------------
# LeGall 5/3 — vectorized (whole-array lifting, bit-exact vs reference)
# ----------------------------------------------------------------------
def _analysis_53_vectorized(
    signal: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Whole-array 5/3 analysis; bit-exact twin of the reference loops."""
    length = signal.shape[0]
    if length == 1:
        return signal.copy(), signal[:0].copy()
    even = signal[0::2].astype(np.int64)
    odd = signal[1::2].astype(np.int64)
    n_odd = odd.shape[0]
    right = signal[_predict_right_indices(length)].astype(np.int64)
    detail = odd - ((even[:n_odd] + right) >> 1)
    d_left_idx, d_right_idx = _update_neighbor_indices(length)
    approx = even + ((detail[d_left_idx] + detail[d_right_idx] + 2) >> 2)
    return approx, detail


def _synthesis_53_vectorized(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """Whole-array inverse of the 5/3 lifting; bit-exact on integers."""
    if length == 1:
        return approx.copy()
    n_odd = detail.shape[0]
    d_left_idx, d_right_idx = _update_neighbor_indices(length)
    even = approx - ((detail[d_left_idx] + detail[d_right_idx] + 2) >> 2)
    signal = np.empty((length,) + approx.shape[1:], dtype=np.int64)
    signal[0::2] = even
    if n_odd:
        # The mirrored predict source is always an even sample (whole-point
        # extension of an even-start signal), so gather from `even`.
        right = even[_predict_right_indices(length) // 2]
        signal[1::2] = detail + ((even[:n_odd] + right) >> 1)
    return signal


# ----------------------------------------------------------------------
# CDF 9/7 — reference (per-sample boundary loops, kept as the test oracle)
# ----------------------------------------------------------------------
def _analysis_97_reference(
    signal: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """1-D CDF 9/7 lifting analysis along the first axis (float)."""
    length = signal.shape[0]
    if length == 1:
        return signal.astype(np.float64) * _KAPPA, signal[:0].astype(np.float64)
    x = signal.astype(np.float64)
    even = x[0::2].copy()
    odd = x[1::2].copy()
    n_odd = odd.shape[0]
    n_even = even.shape[0]

    def mirrored_even(position: int) -> np.ndarray:
        src = _sym_index(position, length)
        if src % 2 == 0:
            return even[src // 2]
        return odd[src // 2]

    # Step 1 (predict with alpha): d += alpha * (left_even + right_even)
    right1 = np.empty_like(odd)
    for i in range(n_odd):
        right1[i] = mirrored_even(2 * i + 2)
    odd += _ALPHA * (even[:n_odd] + right1)
    # Step 2 (update with beta): s += beta * (left_detail + right_detail)
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even += _BETA * (d_pad_left + d_pad_right)
    # Step 3 (predict with gamma)
    if n_odd:
        s_right = np.concatenate([even[1:], even[-1:]])[:n_odd]
        odd += _GAMMA * (even[:n_odd] + s_right)
    # Step 4 (update with delta)
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even += _DELTA * (d_pad_left + d_pad_right)
    # Scaling
    even *= _KAPPA
    odd /= _KAPPA
    return even, odd


def _synthesis_97_reference(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """Inverse of :func:`_analysis_97_reference` (floating point)."""
    if length == 1:
        return approx / _KAPPA
    even = approx.astype(np.float64) / _KAPPA
    odd = detail.astype(np.float64) * _KAPPA
    n_odd = odd.shape[0]
    n_even = even.shape[0]
    # Undo step 4
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even -= _DELTA * (d_pad_left + d_pad_right)
    # Undo step 3
    if n_odd:
        s_right = np.concatenate([even[1:], even[-1:]])[:n_odd]
        odd -= _GAMMA * (even[:n_odd] + s_right)
    # Undo step 2
    if n_odd:
        d_pad_left = np.concatenate([odd[:1], odd])[:n_even]
        d_pad_right = odd[:n_even] if n_even <= n_odd else np.concatenate(
            [odd, odd[-1:]]
        )[:n_even]
        even -= _BETA * (d_pad_left + d_pad_right)
    # Undo step 1
    if n_odd:
        signal = np.empty((length,) + even.shape[1:], dtype=np.float64)
        signal[0::2] = even

        def mirrored_even(position: int) -> np.ndarray:
            src = _sym_index(position, length)
            if src % 2 == 0:
                return even[src // 2]
            return odd[src // 2] - 0.0  # odd branch cannot occur (see below)

        right1 = np.empty_like(odd)
        for i in range(n_odd):
            right1[i] = mirrored_even(2 * i + 2)
        odd -= _ALPHA * (even[:n_odd] + right1)
        signal[1::2] = odd
        return signal
    signal = np.empty((length,) + even.shape[1:], dtype=np.float64)
    signal[0::2] = even
    return signal


# ----------------------------------------------------------------------
# CDF 9/7 — vectorized (whole-array lifting, float-identical vs reference)
# ----------------------------------------------------------------------
def _analysis_97_vectorized(
    signal: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Whole-array 9/7 analysis; float-identical twin of the reference.

    The reference's concatenate-based boundary padding selects exactly the
    edge-clamped neighbour elements, so every lifting step is a gather
    with precomputed clipped index vectors plus the same elementwise
    arithmetic.
    """
    length = signal.shape[0]
    if length == 1:
        return signal.astype(np.float64) * _KAPPA, signal[:0].astype(np.float64)
    x = signal.astype(np.float64)
    even = x[0::2].copy()
    odd = x[1::2].copy()
    n_odd = odd.shape[0]
    d_left_idx, d_right_idx = _update_neighbor_indices(length)
    # Step 1 (predict with alpha); the mirrored source is always even.
    right1 = even[_predict_right_indices(length) // 2]
    odd += _ALPHA * (even[:n_odd] + right1)
    # Step 2 (update with beta)
    even += _BETA * (odd[d_left_idx] + odd[d_right_idx])
    # Step 3 (predict with gamma)
    odd += _GAMMA * (even[:n_odd] + even[_succ_even_indices(length)])
    # Step 4 (update with delta)
    even += _DELTA * (odd[d_left_idx] + odd[d_right_idx])
    # Scaling
    even *= _KAPPA
    odd /= _KAPPA
    return even, odd


def _synthesis_97_vectorized(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """Whole-array inverse of the 9/7 lifting; float-identical twin."""
    if length == 1:
        return approx / _KAPPA
    even = approx.astype(np.float64) / _KAPPA
    odd = detail.astype(np.float64) * _KAPPA
    n_odd = odd.shape[0]
    signal = np.empty((length,) + even.shape[1:], dtype=np.float64)
    if not n_odd:
        signal[0::2] = even
        return signal
    d_left_idx, d_right_idx = _update_neighbor_indices(length)
    # Undo step 4
    even -= _DELTA * (odd[d_left_idx] + odd[d_right_idx])
    # Undo step 3
    odd -= _GAMMA * (even[:n_odd] + even[_succ_even_indices(length)])
    # Undo step 2
    even -= _BETA * (odd[d_left_idx] + odd[d_right_idx])
    # Undo step 1 (mirrored source always even, as in analysis)
    signal[0::2] = even
    right1 = even[_predict_right_indices(length) // 2]
    odd -= _ALPHA * (even[:n_odd] + right1)
    signal[1::2] = odd
    return signal


def _native_analysis(
    signal: np.ndarray, dtype: type, kernel_name: str
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Run one analysis pass on the compiled kernels, or None to fall back.

    The kernels work on a contiguous ``(length, m)`` layout; any trailing
    axes are flattened in and restored on the way out.  They are exact
    ports of the vectorized lifting (compiled without FP contraction), so
    results are bit-identical — the differential tests enforce it.
    """
    from repro.codec import registry

    kernels = registry.kernels()
    if (
        kernels is None
        or signal.ndim < 1
        or signal.shape[0] < 2
        or signal.dtype != dtype
    ):
        return None
    length = signal.shape[0]
    rest = signal.shape[1:]
    flat = np.ascontiguousarray(signal.reshape(length, -1))
    even, odd = getattr(kernels, kernel_name)(flat)
    return (
        even.reshape(((length + 1) // 2,) + rest),
        odd.reshape((length // 2,) + rest),
    )


def _native_synthesis(
    approx: np.ndarray,
    detail: np.ndarray,
    length: int,
    dtype: type,
    kernel_name: str,
) -> "np.ndarray | None":
    """Synthesis counterpart of :func:`_native_analysis`."""
    from repro.codec import registry

    kernels = registry.kernels()
    if (
        kernels is None
        or length < 2
        or approx.ndim < 1
        or approx.dtype != dtype
        or detail.dtype != dtype
    ):
        return None
    rest = approx.shape[1:]
    approx_flat = np.ascontiguousarray(approx.reshape(approx.shape[0], -1))
    detail_flat = np.ascontiguousarray(detail.reshape(detail.shape[0], -1))
    merged = getattr(kernels, kernel_name)(approx_flat, detail_flat, length)
    return merged.reshape((length,) + rest)


def _analysis_53(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """5/3 analysis, dispatched on the simulation fast-path switch."""
    if perf.simulation_fastpath():
        native = _native_analysis(signal, np.int64, "dwt53_analysis")
        if native is not None:
            return native
        return _analysis_53_vectorized(signal)
    return _analysis_53_reference(signal)


def _synthesis_53(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """5/3 synthesis, dispatched on the simulation fast-path switch."""
    if perf.simulation_fastpath():
        native = _native_synthesis(
            approx, detail, length, np.int64, "dwt53_synthesis"
        )
        if native is not None:
            return native
        return _synthesis_53_vectorized(approx, detail, length)
    return _synthesis_53_reference(approx, detail, length)


def _analysis_97(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """9/7 analysis, dispatched on the simulation fast-path switch."""
    if perf.simulation_fastpath():
        native = _native_analysis(signal, np.float64, "dwt97_analysis")
        if native is not None:
            return native
        return _analysis_97_vectorized(signal)
    return _analysis_97_reference(signal)


def _synthesis_97(
    approx: np.ndarray, detail: np.ndarray, length: int
) -> np.ndarray:
    """9/7 synthesis, dispatched on the simulation fast-path switch."""
    if perf.simulation_fastpath():
        native = _native_synthesis(
            approx, detail, length, np.float64, "dwt97_synthesis"
        )
        if native is not None:
            return native
        return _synthesis_97_vectorized(approx, detail, length)
    return _synthesis_97_reference(approx, detail, length)


def _transform_axis(
    data: np.ndarray, axis: int, wavelet: Wavelet
) -> tuple[np.ndarray, np.ndarray]:
    """Apply 1-D analysis along ``axis`` (any number of other axes)."""
    moved = np.moveaxis(data, axis, 0)
    if wavelet is Wavelet.LEGALL53:
        approx, detail = _analysis_53(moved)
    else:
        approx, detail = _analysis_97(moved)
    return np.moveaxis(approx, 0, axis), np.moveaxis(detail, 0, axis)


def _inverse_axis(
    approx: np.ndarray,
    detail: np.ndarray,
    axis: int,
    length: int,
    wavelet: Wavelet,
) -> np.ndarray:
    """Apply 1-D synthesis along ``axis``."""
    approx_m = np.moveaxis(approx, axis, 0)
    detail_m = np.moveaxis(detail, axis, 0)
    if wavelet is Wavelet.LEGALL53:
        merged = _synthesis_53(approx_m, detail_m, length)
    else:
        merged = _synthesis_97(approx_m, detail_m, length)
    return np.moveaxis(merged, 0, axis)


def _check_transform_args(
    shape: tuple[int, int], ndim: int, levels: int
) -> None:
    if ndim != 2:
        raise CodecError(f"expected 2-D image, got {ndim}-D input")
    if levels < 1:
        raise CodecError(f"levels must be >= 1, got {levels}")
    max_levels = int(np.floor(np.log2(max(1, min(shape)))))
    if levels > max(1, max_levels):
        raise CodecError(
            f"levels={levels} too deep for image of shape {shape}"
        )


def forward_dwt2d(
    image: np.ndarray, levels: int, wavelet: Wavelet = Wavelet.CDF97
) -> WaveletCoeffs:
    """Multilevel 2-D forward DWT.

    Args:
        image: 2-D array.  For :data:`Wavelet.LEGALL53` it must hold integer
            values (any dtype castable to int64 without loss).
        levels: Number of decomposition levels (>= 1).
        wavelet: Filter to use.

    Returns:
        The multilevel decomposition.

    Raises:
        CodecError: For invalid level counts or non-2-D input.
    """
    _check_transform_args(image.shape, image.ndim, levels)
    with perf.profiled("dwt"):
        current = image
        details: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for _ in range(levels):
            low_rows, high_rows = _transform_axis(current, 0, wavelet)
            ll, hl = _transform_axis(low_rows, 1, wavelet)
            lh, hh = _transform_axis(high_rows, 1, wavelet)
            details.append((hl, lh, hh))
            current = ll
        details.reverse()
        return WaveletCoeffs(
            approx=current, details=details, shape=image.shape, wavelet=wavelet
        )


def inverse_dwt2d(coeffs: WaveletCoeffs) -> np.ndarray:
    """Invert :func:`forward_dwt2d`.

    Returns:
        The reconstructed image: float64 for CDF 9/7, int64 for LeGall 5/3.
    """
    with perf.profiled("dwt"):
        current = coeffs.approx
        # Reconstruct level shapes top-down: we must know each level's
        # row/col counts, derived by repeatedly halving the original shape.
        shapes = [coeffs.shape]
        for _ in range(coeffs.levels - 1):
            height, width = shapes[-1]
            shapes.append(((height + 1) // 2, (width + 1) // 2))
        for (hl, lh, hh), target in zip(coeffs.details, reversed(shapes)):
            height, width = target
            low_rows = _inverse_axis(current, hl, 1, width, coeffs.wavelet)
            high_rows = _inverse_axis(lh, hh, 1, width, coeffs.wavelet)
            current = _inverse_axis(
                low_rows, high_rows, 0, height, coeffs.wavelet
            )
        return current


def dwt_many(
    images: np.ndarray | list[np.ndarray],
    levels: int,
    wavelet: Wavelet = Wavelet.CDF97,
) -> list[WaveletCoeffs]:
    """Batch forward DWT over same-shape images in one call.

    The lifting kernels operate along one axis with arbitrary trailing
    dimensions, so stacking N images and transforming the stack performs
    exactly the same elementwise arithmetic as N separate
    :func:`forward_dwt2d` calls — each returned decomposition is
    float-identical (bit-exact for 5/3) to transforming that image alone.
    Subband arrays are views into the shared stack.

    Args:
        images: ``(N, H, W)`` array or list of same-shape 2-D arrays.
        levels: Decomposition levels (>= 1).
        wavelet: Filter to use.

    Returns:
        One :class:`WaveletCoeffs` per input image, in order.

    Raises:
        CodecError: For invalid levels, non-2-D items, or mixed shapes.
    """
    if isinstance(images, (list, tuple)):
        if not images:
            return []
        shapes = {tuple(img.shape) for img in images}
        if len(shapes) != 1:
            raise CodecError(
                f"dwt_many requires same-shape images, got shapes {shapes}"
            )
        if images[0].ndim != 2:
            raise CodecError(
                f"expected 2-D images, got {images[0].ndim}-D items"
            )
        stack = np.stack(images)
    else:
        stack = np.asarray(images)
        if stack.ndim != 3:
            raise CodecError(
                f"expected (N, H, W) stack, got shape {stack.shape}"
            )
        if stack.shape[0] == 0:
            return []
    n_images = stack.shape[0]
    image_shape = (stack.shape[1], stack.shape[2])
    _check_transform_args(image_shape, 2, levels)
    with perf.profiled("dwt"):
        current = stack
        detail_stacks: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for _ in range(levels):
            low_rows, high_rows = _transform_axis(current, 1, wavelet)
            ll, hl = _transform_axis(low_rows, 2, wavelet)
            lh, hh = _transform_axis(high_rows, 2, wavelet)
            detail_stacks.append((hl, lh, hh))
            current = ll
        detail_stacks.reverse()
        return [
            WaveletCoeffs(
                approx=current[i],
                details=[
                    (hl[i], lh[i], hh[i]) for hl, lh, hh in detail_stacks
                ],
                shape=image_shape,
                wavelet=wavelet,
            )
            for i in range(n_images)
        ]


def idwt_many(coeffs_list: list[WaveletCoeffs]) -> np.ndarray:
    """Batch inverse DWT over same-geometry decompositions.

    The float-identity argument of :func:`dwt_many` applies in reverse:
    each slice of the returned stack is identical to
    :func:`inverse_dwt2d` of that decomposition alone.

    Args:
        coeffs_list: Decompositions sharing shape, levels, and wavelet.

    Returns:
        ``(N, H, W)`` stack of reconstructions (empty ``(0, 0, 0)`` for an
        empty list).

    Raises:
        CodecError: On mixed geometry.
    """
    if not coeffs_list:
        return np.empty((0, 0, 0))
    first = coeffs_list[0]
    for coeffs in coeffs_list[1:]:
        if (
            coeffs.shape != first.shape
            or coeffs.levels != first.levels
            or coeffs.wavelet is not first.wavelet
        ):
            raise CodecError(
                "idwt_many requires decompositions of identical geometry"
            )
    with perf.profiled("dwt"):
        wavelet = first.wavelet
        current = np.stack([c.approx for c in coeffs_list])
        shapes = [first.shape]
        for _ in range(first.levels - 1):
            height, width = shapes[-1]
            shapes.append(((height + 1) // 2, (width + 1) // 2))
        for level_idx, target in enumerate(reversed(shapes)):
            height, width = target
            hl = np.stack([c.details[level_idx][0] for c in coeffs_list])
            lh = np.stack([c.details[level_idx][1] for c in coeffs_list])
            hh = np.stack([c.details[level_idx][2] for c in coeffs_list])
            low_rows = _inverse_axis(current, hl, 2, width, wavelet)
            high_rows = _inverse_axis(lh, hh, 2, width, wavelet)
            current = _inverse_axis(low_rows, high_rows, 1, height, wavelet)
        return current
