"""Image quality and rate metrics used throughout the evaluation.

The paper reports Peak Signal-to-Noise Ratio (PSNR) on pixel values
normalized to [0, 1] and compression ratio relative to raw size; both are
defined here once so every experiment scores identically.
"""

from __future__ import annotations

import math

import numpy as np


def mse(reference: np.ndarray, test: np.ndarray) -> float:
    """Mean squared error between two images of identical shape.

    Args:
        reference: Ground-truth image.
        test: Reconstructed image.

    Returns:
        Mean of squared per-pixel differences.

    Raises:
        ValueError: If shapes differ.
    """
    if reference.shape != test.shape:
        raise ValueError(
            f"shape mismatch: {reference.shape} vs {test.shape}"
        )
    diff = reference.astype(np.float64) - test.astype(np.float64)
    return float(np.mean(diff * diff))


def psnr(reference: np.ndarray, test: np.ndarray, max_value: float = 1.0) -> float:
    """Peak signal-to-noise ratio in decibels.

    Args:
        reference: Ground-truth image.
        test: Reconstructed image.
        max_value: Peak signal value (1.0 for normalized imagery).

    Returns:
        PSNR in dB; ``math.inf`` for identical images.
    """
    error = mse(reference, test)
    if error <= 0.0:
        return math.inf
    return 10.0 * math.log10((max_value * max_value) / error)


def compression_ratio(raw_bytes: int, coded_bytes: int) -> float:
    """Raw-to-coded size ratio; ``inf`` when nothing was coded.

    Args:
        raw_bytes: Uncompressed payload size.
        coded_bytes: Compressed payload size.

    Returns:
        ``raw_bytes / coded_bytes`` (``inf`` if ``coded_bytes`` is zero).

    Raises:
        ValueError: If either argument is negative.
    """
    if raw_bytes < 0 or coded_bytes < 0:
        raise ValueError("byte counts must be non-negative")
    if coded_bytes == 0:
        return math.inf
    return raw_bytes / coded_bytes


def weighted_mean_psnr(psnrs: list[float], weights: list[float] | None = None) -> float:
    """Average PSNR across images, via mean MSE (not mean of dB values).

    Averaging in the MSE domain is the statistically meaningful way to pool
    quality across images; averaging dB directly overweights easy images.
    Infinite PSNRs (perfect reconstructions) contribute zero MSE.

    Args:
        psnrs: Per-image PSNR values in dB.
        weights: Optional per-image weights (defaults to uniform).

    Returns:
        Pooled PSNR in dB.
    """
    if not psnrs:
        raise ValueError("psnrs must be non-empty")
    if weights is None:
        weights = [1.0] * len(psnrs)
    if len(weights) != len(psnrs):
        raise ValueError("weights and psnrs must have equal length")
    total_weight = sum(weights)
    if total_weight <= 0:
        raise ValueError("weights must sum to a positive value")
    mean_mse = 0.0
    for value, weight in zip(psnrs, weights):
        mse_value = 0.0 if math.isinf(value) else 10.0 ** (-value / 10.0)
        mean_mse += weight * mse_value
    mean_mse /= total_weight
    if mean_mse <= 0.0:
        return math.inf
    return -10.0 * math.log10(mean_mse)
