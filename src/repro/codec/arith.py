"""Adaptive binary arithmetic (range) coder with context modelling.

This is the entropy-coding engine under the bit-plane coder.  It is a
carry-less byte-oriented range coder (the classic Subbotin construction)
driven by per-context adaptive probability estimates: each context keeps
scaled 0/1 counts and halves them periodically so the model tracks local
statistics, exactly the role the MQ coder plays inside JPEG 2000.

Correctness contract (property-tested): for any sequence of (bit, context)
pairs, decoding the encoder's output with the same fresh context set returns
the original bits.
"""

from __future__ import annotations

from repro.errors import BitstreamError

_TOP = 1 << 24
_BOTTOM = 1 << 16
_MASK32 = 0xFFFFFFFF

#: Probability precision: P(bit = 0) is stored as count0 / total scaled into
#: a 16-bit range split.
_MAX_TOTAL = 1 << 12


def clamp_probability0(scaled: int) -> int:
    """Clamp a scaled P(bit = 0) into the coder's legal 1..65535 range.

    The single authoritative definition of the probability clamp, shared by
    :class:`ContextModel` and the batched fast path
    (:mod:`repro.codec.fastpath`), so the two backends cannot drift.  With
    Laplace-smoothed counts (both >= 1, total < ``_MAX_TOTAL``) the clamp is
    provably a no-op, but it guards the coder against any future count
    representation that can reach the boundaries.
    """
    if scaled < 1:
        return 1
    if scaled > 65535:
        return 65535
    return scaled


class ContextModel:
    """Adaptive probability estimate for one binary context.

    Maintains Laplace-smoothed counts of zeroes and ones, halved whenever the
    total reaches ``_MAX_TOTAL`` so that the estimate adapts to
    non-stationary sources.
    """

    __slots__ = ("count0", "count1")

    def __init__(self) -> None:
        self.count0 = 1
        self.count1 = 1

    def probability0_scaled(self) -> int:
        """P(bit = 0) scaled to 1..65535 (never 0 or 65536)."""
        total = self.count0 + self.count1
        return clamp_probability0((self.count0 << 16) // total)

    def update(self, bit: int) -> None:
        """Fold an observed bit into the estimate."""
        if bit:
            self.count1 += 1
        else:
            self.count0 += 1
        if self.count0 + self.count1 >= _MAX_TOTAL:
            self.count0 = (self.count0 + 1) >> 1
            self.count1 = (self.count1 + 1) >> 1


class ContextSet:
    """A named family of :class:`ContextModel` instances.

    Encoder and decoder must build their context sets identically (same
    labels, fresh counts); the coder itself is stateless beyond this.
    """

    def __init__(self) -> None:
        self._models: dict[object, ContextModel] = {}

    def get(self, label: object) -> ContextModel:
        """Fetch (creating on first use) the model for ``label``."""
        model = self._models.get(label)
        if model is None:
            model = ContextModel()
            self._models[label] = model
        return model


class ArithmeticEncoder:
    """Range encoder producing a byte string from (bit, context) decisions."""

    def __init__(self, contexts: ContextSet | None = None) -> None:
        self.contexts = contexts if contexts is not None else ContextSet()
        self._low = 0
        self._range = _MASK32
        self._out = bytearray()

    def encode(self, bit: int, context_label: object) -> None:
        """Encode one bit under the adaptive model for ``context_label``."""
        model = self.contexts.get(context_label)
        p0 = model.probability0_scaled()
        split = (self._range >> 16) * p0
        if bit == 0:
            self._range = split
        else:
            self._low = (self._low + split) & _MASK32
            self._range -= split
        model.update(bit)
        self._normalize()

    def encode_bit_raw(self, bit: int) -> None:
        """Encode one bit at fixed probability 1/2 (bypass mode)."""
        split = self._range >> 1
        if bit == 0:
            self._range = split
        else:
            self._low = (self._low + split) & _MASK32
            self._range -= split
        self._normalize()

    def _normalize(self) -> None:
        # Subbotin carry-less renormalization: emit top bytes while the
        # range is small or while low/top bytes are pinned.
        while True:
            if (self._low ^ (self._low + self._range)) < _TOP:
                pass  # top byte settled; emit below
            elif self._range < _BOTTOM:
                self._range = (-self._low) & (_BOTTOM - 1)
            else:
                return
            self._out.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & _MASK32
            self._range = (self._range << 8) & _MASK32

    def finish(self) -> bytes:
        """Flush and return the complete codeword."""
        for _ in range(4):
            self._out.append((self._low >> 24) & 0xFF)
            self._low = (self._low << 8) & _MASK32
        return bytes(self._out)


class ArithmeticDecoder:
    """Range decoder; mirror image of :class:`ArithmeticEncoder`."""

    def __init__(self, data: bytes, contexts: ContextSet | None = None) -> None:
        self.contexts = contexts if contexts is not None else ContextSet()
        self._data = data
        self._pos = 0
        self._low = 0
        self._range = _MASK32
        self._code = 0
        for _ in range(4):
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32

    def _next_byte(self) -> int:
        if self._pos < len(self._data):
            byte = self._data[self._pos]
            self._pos += 1
            return byte
        # Reading past the end is legal for truncated (embedded) streams:
        # the decoder just sees zero bits, mirroring JPEG 2000 behaviour.
        self._pos += 1
        if self._pos > len(self._data) + 64:
            raise BitstreamError("arithmetic decoder ran far past end of data")
        return 0

    def decode(self, context_label: object) -> int:
        """Decode one bit under the adaptive model for ``context_label``."""
        model = self.contexts.get(context_label)
        p0 = model.probability0_scaled()
        split = (self._range >> 16) * p0
        offset = (self._code - self._low) & _MASK32
        if offset < split:
            bit = 0
            self._range = split
        else:
            bit = 1
            self._low = (self._low + split) & _MASK32
            self._range -= split
        model.update(bit)
        self._normalize()
        return bit

    def decode_bit_raw(self) -> int:
        """Decode one bypass-mode bit (fixed probability 1/2)."""
        split = self._range >> 1
        offset = (self._code - self._low) & _MASK32
        if offset < split:
            bit = 0
            self._range = split
        else:
            bit = 1
            self._low = (self._low + split) & _MASK32
            self._range -= split
        self._normalize()
        return bit

    def _normalize(self) -> None:
        while True:
            if (self._low ^ (self._low + self._range)) < _TOP:
                pass
            elif self._range < _BOTTOM:
                self._range = (-self._low) & (_BOTTOM - 1)
            else:
                return
            self._code = ((self._code << 8) | self._next_byte()) & _MASK32
            self._low = (self._low << 8) & _MASK32
            self._range = (self._range << 8) & _MASK32
