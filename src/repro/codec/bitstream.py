"""Bit-level and byte-level serialization primitives.

:class:`BitWriter` / :class:`BitReader` provide MSB-first bit packing plus
unsigned varints, used by the codec container format
(:mod:`repro.codec.jpeg2000`) and the Earth+ reference-update wire format
(:mod:`repro.core.reference`).
"""

from __future__ import annotations

from repro.errors import BitstreamError


class BitWriter:
    """Accumulates bits MSB-first into a growing byte buffer."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._nbits = 0

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._nbits += 1
        if self._nbits == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._nbits = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value`` MSB-first.

        Args:
            value: Non-negative integer to write.
            count: Number of bits (0-64).

        Raises:
            BitstreamError: If ``value`` does not fit in ``count`` bits.
        """
        if count < 0 or count > 64:
            raise BitstreamError(f"bit count must be 0-64, got {count}")
        if value < 0 or (count < 64 and value >> count):
            raise BitstreamError(f"value {value} does not fit in {count} bits")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_uvarint(self, value: int) -> None:
        """Append an unsigned LEB128-style varint (7 bits per byte).

        Varints must start byte-aligned; call after :meth:`align` or only on
        byte boundaries.
        """
        if self._nbits != 0:
            raise BitstreamError("varints must be byte-aligned; call align() first")
        if value < 0:
            raise BitstreamError(f"uvarint value must be >= 0, got {value}")
        while True:
            byte = value & 0x7F
            value >>= 7
            if value:
                self._bytes.append(byte | 0x80)
            else:
                self._bytes.append(byte)
                return

    def write_bytes(self, data: bytes) -> None:
        """Append raw bytes (must be byte-aligned)."""
        if self._nbits != 0:
            raise BitstreamError("raw bytes must be byte-aligned; call align() first")
        self._bytes.extend(data)

    def align(self) -> None:
        """Zero-pad to the next byte boundary."""
        while self._nbits != 0:
            self.write_bit(0)

    def getvalue(self) -> bytes:
        """Return the written bytes (zero-padding any partial final byte)."""
        self.align()
        return bytes(self._bytes)

    def __len__(self) -> int:
        """Bytes written so far (including any partial byte)."""
        return len(self._bytes) + (1 if self._nbits else 0)


class BitReader:
    """Reads bits MSB-first from a byte buffer written by :class:`BitWriter`."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._byte_pos = 0
        self._bit_pos = 0

    def read_bit(self) -> int:
        """Read one bit.

        Raises:
            BitstreamError: On reading past the end of the buffer.
        """
        if self._byte_pos >= len(self._data):
            raise BitstreamError("read past end of bitstream")
        byte = self._data[self._byte_pos]
        bit = (byte >> (7 - self._bit_pos)) & 1
        self._bit_pos += 1
        if self._bit_pos == 8:
            self._bit_pos = 0
            self._byte_pos += 1
        return bit

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits MSB-first into an unsigned integer."""
        if count < 0 or count > 64:
            raise BitstreamError(f"bit count must be 0-64, got {count}")
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    def read_uvarint(self) -> int:
        """Read an unsigned varint (must be byte-aligned)."""
        if self._bit_pos != 0:
            raise BitstreamError("varints must be byte-aligned; call align() first")
        value = 0
        shift = 0
        while True:
            if self._byte_pos >= len(self._data):
                raise BitstreamError("truncated uvarint")
            byte = self._data[self._byte_pos]
            self._byte_pos += 1
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 63:
                raise BitstreamError("uvarint too long")

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes (must be byte-aligned)."""
        if self._bit_pos != 0:
            raise BitstreamError("raw bytes must be byte-aligned; call align() first")
        if self._byte_pos + count > len(self._data):
            raise BitstreamError(
                f"requested {count} bytes with only "
                f"{len(self._data) - self._byte_pos} remaining"
            )
        out = self._data[self._byte_pos : self._byte_pos + count]
        self._byte_pos += count
        return out

    def align(self) -> None:
        """Skip to the next byte boundary."""
        if self._bit_pos != 0:
            self._bit_pos = 0
            self._byte_pos += 1

    def remaining_bytes(self) -> int:
        """Whole bytes left to read."""
        return len(self._data) - self._byte_pos - (1 if self._bit_pos else 0)
