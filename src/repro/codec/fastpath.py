"""Vectorized fast path for the embedded bit-plane codec.

:class:`VectorizedPlaneCoder` is a drop-in replacement for
:class:`repro.codec.bitplane.SubbandPlaneCoder` that produces **byte-identical
bitstreams and identical reconstructions** (the contract is enforced by
``tests/codec/test_differential.py`` and the golden fixtures under
``tests/codec/golden/``).  It gets its speed from two changes, neither of
which alters a single coded bit:

* **Vectorized stream preparation** — per plane, the significance /
  sign / refinement decisions of every subband are assembled into flat
  ``(bits, contexts)`` arrays with numpy (significance propagation,
  neighbour contexts and sign interleaving all computed plane-at-a-time),
  instead of per-coefficient Python calls.
* **Batched range coding** — the sequential arithmetic-coding loop runs
  once per plane over those arrays in :class:`BatchRangeEncoder` /
  :class:`BatchRangeDecoder`, with integer context ids indexing flat count
  lists.  This removes the per-bit method dispatch, tuple-hashing context
  lookups and attribute traffic of the reference coder while performing
  the exact same range arithmetic in the exact same order.

The range-coder inner loops below deliberately inline the probability
computation, count update (:class:`repro.codec.arith.ContextModel` semantics,
clamp per :func:`repro.codec.arith.clamp_probability0`) and Subbotin
renormalization: a function call per bit is precisely the overhead this
module exists to remove.  Any change to the arithmetic here must be mirrored
in :mod:`repro.codec.arith` (and vice versa) — the differential test harness
fails loudly if the two drift.
"""

from __future__ import annotations

import numpy as np

from repro.codec.arith import _BOTTOM, _MASK32, _MAX_TOTAL, _TOP
from repro.codec.bitplane import (
    PlaneSegment,
    _neighbor_count,
    _significance_context,
    check_bands,
)
from repro.errors import BitstreamError

#: Context ids per subband: 3 significance buckets, 1 sign, 1 refinement.
_CTX_PER_BAND = 5
_SIGN_OFFSET = 3
_REF_OFFSET = 4

_EMPTY_I64 = np.zeros(0, dtype=np.int64)


class BatchContextTable:
    """Adaptive context counts as flat lists indexed by integer context id.

    Semantically one :class:`repro.codec.arith.ContextModel` per id (same
    Laplace-smoothed counts, same halving at ``_MAX_TOTAL``), laid out for
    O(1) list indexing inside the batched coding loops.
    """

    __slots__ = ("count0", "count1")

    def __init__(self, n_contexts: int) -> None:
        self.count0 = [1] * n_contexts
        self.count1 = [1] * n_contexts


class BatchRangeEncoder:
    """Range encoder consuming whole (bits, contexts) arrays.

    Bit-identical to :class:`repro.codec.arith.ArithmeticEncoder` driven with
    the same decision sequence; the context state lives in a shared
    :class:`BatchContextTable` so it persists across the per-plane codewords
    exactly like a shared :class:`~repro.codec.arith.ContextSet`.
    """

    def __init__(self, table: BatchContextTable) -> None:
        self._table = table
        self._low = 0
        self._range = _MASK32
        self._out = bytearray()

    def encode_many(self, bits: list[int], ctxs: list[int]) -> None:
        """Encode ``bits[i]`` under the adaptive context ``ctxs[i]``, in order."""
        low = self._low
        rng = self._range
        append = self._out.append
        count0 = self._table.count0
        count1 = self._table.count1
        mask, top, bottom, max_total = _MASK32, _TOP, _BOTTOM, _MAX_TOTAL
        for bit, ctx in zip(bits, ctxs):
            n0 = count0[ctx]
            n1 = count1[ctx]
            # Inline ContextModel.probability0_scaled; the clamp
            # (arith.clamp_probability0) is a no-op for n0, n1 >= 1 and
            # total < _MAX_TOTAL, both invariants of the update below.
            p0 = (n0 << 16) // (n0 + n1)
            split = (rng >> 16) * p0
            if bit:
                low = (low + split) & mask
                rng -= split
                n1 += 1
            else:
                rng = split
                n0 += 1
            if n0 + n1 >= max_total:
                n0 = (n0 + 1) >> 1
                n1 = (n1 + 1) >> 1
            count0[ctx] = n0
            count1[ctx] = n1
            while True:
                if (low ^ (low + rng)) < top:
                    pass
                elif rng < bottom:
                    rng = (-low) & (bottom - 1)
                else:
                    break
                append((low >> 24) & 0xFF)
                low = (low << 8) & mask
                rng = (rng << 8) & mask
        self._low = low
        self._range = rng

    def encode_with_probs(self, bits: list[int], probs: list[int]) -> None:
        """Encode ``bits[i]`` at the precomputed scaled probability ``probs[i]``.

        The caller supplies the exact adaptive probability schedule (see
        :func:`probability_schedule`), so the loop is pure range arithmetic —
        the fastest exact path when the whole decision stream is known ahead
        of time, as it is on the encoder side.
        """
        low = self._low
        rng = self._range
        append = self._out.append
        mask, top, bottom = _MASK32, _TOP, _BOTTOM
        for bit, p0 in zip(bits, probs):
            split = (rng >> 16) * p0
            if bit:
                low = (low + split) & mask
                rng -= split
            else:
                rng = split
            while True:
                if (low ^ (low + rng)) < top:
                    pass
                elif rng < bottom:
                    rng = (-low) & (bottom - 1)
                else:
                    break
                append((low >> 24) & 0xFF)
                low = (low << 8) & mask
                rng = (rng << 8) & mask
        self._low = low
        self._range = rng

    def finish(self) -> bytes:
        """Flush and return the complete codeword."""
        low = self._low
        for _ in range(4):
            self._out.append((low >> 24) & 0xFF)
            low = (low << 8) & _MASK32
        self._low = low
        return bytes(self._out)


def probability_schedule(
    bits: np.ndarray, ctxs: np.ndarray, table: BatchContextTable
) -> np.ndarray:
    """Exact per-decision P(bit = 0) schedule for a known decision stream.

    The adaptive model's count evolution is fully determined by the (bit,
    context) sequence, so when the whole stream is known in advance — as on
    the encoder side — the probabilities every ``ContextModel`` would report
    can be replayed with cumulative sums instead of per-bit Python updates.
    Contexts are grouped with a stable argsort; within a context the counts
    between two halvings grow by exactly one per decision, so each stretch is
    one vectorized cumsum, and the deterministic halving at ``_MAX_TOTAL``
    splits a context's stream into at most a handful of stretches.

    Updates ``table`` to the post-stream counts (identical to feeding every
    decision through :meth:`ContextModel.update`) and returns the scaled
    probabilities; the 1..65535 clamp (:func:`~repro.codec.arith.clamp_probability0`)
    is provably a no-op for these counts so the values are returned raw.
    """
    n = int(bits.size)
    p0 = np.empty(n, dtype=np.int64)
    order = np.argsort(ctxs, kind="stable")
    sorted_ctx = ctxs[order]
    sorted_bits = bits[order]
    boundaries = np.flatnonzero(np.diff(sorted_ctx)) + 1
    starts = np.concatenate([[0], boundaries]).tolist()
    ends = np.concatenate([boundaries, [n]]).tolist()
    # One global pass gives, for every position, the number of zero bits
    # before it *within its context segment* (after subtracting the segment
    # start), so the per-context loop below is pure slicing.
    zeros = (sorted_bits == 0).astype(np.int64)
    zeros_incl = np.cumsum(zeros)
    zeros_excl = zeros_incl - zeros
    steps = np.arange(n, dtype=np.int64)
    sorted_p0 = np.empty(n, dtype=np.int64)
    count0 = table.count0
    count1 = table.count1
    for start, end in zip(starts, ends):
        ctx = int(sorted_ctx[start])
        c0 = count0[ctx]
        c1 = count1[ctx]
        done = start
        while done < end:
            # Updates remaining until the total reaches _MAX_TOTAL and the
            # counts halve; within the stretch, counts grow by one per step.
            until_halve = _MAX_TOTAL - (c0 + c1)
            step = min(end - done, until_halve)
            stretch = slice(done, done + step)
            zero_excl_base = int(zeros_excl[done])
            zero_base = c0 - zero_excl_base
            total_base = (c0 + c1) - done
            sorted_p0[stretch] = ((zero_base + zeros_excl[stretch]) << 16) // (
                total_base + steps[stretch]
            )
            stretch_zeros = int(zeros_incl[done + step - 1]) - zero_excl_base
            c0 += stretch_zeros
            c1 += step - stretch_zeros
            if step == until_halve:
                c0 = (c0 + 1) >> 1
                c1 = (c1 + 1) >> 1
            done += step
        count0[ctx] = c0
        count1[ctx] = c1
    p0[order] = sorted_p0
    return p0


class BatchRangeDecoder:
    """Range decoder mirroring :class:`BatchRangeEncoder`.

    Decoding cannot precompute its context stream (later contexts depend on
    decoded bits), so it exposes the two pass shapes the bit-plane coder
    needs: an interleaved significance+sign pass and a single-context
    refinement pass.
    """

    def __init__(self, data: bytes, table: BatchContextTable) -> None:
        self._table = table
        self._data = data
        # Reading modestly past the end is legal for truncated (embedded)
        # streams — the decoder sees zero bits — but running far past it is
        # a malformed stream, exactly as in ArithmeticDecoder._next_byte.
        self._limit = len(data) + 64
        self._pos = 0
        self._low = 0
        self._range = _MASK32
        code = 0
        for _ in range(4):
            if self._pos < len(data):
                byte = data[self._pos]
            else:
                byte = 0
            self._pos += 1
            code = ((code << 8) | byte) & _MASK32
        self._code = code

    def decode_sig_pass(
        self, ctxs: list[int], sign_ctx: int
    ) -> tuple[list[int], list[int]]:
        """Decode one significance pass.

        One adaptive bit per entry of ``ctxs``; every 1 bit is immediately
        followed by an adaptive sign bit under ``sign_ctx``.

        Returns:
            ``(bits, signs)`` — ``bits`` aligned with ``ctxs``; ``signs``
            aligned with the positions whose bit was 1, in order.
        """
        low = self._low
        rng = self._range
        code = self._code
        pos = self._pos
        data = self._data
        n_data = len(data)
        limit = self._limit
        count0 = self._table.count0
        count1 = self._table.count1
        mask, top, bottom, max_total = _MASK32, _TOP, _BOTTOM, _MAX_TOTAL
        bits: list[int] = []
        signs: list[int] = []
        bits_append = bits.append
        signs_append = signs.append
        for ctx in ctxs:
            n0 = count0[ctx]
            n1 = count1[ctx]
            p0 = (n0 << 16) // (n0 + n1)
            split = (rng >> 16) * p0
            if ((code - low) & mask) < split:
                bit = 0
                rng = split
                n0 += 1
            else:
                bit = 1
                low = (low + split) & mask
                rng -= split
                n1 += 1
            if n0 + n1 >= max_total:
                n0 = (n0 + 1) >> 1
                n1 = (n1 + 1) >> 1
            count0[ctx] = n0
            count1[ctx] = n1
            while True:
                if (low ^ (low + rng)) < top:
                    pass
                elif rng < bottom:
                    rng = (-low) & (bottom - 1)
                else:
                    break
                byte = data[pos] if pos < n_data else 0
                pos += 1
                if pos > limit:
                    raise BitstreamError(
                        "arithmetic decoder ran far past end of data"
                    )
                code = ((code << 8) | byte) & mask
                low = (low << 8) & mask
                rng = (rng << 8) & mask
            bits_append(bit)
            if bit:
                n0 = count0[sign_ctx]
                n1 = count1[sign_ctx]
                p0 = (n0 << 16) // (n0 + n1)
                split = (rng >> 16) * p0
                if ((code - low) & mask) < split:
                    sbit = 0
                    rng = split
                    n0 += 1
                else:
                    sbit = 1
                    low = (low + split) & mask
                    rng -= split
                    n1 += 1
                if n0 + n1 >= max_total:
                    n0 = (n0 + 1) >> 1
                    n1 = (n1 + 1) >> 1
                count0[sign_ctx] = n0
                count1[sign_ctx] = n1
                while True:
                    if (low ^ (low + rng)) < top:
                        pass
                    elif rng < bottom:
                        rng = (-low) & (bottom - 1)
                    else:
                        break
                    byte = data[pos] if pos < n_data else 0
                    pos += 1
                    if pos > limit:
                        raise BitstreamError(
                            "arithmetic decoder ran far past end of data"
                        )
                    code = ((code << 8) | byte) & mask
                    low = (low << 8) & mask
                    rng = (rng << 8) & mask
                signs_append(sbit)
        self._low = low
        self._range = rng
        self._code = code
        self._pos = pos
        return bits, signs

    def decode_ref_pass(self, count: int, ctx: int) -> list[int]:
        """Decode ``count`` refinement bits, all under context ``ctx``."""
        low = self._low
        rng = self._range
        code = self._code
        pos = self._pos
        data = self._data
        n_data = len(data)
        limit = self._limit
        count0 = self._table.count0
        count1 = self._table.count1
        mask, top, bottom, max_total = _MASK32, _TOP, _BOTTOM, _MAX_TOTAL
        n0 = count0[ctx]
        n1 = count1[ctx]
        bits: list[int] = []
        bits_append = bits.append
        for _ in range(count):
            p0 = (n0 << 16) // (n0 + n1)
            split = (rng >> 16) * p0
            if ((code - low) & mask) < split:
                bit = 0
                rng = split
                n0 += 1
            else:
                bit = 1
                low = (low + split) & mask
                rng -= split
                n1 += 1
            if n0 + n1 >= max_total:
                n0 = (n0 + 1) >> 1
                n1 = (n1 + 1) >> 1
            while True:
                if (low ^ (low + rng)) < top:
                    pass
                elif rng < bottom:
                    rng = (-low) & (bottom - 1)
                else:
                    break
                byte = data[pos] if pos < n_data else 0
                pos += 1
                if pos > limit:
                    raise BitstreamError(
                        "arithmetic decoder ran far past end of data"
                    )
                code = ((code << 8) | byte) & mask
                low = (low << 8) & mask
                rng = (rng << 8) & mask
            bits_append(bit)
        count0[ctx] = n0
        count1[ctx] = n1
        self._low = low
        self._range = rng
        self._code = code
        self._pos = pos
        return bits


def _prepare_band_plane(
    base: int,
    magnitude: np.ndarray,
    sign: np.ndarray,
    significant: np.ndarray,
    plane: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble one band's (bits, contexts) stream for one plane, in numpy.

    Produces exactly the decision sequence
    :meth:`SubbandPlaneCoder._encode_band_plane` would emit — significance
    bits in row-major order with each newly-significant coefficient's sign
    interleaved right after its 1 bit, followed by the refinement bits —
    and updates ``significant`` in place.
    """
    if magnitude.size == 0:
        return _EMPTY_I64, _EMPTY_I64
    bit_here = (magnitude >> plane) & 1
    if significant.any():
        neighbors = _neighbor_count(significant)
        sig_ctx = _significance_context(neighbors, "")
        insig = ~significant
        bits_i = bit_here[insig]
        ctxs_i = sig_ctx[insig].astype(np.int64) + base
        signs_i = sign[insig]
        ref_bits = bit_here[significant]
    else:
        # Nothing significant yet (top planes): every coefficient sits in
        # the zero-neighbour context and there is no refinement pass.
        bits_i = bit_here.ravel()
        ctxs_i = np.full(bits_i.size, base, dtype=np.int64)
        signs_i = sign.ravel()
        ref_bits = _EMPTY_I64
    n_new = int(bits_i.sum())
    if n_new:
        # Significance pass with interleaved signs: each 1 bit pushes later
        # entries one slot right to make room for its sign —
        # position = index + (number of earlier 1 bits).
        ones = bits_i.astype(bool)
        out_len = bits_i.size + n_new
        out_bits = np.empty(out_len, dtype=np.int64)
        out_ctxs = np.empty(out_len, dtype=np.int64)
        offsets = np.arange(bits_i.size, dtype=np.int64) + (
            np.cumsum(bits_i) - bits_i
        )
        out_bits[offsets] = bits_i
        out_ctxs[offsets] = ctxs_i
        sign_slots = offsets[ones] + 1
        out_bits[sign_slots] = signs_i[ones].astype(np.int64)
        out_ctxs[sign_slots] = base + _SIGN_OFFSET
        # Update shared significance state (both passes used the old one).
        significant |= bit_here.astype(bool)
    else:
        out_bits = bits_i
        out_ctxs = ctxs_i
    if ref_bits.size == 0:
        return out_bits, out_ctxs
    # Refinement pass: previously-significant coefficients, single context.
    ref_ctxs = np.full(ref_bits.size, base + _REF_OFFSET, dtype=np.int64)
    return (
        np.concatenate([out_bits, ref_bits]),
        np.concatenate([out_ctxs, ref_ctxs]),
    )


class VectorizedPlaneCoder:
    """Bit-identical vectorized replacement for ``SubbandPlaneCoder``.

    Same constructor and public API; the differential test harness asserts
    byte-identical plane segments and identical reconstructions at every
    truncation point.
    """

    def __init__(self, band_shapes: list[tuple[str, int, tuple[int, int]]]) -> None:
        """Args:
        band_shapes: ``(name, level, shape)`` per subband, coding order.
        """
        self.band_shapes = band_shapes
        # The reference coder keys contexts by band label, so duplicate
        # labels share adaptive state; reproduce that with shared bases.
        bases: dict[str, int] = {}
        self._bases: list[int] = []
        for key, _level, _shape in band_shapes:
            base = bases.setdefault(key, _CTX_PER_BAND * len(bases))
            self._bases.append(base)
        self._n_contexts = _CTX_PER_BAND * len(bases)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(
        self, bands: list[np.ndarray], max_plane: int
    ) -> list[PlaneSegment]:
        """Encode all planes from ``max_plane`` down to 0 (see reference)."""
        check_bands(self.band_shapes, bands)
        magnitudes = [np.abs(band).astype(np.int64) for band in bands]
        signs = [band < 0 for band in bands]
        significant = [np.zeros(band.shape, dtype=bool) for band in bands]
        table = BatchContextTable(self._n_contexts)
        segments: list[PlaneSegment] = []
        for plane in range(max_plane, -1, -1):
            encoder = BatchRangeEncoder(table)
            plane_bits: list[np.ndarray] = []
            plane_ctxs: list[np.ndarray] = []
            for idx in range(len(self.band_shapes)):
                bits, ctxs = _prepare_band_plane(
                    self._bases[idx],
                    magnitudes[idx],
                    signs[idx],
                    significant[idx],
                    plane,
                )
                if bits.size:
                    plane_bits.append(bits)
                    plane_ctxs.append(ctxs)
            if plane_bits:
                bits = np.concatenate(plane_bits)
                ctxs = np.concatenate(plane_ctxs)
                probs = probability_schedule(bits, ctxs, table)
                encoder.encode_with_probs(bits.tolist(), probs.tolist())
            segments.append(PlaneSegment(plane=plane, data=encoder.finish()))
        return segments

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self, segments: list[PlaneSegment], max_plane: int
    ) -> list[np.ndarray]:
        """Decode a (possibly truncated) prefix of planes (see reference)."""
        table = BatchContextTable(self._n_contexts)
        magnitudes = [
            np.zeros(shape, dtype=np.int64) for _, _, shape in self.band_shapes
        ]
        signs = [
            np.zeros(shape, dtype=bool) for _, _, shape in self.band_shapes
        ]
        significant = [
            np.zeros(shape, dtype=bool) for _, _, shape in self.band_shapes
        ]
        expected_plane = max_plane
        for segment in segments:
            if segment.plane != expected_plane:
                raise BitstreamError(
                    f"plane segments out of order: expected {expected_plane}, "
                    f"got {segment.plane}"
                )
            decoder = BatchRangeDecoder(segment.data, table)
            for idx in range(len(self.band_shapes)):
                self._decode_band_plane(
                    decoder,
                    self._bases[idx],
                    magnitudes[idx],
                    signs[idx],
                    significant[idx],
                    segment.plane,
                )
            expected_plane -= 1
        out = []
        for magnitude, sign in zip(magnitudes, signs):
            values = magnitude.copy()
            values[sign] = -values[sign]
            out.append(values)
        return out

    @staticmethod
    def _decode_band_plane(
        decoder: BatchRangeDecoder,
        base: int,
        magnitude: np.ndarray,
        sign: np.ndarray,
        significant: np.ndarray,
        plane: int,
    ) -> None:
        if magnitude.size == 0:
            return
        sig_flat = significant.ravel()
        mag_flat = magnitude.ravel()
        sign_flat = sign.ravel()
        if significant.any():
            neighbors = _neighbor_count(significant)
            sig_ctx = _significance_context(neighbors, "")
            insig_idx = np.flatnonzero(~sig_flat)
            prev_idx = np.flatnonzero(sig_flat)
            ctx_list = (
                sig_ctx.ravel()[insig_idx].astype(np.int64) + base
            ).tolist()
        else:
            # Nothing significant yet: zero-neighbour context everywhere,
            # no refinement pass (mirrors the encoder-side shortcut).
            insig_idx = np.arange(magnitude.size, dtype=np.int64)
            prev_idx = _EMPTY_I64
            ctx_list = [base] * magnitude.size
        plane_value = np.int64(1) << plane
        bits, sbits = decoder.decode_sig_pass(
            ctx_list,
            base + _SIGN_OFFSET,
        )
        newly = insig_idx[np.asarray(bits, dtype=bool)]
        mag_flat[newly] += plane_value
        sig_flat[newly] = True
        sign_flat[newly] = np.asarray(sbits, dtype=bool)
        ref_bits = decoder.decode_ref_pass(prev_idx.size, base + _REF_OFFSET)
        mag_flat[prev_idx[np.asarray(ref_bits, dtype=bool)]] += plane_value
