"""JPEG-2000-style image codec substrate.

The paper encodes changed tiles with an off-the-shelf JPEG-2000 encoder
(Kakadu) using region-of-interest and layered (quality-progressive) features.
Kakadu is proprietary and no codec binding is available offline, so this
package implements the codec for real, in numpy:

* multilevel lifting DWT — CDF 9/7 (lossy) and LeGall 5/3 (integer,
  reversible) with symmetric extension and arbitrary (odd) sizes
  (:mod:`repro.codec.dwt`);
* dead-zone scalar quantization with per-subband steps
  (:mod:`repro.codec.quantize`);
* embedded bit-plane coding with previous-plane significance contexts,
  driving an adaptive binary arithmetic (range) coder
  (:mod:`repro.codec.bitplane`, :mod:`repro.codec.arith`), plus a
  byte-identical vectorized fast path (:mod:`repro.codec.fastpath`) and a
  native compiled engine (:mod:`repro.codec.compiled`), all registered
  behind one backend registry (:mod:`repro.codec.registry`);
* a tile/image codec with region-of-interest tile selection, post-compression
  rate-distortion truncation, and quality layers
  (:mod:`repro.codec.jpeg2000`);
* a calibrated fast rate model used by large parameter sweeps
  (:mod:`repro.codec.ratemodel`), validated against the real coder.

Encode→decode round-trips are exact within the quantizer bound, and the 5/3
path is bit-exact lossless — both are property-tested.
"""

from repro.codec import registry
from repro.codec.metrics import psnr, mse, compression_ratio
from repro.codec.dwt import (
    forward_dwt2d,
    inverse_dwt2d,
    Wavelet,
    WaveletCoeffs,
)
from repro.codec.quantize import QuantizerSpec, quantize_coeffs, dequantize_coeffs
from repro.codec.arith import ArithmeticEncoder, ArithmeticDecoder, ContextModel
from repro.codec.bitstream import BitWriter, BitReader
from repro.codec.fastpath import VectorizedPlaneCoder
from repro.codec.jpeg2000 import (
    ImageCodec,
    EncodedImage,
    EncodedTile,
    CodecConfig,
    PLANE_CODER_BACKENDS,
)
from repro.codec.ratemodel import RateModel, RateModelResult

__all__ = [
    "registry",
    "psnr",
    "mse",
    "compression_ratio",
    "forward_dwt2d",
    "inverse_dwt2d",
    "Wavelet",
    "WaveletCoeffs",
    "QuantizerSpec",
    "quantize_coeffs",
    "dequantize_coeffs",
    "ArithmeticEncoder",
    "ArithmeticDecoder",
    "ContextModel",
    "BitWriter",
    "BitReader",
    "ImageCodec",
    "EncodedImage",
    "EncodedTile",
    "CodecConfig",
    "PLANE_CODER_BACKENDS",
    "VectorizedPlaneCoder",
    "RateModel",
    "RateModelResult",
]
