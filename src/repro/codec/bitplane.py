"""Embedded bit-plane coding of quantized subbands.

The quantized coefficients of a tile are coded magnitude-bit-plane by
bit-plane, most significant first, so the bitstream is *embedded*: any
prefix (at plane granularity) decodes to a coarser-but-valid reconstruction.
This is what makes post-compression rate-distortion truncation and quality
layers possible (:mod:`repro.codec.jpeg2000`), mirroring EBCOT's role in
JPEG 2000.

Context modelling follows the parallel-context simplification: a
coefficient's significance context is derived from its 8-neighbourhood
significance *as of the previous plane*, so encoder and decoder compute
contexts from information both already share, and the per-plane (bit,
context) streams can be prepared with vectorized numpy before the sequential
arithmetic-coding loop.

Each plane is flushed into its own arithmetic codeword (a few bytes of
overhead) so that a truncated stream is a clean list of whole segments.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.arith import ArithmeticDecoder, ArithmeticEncoder, ContextSet
from repro.errors import BitstreamError


@dataclass
class PlaneSegment:
    """One coded bit-plane of one subband group.

    Attributes:
        plane: Bit-plane index (higher = more significant).
        data: The flushed arithmetic codeword for this plane.
    """

    plane: int
    data: bytes


def check_bands(
    band_shapes: list[tuple[str, int, tuple[int, int]]],
    bands: list[np.ndarray],
) -> None:
    """Validate that ``bands`` matches the declared count and shapes.

    Shared by the reference and vectorized plane coders.

    Raises:
        BitstreamError: On any count or shape mismatch.
    """
    if len(bands) != len(band_shapes):
        raise BitstreamError(
            f"expected {len(band_shapes)} subbands, got {len(bands)}"
        )
    for band, (name, level, shape) in zip(bands, band_shapes):
        if tuple(band.shape) != tuple(shape):
            raise BitstreamError(
                f"subband {name}{level} shape {band.shape} != expected {shape}"
            )


def _neighbor_count(significant: np.ndarray) -> np.ndarray:
    """Number of significant 8-neighbours for every position."""
    height, width = significant.shape
    padded = np.zeros((height + 2, width + 2), dtype=np.int32)
    padded[1:-1, 1:-1] = significant
    return (
        padded[:-2, :-2] + padded[:-2, 1:-1] + padded[:-2, 2:]
        + padded[1:-1, :-2] + padded[1:-1, 2:]
        + padded[2:, :-2] + padded[2:, 1:-1] + padded[2:, 2:]
    )


def _significance_context(neighbors: np.ndarray, band_key: str) -> np.ndarray:
    """Bucket neighbour counts into 3 contexts (0 / 1-2 / 3+) per band."""
    bucket = np.zeros(neighbors.shape, dtype=np.int8)
    bucket[(neighbors >= 1) & (neighbors <= 2)] = 1
    bucket[neighbors >= 3] = 2
    return bucket


class SubbandPlaneCoder:
    """Codes the magnitude bit-planes of a list of subband arrays.

    Encoder and decoder share this class; the direction is chosen per call.
    All subbands of a tile are coded inside each plane (coarsest subband
    first) so one truncation point cuts the whole tile consistently.
    """

    def __init__(self, band_shapes: list[tuple[str, int, tuple[int, int]]]) -> None:
        """Args:
        band_shapes: ``(name, level, shape)`` for each subband, in the
            fixed coding order (coarsest-first as produced by
            ``WaveletCoeffs.subbands``).
        """
        self.band_shapes = band_shapes

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(
        self, bands: list[np.ndarray], max_plane: int
    ) -> list[PlaneSegment]:
        """Encode all planes from ``max_plane`` down to 0.

        Args:
            bands: Quantized int arrays matching ``band_shapes`` order.
            max_plane: Highest occupied plane (from
                :func:`repro.codec.quantize.max_bitplane`).

        Returns:
            One :class:`PlaneSegment` per plane, most significant first.
        """
        self._check_bands(bands)
        magnitudes = [np.abs(band).astype(np.int64) for band in bands]
        signs = [band < 0 for band in bands]
        significant = [np.zeros(band.shape, dtype=bool) for band in bands]
        contexts = ContextSet()
        segments: list[PlaneSegment] = []
        for plane in range(max_plane, -1, -1):
            encoder = ArithmeticEncoder(contexts)
            for idx, (name, level, _) in enumerate(self.band_shapes):
                self._encode_band_plane(
                    encoder,
                    name,
                    magnitudes[idx],
                    signs[idx],
                    significant[idx],
                    plane,
                )
            segments.append(PlaneSegment(plane=plane, data=encoder.finish()))
        return segments

    def _encode_band_plane(
        self,
        encoder: ArithmeticEncoder,
        band_key: str,
        magnitude: np.ndarray,
        sign: np.ndarray,
        significant: np.ndarray,
        plane: int,
    ) -> None:
        if magnitude.size == 0:
            return
        bit_here = (magnitude >> plane) & 1
        prev_significant = significant.copy()
        neighbors = _neighbor_count(prev_significant)
        sig_ctx = _significance_context(neighbors, band_key)
        flat_newly = ~prev_significant
        # Significance pass: previously-insignificant coefficients.
        ys, xs = np.nonzero(flat_newly)
        bits = bit_here[ys, xs]
        ctxs = sig_ctx[ys, xs]
        sgns = sign[ys, xs]
        encode = encoder.encode
        for position in range(ys.size):
            bit = int(bits[position])
            encode(bit, (band_key, "sig", int(ctxs[position])))
            if bit:
                encode(int(sgns[position]), (band_key, "sign"))
        # Refinement pass: already-significant coefficients.
        ys, xs = np.nonzero(prev_significant)
        bits = bit_here[ys, xs]
        for position in range(ys.size):
            encode(int(bits[position]), (band_key, "ref"))
        # Update shared significance state.
        significant |= bit_here.astype(bool)

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self, segments: list[PlaneSegment], max_plane: int
    ) -> list[np.ndarray]:
        """Decode however many plane segments are present.

        Args:
            segments: A (possibly truncated) prefix of the encoded planes,
                most significant first.
            max_plane: The ``max_plane`` used at encode time.

        Returns:
            Signed integer reconstructions (missing planes read as zeros;
            partially-decoded magnitudes get no midpoint correction here —
            that happens at dequantization).
        """
        contexts = ContextSet()
        magnitudes = [
            np.zeros(shape, dtype=np.int64) for _, _, shape in self.band_shapes
        ]
        signs = [
            np.zeros(shape, dtype=bool) for _, _, shape in self.band_shapes
        ]
        significant = [
            np.zeros(shape, dtype=bool) for _, _, shape in self.band_shapes
        ]
        expected_plane = max_plane
        for segment in segments:
            if segment.plane != expected_plane:
                raise BitstreamError(
                    f"plane segments out of order: expected {expected_plane}, "
                    f"got {segment.plane}"
                )
            decoder = ArithmeticDecoder(segment.data, contexts)
            for idx, (name, level, _) in enumerate(self.band_shapes):
                self._decode_band_plane(
                    decoder,
                    name,
                    magnitudes[idx],
                    signs[idx],
                    significant[idx],
                    segment.plane,
                )
            expected_plane -= 1
        out = []
        for magnitude, sign in zip(magnitudes, signs):
            values = magnitude.copy()
            values[sign] = -values[sign]
            out.append(values)
        return out

    def _decode_band_plane(
        self,
        decoder: ArithmeticDecoder,
        band_key: str,
        magnitude: np.ndarray,
        sign: np.ndarray,
        significant: np.ndarray,
        plane: int,
    ) -> None:
        if magnitude.size == 0:
            return
        prev_significant = significant.copy()
        neighbors = _neighbor_count(prev_significant)
        sig_ctx = _significance_context(neighbors, band_key)
        plane_value = 1 << plane
        decode = decoder.decode
        ys, xs = np.nonzero(~prev_significant)
        ctxs = sig_ctx[ys, xs]
        for position in range(ys.size):
            bit = decode((band_key, "sig", int(ctxs[position])))
            if bit:
                y, x = ys[position], xs[position]
                magnitude[y, x] += plane_value
                significant[y, x] = True
                sign[y, x] = bool(decode((band_key, "sign")))
        ys, xs = np.nonzero(prev_significant)
        for position in range(ys.size):
            if decode((band_key, "ref")):
                magnitude[ys[position], xs[position]] += plane_value

    def _check_bands(self, bands: list[np.ndarray]) -> None:
        check_bands(self.band_shapes, bands)


def truncation_distortions(
    bands: list[np.ndarray], max_plane: int
) -> list[float]:
    """Sum-squared quantization-index error at each truncation depth.

    Entry ``k`` is the SSE (in quantization-index units, per subband summed)
    if only the top ``k`` planes are kept: the decoder sees
    ``magnitude >> (max_plane + 1 - k) << (max_plane + 1 - k)``.

    The caller weights these by squared subband steps to get pixel-domain
    distortion estimates for rate allocation.
    """
    out: list[float] = []
    for kept in range(max_plane + 2):
        shift = max_plane + 1 - kept
        sse = 0.0
        for band in bands:
            magnitude = np.abs(band).astype(np.int64)
            truncated = (magnitude >> shift) << shift if shift > 0 else magnitude
            diff = (magnitude - truncated).astype(np.float64)
            sse += float(np.sum(diff * diff))
        out.append(sse)
    return out
