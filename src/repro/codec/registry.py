"""Codec backend registry: named engines, one resolution path.

Every entropy-coding engine the codec can run on is registered here as a
:class:`CodecBackend` — a name, capability flags, a plane-coder factory,
and an availability probe.  All layers that used to thread ad-hoc backend
strings around (``ImageCodec``, ``RealCodecAdapter``, the rate model, the
scenario workers, ``cli.py --codec``) now go through :func:`resolve`,
which applies one precedence order everywhere:

1. an explicit ``backend=`` argument,
2. the engine named by ``EarthPlusConfig.codec_backend``,
3. the ``REPRO_CODEC_BACKEND`` environment variable (read at call time),
4. the default (``"reference"`` for a bare :class:`ImageCodec`).

The name ``"real"`` is a virtual alias meaning "the best available
bit-exact engine" — ``compiled`` when the native kernels built, else
``vectorized``.  Requesting ``compiled`` on a machine without a C
toolchain warns once and falls back to ``vectorized`` (same bitstreams,
slower), so configs are portable across machines.

Backend choice is *engine-only*: all registered engines are differential-
tested byte-identical, so the choice never enters the experiment-store
key (see ``repro.store.specs``), exactly like the shard count.

Registering a new engine::

    from repro.codec import registry

    registry.register(registry.CodecBackend(
        name="mine",
        description="my experimental coder",
        coder_factory=MyPlaneCoder,      # (band_shapes) -> plane coder
        batched=True,                    # consumes whole (bits, ctxs) arrays
        compiled=False,                  # no native kernels
        availability=lambda: None,       # or a reason string when unusable
    ))

The only contract is the plane-coder API (``encode(bands, max_plane)`` /
``decode(segments, max_plane)``) and byte-identical output — add the new
name to the differential/golden/corruption parameterizations to enforce
that.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import CodecError
from repro.obs.metrics import counters

#: Environment variable naming the default engine (read at call time, so
#: exporting it after import works — unlike the old import-time reads).
ENV_BACKEND = "REPRO_CODEC_BACKEND"

#: Virtual name resolving to the best available bit-exact engine.
REAL_ALIAS = "real"

#: The engine every machine can run; unavailable engines fall back here.
FALLBACK_BACKEND = "vectorized"


@dataclass(frozen=True)
class CodecBackend:
    """One registered entropy-coding engine.

    Attributes:
        name: Registry key (``--codec`` value, config value, env value).
        description: One line for ``--help`` and error messages.
        coder_factory: ``(band_shapes) -> plane coder`` constructor; the
            coder must implement ``encode(bands, max_plane)`` and
            ``decode(segments, max_plane)``.
        batched: Capability — consumes whole (bits, contexts) arrays
            instead of coding bit by bit.
        compiled: Capability — runs on native compiled kernels.
        availability: Probe returning None when usable, else a human-
            readable reason (checked at resolve time, never at import).
    """

    name: str
    description: str
    coder_factory: Callable
    batched: bool = False
    compiled: bool = False
    availability: Callable[[], "str | None"] = field(
        default=lambda: None, repr=False
    )

    def available(self) -> bool:
        """Whether this engine can run on this machine right now."""
        return self.availability() is None


# repro: allow(RPR005): populated only by import-time register() calls, so every process (driver or forked worker) builds the identical registry; all engines are differential-tested byte-identical anyway
_REGISTRY: "dict[str, CodecBackend]" = {}
# repro: allow(RPR005): warn-once bookkeeping — divergence across workers only changes how many times a warning prints, never a result byte
_warned_fallback: "set[str]" = set()


def register(backend: CodecBackend, replace: bool = False) -> CodecBackend:
    """Register an engine; ``replace=True`` overrides an existing name."""
    if not replace and backend.name in _REGISTRY:
        raise CodecError(f"codec backend {backend.name!r} already registered")
    if backend.name == REAL_ALIAS:
        raise CodecError(f"{REAL_ALIAS!r} is reserved as a virtual alias")
    _REGISTRY[backend.name] = backend
    return backend


def names() -> "tuple[str, ...]":
    """Registered engine names, registration order."""
    return tuple(_REGISTRY)


def get(name: str) -> CodecBackend:
    """Look up an engine by exact name.

    Raises:
        CodecError: Unknown name (lists the valid ones).
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        raise CodecError(
            f"backend must be one of {sorted(_REGISTRY)}, got {name!r}"
        ) from None


def best_available() -> CodecBackend:
    """The fastest usable engine (what the ``"real"`` alias means).

    Engines register in speed order, so the last available one wins.
    """
    return _best_available()


def resolve(
    explicit: "str | None" = None,
    config_backend: "str | None" = None,
    default: str = "reference",
) -> CodecBackend:
    """Resolve the engine to use, applying the one true precedence order.

    ``explicit`` > ``config_backend`` > ``$REPRO_CODEC_BACKEND`` >
    ``default``.  The virtual name ``"real"`` picks the best available
    engine; a named engine that is unavailable on this machine warns once
    and falls back to ``vectorized`` (byte-identical output).

    Raises:
        CodecError: Unknown engine name.
    """
    requested = explicit or config_backend or _env_backend() or default
    if requested == REAL_ALIAS:
        backend = _best_available()
        counters().inc(f"codec.resolve.{backend.name}")
        return backend
    backend = get(requested)
    reason = backend.availability()
    if reason is None:
        counters().inc(f"codec.resolve.{backend.name}")
        return backend
    if backend.name not in _warned_fallback:
        _warned_fallback.add(backend.name)
        warnings.warn(
            f"codec backend {backend.name!r} is unavailable ({reason}); "
            f"falling back to {FALLBACK_BACKEND!r} (byte-identical, slower)",
            RuntimeWarning,
            stacklevel=2,
        )
    counters().inc("codec.fallback")
    counters().inc(f"codec.resolve.{FALLBACK_BACKEND}")
    return get(FALLBACK_BACKEND)


def resolve_name(
    explicit: "str | None" = None,
    config_backend: "str | None" = None,
    default: str = "reference",
) -> str:
    """:func:`resolve`, returning just the engine name (for worker args)."""
    return resolve(explicit, config_backend, default).name


# (raw env value, kernels-or-None): kernels() sits on per-subband hot
# paths (DWT dispatch, rate-model histograms), so re-resolve only when
# $REPRO_CODEC_BACKEND actually changes — one dict lookup per call.
_KERNELS_CACHE: "tuple[str | None, object] | None" = None


def kernels_enabled() -> bool:
    """Whether the compiled kernels may accelerate shared fast paths.

    The DWT lifting and rate-model kernels are engine-independent and
    bit-exact, so they run whenever the native library is available —
    unless the environment pins a pure-Python engine
    (``REPRO_CODEC_BACKEND=reference|vectorized``), which benchmarks and
    tests use to measure/exercise the numpy paths unaccelerated.
    """
    return kernels() is not None


def kernels():
    """The loaded kernel library when enabled, else None (hot-path helper)."""
    global _KERNELS_CACHE
    raw = os.environ.get(ENV_BACKEND)
    cache = _KERNELS_CACHE
    if cache is not None and cache[0] == raw:
        return cache[1]
    value = raw.strip() if raw is not None else None
    if value in ("reference", FALLBACK_BACKEND):
        lib = None
    else:
        from repro.codec import _ckernels

        lib = _ckernels.load()
    _KERNELS_CACHE = (raw, lib)
    return lib


def _env_backend() -> "str | None":
    value = os.environ.get(ENV_BACKEND)
    if value is None:
        return None
    value = value.strip()
    return value or None


def _best_available() -> CodecBackend:
    best = None
    for backend in _REGISTRY.values():
        if backend.available():
            best = backend
    if best is None:  # cannot happen: reference/vectorized are always usable
        raise CodecError("no codec backend is available")
    return best


def reset_fallback_warnings() -> None:
    """Re-arm the once-per-backend fallback warning (tests)."""
    _warned_fallback.clear()


def reset_kernels_cache() -> None:
    """Drop the memoized kernel handle (after re-probing the toolchain)."""
    global _KERNELS_CACHE
    _KERNELS_CACHE = None


def _register_builtins() -> None:
    """Register the built-in engines (import-cycle-safe: lazy factories)."""
    from repro.codec.bitplane import SubbandPlaneCoder
    from repro.codec.fastpath import VectorizedPlaneCoder

    register(
        CodecBackend(
            name="reference",
            description="per-bit adaptive arithmetic coder (pure Python)",
            coder_factory=SubbandPlaneCoder,
        )
    )
    register(
        CodecBackend(
            name=FALLBACK_BACKEND,
            description="batched numpy fast path, byte-identical",
            coder_factory=VectorizedPlaneCoder,
            batched=True,
        )
    )

    def _compiled_factory(band_shapes):
        from repro.codec.compiled import CompiledPlaneCoder

        return CompiledPlaneCoder(band_shapes)

    def _compiled_availability() -> "str | None":
        from repro.codec import _ckernels

        return _ckernels.unavailable_reason()

    register(
        CodecBackend(
            name="compiled",
            description="native C kernels (built on first use), byte-identical",
            coder_factory=_compiled_factory,
            batched=True,
            compiled=True,
            availability=_compiled_availability,
        )
    )


_register_builtins()
