"""Dead-zone scalar quantization of wavelet coefficients.

JPEG 2000 quantizes each subband with a dead-zone uniform quantizer whose
step scales with the subband's synthesis gain; we mirror that: a single base
step is modulated per subband by level/orientation weights so that a given
step produces visually balanced error across scales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.codec.dwt import WaveletCoeffs
from repro.errors import CodecError

#: Relative quantizer-step weight per subband orientation.  LL carries the
#: most perceptually-important energy, so it gets the finest step.
_ORIENTATION_WEIGHT = {"LL": 0.5, "HL": 1.0, "LH": 1.0, "HH": 1.4}


def subband_step(base_step: float, name: str, level: int) -> float:
    """Quantizer step for one subband.

    Coarser levels (higher ``level``) get finer steps because their
    coefficients influence more pixels on synthesis.

    Args:
        base_step: The image-level base quantizer step (> 0).
        name: Subband orientation, one of LL/HL/LH/HH.
        level: Decomposition level (1 = finest).

    Returns:
        The effective step for this subband.
    """
    if base_step <= 0:
        raise CodecError(f"base_step must be positive, got {base_step}")
    try:
        orientation = _ORIENTATION_WEIGHT[name]
    except KeyError:
        raise CodecError(f"unknown subband orientation {name!r}") from None
    return base_step * orientation / (2.0 ** (level - 1)) * 2.0


@dataclass(frozen=True)
class QuantizerSpec:
    """Quantization parameters for a decomposition.

    Attributes:
        base_step: Image-level base step; per-subband steps derive from it.
    """

    base_step: float

    def step_for(self, name: str, level: int) -> float:
        """Effective step for subband ``(name, level)``."""
        return subband_step(self.base_step, name, level)


def quantize_coeffs(
    coeffs: WaveletCoeffs, spec: QuantizerSpec
) -> list[tuple[str, int, np.ndarray]]:
    """Dead-zone quantize every subband.

    ``q = sign(c) * floor(|c| / step)`` — the dead zone is twice the step,
    which suppresses the dense near-zero detail coefficients cheaply.

    Args:
        coeffs: A wavelet decomposition.
        spec: Quantizer parameters.

    Returns:
        ``(name, level, int32 array)`` triples in subband order.
    """
    out: list[tuple[str, int, np.ndarray]] = []
    for name, level, band in coeffs.subbands():
        step = spec.step_for(name, level)
        magnitudes = np.floor(np.abs(band) / step).astype(np.int32)
        signs = np.sign(band).astype(np.int32)
        out.append((name, level, signs * magnitudes))
    return out


def dequantize_coeffs(
    quantized: list[tuple[str, int, np.ndarray]],
    spec: QuantizerSpec,
    reconstruction_offset: float = 0.5,
) -> list[tuple[str, int, np.ndarray]]:
    """Invert :func:`quantize_coeffs` to reconstruction midpoints.

    ``c~ = sign(q) * (|q| + offset) * step`` for nonzero ``q``; zero stays
    zero (centre of the dead zone).

    Args:
        quantized: Output of :func:`quantize_coeffs`.
        spec: The same quantizer parameters used to quantize.
        reconstruction_offset: Placement within the quantization bin; 0.5 is
            the bin midpoint, JPEG 2000 decoders often use 0.375.

    Returns:
        ``(name, level, float64 array)`` triples.
    """
    out: list[tuple[str, int, np.ndarray]] = []
    for name, level, band_q in quantized:
        step = spec.step_for(name, level)
        magnitudes = np.abs(band_q).astype(np.float64)
        values = np.where(
            band_q != 0,
            np.sign(band_q) * (magnitudes + reconstruction_offset) * step,
            0.0,
        )
        out.append((name, level, values))
    return out


def max_bitplane(quantized: list[tuple[str, int, np.ndarray]]) -> int:
    """Highest occupied bit-plane index across all subbands.

    Returns -1 if every quantized coefficient is zero.
    """
    top = -1
    for _, _, band_q in quantized:
        if band_q.size == 0:
            continue
        peak = int(np.abs(band_q).max())
        if peak > 0:
            top = max(top, peak.bit_length() - 1)
    return top
