"""Tile-based JPEG-2000-style image codec with ROI and quality layers.

This is the codec the Earth+ pipeline and the baselines encode with.  It
mirrors the three Kakadu features the paper relies on:

* **tile independence** — each 64x64 tile (configurable) is transformed,
  quantized and entropy-coded on its own, so a region-of-interest is simply
  a subset of tiles (the paper's changed tiles);
* **rate targeting** — post-compression rate-distortion truncation picks a
  per-tile bit-plane depth so the whole image meets a byte budget (the
  paper's ``gamma`` bits-per-pixel knob);
* **quality layers** — the embedded per-tile streams are split at multiple
  truncation points, so the ground can download fewer layers when the
  downlink dips (§5, "Handling bandwidth fluctuation").

The container serializes to real bytes (:meth:`EncodedImage.to_bytes`), so
every downlink number in the evaluation is counted off an actual bitstream.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass, field

import numpy as np

from repro.codec import registry
from repro.codec.bitplane import PlaneSegment, SubbandPlaneCoder
from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.fastpath import VectorizedPlaneCoder
from repro.codec.dwt import Wavelet, WaveletCoeffs, forward_dwt2d, inverse_dwt2d
from repro.codec.quantize import (
    QuantizerSpec,
    dequantize_coeffs,
    max_bitplane,
    quantize_coeffs,
)
from repro.errors import BitstreamError, CodecError, RateControlError

_MAGIC = b"EPJ2"


def _plane_coder_backends() -> dict:
    """Backwards-compatible view of the registry (name -> coder factory).

    The registry (:mod:`repro.codec.registry`) is the source of truth;
    this module-level mapping survives for callers that used to import
    ``PLANE_CODER_BACKENDS`` directly.
    """
    return {
        name: registry.get(name).coder_factory for name in registry.names()
    }


#: Entropy-coding backends: all produce byte-identical bitstreams (enforced
#: by the differential test harness).  Deprecated alias — use
#: ``repro.codec.registry`` instead.
PLANE_CODER_BACKENDS = _plane_coder_backends()


def subband_shapes(
    shape: tuple[int, int], levels: int
) -> list[tuple[str, int, tuple[int, int]]]:
    """Subband ``(name, level, shape)`` list matching ``forward_dwt2d``.

    Shapes follow the ceil/floor halving of the lifting split: the low-pass
    branch keeps ``ceil(n/2)`` samples and the high-pass ``floor(n/2)``.
    """
    sizes = [shape]
    for _ in range(levels):
        height, width = sizes[-1]
        sizes.append(((height + 1) // 2, (width + 1) // 2))
    out: list[tuple[str, int, tuple[int, int]]] = [("LL", levels, sizes[levels])]
    for level in range(levels, 0, -1):
        height, width = sizes[level - 1]
        ll_h, ll_w = (height + 1) // 2, (width + 1) // 2
        hi_h, hi_w = height // 2, width // 2
        out.append(("HL", level, (ll_h, hi_w)))
        out.append(("LH", level, (hi_h, ll_w)))
        out.append(("HH", level, (hi_h, hi_w)))
    return out


def effective_levels(shape: tuple[int, int], requested: int) -> int:
    """Decomposition depth actually usable for a (possibly small) tile."""
    shortest = max(1, min(shape))
    feasible = int(math.floor(math.log2(shortest))) if shortest > 1 else 1
    return max(1, min(requested, max(1, feasible)))


@dataclass(frozen=True)
class CodecConfig:
    """Static codec parameters.

    Attributes:
        tile_size: Tile edge in pixels (the paper uses 64).
        levels: Requested DWT levels per tile.
        wavelet: Filter; LeGall 5/3 enables the lossless path.
        bit_depth: Integer precision for the lossless path.
        base_step: Default quantizer base step for the lossy path.
    """

    tile_size: int = 64
    levels: int = 3
    wavelet: Wavelet = Wavelet.CDF97
    bit_depth: int = 10
    base_step: float = 1.0 / 512.0

    def __post_init__(self) -> None:
        if self.tile_size <= 0:
            raise CodecError(f"tile_size must be positive, got {self.tile_size}")
        if self.levels < 1:
            raise CodecError(f"levels must be >= 1, got {self.levels}")
        if not 1 <= self.bit_depth <= 16:
            raise CodecError(f"bit_depth must be in 1..16, got {self.bit_depth}")
        if self.base_step <= 0:
            raise CodecError(f"base_step must be positive, got {self.base_step}")

    @property
    def lossless(self) -> bool:
        """True when configured for the reversible 5/3 path."""
        return self.wavelet is Wavelet.LEGALL53


@dataclass
class EncodedTile:
    """One encoded tile: embedded plane segments plus RD bookkeeping.

    Attributes:
        tile_index: ``(ty, tx)`` grid position.
        max_plane: Highest occupied magnitude bit-plane (-1 if all zero).
        segments: Plane segments, most significant first.
        layer_planes: Number of planes included up to and including each
            layer (cumulative, non-decreasing).
        rd_bytes: Cumulative byte cost at each truncation depth
            (index k = top k planes kept).
        rd_distortion: Pixel-domain distortion estimate at each depth.
    """

    tile_index: tuple[int, int]
    max_plane: int
    segments: list[PlaneSegment]
    layer_planes: list[int] = field(default_factory=list)
    rd_bytes: list[int] = field(default_factory=list)
    rd_distortion: list[float] = field(default_factory=list)

    @property
    def planes_available(self) -> int:
        return len(self.segments)


@dataclass
class EncodedImage:
    """A complete encoded image (container + per-tile streams).

    Attributes:
        shape: Original image shape.
        config: Codec parameters used.
        base_step: Quantizer base step actually used.
        roi: Boolean tile grid of encoded tiles.
        tiles: Encoded tiles, row-major over the ROI.
        n_layers: Number of quality layers.
    """

    shape: tuple[int, int]
    config: CodecConfig
    base_step: float
    roi: np.ndarray
    tiles: list[EncodedTile]
    n_layers: int

    def layer_bytes(self, layer: int) -> int:
        """Payload bytes contributed by quality layer ``layer`` (0-based)."""
        if not 0 <= layer < self.n_layers:
            raise CodecError(f"layer {layer} out of range 0..{self.n_layers - 1}")
        total = 0
        for tile in self.tiles:
            lo = tile.layer_planes[layer - 1] if layer > 0 else 0
            hi = tile.layer_planes[layer]
            total += sum(len(s.data) for s in tile.segments[lo:hi])
        return total

    def payload_bytes(self, layers: int | None = None) -> int:
        """Total segment payload bytes for the first ``layers`` layers."""
        layers = self.n_layers if layers is None else layers
        return sum(self.layer_bytes(layer) for layer in range(layers))

    @property
    def total_bytes(self) -> int:
        """Full serialized size, header included."""
        return len(self.to_bytes())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize container + payload to a real byte string."""
        writer = BitWriter()
        writer.write_bytes(_MAGIC)
        writer.write_uvarint(self.shape[0])
        writer.write_uvarint(self.shape[1])
        writer.write_uvarint(self.config.tile_size)
        writer.write_uvarint(self.config.levels)
        writer.write_uvarint(0 if self.config.wavelet is Wavelet.CDF97 else 1)
        writer.write_uvarint(self.config.bit_depth)
        writer.write_uvarint(self.n_layers)
        writer.write_bytes(struct.pack("<d", self.base_step))
        roi_flat = self.roi.ravel()
        writer.write_uvarint(roi_flat.size)
        for bit in roi_flat:
            writer.write_bit(int(bit))
        writer.align()
        writer.write_uvarint(len(self.tiles))
        for tile in self.tiles:
            writer.write_uvarint(tile.tile_index[0])
            writer.write_uvarint(tile.tile_index[1])
            writer.write_uvarint(tile.max_plane + 1)
            writer.write_uvarint(len(tile.segments))
            for cum in tile.layer_planes:
                writer.write_uvarint(cum)
            for segment in tile.segments:
                writer.write_uvarint(len(segment.data))
        for tile in self.tiles:
            for segment in tile.segments:
                writer.write_bytes(segment.data)
        return writer.getvalue()

    @classmethod
    def from_bytes(cls, data: bytes) -> "EncodedImage":
        """Parse a container produced by :meth:`to_bytes`."""
        reader = BitReader(data)
        if reader.read_bytes(4) != _MAGIC:
            raise BitstreamError("bad magic; not an EncodedImage container")
        height = reader.read_uvarint()
        width = reader.read_uvarint()
        tile_size = reader.read_uvarint()
        levels = reader.read_uvarint()
        wavelet = Wavelet.CDF97 if reader.read_uvarint() == 0 else Wavelet.LEGALL53
        bit_depth = reader.read_uvarint()
        n_layers = reader.read_uvarint()
        (base_step,) = struct.unpack("<d", reader.read_bytes(8))
        # A corrupted header must surface as BitstreamError, never as a
        # config/validation error or a pathological allocation.
        try:
            config = CodecConfig(
                tile_size=tile_size,
                levels=levels,
                wavelet=wavelet,
                bit_depth=bit_depth,
                base_step=base_step if base_step > 0 else 1.0 / 512.0,
            )
        except CodecError as exc:
            raise BitstreamError(f"corrupt container header: {exc}") from exc
        if n_layers < 1:
            raise BitstreamError(f"corrupt layer count {n_layers}")
        roi_size = reader.read_uvarint()
        tiles_y = (height + tile_size - 1) // tile_size
        tiles_x = (width + tile_size - 1) // tile_size
        if roi_size != tiles_y * tiles_x:
            raise BitstreamError("ROI bitmap size mismatch")
        if roi_size > reader.remaining_bytes() * 8:
            raise BitstreamError("truncated ROI bitmap")
        roi = np.zeros(roi_size, dtype=bool)
        for idx in range(roi_size):
            roi[idx] = bool(reader.read_bit())
        reader.align()
        roi = roi.reshape(tiles_y, tiles_x)
        n_tiles = reader.read_uvarint()
        metas = []
        for _ in range(n_tiles):
            ty = reader.read_uvarint()
            tx = reader.read_uvarint()
            max_plane = reader.read_uvarint() - 1
            # Magnitudes are reconstructed into int64 planes; anything
            # deeper than 62 is unreachable from a real encode and would
            # overflow downstream, so treat it as corruption here.
            if max_plane > 62:
                raise BitstreamError(f"corrupt max_plane {max_plane}")
            n_segments = reader.read_uvarint()
            if n_segments > max_plane + 1:
                raise BitstreamError(
                    f"corrupt tile: {n_segments} segments for "
                    f"max_plane {max_plane}"
                )
            layer_planes = [reader.read_uvarint() for _ in range(n_layers)]
            seg_lens = [reader.read_uvarint() for _ in range(n_segments)]
            metas.append((ty, tx, max_plane, layer_planes, seg_lens))
        tiles = []
        for ty, tx, max_plane, layer_planes, seg_lens in metas:
            segments = []
            for offset, seg_len in enumerate(seg_lens):
                segments.append(
                    PlaneSegment(
                        plane=max_plane - offset,
                        data=reader.read_bytes(seg_len),
                    )
                )
            tiles.append(
                EncodedTile(
                    tile_index=(ty, tx),
                    max_plane=max_plane,
                    segments=segments,
                    layer_planes=layer_planes,
                )
            )
        return cls(
            shape=(height, width),
            config=config,
            base_step=base_step,
            roi=roi,
            tiles=tiles,
            n_layers=n_layers,
        )


class ImageCodec:
    """Encoder/decoder facade over the tile pipeline.

    Args:
        config: Codec parameters; defaults match the paper's setup
            (64x64 tiles, 3-level 9/7).
        backend: Entropy-coding engine name from the backend registry
            (``"reference"``, ``"vectorized"``, ``"compiled"``, or the
            ``"real"`` best-available alias).  ``None`` (default) resolves
            through the registry precedence chain — explicit argument,
            then ``$REPRO_CODEC_BACKEND``, then ``"reference"``.  All
            engines are bit-exact: identical bitstreams, identical
            reconstructions.
        parallel_tiles: Worker processes for the tile-level parallel
            encode/decode driver; ``1`` (default) runs in-process.  Tiles
            are independent, so parallel results are byte-identical to
            serial ones.
    """

    def __init__(
        self,
        config: CodecConfig | None = None,
        backend: str | None = None,
        parallel_tiles: int = 1,
    ) -> None:
        self.config = config if config is not None else CodecConfig()
        resolved = registry.resolve(explicit=backend)
        if parallel_tiles < 1:
            raise CodecError(
                f"parallel_tiles must be >= 1, got {parallel_tiles}"
            )
        self.backend = resolved.name
        self.parallel_tiles = parallel_tiles
        self._coder_cls = resolved.coder_factory
        self._pool = None

    # ------------------------------------------------------------------
    # Tiling helpers
    # ------------------------------------------------------------------
    def tile_grid_shape(self, shape: tuple[int, int]) -> tuple[int, int]:
        """Tile-grid dimensions for an image shape."""
        tile = self.config.tile_size
        return (
            (shape[0] + tile - 1) // tile,
            (shape[1] + tile - 1) // tile,
        )

    def _tile_bounds(
        self, shape: tuple[int, int], ty: int, tx: int
    ) -> tuple[int, int, int, int]:
        tile = self.config.tile_size
        y0, x0 = ty * tile, tx * tile
        return y0, min(y0 + tile, shape[0]), x0, min(x0 + tile, shape[1])

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(
        self,
        image: np.ndarray,
        target_bytes: int | None = None,
        base_step: float | None = None,
        roi: np.ndarray | None = None,
        n_layers: int = 1,
    ) -> EncodedImage:
        """Encode ``image`` (float values in [0, 1]).

        Args:
            image: 2-D float array.
            target_bytes: Optional payload budget; when given, per-tile
                bit-plane depths are chosen by greedy rate-distortion
                optimization to fit it.  Without it every occupied plane is
                kept (quality set purely by ``base_step``).
            base_step: Quantizer base step override (lossy path only).
            roi: Optional boolean tile grid; only True tiles are encoded.
            n_layers: Number of quality layers to split the stream into.

        Returns:
            The encoded image.

        Raises:
            CodecError: On shape/ROI inconsistencies.
        """
        if image.ndim != 2:
            raise CodecError(f"expected 2-D image, got shape {image.shape}")
        if n_layers < 1:
            raise CodecError(f"n_layers must be >= 1, got {n_layers}")
        grid = self.tile_grid_shape(image.shape)
        if roi is None:
            roi = np.ones(grid, dtype=bool)
        if tuple(roi.shape) != grid:
            raise CodecError(f"roi shape {roi.shape} != tile grid {grid}")
        step = base_step if base_step is not None else self.config.base_step
        jobs: list[tuple[np.ndarray, tuple[int, int]]] = []
        for ty in range(grid[0]):
            for tx in range(grid[1]):
                if not roi[ty, tx]:
                    continue
                y0, y1, x0, x1 = self._tile_bounds(image.shape, ty, tx)
                jobs.append((image[y0:y1, x0:x1], (ty, tx)))
        if self.parallel_tiles > 1 and len(jobs) > 1:
            tiles = self._map_tiles_parallel(
                _encode_tile_job,
                [
                    (self.config, self.backend, tile_img, index, step)
                    for tile_img, index in jobs
                ],
            )
        else:
            tiles = [
                self._encode_tile(tile_img, index, step)
                for tile_img, index in jobs
            ]
        self._allocate(tiles, target_bytes, n_layers)
        return EncodedImage(
            shape=image.shape,
            config=self.config,
            base_step=step,
            roi=roi.copy(),
            tiles=tiles,
            n_layers=n_layers,
        )

    def _encode_tile(
        self, tile_img: np.ndarray, index: tuple[int, int], step: float
    ) -> EncodedTile:
        levels = effective_levels(tile_img.shape, self.config.levels)
        if self.config.lossless:
            scale = (1 << self.config.bit_depth) - 1
            ints = np.rint(tile_img * scale).astype(np.int64)
            coeffs = forward_dwt2d(ints, levels, Wavelet.LEGALL53)
            quantized = [
                (name, level, band.astype(np.int64))
                for name, level, band in coeffs.subbands()
            ]
            steps = {(name, level): 1.0 for name, level, _ in quantized}
        else:
            coeffs = forward_dwt2d(
                tile_img.astype(np.float64), levels, Wavelet.CDF97
            )
            spec = QuantizerSpec(base_step=step)
            quantized = quantize_coeffs(coeffs, spec)
            steps = {
                (name, level): spec.step_for(name, level)
                for name, level, _ in quantized
            }
        top = max_bitplane(quantized)
        band_shapes = [
            (f"{name}{level}", level, band.shape)
            for name, level, band in quantized
        ]
        coder = self._coder_cls(
            [(key, level, shape) for key, level, shape in band_shapes]
        )
        bands = [band for _, _, band in quantized]
        segments = coder.encode(bands, top) if top >= 0 else []
        rd_bytes = [0]
        for segment in segments:
            rd_bytes.append(rd_bytes[-1] + len(segment.data))
        rd_distortion = self._distortion_curve(quantized, steps, top)
        return EncodedTile(
            tile_index=index,
            max_plane=top,
            segments=segments,
            rd_bytes=rd_bytes,
            rd_distortion=rd_distortion,
        )

    @staticmethod
    def _distortion_curve(
        quantized: list[tuple[str, int, np.ndarray]],
        steps: dict[tuple[str, int], float],
        top: int,
    ) -> list[float]:
        """Pixel-domain SSE estimate at each truncation depth 0..top+1."""
        curve: list[float] = []
        for kept in range(top + 2):
            shift = top + 1 - kept
            sse = 0.0
            for name, level, band in quantized:
                step = steps[(name, level)]
                magnitude = np.abs(band).astype(np.int64)
                if shift > 0:
                    truncated = (magnitude >> shift) << shift
                else:
                    truncated = magnitude
                diff = (magnitude - truncated).astype(np.float64) * step
                sse += float(np.sum(diff * diff))
            curve.append(sse)
        return curve

    def _allocate(
        self,
        tiles: list[EncodedTile],
        target_bytes: int | None,
        n_layers: int,
    ) -> None:
        """Choose per-tile truncation depths and layer boundaries."""
        if target_bytes is None:
            for tile in tiles:
                keep = tile.planes_available
                tile.layer_planes = self._spread_layers(keep, n_layers)
            return
        if target_bytes < 0:
            raise RateControlError(f"target_bytes must be >= 0, got {target_bytes}")
        # Greedy marginal-utility allocation over concave-ified RD curves.
        kept = [0] * len(tiles)
        spent = 0
        # Each candidate move: add one more plane to tile i.
        import heapq

        heap: list[tuple[float, int]] = []

        def push(i: int) -> None:
            k = kept[i]
            tile = tiles[i]
            if k >= tile.planes_available:
                return
            delta_bytes = tile.rd_bytes[k + 1] - tile.rd_bytes[k]
            delta_dist = tile.rd_distortion[k] - tile.rd_distortion[k + 1]
            utility = delta_dist / max(1, delta_bytes)
            heapq.heappush(heap, (-utility, i))

        for i in range(len(tiles)):
            push(i)
        while heap:
            _, i = heapq.heappop(heap)
            tile = tiles[i]
            k = kept[i]
            if k >= tile.planes_available:
                continue
            delta_bytes = tile.rd_bytes[k + 1] - tile.rd_bytes[k]
            if spent + delta_bytes > target_bytes:
                continue
            kept[i] = k + 1
            spent += delta_bytes
            push(i)
        for tile, keep in zip(tiles, kept):
            tile.segments = tile.segments[:keep]
            tile.layer_planes = self._spread_layers(keep, n_layers)

    @staticmethod
    def _spread_layers(total_planes: int, n_layers: int) -> list[int]:
        """Cumulative plane counts per layer, front-loading early layers."""
        if n_layers == 1:
            return [total_planes]
        out = []
        for layer in range(1, n_layers + 1):
            out.append(int(round(total_planes * layer / n_layers)))
        out[-1] = total_planes
        # Ensure non-decreasing (rounding can stall, never regress).
        for idx in range(1, n_layers):
            out[idx] = max(out[idx], out[idx - 1])
        return out

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self,
        encoded: EncodedImage,
        layers: int | None = None,
        background: np.ndarray | None = None,
    ) -> np.ndarray:
        """Decode an image, optionally stopping after ``layers`` layers.

        Args:
            encoded: The encoded container.
            layers: How many quality layers to use (default: all).
            background: Optional full-size image supplying pixels for tiles
                outside the ROI (the Earth+ ground station passes the
                reference-based reconstruction here).  Non-ROI pixels are 0
                when omitted.

        Returns:
            float64 image in [0, 1].
        """
        layers = encoded.n_layers if layers is None else layers
        if not 1 <= layers <= encoded.n_layers:
            raise CodecError(
                f"layers must be in 1..{encoded.n_layers}, got {layers}"
            )
        if background is not None:
            if background.shape != encoded.shape:
                raise CodecError(
                    f"background shape {background.shape} != image {encoded.shape}"
                )
            out = background.astype(np.float64).copy()
        else:
            out = np.zeros(encoded.shape, dtype=np.float64)
        bounds = []
        jobs = []
        for tile in encoded.tiles:
            ty, tx = tile.tile_index
            y0, y1, x0, x1 = self._tile_bounds(encoded.shape, ty, tx)
            n_planes = tile.layer_planes[layers - 1] if tile.layer_planes else len(
                tile.segments
            )
            bounds.append((y0, y1, x0, x1))
            jobs.append((tile, (y1 - y0, x1 - x0), n_planes))
        if self.parallel_tiles > 1 and len(jobs) > 1:
            patches = self._map_tiles_parallel(
                _decode_tile_job,
                [
                    (self.config, self.backend, shape, tile, n_planes,
                     encoded.base_step)
                    for tile, shape, n_planes in jobs
                ],
            )
        else:
            patches = [
                self._decode_tile(shape, tile, n_planes, encoded.base_step)
                for tile, shape, n_planes in jobs
            ]
        for (y0, y1, x0, x1), patch in zip(bounds, patches):
            out[y0:y1, x0:x1] = patch
        return out

    def _map_tiles_parallel(self, job, args_list: list) -> list:
        """Run per-tile jobs across worker processes, preserving tile order.

        Tiles are fully independent, so the gathered results are identical
        to a serial run — the differential tests assert byte equality.  The
        pool is created lazily and reused across calls: a simulation encodes
        one image per capture, and paying worker spawn per image would undo
        the parallel win.  Call :meth:`close` (or use the codec as a
        context manager) to shut the workers down deterministically.
        """
        if self._pool is None:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.parallel_tiles)
        return list(self._pool.map(job, args_list))

    def close(self) -> None:
        """Shut down the tile-worker pool (idempotent; no-op when serial).

        The pool used to be left for interpreter exit to reap, which
        leaked worker processes for every codec instance with
        ``parallel_tiles > 1``; owners now close codecs deterministically.
        The codec remains usable — the next parallel call re-creates the
        pool lazily.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ImageCodec":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __getstate__(self) -> dict:
        # Executors are process-local; a codec shipped to a worker (e.g. by
        # the scenario layer) re-creates its pool lazily on first use.
        state = self.__dict__.copy()
        state["_pool"] = None
        return state

    def _decode_tile(
        self,
        shape: tuple[int, int],
        tile: EncodedTile,
        n_planes: int,
        base_step: float,
    ) -> np.ndarray:
        levels = effective_levels(shape, self.config.levels)
        shapes = subband_shapes(shape, levels)
        if tile.max_plane < 0:
            # All-zero tile: mid-grey zero reconstruction.
            return np.zeros(shape, dtype=np.float64)
        coder = self._coder_cls(
            [(f"{name}{level}", level, shp) for name, level, shp in shapes]
        )
        decoded = coder.decode(tile.segments[:n_planes], tile.max_plane)
        if self.config.lossless and n_planes >= tile.max_plane + 1:
            # Exact reconstruction path.
            triples = []
            for (name, level, _), band in zip(shapes, decoded):
                triples.append((name, level, band))
            coeffs = self._triples_to_coeffs(triples, shape, levels, Wavelet.LEGALL53)
            ints = inverse_dwt2d(coeffs)
            scale = (1 << self.config.bit_depth) - 1
            return ints.astype(np.float64) / scale
        spec = QuantizerSpec(base_step=base_step if not self.config.lossless else 1.0)
        truncated_planes = tile.max_plane + 1 - n_planes
        triples_q = []
        for (name, level, _), band in zip(shapes, decoded):
            triples_q.append((name, level, band.astype(np.int64)))
        dequantized = dequantize_coeffs(
            triples_q,
            spec,
            reconstruction_offset=0.5 * (2**truncated_planes if truncated_planes else 1),
        )
        coeffs = self._triples_to_coeffs(
            dequantized, shape, levels, self.config.wavelet
        )
        recon = inverse_dwt2d(coeffs)
        if self.config.lossless:
            scale = (1 << self.config.bit_depth) - 1
            recon = recon / scale
        return np.clip(recon, 0.0, 1.0)

    @staticmethod
    def _triples_to_coeffs(
        triples: list[tuple[str, int, np.ndarray]],
        shape: tuple[int, int],
        levels: int,
        wavelet: Wavelet,
    ) -> WaveletCoeffs:
        approx = triples[0][2]
        details = []
        for idx in range(levels):
            hl = triples[1 + idx * 3][2]
            lh = triples[2 + idx * 3][2]
            hh = triples[3 + idx * 3][2]
            details.append((hl, lh, hh))
        return WaveletCoeffs(
            approx=approx, details=details, shape=shape, wavelet=wavelet
        )


def _encode_tile_job(
    args: tuple[CodecConfig, str, np.ndarray, tuple[int, int], float]
) -> EncodedTile:
    """Encode one tile in a worker process (tile-parallel driver)."""
    config, backend, tile_img, index, step = args
    return ImageCodec(config, backend=backend)._encode_tile(tile_img, index, step)


def _decode_tile_job(
    args: tuple[CodecConfig, str, tuple[int, int], EncodedTile, int, float]
) -> np.ndarray:
    """Decode one tile in a worker process (tile-parallel driver)."""
    config, backend, shape, tile, n_planes, base_step = args
    return ImageCodec(config, backend=backend)._decode_tile(
        shape, tile, n_planes, base_step
    )
