"""Adapter giving the real bit-exact codec the rate model's interface.

The Earth+ pipeline is written against a small encode interface —
"compress this ROI to this many bytes, tell me the actual size, quality,
and reconstruction".  :class:`RealCodecAdapter` satisfies it with the
genuine arithmetic-coded :class:`~repro.codec.jpeg2000.ImageCodec`, so the
entire on-board pipeline (and simulator) can run on real bitstreams.  The
default fast path is :class:`~repro.codec.ratemodel.RateModel`; both are
interchangeable, and the integration tests assert they agree.
"""

from __future__ import annotations

import numpy as np

from repro.codec.jpeg2000 import CodecConfig, ImageCodec
from repro.codec.metrics import psnr as psnr_metric
from repro.codec.ratemodel import QualityLayer, RateModelResult
from repro.errors import CodecError, RateControlError


class RealCodecAdapter:
    """Encode with the true arithmetic-coded codec, rate model interface.

    Args:
        config: Codec geometry (tile size, DWT levels).
        n_layers: Quality layers per encoded image.
        backend: Entropy-coding engine name from the backend registry
            (``None`` resolves through the registry precedence chain —
            explicit argument, ``$REPRO_CODEC_BACKEND``, then
            ``"reference"``).  All engines are bit-exact.
        parallel_tiles: Worker processes for the tile-parallel driver
            (1 = in-process).  Call :meth:`close` (or use the adapter as
            a context manager) to release the workers.
    """

    def __init__(
        self,
        config: CodecConfig | None = None,
        n_layers: int = 1,
        backend: str | None = None,
        parallel_tiles: int = 1,
    ) -> None:
        self.config = config if config is not None else CodecConfig()
        self.n_layers = n_layers
        self._codec = ImageCodec(
            self.config, backend=backend, parallel_tiles=parallel_tiles
        )
        self.backend = self._codec.backend

    def close(self) -> None:
        """Shut down the codec's tile-worker pool (idempotent)."""
        self._codec.close()

    def __enter__(self) -> "RealCodecAdapter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def encode(
        self,
        image: np.ndarray,
        base_step: float | None = None,
        roi: np.ndarray | None = None,
    ) -> RateModelResult:
        """Encode at a fixed quantizer step; returns real byte counts."""
        encoded = self._codec.encode(
            image, base_step=base_step, roi=roi, n_layers=self.n_layers
        )
        return self._to_result(image, encoded, roi)

    def find_step_for_bytes(
        self,
        image: np.ndarray,
        target_bytes: int,
        roi: np.ndarray | None = None,
        tolerance: float = 0.05,
        max_iterations: int = 24,
    ) -> RateModelResult:
        """Meet a byte budget via the codec's own RD-optimal truncation.

        Unlike the rate model's quantizer-step bisection, the real codec
        encodes once at a fine step and truncates bit-planes to the budget
        (post-compression rate-distortion optimization), which is exactly
        how JPEG 2000 encoders hit rate targets.
        """
        if target_bytes <= 0:
            raise RateControlError(
                f"target_bytes must be positive, got {target_bytes}"
            )
        encoded = self._codec.encode(
            image,
            target_bytes=target_bytes,
            roi=roi,
            n_layers=self.n_layers,
        )
        return self._to_result(image, encoded, roi)

    def _to_result(self, image, encoded, roi) -> RateModelResult:
        reconstruction = self._codec.decode(encoded)
        grid_shape = self._codec.tile_grid_shape(image.shape)
        if roi is None:
            roi = np.ones(grid_shape, dtype=bool)
        tile = self.config.tile_size
        roi_mask = np.repeat(
            np.repeat(roi, tile, axis=0), tile, axis=1
        )[: image.shape[0], : image.shape[1]]
        roi_pixels = int(roi_mask.sum())
        quality = (
            psnr_metric(image[roi_mask], reconstruction[roi_mask])
            if roi_pixels
            else float("inf")
        )
        total = encoded.total_bytes
        layers_factory = None
        if self.n_layers > 1:
            # Deferred: each view costs a full decode + PSNR, and the
            # downlink phase only asks for them when a capture exceeds
            # its contact capacity.
            layers_factory = lambda: self._layer_views(  # noqa: E731
                image, encoded, roi_mask, roi_pixels,
                total, quality, reconstruction,
            )
        return RateModelResult(
            coded_bytes=total,
            payload_bytes=encoded.payload_bytes(),
            psnr_roi=quality,
            reconstruction=reconstruction,
            base_step=encoded.base_step,
            roi_pixels=roi_pixels,
            layers_factory=layers_factory,
        )

    def _layer_views(
        self, image, encoded, roi_mask, roi_pixels, total, quality, recon
    ) -> tuple[QualityLayer, ...]:
        """Byte-exact truncation views of the layered bitstream.

        Keeping ``k`` layers drops exactly the trailing layers' payload
        segments from the container, so the truncated size is the full
        size minus the shed layers' payload bytes — the same arithmetic a
        ground station applies when it stops reading after ``k`` layers.
        """
        full_payload = encoded.payload_bytes()
        views = []
        for kept in range(1, encoded.n_layers):
            truncated = self._codec.decode(encoded, layers=kept)
            views.append(
                QualityLayer(
                    coded_bytes=total
                    - (full_payload - encoded.payload_bytes(kept)),
                    psnr_roi=(
                        psnr_metric(image[roi_mask], truncated[roi_mask])
                        if roi_pixels
                        else float("inf")
                    ),
                    reconstruction=truncated,
                )
            )
        views.append(
            QualityLayer(
                coded_bytes=total, psnr_roi=quality, reconstruction=recon
            )
        )
        return tuple(views)
