"""Calibrated fast rate model: codec behaviour without entropy-coding loops.

Driving the full arithmetic coder inside year-long constellation sweeps would
dominate runtime without changing any conclusion, so the simulator uses this
model: it performs the *real* transform and quantization (so distortion — and
therefore PSNR — is exact for the reconstruction it returns) and estimates the
entropy-coded size analytically from per-bit-plane significance statistics,
the same quantities the adaptive coder's contexts track.

The estimate is validated against the true coder in
``tests/codec/test_ratemodel.py`` (agreement within a calibrated tolerance);
treat it as the "Kakadu throughput path" of the reproduction.

When the simulation fast path is active (see :mod:`repro.perf`) the model
runs batched: all ROI tiles of an image are transformed in one
:func:`~repro.codec.dwt.dwt_many` call, quantization and the per-bit-plane
significance statistics operate on ``(tile, h, w)`` stacks, and the step
search reuses its decompositions for the final encode.  Every batched
stage performs the same elementwise arithmetic in the same accumulation
order as the per-tile reference loops, so results (byte estimates AND
reconstructions) are bit-identical — the differential tests pin this.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import perf
from repro.codec import registry
from repro.codec.dwt import (
    Wavelet,
    WaveletCoeffs,
    dwt_many,
    forward_dwt2d,
    idwt_many,
    inverse_dwt2d,
)
from repro.codec.jpeg2000 import CodecConfig, effective_levels
from repro.codec.metrics import psnr as psnr_metric
from repro.codec.quantize import (
    QuantizerSpec,
    dequantize_coeffs,
    quantize_coeffs,
)
from repro.errors import CodecError, RateControlError

#: Container overhead per encoded tile (index, plane counts, lengths).
_TILE_OVERHEAD_BYTES = 8
#: Arithmetic-coder flush overhead per coded plane segment.
_PLANE_FLUSH_BYTES = 4
#: Fixed container header estimate.
_HEADER_BYTES = 32


def _binary_entropy(p: np.ndarray | float) -> np.ndarray | float:
    """Shannon entropy of a Bernoulli(p) bit, elementwise, in bits."""
    p = np.clip(np.asarray(p, dtype=np.float64), 1e-12, 1.0 - 1e-12)
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))


def estimate_band_bits(band_q: np.ndarray) -> tuple[float, int]:
    """Estimated coded bits and plane count for one quantized subband.

    Walks bit-planes top-down exactly as the bit-plane coder does, charging
    the order-0 entropy of each plane's significance decisions, one bit per
    sign, and ~0.95 bits per refinement bit (adaptive refinement contexts
    squeeze slightly below 1).

    Args:
        band_q: Quantized integer coefficients.

    Returns:
        ``(bits, planes)`` — the size estimate and the number of occupied
        bit-planes.
    """
    if band_q.size == 0:
        return 0.0, 0
    magnitude = np.abs(band_q.astype(np.int64))
    peak = int(magnitude.max())
    if peak == 0:
        return 0.0, 0
    top = peak.bit_length() - 1
    total = float(magnitude.size)
    bits = 0.0
    significant = np.zeros(magnitude.shape, dtype=bool)
    for plane in range(top, -1, -1):
        plane_bit = (magnitude >> plane) & 1
        newly = plane_bit.astype(bool) & ~significant
        n_insig = float((~significant).sum())
        if n_insig > 0:
            k = float(newly.sum())
            bits += n_insig * float(_binary_entropy(k / n_insig))
            bits += k  # sign bits
        n_sig = float(significant.sum())
        bits += 0.95 * n_sig  # refinement bits
        significant |= newly
    return bits, top + 1


def _topbit_histogram(
    band_q_stack: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-tile histogram of coefficient top-bit positions.

    Returns ``(counts, tops, size)``: ``counts[t, p]`` is the number of
    coefficients of tile ``t`` whose magnitude's highest set bit is plane
    ``p``, ``tops[t]`` the tile's highest occupied plane (-1 when all
    zero), and ``size`` the per-tile coefficient count.  np.frexp is exact
    for the int32-quantized magnitudes (< 2^53): ``m = mantissa * 2**exp``
    with mantissa in [0.5, 1), so the top bit is ``exp - 1``.
    """
    n_tiles = band_q_stack.shape[0]
    magnitude = np.abs(band_q_stack.astype(np.int64)).reshape(n_tiles, -1)
    return _histogram_from_magnitudes(magnitude.astype(np.float64))


def _magnitude_histogram(
    band_stack: np.ndarray, step: float
) -> tuple[np.ndarray, np.ndarray, int]:
    """Top-bit histogram of dead-zone quantized magnitudes, sign-free.

    ``floor(|c| / step)`` produces exactly the magnitudes
    :func:`~repro.codec.quantize.quantize_coeffs` would (floor never
    crosses a power-of-two boundary, and the values stay far below 2^53),
    so the histogram matches :func:`_topbit_histogram` of the signed
    quantized stack while skipping the sign computation and integer
    round-trips the step search never needs.

    One exception: magnitudes at or above 2^31 wrap in the quantizer's
    int32 cast.  Such steps are absurdly fine (never reached by the rate
    search) but are reachable through the public ``encode(base_step=...)``
    — replicate the wrap exactly by deferring to the signed path.
    """
    n_tiles = band_stack.shape[0]
    kernels = registry.kernels()
    if kernels is not None and band_stack.dtype == np.float64 and n_tiles:
        # Fused native path: floor/abs/divide/top-bit/bincount in one pass
        # (same float ops, exact for the integer-valued magnitudes).
        flat = np.ascontiguousarray(band_stack.reshape(n_tiles, -1))
        counts_raw, tops = kernels.magnitude_histogram(flat, step)
        size = flat.shape[1]
        max_top = int(tops.max())
        if size and max_top >= 31:
            return _topbit_histogram(_quantize_stack(band_stack, step))
        n_bins = max(max_top, 0) + 1
        return np.ascontiguousarray(counts_raw[:, :n_bins]), tops, size
    magnitude = np.floor(np.abs(band_stack) / step).reshape(n_tiles, -1)
    counts, tops, size = _histogram_from_magnitudes(magnitude)
    if size and int(tops.max()) >= 31:
        return _topbit_histogram(_quantize_stack(band_stack, step))
    return counts, tops, size


def _histogram_from_magnitudes(
    magnitude: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Shared histogram core over float64 integer-valued magnitudes."""
    n_tiles = magnitude.shape[0]
    _, exponents = np.frexp(magnitude)
    topbit = exponents.astype(np.int64) - 1
    tops = topbit.max(axis=1)
    max_top = int(tops.max()) if n_tiles else -1
    n_bins = max(max_top, 0) + 2  # bin 0 holds zeros (topbit == -1)
    offsets = (np.arange(n_tiles, dtype=np.int64) * n_bins)[:, None]
    counts = np.bincount(
        (topbit + 1 + offsets).ravel(), minlength=n_tiles * n_bins
    ).reshape(n_tiles, n_bins)[:, 1:]
    return counts, tops, magnitude.shape[1]


def _plane_walk_bits(
    counts: np.ndarray, tops: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Entropy-model bit counts from top-bit histograms, batched.

    Replays :func:`estimate_band_bits`'s descending plane walk for every
    row at once: all per-plane statistics (significant / newly-significant
    / insignificant counts) are exact integers derived from the histogram,
    the Bernoulli entropies are computed in one elementwise call, and each
    row's ``bits`` accumulator receives the same three additions in the
    same plane order as the scalar walk — so each row's result is
    bit-identical to the scalar estimate for that subband.

    Args:
        counts: ``(rows, planes)`` top-bit histograms (possibly padded
            with zero columns above each row's top plane).
        tops: ``(rows,)`` highest occupied plane per row (-1 if empty).
        sizes: ``(rows,)`` coefficient counts per row.

    Returns:
        ``(rows,)`` float64 estimated bits.
    """
    n_rows, n_planes = counts.shape
    bits = np.zeros(n_rows, dtype=np.float64)
    if n_planes == 0:
        return bits
    # n_ge[:, p] = #(topbit >= p); the significant count at plane p is
    # n_ge[:, p + 1].
    n_ge = counts[:, ::-1].cumsum(axis=1)[:, ::-1].astype(np.float64)
    sizes_f = sizes.astype(np.float64)
    k_mat = counts.astype(np.float64)
    n_sig_mat = np.zeros((n_rows, n_planes), dtype=np.float64)
    n_sig_mat[:, :-1] = n_ge[:, 1:]
    n_insig_mat = sizes_f[:, None] - n_sig_mat
    safe_insig = np.where(n_insig_mat > 0, n_insig_mat, 1.0)
    entropy_mat = _binary_entropy(k_mat / safe_insig)
    kernels = registry.kernels()
    if kernels is not None:
        # Native walk over the same precomputed entropy matrix (np.log2
        # stays in numpy so transcendental rounding cannot drift); the
        # per-plane integer statistics and the three accumulator
        # additions replay in the exact numpy order.
        return kernels.plane_walk_bits(
            np.ascontiguousarray(counts, dtype=np.int64),
            np.ascontiguousarray(tops, dtype=np.int64),
            np.ascontiguousarray(sizes, dtype=np.int64),
            np.ascontiguousarray(entropy_mat),
        )
    zero = np.zeros(n_rows, dtype=np.float64)
    for plane in range(n_planes - 1, -1, -1):
        # Rows whose top plane is below `plane` must contribute nothing —
        # the scalar walk starts at each subband's own top plane.
        active = plane <= tops
        n_insig = n_insig_mat[:, plane]
        contributes = active & (n_insig > 0)
        # Same three additions, in the same order, as the scalar walk;
        # inactive rows add exact zeros (a float no-op for bits >= 0).
        bits += np.where(contributes, n_insig * entropy_mat[:, plane], zero)
        bits += np.where(contributes, k_mat[:, plane], zero)
        bits += np.where(active, 0.95 * n_sig_mat[:, plane], zero)
    return bits


@dataclass(frozen=True)
class QualityLayer:
    """One quality-layer prefix of an encoded ROI.

    ``layers[k - 1]`` of a :class:`RateModelResult` describes what the
    ground receives when only the first ``k`` quality layers come down:
    the truncated coded size, and the (coarser) reconstruction plus its
    exact PSNR.  The last view always equals the full encode.

    Attributes:
        coded_bytes: Coded container bytes when trailing layers are shed.
        psnr_roi: PSNR over ROI pixels of the truncated reconstruction.
        reconstruction: Full-frame reconstruction from the kept layers.
    """

    coded_bytes: int
    psnr_roi: float
    reconstruction: np.ndarray


@dataclass
class RateModelResult:
    """Outcome of a rate-model encode.

    Attributes:
        coded_bytes: Estimated full-container size in bytes.
        payload_bytes: Estimated entropy-coded payload only.
        psnr_roi: Exact PSNR over ROI pixels of the returned reconstruction.
        reconstruction: The dequantized reconstruction (exact distortion).
        base_step: Quantizer step used.
        roi_pixels: Number of pixels inside the ROI.
        layers: Per-quality-layer prefix views, finest last (None when the
            encode was not layered, i.e. ``n_quality_layers == 1``, or
            when the views are produced lazily via ``layers_factory``).
        layers_factory: Deferred view construction.  Building the views
            costs extra encodes/decodes per band, and the downlink phase
            only reads them when a capture exceeds its contact capacity —
            so backends attach a thunk and the consumer materializes on
            demand.
    """

    coded_bytes: int
    payload_bytes: int
    psnr_roi: float
    reconstruction: np.ndarray
    base_step: float
    roi_pixels: int
    layers: tuple[QualityLayer, ...] | None = None
    layers_factory: "Callable[[], tuple[QualityLayer, ...]] | None" = field(
        default=None, repr=False, compare=False
    )

    @property
    def bits_per_roi_pixel(self) -> float:
        """Coded bits per ROI pixel (the paper's bpp axis)."""
        if self.roi_pixels == 0:
            return 0.0
        return self.coded_bytes * 8.0 / self.roi_pixels


class _DecompBatch(list):
    """ROI tile decompositions plus their stacked-subband batch plan.

    Behaves exactly like the reference list of ``(y0, y1, x0, x1, levels,
    coeffs)`` entries; ``plan`` additionally holds, per geometry group,
    ``(tile_indices, subband_meta, subband_stacks)`` so the step search
    quantizes prestacked subbands instead of restacking per bisection
    step.
    """

    def __init__(self, entries, plan) -> None:
        super().__init__(entries)
        self.plan = plan


def _plan_from_entries(entries) -> list[tuple]:
    """Build the stacked-subband batch plan for decomposition entries.

    Groups the ``(y0, y1, x0, x1, levels, coeffs)`` entries by geometry
    and stacks each subband position across its group.  The single
    source of the plan layout — transform, step search, and final encode
    all consume what this builds.
    """
    groups: dict[tuple[int, int, int], list[int]] = {}
    for idx, (_, _, _, _, levels, coeffs) in enumerate(entries):
        key = (coeffs.shape[0], coeffs.shape[1], levels)
        groups.setdefault(key, []).append(idx)
    plan = []
    for indices in groups.values():
        subband_lists = [entries[i][5].subbands() for i in indices]
        meta = [(n, l) for n, l, _ in subband_lists[0]]
        # np.stack preserves the F-ish order of dwt_many's subband views;
        # force C order so every downstream consumer (histogram kernels,
        # quantize, per-tile slicing) gets contiguous rows.  A pure copy:
        # same logical values, so every elementwise op stays bit-exact.
        stacks = [
            np.ascontiguousarray(
                np.stack([bands[b][2] for bands in subband_lists])
            )
            for b in range(len(meta))
        ]
        plan.append((indices, meta, stacks))
    return plan


def _quantize_stack(
    band_stack: np.ndarray, step: float
) -> np.ndarray:
    """Dead-zone quantize a stacked subband (elementwise twin of
    :func:`~repro.codec.quantize.quantize_coeffs`)."""
    magnitudes = np.floor(np.abs(band_stack) / step).astype(np.int32)
    signs = np.sign(band_stack).astype(np.int32)
    return signs * magnitudes


def _dequantize_stack(
    band_q_stack: np.ndarray, step: float, reconstruction_offset: float = 0.5
) -> np.ndarray:
    """Elementwise twin of :func:`~repro.codec.quantize.dequantize_coeffs`."""
    kernels = registry.kernels()
    if kernels is not None and band_q_stack.dtype == np.int32:
        flat = np.ascontiguousarray(band_q_stack)
        return kernels.dequantize(flat, step, reconstruction_offset)
    magnitudes = np.abs(band_q_stack).astype(np.float64)
    return np.where(
        band_q_stack != 0,
        np.sign(band_q_stack) * (magnitudes + reconstruction_offset) * step,
        0.0,
    )


def _dequantize_blocks(
    blocks: "list[np.ndarray]",
    steps: "list[float]",
    reconstruction_offset: float = 0.5,
) -> "list[np.ndarray]":
    """Dequantize one tile's subband list in a single native call.

    Elementwise-identical to mapping :func:`_dequantize_stack` over the
    blocks; the fused call only amortizes per-call overhead across the
    ~10 tiny subband arrays of a tile.
    """
    kernels = registry.kernels()
    if (
        kernels is not None
        and blocks
        and all(
            b.dtype == np.int32 and b.flags.c_contiguous for b in blocks
        )
    ):
        return kernels.dequantize_multi(blocks, steps, reconstruction_offset)
    return [
        _dequantize_stack(block, step, reconstruction_offset)
        for block, step in zip(blocks, steps)
    ]


def _payload_rows_per_block(plan, spec):
    """Per-(group, subband) histogram + one shared plane walk.

    Returns ``(pending, row_bits)`` where pending holds ``(tile, row,
    planes)`` per (tile, subband) — ``row`` indexes ``row_bits``, None for
    empty subbands — in plan order.
    """
    count_blocks: list[np.ndarray] = []
    top_blocks: list[np.ndarray] = []
    size_blocks: list[np.ndarray] = []
    pending: list[tuple[int, int | None, int]] = []
    n_rows = 0
    for indices, subband_meta, stacks in plan:
        for band_idx, (name, level) in enumerate(subband_meta):
            band_step = spec.step_for(name, level)
            if stacks[band_idx][0].size == 0:
                pending.extend((tile_idx, None, 0) for tile_idx in indices)
                continue
            counts, tops, size = _magnitude_histogram(
                stacks[band_idx], band_step
            )
            count_blocks.append(counts)
            top_blocks.append(tops)
            size_blocks.append(np.full(len(indices), size, dtype=np.int64))
            for pos, tile_idx in enumerate(indices):
                planes = int(tops[pos]) + 1 if tops[pos] >= 0 else 0
                pending.append((tile_idx, n_rows + pos, planes))
            n_rows += len(indices)
    if count_blocks:
        max_planes = max(block.shape[1] for block in count_blocks)
        counts_mat = np.zeros((n_rows, max_planes), dtype=np.int64)
        row = 0
        for block in count_blocks:
            counts_mat[row : row + block.shape[0], : block.shape[1]] = block
            row += block.shape[0]
        row_bits = _plane_walk_bits(
            counts_mat,
            np.concatenate(top_blocks),
            np.concatenate(size_blocks),
        )
    else:
        row_bits = np.zeros(0)
    return pending, row_bits


def _fused_payload_rows(plan, spec):
    """All of a plan's histograms in one native call, then the plane walk.

    Row-for-row identical to :func:`_payload_rows_per_block` — same float
    ops per block, same row order, same trimmed counts matrix — it only
    amortizes the per-subband call overhead.  Returns None (caller takes
    the per-block path) when the kernels are off, a stack isn't float64,
    or a block hits the int32 wrap regime (top bit >= 31), whose exact
    semantics live in :func:`_magnitude_histogram`.
    """
    kernels = registry.kernels()
    if kernels is None:
        return None
    flats: list[np.ndarray] = []
    steps: list[float] = []
    layout: list[tuple[list[int], int | None]] = []  # (tiles, block index)
    for indices, subband_meta, stacks in plan:
        for band_idx, (name, level) in enumerate(subband_meta):
            stack = stacks[band_idx]
            if stack[0].size == 0:
                layout.append((indices, None))
                continue
            if stack.dtype != np.float64:
                return None
            if not stack.flags.c_contiguous:
                stack = np.ascontiguousarray(stack)
            flats.append(stack.reshape(len(indices), -1))
            steps.append(spec.step_for(name, level))
            layout.append((indices, len(flats) - 1))
    if not flats:
        pending = [
            (tile_idx, None, 0) for indices, _ in layout for tile_idx in indices
        ]
        return pending, np.zeros(0)
    counts, tops = kernels.magnitude_histogram_multi(flats, steps)
    max_top = int(tops.max())
    if max_top >= 31:
        return None
    counts_mat = np.ascontiguousarray(counts[:, : max(max_top, 0) + 1])
    sizes = np.repeat(
        np.fromiter((f.shape[1] for f in flats), dtype=np.int64),
        np.fromiter((f.shape[0] for f in flats), dtype=np.int64),
    )
    row_bits = _plane_walk_bits(counts_mat, tops, sizes)
    offsets = np.cumsum([0] + [f.shape[0] for f in flats])
    pending: list[tuple[int, int | None, int]] = []
    for indices, block in layout:
        if block is None:
            pending.extend((tile_idx, None, 0) for tile_idx in indices)
            continue
        row0 = int(offsets[block])
        for pos, tile_idx in enumerate(indices):
            top = int(tops[row0 + pos])
            pending.append((tile_idx, row0 + pos, top + 1 if top >= 0 else 0))
    return pending, row_bits


class RateModel:
    """Fast encode-cost/quality model mirroring :class:`ImageCodec`.

    Args:
        config: Codec parameters (tile size, levels).
    """

    def __init__(self, config: CodecConfig | None = None) -> None:
        self.config = config if config is not None else CodecConfig()

    def _roi_tile_blocks(
        self, image: np.ndarray, roi: np.ndarray
    ) -> list[tuple[int, int, int, int]]:
        """Pixel bounds of every ROI tile, row-major."""
        tile = self.config.tile_size
        tiles_y, tiles_x = roi.shape
        out = []
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                if not roi[ty, tx]:
                    continue
                y0, x0 = ty * tile, tx * tile
                y1 = min(y0 + tile, image.shape[0])
                x1 = min(x0 + tile, image.shape[1])
                out.append((y0, y1, x0, x1))
        return out

    def _tile_decompositions(
        self, image: np.ndarray, roi: np.ndarray
    ) -> list[tuple[int, int, int, int, int, object]]:
        """Forward-transform every ROI tile once (reused across step search).

        On the fast path, same-shape tiles are transformed together in one
        :func:`~repro.codec.dwt.dwt_many` call (bit-identical per tile).

        Returns ``(y0, y1, x0, x1, levels, coeffs)`` per ROI tile,
        row-major.
        """
        bounds = self._roi_tile_blocks(image, roi)
        if perf.simulation_fastpath():
            # Group tiles by block shape (full-size interior tiles plus up
            # to three edge shapes) and batch each group's transform.
            groups: dict[tuple[int, int], list[int]] = {}
            for idx, (y0, y1, x0, x1) in enumerate(bounds):
                groups.setdefault((y1 - y0, x1 - x0), []).append(idx)
            coeffs_by_idx: dict[int, tuple[int, object]] = {}
            for shape, indices in groups.items():
                levels = effective_levels(shape, self.config.levels)
                # Fill the (N, h, w) batch directly: the slice assignment
                # performs the same float64 cast as astype-then-stack,
                # without the per-block intermediates.
                batch = np.empty((len(indices),) + shape, dtype=np.float64)
                for k, i in enumerate(indices):
                    y0, y1, x0, x1 = bounds[i]
                    batch[k] = image[y0:y1, x0:x1]
                for i, coeffs in zip(
                    indices, dwt_many(batch, levels, Wavelet.CDF97)
                ):
                    coeffs_by_idx[i] = (levels, coeffs)
            entries = [
                bounds[i] + coeffs_by_idx[i] for i in range(len(bounds))
            ]
            return _DecompBatch(entries, _plan_from_entries(entries))
        out = []
        for y0, y1, x0, x1 in bounds:
            block = image[y0:y1, x0:x1].astype(np.float64)
            levels = effective_levels(block.shape, self.config.levels)
            coeffs = forward_dwt2d(block, levels, Wavelet.CDF97)
            out.append((y0, y1, x0, x1, levels, coeffs))
        return out

    def _payload_stats(
        self, decomps, step: float, want_quantized: bool = True
    ) -> tuple[float, int, dict[int, list[np.ndarray]] | None]:
        """Per-step payload statistics shared by estimate and encode.

        Returns ``(payload_bits, n_plane_segments, quantized_by_tile)``
        where ``quantized_by_tile`` maps decomposition index to its
        quantized subband arrays (fast path with ``want_quantized`` only;
        otherwise None — the step search needs just the byte estimate,
        and the reference path re-quantizes per tile).

        ``payload_bits`` is accumulated tile-major then subband-major —
        the exact order of the reference per-tile loop — from per-band bit
        counts that are themselves bit-identical to
        :func:`estimate_band_bits`.
        """
        spec = QuantizerSpec(base_step=step)
        if not perf.simulation_fastpath():
            payload_bits = 0.0
            n_plane_segments = 0
            for _, _, _, _, _, coeffs in decomps:
                quantized = quantize_coeffs(coeffs, spec)
                max_planes = 0
                for _, _, band_q in quantized:
                    bits, planes = estimate_band_bits(band_q)
                    payload_bits += bits
                    max_planes = max(max_planes, planes)
                n_plane_segments += max_planes
            return payload_bits, n_plane_segments, None
        # Fast path: quantize + estimate each subband position on stacks
        # spanning every same-geometry tile.  The stacks come prebuilt
        # with the decompositions; rebuild them when handed a plain list.
        plan = getattr(decomps, "plan", None)
        if plan is None:
            plan = _plan_from_entries(decomps)
        quantized_by_tile = (
            self._quantize_tiles_from_plan(plan, len(decomps), spec)
            if want_quantized
            else None
        )
        # Histogram every subband stack's quantized top-bit positions and
        # run ONE plane walk over all (tile, subband) rows at once.  The
        # bisection search never needs signed coefficients, so those are
        # only materialized for the final encode (want_quantized).
        fused = _fused_payload_rows(plan, spec)
        if fused is not None:
            pending, row_bits = fused
        else:
            pending, row_bits = _payload_rows_per_block(plan, spec)
        bits_by_tile: dict[int, list[float]] = {
            i: [] for i in range(len(decomps))
        }
        planes_by_tile: dict[int, int] = {i: 0 for i in range(len(decomps))}
        for tile_idx, row, planes in pending:
            bits_by_tile[tile_idx].append(
                float(row_bits[row]) if row is not None else 0.0
            )
            planes_by_tile[tile_idx] = max(planes_by_tile[tile_idx], planes)
        payload_bits = 0.0
        n_plane_segments = 0
        for tile_idx in range(len(decomps)):
            for bits in bits_by_tile[tile_idx]:
                payload_bits += bits
            n_plane_segments += planes_by_tile[tile_idx]
        return payload_bits, n_plane_segments, quantized_by_tile

    def _resolve_roi(
        self, image: np.ndarray, roi: np.ndarray | None
    ) -> np.ndarray:
        """Default and validate an ROI grid for ``image`` (single source
        of the tile-grid arithmetic)."""
        tile = self.config.tile_size
        grid_shape = (
            (image.shape[0] + tile - 1) // tile,
            (image.shape[1] + tile - 1) // tile,
        )
        if roi is None:
            return np.ones(grid_shape, dtype=bool)
        if roi.shape != grid_shape:
            raise CodecError(
                f"roi shape {roi.shape} != tile grid {grid_shape}"
            )
        return roi

    def prepare(
        self, image: np.ndarray, roi: np.ndarray | None = None
    ) -> list:
        """Precompute the step-independent transforms for (image, roi).

        Public entry point for warm-start callers: the returned
        decompositions can be passed to :meth:`encode` /
        :meth:`find_step_for_bytes` / :meth:`estimate_with_stats` so one
        forward transform is shared across a warm-step probe and the
        fallback search.  Backends without this method simply take the
        un-shared path.
        """
        return self._tile_decompositions(image, self._resolve_roi(image, roi))

    def estimate_with_stats(
        self, decomps, step: float
    ) -> tuple[int, float, int]:
        """Coded-size estimate plus the stats it derives from.

        Returns ``(coded_bytes, payload_bits, n_plane_segments)`` so
        callers that go on to encode at this exact step can skip
        recomputing the payload statistics (pass them back as
        ``payload_hint``).
        """
        with perf.profiled("codec"):
            payload_bits, n_plane_segments, _ = self._payload_stats(
                decomps, step, want_quantized=False
            )
            payload_bytes = int(math.ceil(payload_bits / 8.0))
            coded = (
                payload_bytes
                + _HEADER_BYTES
                + len(decomps) * _TILE_OVERHEAD_BYTES
                + n_plane_segments * _PLANE_FLUSH_BYTES
            )
            return coded, payload_bits, n_plane_segments

    def _estimate_bytes(self, decomps, step: float) -> int:
        """Coded-size estimate at ``step`` from precomputed decompositions."""
        return self.estimate_with_stats(decomps, step)[0]

    def encode(
        self,
        image: np.ndarray,
        base_step: float | None = None,
        roi: np.ndarray | None = None,
        decompositions: list | None = None,
        payload_hint: tuple[float, float, int] | None = None,
    ) -> RateModelResult:
        """Model-encode ``image`` with quantizer ``base_step`` over ``roi``.

        Args:
            image: 2-D float image in [0, 1].
            base_step: Quantizer base step (defaults to config).
            roi: Boolean tile grid; only True tiles are coded.  Non-ROI
                pixels come back as zeros in the reconstruction.
            decompositions: Optional precomputed output of
                :meth:`_tile_decompositions` for this exact (image, roi),
                letting the step search skip a redundant forward transform.
            payload_hint: Optional ``(step, payload_bits,
                n_plane_segments)`` from a prior
                :meth:`estimate_with_stats` at this exact step; used
                (fast path only) to skip recomputing payload statistics.

        Returns:
            A :class:`RateModelResult` with byte estimate and exact PSNR.
        """
        if image.ndim != 2:
            raise CodecError(f"expected 2-D image, got shape {image.shape}")
        step = base_step if base_step is not None else self.config.base_step
        if step <= 0:
            raise CodecError(f"base_step must be positive, got {step}")
        roi = self._resolve_roi(image, roi)
        with perf.profiled("codec"):
            if perf.simulation_fastpath():
                return self._encode_batched(
                    image, step, roi, decompositions, payload_hint
                )
            return self._encode_reference(image, step, roi)

    def _encode_reference(
        self, image: np.ndarray, step: float, roi: np.ndarray
    ) -> RateModelResult:
        """The original per-tile encode loop (differential-test oracle)."""
        tile = self.config.tile_size
        tiles_y, tiles_x = roi.shape
        recon = np.zeros(image.shape, dtype=np.float64)
        payload_bits = 0.0
        n_plane_segments = 0
        n_tiles = 0
        roi_mask_pixels = np.zeros(image.shape, dtype=bool)
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                if not roi[ty, tx]:
                    continue
                n_tiles += 1
                y0, x0 = ty * tile, tx * tile
                y1, x1 = min(y0 + tile, image.shape[0]), min(
                    x0 + tile, image.shape[1]
                )
                roi_mask_pixels[y0:y1, x0:x1] = True
                block = image[y0:y1, x0:x1].astype(np.float64)
                levels = effective_levels(block.shape, self.config.levels)
                coeffs = forward_dwt2d(block, levels, Wavelet.CDF97)
                spec = QuantizerSpec(base_step=step)
                quantized = quantize_coeffs(coeffs, spec)
                max_planes = 0
                for _, _, band_q in quantized:
                    bits, planes = estimate_band_bits(band_q)
                    payload_bits += bits
                    max_planes = max(max_planes, planes)
                n_plane_segments += max_planes
                dequantized = dequantize_coeffs(quantized, spec)
                recon_coeffs = WaveletCoeffs(
                    approx=dequantized[0][2],
                    details=[
                        (
                            dequantized[1 + 3 * i][2],
                            dequantized[2 + 3 * i][2],
                            dequantized[3 + 3 * i][2],
                        )
                        for i in range(levels)
                    ],
                    shape=block.shape,
                    wavelet=Wavelet.CDF97,
                )
                recon[y0:y1, x0:x1] = np.clip(
                    inverse_dwt2d(recon_coeffs), 0.0, 1.0
                )
        return self._assemble_result(
            image, recon, roi_mask_pixels, payload_bits,
            n_tiles, n_plane_segments, step,
        )

    def _quantize_tiles(
        self, decomps, spec: QuantizerSpec
    ) -> dict[int, list[np.ndarray]] | None:
        """Quantized subband arrays per tile from a batch plan.

        The quantize-only half of :meth:`_payload_stats`; returns None
        when the decompositions carry no batch plan.
        """
        plan = getattr(decomps, "plan", None)
        if plan is None:
            return None
        return self._quantize_tiles_from_plan(plan, len(decomps), spec)

    @staticmethod
    def _quantize_tiles_from_plan(
        plan, n_tiles: int, spec: QuantizerSpec
    ) -> dict[int, list[np.ndarray]]:
        """Dead-zone quantize every subband stack of a batch plan."""
        quantized_by_tile: dict[int, list[np.ndarray]] = {
            i: [] for i in range(n_tiles)
        }
        for indices, subband_meta, stacks in plan:
            for band_idx, (name, level) in enumerate(subband_meta):
                q_stack = _quantize_stack(
                    stacks[band_idx], spec.step_for(name, level)
                )
                for pos, tile_idx in enumerate(indices):
                    quantized_by_tile[tile_idx].append(q_stack[pos])
        return quantized_by_tile

    def _encode_batched(
        self,
        image: np.ndarray,
        step: float,
        roi: np.ndarray,
        decompositions: list | None,
        payload_hint: tuple[float, float, int] | None = None,
    ) -> RateModelResult:
        """Batched encode: one transform + stacked quantize/dequantize.

        Bit-identical to :meth:`_encode_reference` — the transform batch,
        stacked (de)quantization, and payload accumulation all preserve the
        reference's elementwise arithmetic and summation order.
        """
        decomps = (
            decompositions
            if decompositions is not None
            else self._tile_decompositions(image, roi)
        )
        spec = QuantizerSpec(base_step=step)
        quantized_by_tile = None
        if payload_hint is not None and payload_hint[0] == step:
            # The step search already computed this step's statistics.
            quantized_by_tile = self._quantize_tiles(decomps, spec)
        if quantized_by_tile is not None:
            payload_bits, n_plane_segments = payload_hint[1], payload_hint[2]
        else:
            payload_bits, n_plane_segments, quantized_by_tile = (
                self._payload_stats(decomps, step)
            )
        recon = np.zeros(image.shape, dtype=np.float64)
        roi_mask_pixels = np.zeros(image.shape, dtype=bool)
        # Dequantize on stacks grouped by geometry, then invert each group
        # with one batched synthesis.
        groups: dict[tuple[int, int, int], list[int]] = {}
        for idx, (y0, y1, x0, x1, levels, _) in enumerate(decomps):
            roi_mask_pixels[y0:y1, x0:x1] = True
            groups.setdefault((y1 - y0, x1 - x0, levels), []).append(idx)
        for (height, width, levels), indices in groups.items():
            rebuilt: list[WaveletCoeffs] = []
            for tile_idx in indices:
                coeffs = decomps[tile_idx][5]
                meta = [(n, l) for n, l, _ in coeffs.subbands()]
                dequantized = _dequantize_blocks(
                    quantized_by_tile[tile_idx],
                    [spec.step_for(name, level) for name, level in meta],
                )
                rebuilt.append(
                    WaveletCoeffs(
                        approx=dequantized[0],
                        details=[
                            (
                                dequantized[1 + 3 * i],
                                dequantized[2 + 3 * i],
                                dequantized[3 + 3 * i],
                            )
                            for i in range(levels)
                        ],
                        shape=(height, width),
                        wavelet=Wavelet.CDF97,
                    )
                )
            blocks = np.clip(idwt_many(rebuilt), 0.0, 1.0)
            for pos, tile_idx in enumerate(indices):
                y0, y1, x0, x1 = decomps[tile_idx][:4]
                recon[y0:y1, x0:x1] = blocks[pos]
        return self._assemble_result(
            image, recon, roi_mask_pixels, payload_bits,
            len(decomps), n_plane_segments, step,
        )

    def _assemble_result(
        self,
        image: np.ndarray,
        recon: np.ndarray,
        roi_mask_pixels: np.ndarray,
        payload_bits: float,
        n_tiles: int,
        n_plane_segments: int,
        step: float,
    ) -> RateModelResult:
        """Container accounting + PSNR shared by both encode paths."""
        payload_bytes = int(math.ceil(payload_bits / 8.0))
        coded_bytes = (
            payload_bytes
            + _HEADER_BYTES
            + n_tiles * _TILE_OVERHEAD_BYTES
            + n_plane_segments * _PLANE_FLUSH_BYTES
        )
        roi_pixels = int(roi_mask_pixels.sum())
        if roi_pixels:
            quality = psnr_metric(
                image[roi_mask_pixels], recon[roi_mask_pixels]
            )
        else:
            quality = math.inf
        return RateModelResult(
            coded_bytes=coded_bytes,
            payload_bytes=payload_bytes,
            psnr_roi=quality,
            reconstruction=recon,
            base_step=step,
            roi_pixels=roi_pixels,
        )

    def find_step_for_bytes(
        self,
        image: np.ndarray,
        target_bytes: int,
        roi: np.ndarray | None = None,
        tolerance: float = 0.05,
        max_iterations: int = 24,
        decompositions: list | None = None,
    ) -> RateModelResult:
        """Bisection search for the base step that meets a byte budget.

        Args:
            image: 2-D float image.
            target_bytes: Desired coded size.
            roi: Boolean tile grid restriction.
            tolerance: Acceptable relative overshoot/undershoot.
            max_iterations: Bisection iteration cap.
            decompositions: Optional precomputed
                :meth:`_tile_decompositions` output for (image, roi),
                letting warm-start callers share one forward transform
                across a rejected warm encode and the fallback search.

        Returns:
            The result at the chosen step (the largest-quality step whose
            size is within tolerance of — or below — the budget).

        Raises:
            RateControlError: If even the coarsest step exceeds the budget.
        """
        if target_bytes <= 0:
            raise RateControlError(
                f"target_bytes must be positive, got {target_bytes}"
            )
        roi = self._resolve_roi(image, roi)
        # The transform does not depend on the step: do it once, then walk
        # the step axis with cheap quantize+entropy-estimate evaluations.
        decomps = (
            decompositions
            if decompositions is not None
            else self._tile_decompositions(image, roi)
        )
        reuse = decomps if perf.simulation_fastpath() else None
        # Every candidate step's payload stats are remembered so the final
        # encode (always at an evaluated step) can skip recomputing them.
        stats_by_step: dict[float, tuple[float, int]] = {}

        def estimate(step: float) -> int:
            coded, payload_bits, segments = self.estimate_with_stats(
                decomps, step
            )
            stats_by_step[step] = (payload_bits, segments)
            return coded

        def final(step: float) -> RateModelResult:
            hint = None
            if reuse is not None and step in stats_by_step:
                hint = (step,) + stats_by_step[step]
            return self.encode(
                image, step, roi, decompositions=reuse, payload_hint=hint
            )

        lo_step, hi_step = 1.0 / 65536.0, 1.0
        if estimate(hi_step) > target_bytes * (1.0 + tolerance):
            # Even the coarsest quantizer cannot fit (container overhead
            # dominates tiny budgets); deliver the coarsest encode as the
            # best effort, exactly as a real encoder ships its floor rate.
            return final(hi_step)
        best_step = hi_step
        for _ in range(max_iterations):
            mid = math.sqrt(lo_step * hi_step)
            coded = estimate(mid)
            if coded <= target_bytes:
                best_step = mid
                hi_step = mid
            else:
                lo_step = mid
            if abs(coded - target_bytes) <= tolerance * target_bytes:
                if coded <= target_bytes:
                    best_step = mid
                break
        return final(best_step)
