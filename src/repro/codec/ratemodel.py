"""Calibrated fast rate model: codec behaviour without entropy-coding loops.

Driving the full arithmetic coder inside year-long constellation sweeps would
dominate runtime without changing any conclusion, so the simulator uses this
model: it performs the *real* transform and quantization (so distortion — and
therefore PSNR — is exact for the reconstruction it returns) and estimates the
entropy-coded size analytically from per-bit-plane significance statistics,
the same quantities the adaptive coder's contexts track.

The estimate is validated against the true coder in
``tests/codec/test_ratemodel.py`` (agreement within a calibrated tolerance);
treat it as the "Kakadu throughput path" of the reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.codec.dwt import Wavelet, WaveletCoeffs, forward_dwt2d, inverse_dwt2d
from repro.codec.jpeg2000 import CodecConfig, effective_levels
from repro.codec.metrics import psnr as psnr_metric
from repro.codec.quantize import (
    QuantizerSpec,
    dequantize_coeffs,
    quantize_coeffs,
)
from repro.errors import CodecError, RateControlError

#: Container overhead per encoded tile (index, plane counts, lengths).
_TILE_OVERHEAD_BYTES = 8
#: Arithmetic-coder flush overhead per coded plane segment.
_PLANE_FLUSH_BYTES = 4
#: Fixed container header estimate.
_HEADER_BYTES = 32


def _binary_entropy(p: np.ndarray | float) -> np.ndarray | float:
    """Shannon entropy of a Bernoulli(p) bit, elementwise, in bits."""
    p = np.clip(np.asarray(p, dtype=np.float64), 1e-12, 1.0 - 1e-12)
    return -(p * np.log2(p) + (1.0 - p) * np.log2(1.0 - p))


def estimate_band_bits(band_q: np.ndarray) -> tuple[float, int]:
    """Estimated coded bits and plane count for one quantized subband.

    Walks bit-planes top-down exactly as the bit-plane coder does, charging
    the order-0 entropy of each plane's significance decisions, one bit per
    sign, and ~0.95 bits per refinement bit (adaptive refinement contexts
    squeeze slightly below 1).

    Args:
        band_q: Quantized integer coefficients.

    Returns:
        ``(bits, planes)`` — the size estimate and the number of occupied
        bit-planes.
    """
    if band_q.size == 0:
        return 0.0, 0
    magnitude = np.abs(band_q.astype(np.int64))
    peak = int(magnitude.max())
    if peak == 0:
        return 0.0, 0
    top = peak.bit_length() - 1
    total = float(magnitude.size)
    bits = 0.0
    significant = np.zeros(magnitude.shape, dtype=bool)
    for plane in range(top, -1, -1):
        plane_bit = (magnitude >> plane) & 1
        newly = plane_bit.astype(bool) & ~significant
        n_insig = float((~significant).sum())
        if n_insig > 0:
            k = float(newly.sum())
            bits += n_insig * float(_binary_entropy(k / n_insig))
            bits += k  # sign bits
        n_sig = float(significant.sum())
        bits += 0.95 * n_sig  # refinement bits
        significant |= newly
    return bits, top + 1


@dataclass
class RateModelResult:
    """Outcome of a rate-model encode.

    Attributes:
        coded_bytes: Estimated full-container size in bytes.
        payload_bytes: Estimated entropy-coded payload only.
        psnr_roi: Exact PSNR over ROI pixels of the returned reconstruction.
        reconstruction: The dequantized reconstruction (exact distortion).
        base_step: Quantizer step used.
        roi_pixels: Number of pixels inside the ROI.
    """

    coded_bytes: int
    payload_bytes: int
    psnr_roi: float
    reconstruction: np.ndarray
    base_step: float
    roi_pixels: int

    @property
    def bits_per_roi_pixel(self) -> float:
        """Coded bits per ROI pixel (the paper's bpp axis)."""
        if self.roi_pixels == 0:
            return 0.0
        return self.coded_bytes * 8.0 / self.roi_pixels


class RateModel:
    """Fast encode-cost/quality model mirroring :class:`ImageCodec`.

    Args:
        config: Codec parameters (tile size, levels).
    """

    def __init__(self, config: CodecConfig | None = None) -> None:
        self.config = config if config is not None else CodecConfig()

    def _tile_decompositions(
        self, image: np.ndarray, roi: np.ndarray
    ) -> list[tuple[int, int, int, int, int, object]]:
        """Forward-transform every ROI tile once (reused across step search).

        Returns ``(y0, y1, x0, x1, levels, coeffs)`` per ROI tile.
        """
        tile = self.config.tile_size
        tiles_y, tiles_x = roi.shape
        out = []
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                if not roi[ty, tx]:
                    continue
                y0, x0 = ty * tile, tx * tile
                y1 = min(y0 + tile, image.shape[0])
                x1 = min(x0 + tile, image.shape[1])
                block = image[y0:y1, x0:x1].astype(np.float64)
                levels = effective_levels(block.shape, self.config.levels)
                coeffs = forward_dwt2d(block, levels, Wavelet.CDF97)
                out.append((y0, y1, x0, x1, levels, coeffs))
        return out

    def _estimate_bytes(self, decomps, step: float) -> int:
        """Coded-size estimate at ``step`` from precomputed decompositions."""
        payload_bits = 0.0
        n_plane_segments = 0
        spec = QuantizerSpec(base_step=step)
        for _, _, _, _, _, coeffs in decomps:
            quantized = quantize_coeffs(coeffs, spec)
            max_planes = 0
            for _, _, band_q in quantized:
                bits, planes = estimate_band_bits(band_q)
                payload_bits += bits
                max_planes = max(max_planes, planes)
            n_plane_segments += max_planes
        payload_bytes = int(math.ceil(payload_bits / 8.0))
        return (
            payload_bytes
            + _HEADER_BYTES
            + len(decomps) * _TILE_OVERHEAD_BYTES
            + n_plane_segments * _PLANE_FLUSH_BYTES
        )

    def encode(
        self,
        image: np.ndarray,
        base_step: float | None = None,
        roi: np.ndarray | None = None,
    ) -> RateModelResult:
        """Model-encode ``image`` with quantizer ``base_step`` over ``roi``.

        Args:
            image: 2-D float image in [0, 1].
            base_step: Quantizer base step (defaults to config).
            roi: Boolean tile grid; only True tiles are coded.  Non-ROI
                pixels come back as zeros in the reconstruction.

        Returns:
            A :class:`RateModelResult` with byte estimate and exact PSNR.
        """
        if image.ndim != 2:
            raise CodecError(f"expected 2-D image, got shape {image.shape}")
        step = base_step if base_step is not None else self.config.base_step
        if step <= 0:
            raise CodecError(f"base_step must be positive, got {step}")
        tile = self.config.tile_size
        tiles_y = (image.shape[0] + tile - 1) // tile
        tiles_x = (image.shape[1] + tile - 1) // tile
        if roi is None:
            roi = np.ones((tiles_y, tiles_x), dtype=bool)
        if roi.shape != (tiles_y, tiles_x):
            raise CodecError(
                f"roi shape {roi.shape} != tile grid {(tiles_y, tiles_x)}"
            )
        recon = np.zeros(image.shape, dtype=np.float64)
        payload_bits = 0.0
        n_plane_segments = 0
        n_tiles = 0
        roi_mask_pixels = np.zeros(image.shape, dtype=bool)
        for ty in range(tiles_y):
            for tx in range(tiles_x):
                if not roi[ty, tx]:
                    continue
                n_tiles += 1
                y0, x0 = ty * tile, tx * tile
                y1, x1 = min(y0 + tile, image.shape[0]), min(
                    x0 + tile, image.shape[1]
                )
                roi_mask_pixels[y0:y1, x0:x1] = True
                block = image[y0:y1, x0:x1].astype(np.float64)
                levels = effective_levels(block.shape, self.config.levels)
                coeffs = forward_dwt2d(block, levels, Wavelet.CDF97)
                spec = QuantizerSpec(base_step=step)
                quantized = quantize_coeffs(coeffs, spec)
                max_planes = 0
                for _, _, band_q in quantized:
                    bits, planes = estimate_band_bits(band_q)
                    payload_bits += bits
                    max_planes = max(max_planes, planes)
                n_plane_segments += max_planes
                dequantized = dequantize_coeffs(quantized, spec)
                recon_coeffs = WaveletCoeffs(
                    approx=dequantized[0][2],
                    details=[
                        (
                            dequantized[1 + 3 * i][2],
                            dequantized[2 + 3 * i][2],
                            dequantized[3 + 3 * i][2],
                        )
                        for i in range(levels)
                    ],
                    shape=block.shape,
                    wavelet=Wavelet.CDF97,
                )
                recon[y0:y1, x0:x1] = np.clip(
                    inverse_dwt2d(recon_coeffs), 0.0, 1.0
                )
        payload_bytes = int(math.ceil(payload_bits / 8.0))
        coded_bytes = (
            payload_bytes
            + _HEADER_BYTES
            + n_tiles * _TILE_OVERHEAD_BYTES
            + n_plane_segments * _PLANE_FLUSH_BYTES
        )
        roi_pixels = int(roi_mask_pixels.sum())
        if roi_pixels:
            quality = psnr_metric(
                image[roi_mask_pixels], recon[roi_mask_pixels]
            )
        else:
            quality = math.inf
        return RateModelResult(
            coded_bytes=coded_bytes,
            payload_bytes=payload_bytes,
            psnr_roi=quality,
            reconstruction=recon,
            base_step=step,
            roi_pixels=roi_pixels,
        )

    def find_step_for_bytes(
        self,
        image: np.ndarray,
        target_bytes: int,
        roi: np.ndarray | None = None,
        tolerance: float = 0.05,
        max_iterations: int = 24,
    ) -> RateModelResult:
        """Bisection search for the base step that meets a byte budget.

        Args:
            image: 2-D float image.
            target_bytes: Desired coded size.
            roi: Boolean tile grid restriction.
            tolerance: Acceptable relative overshoot/undershoot.
            max_iterations: Bisection iteration cap.

        Returns:
            The result at the chosen step (the largest-quality step whose
            size is within tolerance of — or below — the budget).

        Raises:
            RateControlError: If even the coarsest step exceeds the budget.
        """
        if target_bytes <= 0:
            raise RateControlError(
                f"target_bytes must be positive, got {target_bytes}"
            )
        tile = self.config.tile_size
        tiles_y = (image.shape[0] + tile - 1) // tile
        tiles_x = (image.shape[1] + tile - 1) // tile
        if roi is None:
            roi = np.ones((tiles_y, tiles_x), dtype=bool)
        # The transform does not depend on the step: do it once, then walk
        # the step axis with cheap quantize+entropy-estimate evaluations.
        decomps = self._tile_decompositions(image, roi)
        lo_step, hi_step = 1.0 / 65536.0, 1.0
        if self._estimate_bytes(decomps, hi_step) > target_bytes * (
            1.0 + tolerance
        ):
            # Even the coarsest quantizer cannot fit (container overhead
            # dominates tiny budgets); deliver the coarsest encode as the
            # best effort, exactly as a real encoder ships its floor rate.
            return self.encode(image, hi_step, roi)
        best_step = hi_step
        for _ in range(max_iterations):
            mid = math.sqrt(lo_step * hi_step)
            coded = self._estimate_bytes(decomps, mid)
            if coded <= target_bytes:
                best_step = mid
                hi_step = mid
            else:
                lo_step = mid
            if abs(coded - target_bytes) <= tolerance * target_bytes:
                if coded <= target_bytes:
                    best_step = mid
                break
        return self.encode(image, best_step, roi)
