"""Compiled plane coder: native C kernels, byte-identical bitstreams.

:class:`CompiledPlaneCoder` is the ``compiled`` registry backend.  The
encode side runs entirely in one native call per plane — significance /
refinement pass assembly, the adaptive context model, and the Subbotin
range coder fused in C (:mod:`repro.codec._ckernels`).  The decode side
reuses the vectorized coder's numpy context preparation and drives the
native per-pass decoders (later contexts depend on decoded bits, so
decode cannot fuse whole planes).  The kernels are exact ports, so the
output is byte-identical to both the reference and vectorized coders at
every truncation point; the differential, golden, and corruption
harnesses enforce this for all registered backends.

Construction requires the kernels: the registry's availability probe
keeps this class from being instantiated on machines without a C
toolchain (they fall back to ``vectorized``).
"""

from __future__ import annotations

import numpy as np

from repro.codec import _ckernels
from repro.codec.bitplane import PlaneSegment
from repro.codec.fastpath import (
    _EMPTY_I64,
    _REF_OFFSET,
    _SIGN_OFFSET,
    VectorizedPlaneCoder,
    _neighbor_count,
    _significance_context,
    check_bands,
)
from repro.errors import BitstreamError

_MASK32 = 0xFFFFFFFF

_OVERRUN_MSG = "arithmetic decoder ran far past end of data"


class CompiledPlaneCoder(VectorizedPlaneCoder):
    """Bit-identical plane coder running its inner loops in native code.

    Same constructor and public API as :class:`VectorizedPlaneCoder`
    (and therefore as the reference ``SubbandPlaneCoder``).
    """

    def __init__(self, band_shapes: list[tuple[str, int, tuple[int, int]]]) -> None:
        super().__init__(band_shapes)
        kernels = _ckernels.load()
        if kernels is None:  # registry availability probe prevents this
            raise BitstreamError(
                f"compiled kernels unavailable: {_ckernels.unavailable_reason()}"
            )
        self._kernels = kernels

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def encode(
        self, bands: list[np.ndarray], max_plane: int
    ) -> list[PlaneSegment]:
        """Encode all planes from ``max_plane`` down to 0 (see reference).

        One native call per plane does everything — plane assembly,
        adaptive context modelling, range coding — so no decision stream
        is ever materialized on the Python side.
        """
        check_bands(self.band_shapes, bands)
        kernels = self._kernels
        magnitudes = [
            np.ascontiguousarray(np.abs(band).astype(np.int64))
            for band in bands
        ]
        signs = [np.ascontiguousarray(band < 0) for band in bands]
        significant = [np.zeros(band.shape, dtype=np.uint8) for band in bands]
        count0 = np.ones(self._n_contexts, dtype=np.int64)
        count1 = np.ones(self._n_contexts, dtype=np.int64)
        as_ptrs = lambda arrays: np.fromiter(  # noqa: E731
            (a.ctypes.data for a in arrays),
            dtype=np.int64,
            count=len(arrays),
        )
        mag_ptrs = as_ptrs(magnitudes)
        sign_ptrs = as_ptrs(signs)
        sig_ptrs = as_ptrs(significant)
        heights = np.fromiter(
            (m.shape[0] for m in magnitudes), dtype=np.int64, count=len(bands)
        )
        widths = np.fromiter(
            (m.shape[1] for m in magnitudes), dtype=np.int64, count=len(bands)
        )
        bases = np.asarray(self._bases, dtype=np.int64)
        total_size = int(sum(m.size for m in magnitudes))
        segments: list[PlaneSegment] = []
        for plane in range(max_plane, -1, -1):
            data = kernels.encode_plane(
                mag_ptrs, sign_ptrs, sig_ptrs, heights, widths, bases,
                plane, count0, count1, total_size,
            )
            segments.append(PlaneSegment(plane=plane, data=data))
        return segments

    # ------------------------------------------------------------------
    # Decoding
    # ------------------------------------------------------------------
    def decode(
        self, segments: list[PlaneSegment], max_plane: int
    ) -> list[np.ndarray]:
        """Decode a (possibly truncated) prefix of planes (see reference)."""
        count0 = np.ones(self._n_contexts, dtype=np.int64)
        count1 = np.ones(self._n_contexts, dtype=np.int64)
        magnitudes = [
            np.zeros(shape, dtype=np.int64) for _, _, shape in self.band_shapes
        ]
        signs = [
            np.zeros(shape, dtype=bool) for _, _, shape in self.band_shapes
        ]
        significant = [
            np.zeros(shape, dtype=bool) for _, _, shape in self.band_shapes
        ]
        expected_plane = max_plane
        for segment in segments:
            if segment.plane != expected_plane:
                raise BitstreamError(
                    f"plane segments out of order: expected {expected_plane}, "
                    f"got {segment.plane}"
                )
            data = np.frombuffer(segment.data, dtype=np.uint8)
            state = _init_decoder_state(segment.data)
            limit = len(segment.data) + 64
            for idx in range(len(self.band_shapes)):
                self._decode_band_plane_native(
                    data,
                    limit,
                    state,
                    count0,
                    count1,
                    self._bases[idx],
                    magnitudes[idx],
                    signs[idx],
                    significant[idx],
                    segment.plane,
                )
            expected_plane -= 1
        out = []
        for magnitude, sign in zip(magnitudes, signs):
            values = magnitude.copy()
            values[sign] = -values[sign]
            out.append(values)
        return out

    def _decode_band_plane_native(
        self,
        data: np.ndarray,
        limit: int,
        state: np.ndarray,
        count0: np.ndarray,
        count1: np.ndarray,
        base: int,
        magnitude: np.ndarray,
        sign: np.ndarray,
        significant: np.ndarray,
        plane: int,
    ) -> None:
        if magnitude.size == 0:
            return
        sig_flat = significant.ravel()
        mag_flat = magnitude.ravel()
        sign_flat = sign.ravel()
        if significant.any():
            neighbors = _neighbor_count(significant)
            sig_ctx = _significance_context(neighbors, "")
            insig_idx = np.flatnonzero(~sig_flat)
            prev_idx = np.flatnonzero(sig_flat)
            ctxs = np.ascontiguousarray(
                sig_ctx.ravel()[insig_idx].astype(np.int64) + base
            )
        else:
            insig_idx = np.arange(magnitude.size, dtype=np.int64)
            prev_idx = _EMPTY_I64
            ctxs = np.full(magnitude.size, base, dtype=np.int64)
        plane_value = np.int64(1) << plane
        result = self._kernels.decode_sig_pass(
            data, limit, state, count0, count1, ctxs, base + _SIGN_OFFSET
        )
        if result is None:
            raise BitstreamError(_OVERRUN_MSG)
        bits, sbits = result
        newly = insig_idx[bits.astype(bool)]
        mag_flat[newly] += plane_value
        sig_flat[newly] = True
        sign_flat[newly] = sbits.astype(bool)
        ref_bits = self._kernels.decode_ref_pass(
            data, limit, state, count0, count1, prev_idx.size, base + _REF_OFFSET
        )
        if ref_bits is None:
            raise BitstreamError(_OVERRUN_MSG)
        mag_flat[prev_idx[ref_bits.astype(bool)]] += plane_value


def _init_decoder_state(data: bytes) -> np.ndarray:
    """Range-decoder state vector: [pos, low, range, code].

    ``pos`` is a signed int64; ``low``/``range``/``code`` are written
    through a uint64 view.  Priming reads four bytes (zero-filled past
    the end), exactly like ``BatchRangeDecoder.__init__``.
    """
    state = np.zeros(4, dtype=np.int64)
    unsigned = state.view(np.uint64)
    code = 0
    pos = 0
    for _ in range(4):
        byte = data[pos] if pos < len(data) else 0
        pos += 1
        code = ((code << 8) | byte) & _MASK32
    state[0] = pos
    unsigned[1] = 0
    unsigned[2] = _MASK32
    unsigned[3] = code
    return state
