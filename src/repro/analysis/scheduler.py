"""Unified sweep scheduler: one persistent warm worker pool for specs x shards.

Before this module, a sweep had two mutually-exclusive parallelism axes:
``max_workers`` fanned whole scenarios over a ``ProcessPoolExecutor``,
and ``shards`` forked a fresh set of shard processes *per scenario*
(paying worker spawn and cold per-process caches ``n_specs`` times, and
idling every other core while one scenario's shards waited at its
``ground_sync_days`` epoch barriers).

:class:`SweepScheduler` replaces both with one substrate: a sweep
becomes a DAG of **spec-tasks** (run a whole scenario) and **shard-tasks**
(run one satellite bucket of a scenario, exchanging epoch journals
through the scheduler), executed by a single set of long-lived forked
workers spawned once per sweep.  Workers pull tasks from a shared queue,
so scheduling is work-stealing by construction — any idle worker takes
the next ready task, and while one scenario's shards sit at an epoch
barrier, tasks from *other* scenarios fill the remaining workers.  Each
worker keeps its warm per-process state (dataset cache, capture/surface
caches, memoized visit ordering — see :mod:`repro.perf`) across every
task it runs, so only the first task over a dataset pays synthesis.

Scheduling topology never changes bytes.  The scheduler only decides
*when* work runs, never *what* merges: shard partials fold with the
monoid :meth:`~repro.core.accounting.RunResult.merge` in ascending shard
order, epoch journals are concatenated in ascending shard order and
canonically sorted (:func:`~repro.core.sharding.canonical_ingests` /
:func:`~repro.core.sharding.canonical_marks`) exactly as the sequential
epoch-synchronized loop sorts its own journal, and spec-tasks are plain
:func:`~repro.analysis.scenarios.run_scenario` calls.  A joint
``workers=N, shards_per_scenario=M`` sweep is therefore
pickle-byte-identical to running every spec sequentially
(differential-tested in ``tests/integration/test_sweep_scheduler.py``).

Backpressure is structural: at most ``workers`` tasks are in flight at
any moment (a task is enqueued only against an idle worker slot, and a
shard group is enqueued only when a full gang of slots is free, which is
also what makes the epoch-barrier rendezvous deadlock-free).  Journal
exchange that used to ride per-scenario ad-hoc ``Pipe`` pairs is routed
through the scheduler's shared result queue as messages keyed by
``(scenario, epoch)``; merged journals return on a per-worker pipe.

Per-sweep :class:`SchedulerStats` (tasks run / stolen, worker spawns,
barrier-idle seconds, worker CPU) surface through ``repro sweep
--profile`` so scheduling regressions are observable from the CLI.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro import perf
from repro.core.accounting import RunResult
from repro.core.sharding import canonical_ingests, canonical_marks
from repro.errors import ConfigError, ScenarioError
from repro.obs import metrics, trace

__all__ = ["SchedulerStats", "SweepScheduler"]


@dataclass(frozen=True)
class _Task:
    """One unit of worker-pool work (a whole scenario or one shard of one).

    Attributes:
        task_id: Unique id within one scheduler run.
        kind: ``"spec"`` (run the whole scenario) or ``"shard"``.
        spec_index: Position of the scenario in the sweep's spec list.
        spec: The scenario description (picklable by contract).
        shard_index: This task's shard slot (shard tasks only).
        shard_count: Total shards of this scenario (shard tasks only).
        satellite_ids: The shard's satellite bucket (shard tasks only).
        profile: Whether the worker should run with the phase profiler on
            and return its rows with the result.
        trace: Whether the worker should run with a span tracer on and
            ship its span buffer (plus counter deltas) with the result.
            Set automatically when the driver has an active tracer.
    """

    task_id: int
    kind: str
    spec_index: int
    spec: object
    shard_index: int = 0
    shard_count: int = 1
    satellite_ids: tuple[int, ...] = ()
    profile: bool = False
    trace: bool = False


@dataclass
class SchedulerStats:
    """Per-sweep scheduling observability (``repro sweep --profile``).

    Attributes:
        workers: Pool size the sweep ran with.
        spawns: Worker processes spawned — once per sweep by design
            (the legacy sharded path spawned ``n_specs x shards``).
        tasks_run: Tasks executed (spec tasks + shard tasks).
        spec_tasks: Whole-scenario tasks among them.
        shard_tasks: Shard tasks among them.
        tasks_stolen: Tasks that started on a worker other than the one
            that last ran the same dataset — i.e. work pulled away from
            its warm-cache affinity because that worker was busy.
        barrier_idle_s: Total seconds shard tasks spent blocked at epoch
            barriers waiting for merged journals (summed across workers;
            the scheduler fills this time with other scenarios' tasks
            when the pool is larger than one shard group).
        worker_cpu_s: Total task CPU seconds across all workers.
        wall_s: Driver wall time for the whole sweep.
    """

    workers: int = 0
    spawns: int = 0
    tasks_run: int = 0
    spec_tasks: int = 0
    shard_tasks: int = 0
    tasks_stolen: int = 0
    barrier_idle_s: float = 0.0
    worker_cpu_s: float = 0.0
    wall_s: float = 0.0

    def rows(self) -> list[dict]:
        """Stat/value rows for the CLI ``--profile`` table."""
        return [
            {"stat": "workers", "value": self.workers},
            {"stat": "worker_spawns", "value": self.spawns},
            {"stat": "tasks_run", "value": self.tasks_run},
            {"stat": "spec_tasks", "value": self.spec_tasks},
            {"stat": "shard_tasks", "value": self.shard_tasks},
            {"stat": "tasks_stolen", "value": self.tasks_stolen},
            {
                "stat": "barrier_idle_s",
                "value": round(self.barrier_idle_s, 6),
            },
            {"stat": "worker_cpu_s", "value": round(self.worker_cpu_s, 6)},
            {"stat": "wall_s", "value": round(self.wall_s, 6)},
        ]


def _pool_worker(worker_id: int, task_queue, result_queue, reply_conn) -> None:
    """One long-lived pool worker: pull tasks until the ``None`` sentinel.

    Protocol (worker side), all on the shared ``result_queue``:

    * ``("start", worker_id, task_id)`` on dequeue (lets the driver
      attribute a later worker death to the task it was running);
    * per epoch of a shard task,
      ``("epoch", worker_id, task_id, epoch, ingests, marks)`` — then
      block on ``reply_conn`` for the merged ``(ingests, marks)``;
    * ``("done", worker_id, task_id, result, profile_rows,
      barrier_idle_s, cpu_seconds, spans, spans_dropped,
      counter_delta)`` or
      ``("error", worker_id, task_id, traceback_text)``.

    ``spans``/``spans_dropped`` carry the task's trace ring buffer
    (None/0 for untraced tasks) and ``counter_delta`` the task's global
    counter increments as a plain dict — both telemetry-only payloads
    the driver folds into its own tracer/counters, never into results.

    Warm per-process caches (datasets, captures, noise geometry) persist
    across tasks — that is the point of the pool — and never change
    results (the determinism contract of :mod:`repro.analysis.scenarios`).
    """
    # Workers import lazily so a spawn-context platform re-imports
    # cleanly; under fork this resolves to the already-loaded module
    # (including any monkeypatching the driver process carries).
    from repro.analysis import scenarios

    while True:
        task = task_queue.get()
        if task is None:
            break
        result_queue.put(("start", worker_id, task.task_id))
        try:
            if task.profile:
                perf.enable_profiler()
            if task.trace:
                # Fork inherits the driver's tracer object; install a
                # fresh buffer and attribution so each task ships only
                # its own spans, stamped with where it actually ran.
                trace.enable_tracer()
                trace.reset_context()
                trace.set_context(
                    worker=worker_id,
                    scenario=task.spec.resolved_label(),
                    shard=(
                        task.shard_index if task.kind == "shard" else None
                    ),
                )
            counter_base = metrics.counters().snapshot()
            barrier_idle = 0.0
            if task.kind == "shard":
                simulator = scenarios.build_simulator(task.spec)

                def exchange(epoch, ingests, marks, _tid=task.task_id):
                    nonlocal barrier_idle
                    result_queue.put(
                        ("epoch", worker_id, _tid, epoch, ingests, marks)
                    )
                    waited = time.perf_counter()
                    with trace.span("barrier_wait", epoch=epoch):
                        merged = reply_conn.recv()
                    barrier_idle += time.perf_counter() - waited
                    return merged

                # CPU is measured around the run only (not simulator
                # construction), matching the legacy shard workers so
                # critical-path projections stay comparable.
                cpu_started = time.process_time()
                with trace.span("shard_task"):
                    result = simulator.run(
                        satellite_ids=task.satellite_ids,
                        epoch_sync=exchange,
                    )
                cpu_seconds = time.process_time() - cpu_started
            else:
                cpu_started = time.process_time()
                with trace.span("spec_task"):
                    result = scenarios.run_scenario(task.spec)
                cpu_seconds = time.process_time() - cpu_started
            rows = None
            profiler = perf.active_profiler()
            if profiler is not None:
                rows = list(profiler.rows())
                rows.append(
                    {
                        "section": "cpu_total",
                        "seconds": cpu_seconds,
                        "calls": 1,
                    }
                )
            spans = None
            spans_dropped = 0
            tracer = trace.active_tracer()
            if task.trace and tracer is not None:
                spans = tracer.spans()
                spans_dropped = tracer.dropped
            counter_delta = metrics.counters().diff(counter_base).values
            result_queue.put(
                (
                    "done",
                    worker_id,
                    task.task_id,
                    result,
                    rows,
                    barrier_idle,
                    cpu_seconds,
                    spans,
                    spans_dropped,
                    counter_delta,
                )
            )
        except Exception:
            result_queue.put(
                ("error", worker_id, task.task_id, traceback.format_exc())
            )
        finally:
            perf.disable_profiler()
            trace.disable_tracer()
            trace.reset_context()
    reply_conn.close()


@dataclass
class _Unit:
    """One schedulable unit: a single spec task or a gang of shard tasks."""

    tasks: list

    @property
    def size(self) -> int:
        return len(self.tasks)


@dataclass
class _GroupState:
    """Driver-side progress of one sharded scenario."""

    size: int
    #: epoch -> shard_index -> (worker_id, ingests, marks)
    epoch_buffer: dict = field(default_factory=dict)
    #: shard_index -> RunResult partial
    partials: dict = field(default_factory=dict)


class SweepScheduler:
    """Execute a sweep as spec/shard tasks over one warm worker pool.

    Args:
        workers: Pool size (worker processes spawned once per sweep).
        shards_per_scenario: Shard each eligible scenario (one whose
            config sets ``ground_sync_days > 0``) across this many
            shard tasks, clamped to the pool size.  ``1`` runs every
            scenario as a single spec task.
        profile: Run every task with the phase profiler enabled and hand
            its rows to ``task_sink``.
    """

    def __init__(
        self,
        workers: int,
        shards_per_scenario: int = 1,
        profile: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        if shards_per_scenario < 1:
            raise ConfigError(
                f"shards_per_scenario must be >= 1, got {shards_per_scenario}"
            )
        self.workers = workers
        self.shards_per_scenario = shards_per_scenario
        self.profile = profile

    # -- planning ------------------------------------------------------
    def _plan(self, specs: Sequence) -> tuple[list[_Unit], dict[int, object]]:
        """Turn specs into schedulable units (shard gangs first).

        Shard gangs are ordered ahead of spec tasks so gangs claim whole
        worker blocks early and single-spec tasks backfill the leftover
        slots (including workers idled by another gang's epoch barrier);
        dispatch is first-fit over this order.  Ordering is pure
        scheduling policy — results are position-keyed and
        byte-invariant to it.

        Returns:
            The unit list and a ``spec_index -> dataset affinity key``
            map (for the ``tasks_stolen`` statistic).
        """
        from repro.analysis.scenarios import (
            DatasetSpec,
            _batch_error,
            _shardable_buckets,
        )

        groups: list[_Unit] = []
        singles: list[_Unit] = []
        affinity_keys: dict[int, object] = {}
        # Tracing follows the ambient tracer: when the driver has one
        # (``--trace``), every task records and ships spans — no
        # parameter threading through the runner layers required.
        traced = trace.active_tracer() is not None
        task_id = 0
        for index, spec in enumerate(specs):
            affinity_keys[index] = (
                spec.dataset
                if isinstance(spec.dataset, DatasetSpec)
                else id(spec.dataset)
            )
            buckets = None
            if self.shards_per_scenario > 1:
                try:
                    _, buckets = _shardable_buckets(
                        spec, min(self.shards_per_scenario, self.workers)
                    )
                except ConfigError:
                    # Spec semantics (e.g. sharding without an epoch
                    # cadence) — not a batch execution failure.
                    raise
                except Exception as exc:
                    raise _batch_error(spec, index, exc) from exc
            if buckets is not None:
                tasks = [
                    _Task(
                        task_id=task_id + shard_index,
                        kind="shard",
                        spec_index=index,
                        spec=spec,
                        shard_index=shard_index,
                        shard_count=len(buckets),
                        satellite_ids=tuple(bucket),
                        profile=self.profile,
                        trace=traced,
                    )
                    for shard_index, bucket in enumerate(buckets)
                ]
                task_id += len(buckets)
                groups.append(_Unit(tasks=tasks))
            else:
                singles.append(
                    _Unit(
                        tasks=[
                            _Task(
                                task_id=task_id,
                                kind="spec",
                                spec_index=index,
                                spec=spec,
                                profile=self.profile,
                                trace=traced,
                            )
                        ]
                    )
                )
                task_id += 1
        return groups + singles, affinity_keys

    # -- failure wrapping ----------------------------------------------
    @staticmethod
    def _task_failure(task: _Task, detail: str) -> ScenarioError:
        from repro.analysis.scenarios import _shard_failure

        if task.kind == "shard":
            return _shard_failure(
                task.spec, task.shard_index, task.shard_count, detail
            )
        return ScenarioError(
            f"scenario {task.spec.resolved_label()!r} "
            f"(spec {task.spec_index + 1} of a batch) failed: {detail}"
        )

    # -- execution -----------------------------------------------------
    def run(
        self,
        specs: Sequence,
        on_result: Callable | None = None,
        task_sink: Callable | None = None,
        progress=None,
    ) -> tuple[list[RunResult], SchedulerStats]:
        """Run the sweep; results in spec order, byte-identical to sequential.

        Args:
            specs: The scenarios to run.
            on_result: Streaming hook ``(spec_index, spec, result)``,
                called as each *scenario* completes (completion order).
            task_sink: Per-task hook ``(task, profile_rows, cpu_seconds)``
                called as each task completes (rows are None unless the
                scheduler was built with ``profile=True``).
            progress: Optional :class:`~repro.obs.progress.SweepProgress`
                (or duck-type) receiving ``task_started``/``task_finished``
                per task and ``spec_done`` per delivered scenario.
                Display-only; never fed back into scheduling.

        Returns:
            ``(results, stats)``.

        Raises:
            ConfigError: ``shards_per_scenario > 1`` against a spec
                without ``ground_sync_days`` (sharding is engine-only
                and must never change semantics, so the epoch journal is
                required, exactly as in the per-scenario sharded runner).
            ScenarioError: A task failed or its worker died; the message
                names the scenario label (and shard index for shard
                tasks) with the worker's traceback inline.
        """
        specs = list(specs)
        stats = SchedulerStats(workers=self.workers)
        started_wall = time.perf_counter()
        results: list[RunResult | None] = [None] * len(specs)
        if not specs:
            stats.wall_s = time.perf_counter() - started_wall
            return [], stats
        units, affinity_keys = self._plan(specs)
        if self.workers == 1:
            self._run_inline(
                specs, units, results, on_result, task_sink, stats, progress
            )
        else:
            self._run_pooled(
                specs,
                units,
                affinity_keys,
                results,
                on_result,
                task_sink,
                stats,
                progress,
            )
        stats.wall_s = time.perf_counter() - started_wall
        self._count_stats(stats)
        return results, stats  # type: ignore[return-value]

    @staticmethod
    def _count_stats(stats: SchedulerStats) -> None:
        """Fold the sweep's scheduling stats into the global counters."""
        bag = metrics.counters()
        bag.inc("sched.spawns", stats.spawns)
        bag.inc("sched.tasks_run", stats.tasks_run)
        bag.inc("sched.tasks_stolen", stats.tasks_stolen)
        bag.inc("sched.barrier_idle_s", stats.barrier_idle_s)

    def _run_inline(
        self, specs, units, results, on_result, task_sink, stats, progress
    ) -> None:
        """Single-worker degenerate case: run in-process, no pool.

        A one-worker pool could never gang-schedule a shard group, and
        in-process execution is the byte-identity reference anyway.
        Spans record straight into the driver's own tracer here, so only
        attribution (no buffer shipping) is needed.
        """
        from repro.analysis import scenarios

        for unit in units:
            for task in unit.tasks:
                assert task.kind == "spec", "1-worker plans have no gangs"
                if progress is not None:
                    progress.task_started()
                try:
                    if self.profile:
                        perf.enable_profiler()
                    with trace.trace_context(
                        scenario=task.spec.resolved_label()
                    ):
                        cpu_started = time.process_time()
                        with trace.span("spec_task"):
                            result = scenarios.run_scenario(task.spec)
                        cpu_seconds = time.process_time() - cpu_started
                    rows = None
                    profiler = perf.active_profiler()
                    if profiler is not None:
                        rows = list(profiler.rows())
                        rows.append(
                            {
                                "section": "cpu_total",
                                "seconds": cpu_seconds,
                                "calls": 1,
                            }
                        )
                except ScenarioError:
                    raise
                except Exception as exc:
                    raise self._task_failure(task, str(exc)) from exc
                finally:
                    perf.disable_profiler()
                stats.tasks_run += 1
                stats.spec_tasks += 1
                stats.worker_cpu_s += cpu_seconds
                results[task.spec_index] = result
                if task_sink is not None:
                    task_sink(task, rows, cpu_seconds)
                if progress is not None:
                    progress.task_finished()
                    progress.spec_done()
                if on_result is not None:
                    on_result(task.spec_index, task.spec, result)

    def _run_pooled(
        self,
        specs,
        units,
        affinity_keys,
        results,
        on_result,
        task_sink,
        stats,
        progress=None,
    ) -> None:
        """The driver event loop over one persistent worker pool."""
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        task_queue = context.Queue()
        result_queue = context.Queue()
        workers: list[tuple] = []
        for worker_id in range(self.workers):
            parent_conn, child_conn = context.Pipe()
            process = context.Process(
                target=_pool_worker,
                args=(worker_id, task_queue, result_queue, child_conn),
                daemon=True,
            )
            process.start()
            child_conn.close()
            workers.append((process, parent_conn))
        stats.spawns = self.workers

        tasks_by_id = {
            task.task_id: task for unit in units for task in unit.tasks
        }
        pending_units = list(units)
        groups: dict[int, _GroupState] = {
            unit.tasks[0].spec_index: _GroupState(size=unit.size)
            for unit in units
            if unit.tasks[0].kind == "shard"
        }
        idle = self.workers
        running: dict[int, int] = {}  # worker_id -> task_id (post-"start")
        affinity: dict[object, int] = {}  # dataset key -> last worker
        completed = 0
        failed = False

        def dispatch() -> None:
            # First-fit over the pending units: a gang goes out only
            # when a full block of idle slots exists (in-flight tasks
            # never exceed the pool — the backpressure bound — and every
            # gang member is guaranteed a worker, which makes the epoch
            # rendezvous deadlock-free); single spec tasks backfill any
            # remaining slots.
            nonlocal idle
            index = 0
            while index < len(pending_units):
                unit = pending_units[index]
                if unit.size <= idle:
                    for task in unit.tasks:
                        task_queue.put(task)
                    idle -= unit.size
                    del pending_units[index]
                else:
                    index += 1

        def deliver(spec_index: int, result: RunResult) -> None:
            nonlocal completed
            results[spec_index] = result
            completed += 1
            if progress is not None:
                progress.spec_done()
            if on_result is not None:
                on_result(spec_index, specs[spec_index], result)

        try:
            dispatch()
            while completed < len(specs):
                try:
                    message = result_queue.get(timeout=0.5)
                except queue_mod.Empty:
                    for worker_id, (process, _) in enumerate(workers):
                        if process.is_alive():
                            continue
                        detail = (
                            f"worker died without a result "
                            f"(exit code {process.exitcode})"
                        )
                        task_id = running.get(worker_id)
                        failed = True
                        if task_id is not None:
                            raise self._task_failure(
                                tasks_by_id[task_id], detail
                            )
                        raise ScenarioError(
                            f"sweep worker {worker_id} {detail}"
                        )
                    continue
                kind = message[0]
                if kind == "start":
                    _, worker_id, task_id = message
                    running[worker_id] = task_id
                    task = tasks_by_id[task_id]
                    if progress is not None:
                        progress.task_started()
                    stats.tasks_run += 1
                    if task.kind == "shard":
                        stats.shard_tasks += 1
                    else:
                        stats.spec_tasks += 1
                    key = affinity_keys[task.spec_index]
                    last = affinity.get(key)
                    if last is not None and last != worker_id:
                        stats.tasks_stolen += 1
                    affinity[key] = worker_id
                elif kind == "epoch":
                    _, worker_id, task_id, epoch, ingests, marks = message
                    task = tasks_by_id[task_id]
                    group = groups[task.spec_index]
                    buffer = group.epoch_buffer.setdefault(epoch, {})
                    buffer[task.shard_index] = (worker_id, ingests, marks)
                    if len(buffer) == group.size:
                        # Concatenate in ascending shard order before the
                        # canonical sort — the exact accumulation order
                        # of the per-scenario sharded runner, so merged
                        # journals (and every downstream byte) match it.
                        with trace.span(
                            "epoch_merge",
                            scenario=task.spec.resolved_label(),
                            epoch=epoch,
                        ):
                            all_ingests: list = []
                            all_marks: list = []
                            for shard_index in sorted(buffer):
                                (
                                    _,
                                    shard_ingests,
                                    shard_marks,
                                ) = buffer[shard_index]
                                all_ingests.extend(shard_ingests)
                                all_marks.extend(shard_marks)
                            merged = (
                                canonical_ingests(all_ingests),
                                canonical_marks(all_marks),
                            )
                            for shard_index in sorted(buffer):
                                shard_worker = buffer[shard_index][0]
                                workers[shard_worker][1].send(merged)
                        del group.epoch_buffer[epoch]
                elif kind == "done":
                    (
                        _,
                        worker_id,
                        task_id,
                        result,
                        rows,
                        barrier_idle,
                        cpu_seconds,
                        spans,
                        spans_dropped,
                        counter_delta,
                    ) = message
                    task = tasks_by_id[task_id]
                    running.pop(worker_id, None)
                    idle += 1
                    if progress is not None:
                        progress.task_finished()
                    stats.barrier_idle_s += barrier_idle
                    stats.worker_cpu_s += cpu_seconds
                    if spans:
                        driver_tracer = trace.active_tracer()
                        if driver_tracer is not None:
                            driver_tracer.extend(spans, spans_dropped)
                    if counter_delta:
                        metrics.counters().merge_in(
                            metrics.Counters(counter_delta)
                        )
                    if task_sink is not None:
                        task_sink(task, rows, cpu_seconds)
                    if task.kind == "spec":
                        deliver(task.spec_index, result)
                    else:
                        group = groups[task.spec_index]
                        group.partials[task.shard_index] = result
                        if len(group.partials) == group.size:
                            merged_result = RunResult.identity()
                            for shard_index in sorted(group.partials):
                                merged_result = merged_result.merge(
                                    group.partials[shard_index]
                                )
                            deliver(task.spec_index, merged_result)
                    dispatch()
                elif kind == "error":
                    _, worker_id, task_id, detail = message
                    failed = True
                    raise self._task_failure(tasks_by_id[task_id], detail)
        except BaseException:
            failed = True
            raise
        finally:
            if failed:
                # Workers may be blocked at an epoch barrier that will
                # never resolve; a clean drain is impossible.
                for process, parent_conn in workers:
                    parent_conn.close()
                    process.terminate()
                for process, _ in workers:
                    process.join(timeout=5.0)
                    if process.is_alive():
                        process.kill()
                        process.join()
            else:
                for _ in workers:
                    task_queue.put(None)
                for process, parent_conn in workers:
                    process.join(timeout=10.0)
                    parent_conn.close()
                    if process.is_alive():
                        process.terminate()
                        process.join()
            task_queue.close()
            result_queue.close()
            task_queue.cancel_join_thread()
            result_queue.cancel_join_thread()
