"""Plain-text tables and series: how benches print paper-style output.

Every benchmark regenerates its figure/table as text rows via these helpers,
so the numbers land in ``bench_output.txt`` in a stable, diffable format.
"""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row cell values (stringified; floats get 4 significant
            digits).
        title: Optional title line.

    Returns:
        The formatted multi-line string.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, value in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(value.ljust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_series(
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table([x_label, y_label], list(zip(xs, ys)), title=title)
