"""Plain-text tables and series: how benches print paper-style output.

Every benchmark regenerates its figure/table as text rows via these helpers,
so the numbers land in ``bench_output.txt`` in a stable, diffable format.
:func:`format_rows` additionally renders row dicts as csv or json for the
CLI's machine-readable output modes.
"""

from __future__ import annotations

import csv
import io
import json
import math
from typing import Any, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render an aligned monospace table.

    Args:
        headers: Column headers.
        rows: Row cell values (stringified; floats get 4 significant
            digits).
        title: Optional title line.

    Returns:
        The formatted multi-line string.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, value in enumerate(row):
            if idx < len(widths):
                widths[idx] = max(widths[idx], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(value.ljust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def format_rows(
    columns: Sequence[str],
    rows: Sequence[dict[str, Any]],
    fmt: str = "table",
    title: str | None = None,
) -> str:
    """Render row dicts in the requested format (table, csv, or json).

    Args:
        columns: Column names in display order (missing keys render
            empty).
        rows: One dict per row.
        fmt: ``"table"`` (aligned monospace), ``"csv"``, or ``"json"``.
        title: Optional title (table output only).

    Returns:
        The formatted string.

    Raises:
        ValueError: For an unknown format name.
    """
    if fmt == "table":
        return format_table(
            list(columns),
            [[row.get(c, "") for c in columns] for row in rows],
            title=title,
        )
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(columns)
        for row in rows:
            writer.writerow([row.get(c, "") for c in columns])
        return buffer.getvalue().rstrip("\n")
    if fmt == "json":
        return json.dumps(
            [{c: _json_safe(row.get(c)) for c in columns} for row in rows],
            indent=2,
        )
    raise ValueError(f"unknown format {fmt!r}; expected table, csv, or json")


def _json_safe(value: Any) -> Any:
    """Map non-finite floats to None so output stays strict JSON."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    return value


def rows_payload(
    columns: Sequence[str], rows: Sequence[dict[str, Any]]
) -> list[dict]:
    """Row dicts restricted to ``columns``, with json-safe values.

    The building block for structured multi-section json output (the
    CLI's ``--profile --format json``): each section goes through the
    same column selection and non-finite scrubbing as
    :func:`format_rows`'s json mode, then nests under its section key.
    """
    return [{c: _json_safe(row.get(c)) for c in columns} for row in rows]


def format_series(
    xs: Sequence[object],
    ys: Sequence[object],
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table([x_label, y_label], list(zip(xs, ys)), title=title)
