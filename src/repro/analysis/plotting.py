"""ASCII plotting: CDFs, series, and bars for terminal-native figures.

The benches and examples render paper figures as text; these helpers give
them honest little plots (monospace, fixed grid) without any plotting
dependency.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def ascii_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
    title: str | None = None,
) -> str:
    """Scatter/step plot of one or more (xs, ys) series.

    Each series gets a marker character (``*``, ``o``, ``+``, ``x`` in
    order); axes are linearly scaled to the union of the data.

    Args:
        series: Mapping label -> (xs, ys).
        width: Plot columns.
        height: Plot rows.
        x_label: X-axis caption.
        y_label: Y-axis caption.
        title: Optional title line.

    Returns:
        The multi-line plot.
    """
    markers = "*o+x@#%&"
    all_x = np.concatenate(
        [np.asarray(xs, dtype=np.float64) for xs, _ in series.values()]
    )
    all_y = np.concatenate(
        [np.asarray(ys, dtype=np.float64) for _, ys in series.values()]
    )
    finite = np.isfinite(all_x) & np.isfinite(all_y)
    if not finite.any():
        return "(no finite data)"
    x_min, x_max = float(all_x[finite].min()), float(all_x[finite].max())
    y_min, y_max = float(all_y[finite].min()), float(all_y[finite].max())
    x_span = max(x_max - x_min, 1e-12)
    y_span = max(y_max - y_min, 1e-12)
    canvas = [[" "] * width for _ in range(height)]
    for idx, (label, (xs, ys)) in enumerate(series.items()):
        marker = markers[idx % len(markers)]
        for x, y in zip(xs, ys):
            if not (np.isfinite(x) and np.isfinite(y)):
                continue
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            canvas[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_max:10.3g} +" + "-" * width)
    for row in canvas:
        lines.append(" " * 11 + "|" + "".join(row))
    lines.append(f"{y_min:10.3g} +" + "-" * width)
    lines.append(
        " " * 12 + f"{x_min:<10.3g}{x_label:^{max(1, width - 20)}}{x_max:>10.3g}"
    )
    legend = "   ".join(
        f"{markers[idx % len(markers)]} {label}"
        for idx, label in enumerate(series)
    )
    lines.append(" " * 12 + legend + f"   (y: {y_label})")
    return "\n".join(lines)


def ascii_cdf(
    samples: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    x_label: str = "value",
    title: str | None = None,
) -> str:
    """CDF plot of one or more samples."""
    series = {}
    for label, values in samples.items():
        arr = np.sort(np.asarray(list(values), dtype=np.float64))
        if arr.size == 0:
            continue
        probs = np.arange(1, arr.size + 1) / arr.size
        series[label] = (arr, probs)
    if not series:
        return "(no data)"
    return ascii_plot(
        series, width=width, height=height,
        x_label=x_label, y_label="CDF", title=title,
    )


def ascii_bars(
    values: dict[str, float],
    width: int = 48,
    title: str | None = None,
    unit: str = "",
) -> str:
    """Horizontal bar chart (Figure 15/16 style)."""
    if not values:
        return "(no data)"
    peak = max(abs(v) for v in values.values()) or 1.0
    label_width = max(len(k) for k in values)
    lines = [title] if title else []
    for label, value in values.items():
        bar = "#" * max(1, int(round(abs(value) / peak * width)))
        lines.append(f"{label:<{label_width}}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)
