"""Scenario orchestration: declarative simulation specs + batch execution.

A :class:`ScenarioSpec` names everything one simulation run needs — dataset,
policy, config, uplink budget, fluctuation, seed — as plain picklable data.
:func:`run_scenario` turns one spec into a
:class:`~repro.core.accounting.RunResult`; :func:`run_scenarios` executes a
batch, optionally over the persistent worker pool of
:class:`~repro.analysis.scheduler.SweepScheduler` (whole scenarios and
scenario shards share one pool).  Every experiment driver (the
figure sweeps, the CLI, ad-hoc notebooks) goes through this one path, so
all comparisons share detectors, codec, and scoring.

Determinism is the contract: a scenario's result depends only on its spec,
never on which worker ran it or what ran before — datasets are rebuilt from
their specs inside workers, detector training is seeded and memoized, and
the ground segment's RNG streams are derived from the spec's seed.  A
process-parallel batch is therefore byte-identical to running the same
specs sequentially.

Warm state rides on that determinism: because :meth:`DatasetSpec.build`
memoizes per process, every scenario of a sweep that names the same spec
shares one set of ``EarthModel``/``CloudModel``/sensor objects — and with
them the fast path's capture/surface caches and the schedule's memoized
visit ordering (see :mod:`repro.perf` and docs/architecture.md,
"Simulation fast path").  The first run of a sweep pays full imagery
synthesis; subsequent policies/seeds over the same dataset re-observe
cached captures.  The caches never change results (differential-tested);
they only remove redundant recomputation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro import perf
from repro.obs import trace
from repro.baselines.kodan import KodanPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.satroi import SatRoIPolicy
from repro.core.accounting import RunResult
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.config import EarthPlusConfig
from repro.core.ground_segment import GroundSegment
from repro.core.system import ConstellationSimulator, EarthPlusPolicy
from repro.datasets.generator import SyntheticDataset
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.errors import ConfigError, ScenarioError
from repro.orbit.links import FluctuationModel

POLICY_NAMES = ("earthplus", "kodan", "satroi", "naive")

#: Table-1 uplink capacity of one ground contact (250 kbps x 600 s), the
#: value a ``ScenarioSpec`` with ``uplink_bytes_per_contact=None`` runs
#: with — shared with the store's spec hashing so explicit-default and
#: implicit-default specs resolve to one content key.
DEFAULT_UPLINK_BYTES_PER_CONTACT = int(250e3 * 600 / 8)

#: Table-1 downlink capacity of one ground contact (200 Mbps x 600 s),
#: the value a ``ScenarioSpec`` with ``downlink_bytes_per_contact=None``
#: runs with.  At this capacity our laptop-scale scenarios never shed a
#: layer, so defaulted runs stay byte-identical to unconstrained ones.
DEFAULT_DOWNLINK_BYTES_PER_CONTACT = int(200e6 * 600 / 8)

#: Dataset builders a :class:`DatasetSpec` may name.
DATASET_BUILDERS = {
    "sentinel2": sentinel2_dataset,
    "planet": planet_dataset,
}

#: Built datasets memoized per process, keyed by canonical spec.  Bounded:
#: sweeps over many distinct specs (e.g. constellation sizes) would
#: otherwise grow resident memory without limit in long-lived processes.
# repro: allow(RPR005): per-process memo of deterministically-built datasets — a key rebuilds to a bit-identical dataset in any process, so worker copies can never disagree with the driver
_DATASET_CACHE: dict[tuple, SyntheticDataset] = {}
_DATASET_CACHE_MAX = 8


def _canonical(value):
    """Recursively convert lists/dicts to hashable tuples for cache keys."""
    if isinstance(value, dict):
        return tuple(
            (k, _canonical(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset named by builder + keyword arguments, built on demand.

    Rebuilding from the spec (rather than shipping a built dataset) is what
    lets scenario batches run in worker processes while staying
    deterministic; construction is memoized per process.

    Attributes:
        kind: Builder name (a key of :data:`DATASET_BUILDERS`).
        params: Canonicalized keyword arguments for the builder.
    """

    kind: str
    params: tuple = ()

    @classmethod
    def of(cls, kind: str, **params) -> "DatasetSpec":
        """Build a spec from plain keyword arguments."""
        if kind not in DATASET_BUILDERS:
            raise ConfigError(
                f"unknown dataset kind {kind!r}; "
                f"expected one of {tuple(DATASET_BUILDERS)}"
            )
        return cls(kind=kind, params=_canonical(params))

    def build(self) -> SyntheticDataset:
        """The described dataset (memoized per process)."""
        key = (self.kind, self.params)
        dataset = _DATASET_CACHE.get(key)
        if dataset is None:
            kwargs = {
                name: list(value) if isinstance(value, tuple) else value
                for name, value in self.params
            }
            # Image shapes arrive as tuples and must stay tuples.
            if "image_shape" in kwargs:
                kwargs["image_shape"] = tuple(kwargs["image_shape"])
            dataset = DATASET_BUILDERS[self.kind](**kwargs)
            while len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
                _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
            _DATASET_CACHE[key] = dataset
        return dataset


@dataclass
class ScenarioSpec:
    """Everything one simulation run needs, as plain data.

    Attributes:
        policy: One of :data:`POLICY_NAMES`.
        dataset: A :class:`DatasetSpec` (preferred: rebuildable in worker
            processes) or an already-built dataset.
        config: Earth+ tunables (None = defaults; shared knobs also steer
            baselines).
        uplink_bytes_per_contact: Override the Table-1 default uplink
            capacity (only Earth+ uses the uplink).
        downlink_bytes_per_contact: Override the Table-1 default downlink
            capacity (all policies compete for contact capacity; small
            values engage quality-layer shedding).
        fluctuation: Optional per-contact bandwidth fluctuation model
            (shared by both links; each link draws its own stream).
        downlink_severity: When > 0, the downlink fluctuates with this
            log-space sigma even if ``fluctuation`` is None (the model is
            derived deterministically: the shared fluctuation's seed when
            present, else this spec's ``seed``).
        ground_detector_for_scoring: Whether the ground re-screens
            downloads with the accurate detector before mosaic ingest.
        seed: Ground-segment seed (random update skipping).
        label: Optional display name for tables and sweep output.
        extras: Free-form annotations carried through to sweep rows
            (e.g. the swept parameter value).
    """

    policy: str
    dataset: DatasetSpec | SyntheticDataset
    config: EarthPlusConfig | None = None
    uplink_bytes_per_contact: int | None = None
    downlink_bytes_per_contact: int | None = None
    fluctuation: FluctuationModel | None = None
    downlink_severity: float = 0.0
    ground_detector_for_scoring: bool = True
    seed: int = 0
    label: str | None = None
    extras: dict = field(default_factory=dict)

    def downlink_fluctuation(self) -> FluctuationModel | None:
        """The fluctuation model the downlink phase should draw from.

        ``downlink_severity > 0`` derives a dedicated model (seeded from
        the shared fluctuation when present, else from ``seed``) so the
        downlink can degrade harder than the uplink; otherwise the shared
        model serves both links via its per-link streams.
        """
        if self.downlink_severity > 0.0:
            base = self.fluctuation
            return FluctuationModel(
                seed=base.seed if base is not None else self.seed,
                severity=self.downlink_severity,
                floor=base.floor if base is not None else 0.2,
                ceiling=base.ceiling if base is not None else 1.5,
            )
        return self.fluctuation

    def resolved_label(self) -> str:
        """The display label (defaults to ``policy/seed<seed>``)."""
        return self.label if self.label else f"{self.policy}/seed{self.seed}"


def build_policy_factory(
    policy: str,
    config: EarthPlusConfig,
    bands,
    image_shape: tuple[int, int],
):
    """Per-satellite policy factory for one named policy.

    The cheap on-board and accurate ground detectors are trained (memoized)
    here so every scenario shares identical detector state.
    """
    if policy not in POLICY_NAMES:
        raise ConfigError(
            f"unknown policy {policy!r}; expected one of {POLICY_NAMES}"
        )
    cheap = train_onboard_detector(bands, tile_size=config.tile_size)
    accurate = train_ground_detector(bands)

    def factory(satellite_id: int):
        if policy == "earthplus":
            return EarthPlusPolicy(config, bands, image_shape, cheap)
        if policy == "kodan":
            return KodanPolicy(config, bands, image_shape, accurate)
        if policy == "satroi":
            return SatRoIPolicy(config, bands, image_shape, cheap)
        return NaivePolicy(config, bands, image_shape)

    return factory


def build_simulator(
    spec: ScenarioSpec, dataset: SyntheticDataset | None = None
) -> ConstellationSimulator:
    """The fully-wired simulator one spec describes.

    Shared by :func:`run_scenario` (which runs it whole) and the sweep
    scheduler's shard tasks (where every worker builds the same
    simulator and runs only its satellites), so both paths resolve
    datasets, detectors, budgets, and fluctuation models through
    identical code.

    Args:
        spec: The scenario description.
        dataset: The spec's already-built dataset, when the caller has
            one (e.g. it partitioned satellites from it); None builds
            (or cache-hits) from the spec.

    Raises:
        ConfigError: For unknown policy or dataset names.
    """
    if dataset is None:
        dataset = (
            spec.dataset.build()
            if isinstance(spec.dataset, DatasetSpec)
            else spec.dataset
        )
    config = spec.config if spec.config is not None else EarthPlusConfig()
    factory = build_policy_factory(
        spec.policy, config, dataset.bands, dataset.image_shape
    )
    ground = GroundSegment(
        config=config,
        bands=dataset.bands,
        image_shape=dataset.image_shape,
        ground_detector=(
            train_ground_detector(dataset.bands)
            if spec.ground_detector_for_scoring
            else None
        ),
        seed=spec.seed,
    )
    return ConstellationSimulator(
        sensors=dataset.sensors,
        bands=dataset.bands,
        schedule=dataset.schedule,
        image_shape=dataset.image_shape,
        config=config,
        policy_factory=factory,
        ground_segment=ground,
        uplink_bytes_per_contact=(
            spec.uplink_bytes_per_contact
            if spec.uplink_bytes_per_contact is not None
            else DEFAULT_UPLINK_BYTES_PER_CONTACT
        ),
        downlink_bytes_per_contact=(
            spec.downlink_bytes_per_contact
            if spec.downlink_bytes_per_contact is not None
            else DEFAULT_DOWNLINK_BYTES_PER_CONTACT
        ),
        fluctuation=spec.fluctuation,
        downlink_fluctuation=spec.downlink_fluctuation(),
    )


def run_scenario(
    spec: ScenarioSpec, dataset: SyntheticDataset | None = None
) -> RunResult:
    """Execute one scenario and return its aggregated result.

    Args:
        spec: The scenario description.
        dataset: The spec's already-built dataset, if the caller holds
            one — avoids a redundant build when e.g. the sharded runner
            built it to partition satellites and then fell back to a
            whole-scenario run.

    Returns:
        The run's :class:`RunResult`.

    Raises:
        ConfigError: For unknown policy or dataset names.
    """
    return build_simulator(spec, dataset=dataset).run()


def _shard_failure(
    spec: ScenarioSpec, shard_index: int, shard_count: int, detail: str
) -> ScenarioError:
    """Wrap a shard-worker failure naming the scenario and the shard."""
    return ScenarioError(
        f"scenario {spec.resolved_label()!r} failed in shard "
        f"{shard_index} of {shard_count}: {detail}"
    )


def _shardable_buckets(
    spec: ScenarioSpec, shards: int
) -> tuple[SyntheticDataset | None, list[list[int]] | None]:
    """Partition a spec's satellites for sharding.

    The gatekeeper both sharded entry points (:func:`run_scenario_sharded`
    and the sweep scheduler's planner) share: it validates that the spec
    is epoch-synchronized, builds (or cache-hits) the dataset, and
    partitions its satellites.

    Returns:
        ``(dataset, buckets)``.  ``buckets`` is None when the scenario
        should run whole — one shard was requested or the partition
        collapsed to a single bucket; the built dataset rides along so
        that fallback needn't build it again.

    Raises:
        ConfigError: ``shards > 1`` against a spec whose config has no
            ``ground_sync_days`` cadence.
    """
    if shards <= 1:
        return None, None
    config = spec.config if spec.config is not None else EarthPlusConfig()
    if config.ground_sync_days <= 0:
        raise ConfigError(
            "sharded execution requires epoch-synchronized ground state: "
            "set config.ground_sync_days > 0 (e.g. 1.0). The sync cadence "
            "is part of the scenario's semantics; the shard count is not."
        )
    dataset = (
        spec.dataset.build()
        if isinstance(spec.dataset, DatasetSpec)
        else spec.dataset
    )
    buckets = dataset.schedule.partition_satellites(shards)
    if len(buckets) <= 1:
        return dataset, None
    return dataset, buckets


def run_scenario_sharded(
    spec: ScenarioSpec,
    shards: int | None = None,
    profile_sink: Callable[[int, tuple[int, ...], list], None] | None = None,
) -> RunResult:
    """Execute one scenario sharded across worker processes.

    Satellites are partitioned into ``shards`` balanced buckets (see
    :meth:`~repro.orbit.schedule.VisitSchedule.partition_satellites`);
    each worker runs the full phase pipeline over its bucket against its
    own ground segment, shards exchange ground-state journals at every
    ``ground_sync_days`` epoch boundary, and the per-shard
    :class:`RunResult` partials fold together with
    :meth:`RunResult.merge`.  The merged result is pickle-byte-identical
    to ``shards=1`` (differential-tested): the journal protocol makes
    ground state a pure function of the epoch's merged writes, and the
    merge re-sorts records into canonical visit order.

    Args:
        spec: The scenario description.  Its config must set
            ``ground_sync_days > 0``; the legacy continuous ground model
            has no consistent satellite partition.
        shards: Worker count (None reads ``REPRO_SIM_SHARDS``, default
            1).  ``1`` runs in-process via :func:`run_scenario`.
        profile_sink: Optional callable receiving
            ``(shard_index, satellite_ids, profile_rows)`` per shard;
            when set, workers run with the phase profiler enabled.

    Returns:
        The merged :class:`RunResult`.

    Raises:
        ConfigError: For ``shards < 1`` or a spec without
            ``ground_sync_days``.
        ScenarioError: When a shard worker fails; the message names the
            scenario label and the shard index, with the worker's
            traceback inline.
    """
    from repro.analysis.scheduler import SweepScheduler

    if shards is None:
        shards = perf.sim_shards()
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return run_scenario(spec)
    dataset, buckets = _shardable_buckets(spec, shards)
    if buckets is None:
        # One bucket: run whole, reusing the dataset the partition
        # attempt just built instead of building it again.
        return run_scenario(spec, dataset=dataset)
    task_sink = None
    if profile_sink is not None:

        def task_sink(task, rows, cpu_seconds):
            if rows is not None:
                profile_sink(task.shard_index, task.satellite_ids, rows)

    scheduler = SweepScheduler(
        workers=len(buckets),
        shards_per_scenario=len(buckets),
        profile=profile_sink is not None,
    )
    results, _ = scheduler.run([spec], task_sink=task_sink)
    return results[0]


def _batch_error(spec: ScenarioSpec, index: int, exc: Exception) -> ScenarioError:
    """Wrap a worker failure so the batch caller learns which spec died."""
    return ScenarioError(
        f"scenario {spec.resolved_label()!r} (spec {index + 1} of a batch) "
        f"failed: {exc}"
    )


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    max_workers: int | None = None,
    on_result: Callable[[int, ScenarioSpec, RunResult], None] | None = None,
    shards: int | None = None,
    stats_sink: Callable[..., None] | None = None,
    profile_sink: Callable[[list], None] | None = None,
    progress=None,
) -> list[RunResult]:
    """Execute a batch of scenarios, optionally process-parallel.

    Results are returned in spec order and are byte-identical to running
    :func:`run_scenario` on each spec sequentially — workers rebuild
    datasets and detectors deterministically from the specs, and the
    sweep scheduler only decides when work runs, never what merges.

    The two parallelism axes compose: ``max_workers`` sizes one
    persistent worker pool (see
    :class:`~repro.analysis.scheduler.SweepScheduler`) and ``shards``
    splits each epoch-synchronized scenario into that many shard tasks
    over the *same* pool, so a 12-spec x 4-shard sweep keeps every
    worker busy — while one scenario's shards wait at an epoch barrier,
    other scenarios' tasks fill the idle workers.  When only sharding is
    requested the pool is sized to the shard count.

    Prefer :class:`DatasetSpec` over a prebuilt dataset for batches: specs
    hit the per-process dataset cache, so every scenario a worker runs
    over the same dataset reuses one warm set of models, sensors, caches,
    and the precomputed visit ordering.  A prebuilt dataset is pickled
    per task and arrives cold in each worker.

    Args:
        specs: The scenarios to run.
        max_workers: Worker-pool size.  None reads ``REPRO_SIM_WORKERS``
            (default 1); a resolved size of 1 with ``shards <= 1`` runs
            in-process.
        on_result: Optional streaming hook called as each scenario lands
            (in completion order, which under parallel workers is not spec
            order) with ``(spec_index, spec, result)``.  The experiment
            store persists results through this hook, so everything that
            finished before a failure survives the batch.
        shards: When > 1, additionally split each scenario into this
            many shard tasks (requires ``config.ground_sync_days > 0``;
            see :func:`run_scenario_sharded` for the single-scenario
            entry point).  None reads ``REPRO_SIM_SHARDS`` (default 1).
        stats_sink: Optional hook receiving the pool's
            :class:`~repro.analysis.scheduler.SchedulerStats` after a
            pooled sweep (never called for in-process runs).
        profile_sink: Optional hook receiving each completed task's
            profiler rows (``[{"section", "seconds", "calls"}]``,
            including a synthetic ``cpu_total`` row).  When set, every
            task runs with the phase profiler enabled; fold the rows
            with :meth:`~repro.perf.SimProfiler.merge` for one
            sweep-wide table.
        progress: Optional :class:`~repro.obs.progress.SweepProgress`
            (or duck-type) receiving task/spec completion callbacks.
            Display-only; results are byte-invariant to it.

    Returns:
        One :class:`RunResult` per spec, in order.

    Raises:
        ConfigError: For invalid ``max_workers``/``shards``, or
            ``shards > 1`` against a spec without epoch-synchronized
            ground state.
        ScenarioError: When any scenario fails.  The message names the
            failing spec's ``resolved_label()`` (plus the shard index
            for shard-task failures) with the worker's traceback
            inline.  Scenarios that completed before the failure was
            observed have already been delivered to ``on_result``.
    """
    specs = list(specs)
    if max_workers is not None and max_workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    workers = max_workers if max_workers is not None else perf.sim_workers()
    if shards is None:
        shards = perf.sim_shards()
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    results: list[RunResult] = [None] * len(specs)  # type: ignore[list-item]
    pool_size = max(workers, shards)
    if pool_size <= 1 or (shards <= 1 and len(specs) <= 1) or not specs:
        for index, spec in enumerate(specs):
            if progress is not None:
                progress.task_started()
            try:
                if profile_sink is not None:
                    perf.enable_profiler()
                with trace.trace_context(scenario=spec.resolved_label()):
                    cpu_started = time.process_time()
                    with trace.span("spec_task"):
                        result = run_scenario(spec)
                    cpu_seconds = time.process_time() - cpu_started
                if profile_sink is not None:
                    profiler = perf.active_profiler()
                    if profiler is not None:
                        rows = list(profiler.rows())
                        rows.append(
                            {
                                "section": "cpu_total",
                                "seconds": cpu_seconds,
                                "calls": 1,
                            }
                        )
                        profile_sink(rows)
            except Exception as exc:
                raise _batch_error(spec, index, exc) from exc
            finally:
                if profile_sink is not None:
                    perf.disable_profiler()
            results[index] = result
            if progress is not None:
                progress.task_finished()
                progress.spec_done()
            if on_result is not None:
                on_result(index, spec, result)
        return results
    from repro.analysis.scheduler import SweepScheduler

    scheduler = SweepScheduler(
        workers=pool_size,
        shards_per_scenario=shards,
        profile=profile_sink is not None,
    )
    task_sink = None
    if profile_sink is not None:

        def task_sink(task, rows, cpu_seconds):
            if rows is not None:
                profile_sink(rows)

    results, stats = scheduler.run(
        specs, on_result=on_result, task_sink=task_sink, progress=progress
    )
    if stats_sink is not None:
        stats_sink(stats)
    return results


def sweep_specs(
    dataset: DatasetSpec | SyntheticDataset,
    policies: Iterable[str] = ("earthplus",),
    seeds: Iterable[int] = (0,),
    gammas: Iterable[float] | None = None,
    base_config: EarthPlusConfig | None = None,
    uplink_bytes_per_contact: int | None = None,
    downlink_bytes_per_contact: int | None = None,
    fluctuation: FluctuationModel | None = None,
    downlink_severity: float = 0.0,
) -> list[ScenarioSpec]:
    """The policies x seeds x gammas cross-product as scenario specs.

    Args:
        dataset: Dataset (spec or built) every scenario shares.
        policies: Policy names to sweep.
        seeds: Ground-segment seeds to sweep.
        gammas: Bits-per-pixel settings to sweep (None = the base config's).
        base_config: Config the gamma overrides apply to.
        uplink_bytes_per_contact: Optional shared uplink override.
        downlink_bytes_per_contact: Optional shared downlink override.
        fluctuation: Optional shared fluctuation model.
        downlink_severity: Optional downlink-only fluctuation severity.

    Returns:
        Labelled specs in (gamma, policy, seed) order.
    """
    base = base_config if base_config is not None else EarthPlusConfig()
    gamma_list = list(gammas) if gammas is not None else [base.gamma_bpp]
    specs = []
    for gamma in gamma_list:
        config = base.with_overrides(gamma_bpp=gamma)
        for policy in policies:
            for seed in seeds:
                specs.append(
                    ScenarioSpec(
                        policy=policy,
                        dataset=dataset,
                        config=config,
                        uplink_bytes_per_contact=uplink_bytes_per_contact,
                        downlink_bytes_per_contact=downlink_bytes_per_contact,
                        fluctuation=fluctuation,
                        downlink_severity=downlink_severity,
                        seed=seed,
                        label=f"{policy}/g{gamma:g}/s{seed}",
                        extras={"gamma": gamma, "seed": seed},
                    )
                )
    return specs
