"""Scenario orchestration: declarative simulation specs + batch execution.

A :class:`ScenarioSpec` names everything one simulation run needs — dataset,
policy, config, uplink budget, fluctuation, seed — as plain picklable data.
:func:`run_scenario` turns one spec into a
:class:`~repro.core.accounting.RunResult`; :func:`run_scenarios` executes a
batch, optionally across worker processes.  Every experiment driver (the
figure sweeps, the CLI, ad-hoc notebooks) goes through this one path, so
all comparisons share detectors, codec, and scoring.

Determinism is the contract: a scenario's result depends only on its spec,
never on which worker ran it or what ran before — datasets are rebuilt from
their specs inside workers, detector training is seeded and memoized, and
the ground segment's RNG streams are derived from the spec's seed.  A
process-parallel batch is therefore byte-identical to running the same
specs sequentially.

Warm state rides on that determinism: because :meth:`DatasetSpec.build`
memoizes per process, every scenario of a sweep that names the same spec
shares one set of ``EarthModel``/``CloudModel``/sensor objects — and with
them the fast path's capture/surface caches and the schedule's memoized
visit ordering (see :mod:`repro.perf` and docs/architecture.md,
"Simulation fast path").  The first run of a sweep pays full imagery
synthesis; subsequent policies/seeds over the same dataset re-observe
cached captures.  The caches never change results (differential-tested);
they only remove redundant recomputation.
"""

from __future__ import annotations

from concurrent.futures import CancelledError, ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.baselines.kodan import KodanPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.satroi import SatRoIPolicy
from repro.core.accounting import RunResult
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.config import EarthPlusConfig
from repro.core.ground_segment import GroundSegment
from repro.core.system import ConstellationSimulator, EarthPlusPolicy
from repro.datasets.generator import SyntheticDataset
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.errors import ConfigError, ScenarioError
from repro.orbit.links import FluctuationModel

POLICY_NAMES = ("earthplus", "kodan", "satroi", "naive")

#: Table-1 uplink capacity of one ground contact (250 kbps x 600 s), the
#: value a ``ScenarioSpec`` with ``uplink_bytes_per_contact=None`` runs
#: with — shared with the store's spec hashing so explicit-default and
#: implicit-default specs resolve to one content key.
DEFAULT_UPLINK_BYTES_PER_CONTACT = int(250e3 * 600 / 8)

#: Table-1 downlink capacity of one ground contact (200 Mbps x 600 s),
#: the value a ``ScenarioSpec`` with ``downlink_bytes_per_contact=None``
#: runs with.  At this capacity our laptop-scale scenarios never shed a
#: layer, so defaulted runs stay byte-identical to unconstrained ones.
DEFAULT_DOWNLINK_BYTES_PER_CONTACT = int(200e6 * 600 / 8)

#: Dataset builders a :class:`DatasetSpec` may name.
DATASET_BUILDERS = {
    "sentinel2": sentinel2_dataset,
    "planet": planet_dataset,
}

#: Built datasets memoized per process, keyed by canonical spec.  Bounded:
#: sweeps over many distinct specs (e.g. constellation sizes) would
#: otherwise grow resident memory without limit in long-lived processes.
_DATASET_CACHE: dict[tuple, SyntheticDataset] = {}
_DATASET_CACHE_MAX = 8


def _canonical(value):
    """Recursively convert lists/dicts to hashable tuples for cache keys."""
    if isinstance(value, dict):
        return tuple(
            (k, _canonical(v)) for k, v in sorted(value.items())
        )
    if isinstance(value, (list, tuple)):
        return tuple(_canonical(v) for v in value)
    return value


@dataclass(frozen=True)
class DatasetSpec:
    """A dataset named by builder + keyword arguments, built on demand.

    Rebuilding from the spec (rather than shipping a built dataset) is what
    lets scenario batches run in worker processes while staying
    deterministic; construction is memoized per process.

    Attributes:
        kind: Builder name (a key of :data:`DATASET_BUILDERS`).
        params: Canonicalized keyword arguments for the builder.
    """

    kind: str
    params: tuple = ()

    @classmethod
    def of(cls, kind: str, **params) -> "DatasetSpec":
        """Build a spec from plain keyword arguments."""
        if kind not in DATASET_BUILDERS:
            raise ConfigError(
                f"unknown dataset kind {kind!r}; "
                f"expected one of {tuple(DATASET_BUILDERS)}"
            )
        return cls(kind=kind, params=_canonical(params))

    def build(self) -> SyntheticDataset:
        """The described dataset (memoized per process)."""
        key = (self.kind, self.params)
        dataset = _DATASET_CACHE.get(key)
        if dataset is None:
            kwargs = {
                name: list(value) if isinstance(value, tuple) else value
                for name, value in self.params
            }
            # Image shapes arrive as tuples and must stay tuples.
            if "image_shape" in kwargs:
                kwargs["image_shape"] = tuple(kwargs["image_shape"])
            dataset = DATASET_BUILDERS[self.kind](**kwargs)
            while len(_DATASET_CACHE) >= _DATASET_CACHE_MAX:
                _DATASET_CACHE.pop(next(iter(_DATASET_CACHE)))
            _DATASET_CACHE[key] = dataset
        return dataset


@dataclass
class ScenarioSpec:
    """Everything one simulation run needs, as plain data.

    Attributes:
        policy: One of :data:`POLICY_NAMES`.
        dataset: A :class:`DatasetSpec` (preferred: rebuildable in worker
            processes) or an already-built dataset.
        config: Earth+ tunables (None = defaults; shared knobs also steer
            baselines).
        uplink_bytes_per_contact: Override the Table-1 default uplink
            capacity (only Earth+ uses the uplink).
        downlink_bytes_per_contact: Override the Table-1 default downlink
            capacity (all policies compete for contact capacity; small
            values engage quality-layer shedding).
        fluctuation: Optional per-contact bandwidth fluctuation model
            (shared by both links; each link draws its own stream).
        downlink_severity: When > 0, the downlink fluctuates with this
            log-space sigma even if ``fluctuation`` is None (the model is
            derived deterministically: the shared fluctuation's seed when
            present, else this spec's ``seed``).
        ground_detector_for_scoring: Whether the ground re-screens
            downloads with the accurate detector before mosaic ingest.
        seed: Ground-segment seed (random update skipping).
        label: Optional display name for tables and sweep output.
        extras: Free-form annotations carried through to sweep rows
            (e.g. the swept parameter value).
    """

    policy: str
    dataset: DatasetSpec | SyntheticDataset
    config: EarthPlusConfig | None = None
    uplink_bytes_per_contact: int | None = None
    downlink_bytes_per_contact: int | None = None
    fluctuation: FluctuationModel | None = None
    downlink_severity: float = 0.0
    ground_detector_for_scoring: bool = True
    seed: int = 0
    label: str | None = None
    extras: dict = field(default_factory=dict)

    def downlink_fluctuation(self) -> FluctuationModel | None:
        """The fluctuation model the downlink phase should draw from.

        ``downlink_severity > 0`` derives a dedicated model (seeded from
        the shared fluctuation when present, else from ``seed``) so the
        downlink can degrade harder than the uplink; otherwise the shared
        model serves both links via its per-link streams.
        """
        if self.downlink_severity > 0.0:
            base = self.fluctuation
            return FluctuationModel(
                seed=base.seed if base is not None else self.seed,
                severity=self.downlink_severity,
                floor=base.floor if base is not None else 0.2,
                ceiling=base.ceiling if base is not None else 1.5,
            )
        return self.fluctuation

    def resolved_label(self) -> str:
        """The display label (defaults to ``policy/seed<seed>``)."""
        return self.label if self.label else f"{self.policy}/seed{self.seed}"


def build_policy_factory(
    policy: str,
    config: EarthPlusConfig,
    bands,
    image_shape: tuple[int, int],
):
    """Per-satellite policy factory for one named policy.

    The cheap on-board and accurate ground detectors are trained (memoized)
    here so every scenario shares identical detector state.
    """
    if policy not in POLICY_NAMES:
        raise ConfigError(
            f"unknown policy {policy!r}; expected one of {POLICY_NAMES}"
        )
    cheap = train_onboard_detector(bands, tile_size=config.tile_size)
    accurate = train_ground_detector(bands)

    def factory(satellite_id: int):
        if policy == "earthplus":
            return EarthPlusPolicy(config, bands, image_shape, cheap)
        if policy == "kodan":
            return KodanPolicy(config, bands, image_shape, accurate)
        if policy == "satroi":
            return SatRoIPolicy(config, bands, image_shape, cheap)
        return NaivePolicy(config, bands, image_shape)

    return factory


def run_scenario(spec: ScenarioSpec) -> RunResult:
    """Execute one scenario and return its aggregated result.

    Args:
        spec: The scenario description.

    Returns:
        The run's :class:`RunResult`.

    Raises:
        ConfigError: For unknown policy or dataset names.
    """
    dataset = (
        spec.dataset.build()
        if isinstance(spec.dataset, DatasetSpec)
        else spec.dataset
    )
    config = spec.config if spec.config is not None else EarthPlusConfig()
    factory = build_policy_factory(
        spec.policy, config, dataset.bands, dataset.image_shape
    )
    ground = GroundSegment(
        config=config,
        bands=dataset.bands,
        image_shape=dataset.image_shape,
        ground_detector=(
            train_ground_detector(dataset.bands)
            if spec.ground_detector_for_scoring
            else None
        ),
        seed=spec.seed,
    )
    simulator = ConstellationSimulator(
        sensors=dataset.sensors,
        bands=dataset.bands,
        schedule=dataset.schedule,
        image_shape=dataset.image_shape,
        config=config,
        policy_factory=factory,
        ground_segment=ground,
        uplink_bytes_per_contact=(
            spec.uplink_bytes_per_contact
            if spec.uplink_bytes_per_contact is not None
            else DEFAULT_UPLINK_BYTES_PER_CONTACT
        ),
        downlink_bytes_per_contact=(
            spec.downlink_bytes_per_contact
            if spec.downlink_bytes_per_contact is not None
            else DEFAULT_DOWNLINK_BYTES_PER_CONTACT
        ),
        fluctuation=spec.fluctuation,
        downlink_fluctuation=spec.downlink_fluctuation(),
    )
    return simulator.run()


def _batch_error(spec: ScenarioSpec, index: int, exc: Exception) -> ScenarioError:
    """Wrap a worker failure so the batch caller learns which spec died."""
    return ScenarioError(
        f"scenario {spec.resolved_label()!r} (spec {index + 1} of a batch) "
        f"failed: {exc}"
    )


def run_scenarios(
    specs: Sequence[ScenarioSpec],
    max_workers: int | None = None,
    on_result: Callable[[int, ScenarioSpec, RunResult], None] | None = None,
) -> list[RunResult]:
    """Execute a batch of scenarios, optionally process-parallel.

    Results are returned in spec order and are byte-identical to running
    :func:`run_scenario` on each spec sequentially — workers rebuild
    datasets and detectors deterministically from the specs.

    Prefer :class:`DatasetSpec` over a prebuilt dataset for batches: specs
    hit the per-process dataset cache, so every scenario a worker runs
    over the same dataset reuses one warm set of models, sensors, caches,
    and the precomputed visit ordering.  A prebuilt dataset is pickled
    per task and arrives cold in each worker.

    Args:
        specs: The scenarios to run.
        max_workers: None or 1 runs in-process; >= 2 fans the batch out
            over that many worker processes.
        on_result: Optional streaming hook called as each scenario lands
            (in completion order, which under parallel workers is not spec
            order) with ``(spec_index, spec, result)``.  The experiment
            store persists results through this hook, so everything that
            finished before a failure survives the batch.

    Returns:
        One :class:`RunResult` per spec, in order.

    Raises:
        ScenarioError: When any scenario fails.  The message names the
            failing spec's ``resolved_label()`` and the original exception
            rides along as ``__cause__``.  Scenarios that completed before
            the failure was observed have already been delivered to
            ``on_result``; remaining queued work is cancelled.
    """
    specs = list(specs)
    if max_workers is not None and max_workers < 1:
        raise ConfigError(f"max_workers must be >= 1, got {max_workers}")
    results: list[RunResult] = [None] * len(specs)  # type: ignore[list-item]
    if max_workers is None or max_workers == 1 or len(specs) <= 1:
        for index, spec in enumerate(specs):
            try:
                result = run_scenario(spec)
            except Exception as exc:
                raise _batch_error(spec, index, exc) from exc
            results[index] = result
            if on_result is not None:
                on_result(index, spec, result)
        return results
    failure: tuple[int, Exception] | None = None
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        index_of = {
            pool.submit(run_scenario, spec): index
            for index, spec in enumerate(specs)
        }
        # Drain in completion order so every scenario that finishes —
        # even after another already failed — still reaches on_result;
        # only not-yet-started work is cancelled.
        for future in as_completed(index_of):
            index = index_of[future]
            try:
                result = future.result()
            except CancelledError:
                continue
            except Exception as exc:
                if failure is None:
                    failure = (index, exc)
                    for pending in index_of:
                        pending.cancel()
                continue
            results[index] = result
            if on_result is not None:
                on_result(index, specs[index], result)
    if failure is not None:
        index, exc = failure
        raise _batch_error(specs[index], index, exc) from exc
    return results


def sweep_specs(
    dataset: DatasetSpec | SyntheticDataset,
    policies: Iterable[str] = ("earthplus",),
    seeds: Iterable[int] = (0,),
    gammas: Iterable[float] | None = None,
    base_config: EarthPlusConfig | None = None,
    uplink_bytes_per_contact: int | None = None,
    downlink_bytes_per_contact: int | None = None,
    fluctuation: FluctuationModel | None = None,
    downlink_severity: float = 0.0,
) -> list[ScenarioSpec]:
    """The policies x seeds x gammas cross-product as scenario specs.

    Args:
        dataset: Dataset (spec or built) every scenario shares.
        policies: Policy names to sweep.
        seeds: Ground-segment seeds to sweep.
        gammas: Bits-per-pixel settings to sweep (None = the base config's).
        base_config: Config the gamma overrides apply to.
        uplink_bytes_per_contact: Optional shared uplink override.
        downlink_bytes_per_contact: Optional shared downlink override.
        fluctuation: Optional shared fluctuation model.
        downlink_severity: Optional downlink-only fluctuation severity.

    Returns:
        Labelled specs in (gamma, policy, seed) order.
    """
    base = base_config if base_config is not None else EarthPlusConfig()
    gamma_list = list(gammas) if gammas is not None else [base.gamma_bpp]
    specs = []
    for gamma in gamma_list:
        config = base.with_overrides(gamma_bpp=gamma)
        for policy in policies:
            for seed in seeds:
                specs.append(
                    ScenarioSpec(
                        policy=policy,
                        dataset=dataset,
                        config=config,
                        uplink_bytes_per_contact=uplink_bytes_per_contact,
                        downlink_bytes_per_contact=downlink_bytes_per_contact,
                        fluctuation=fluctuation,
                        downlink_severity=downlink_severity,
                        seed=seed,
                        label=f"{policy}/g{gamma:g}/s{seed}",
                        extras={"gamma": gamma, "seed": seed},
                    )
                )
    return specs
