"""Statistical helpers shared by the experiment runners.

Small, dependency-free utilities: empirical CDFs (the paper plots several),
five-number summaries, and weighted means.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Five-number-plus-mean summary of a sample.

    Attributes:
        n: Sample size.
        mean: Arithmetic mean.
        std: Standard deviation.
        minimum: Smallest value.
        median: 50th percentile.
        maximum: Largest value.
    """

    n: int
    mean: float
    std: float
    minimum: float
    median: float
    maximum: float


def summarize(values) -> Summary:
    """Summarize a 1-D sample.

    Args:
        values: Any sequence of numbers (non-finite entries are dropped).

    Returns:
        The :class:`Summary`; all-NaN for empty input.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        nan = float("nan")
        return Summary(0, nan, nan, nan, nan, nan)
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std()),
        minimum=float(arr.min()),
        median=float(np.median(arr)),
        maximum=float(arr.max()),
    )


def cdf(values) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of a sample.

    Args:
        values: Sequence of numbers.

    Returns:
        ``(sorted_values, cumulative_probabilities)`` suitable for plotting
        or for quantile lookups.
    """
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return arr, arr
    probs = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, probs


def cdf_at(values, threshold: float) -> float:
    """Fraction of the sample at or below ``threshold``."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float((arr <= threshold).mean())


def quantile(values, q: float) -> float:
    """The ``q``-quantile of the sample (0 <= q <= 1)."""
    arr = np.asarray(list(values), dtype=np.float64)
    arr = arr[np.isfinite(arr)]
    if arr.size == 0:
        return float("nan")
    return float(np.quantile(arr, q))
