"""Threshold calibration: the paper's year-1 profiling protocol (§5).

Earth+ has one data-dependent parameter, the change threshold ``theta``.
The paper chooses it by "profiling last year's data on one single location"
and then applies it to this year's data at all locations.  This module
implements exactly that workflow against the synthetic substrate:

1. replay a profiling window at one location, collecting per-tile
   difference scores between consecutive cloud-free captures;
2. label each tile with the ground-truth change oracle;
3. pick the smallest theta whose false-positive rate stays under a target
   (:func:`repro.core.change_detection.calibrate_threshold`);
4. evaluate the transferred theta on a different window/location.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.change_detection import calibrate_threshold, detect_changes
from repro.core.reference import downsample_image, quantize_reference
from repro.core.tiles import TileGrid
from repro.datasets.generator import SyntheticDataset
from repro.errors import PipelineError


def _score_truth_pairs(
    dataset: SyntheticDataset,
    location: str,
    band: str,
    t_start: float,
    t_end: float,
    downsample: int,
    tile_size: int,
    max_cloud: float = 0.05,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Collect (tile-score grid, oracle changed grid) pairs in a window.

    Consecutive cloud-free captures of the location are differenced exactly
    as the on-board detector would (downsampled, illumination-aligned,
    uint8 reference quantization), and labelled with the Earth model's
    change oracle.
    """
    sensor = dataset.sensors[location]
    earth = dataset.earth_models[location]
    grid = TileGrid(dataset.image_shape, tile_size)
    visits = dataset.schedule.visits_in(location, t_start, t_end)
    clear = []
    for visit in visits:
        capture = sensor.capture(visit.satellite_id, visit.t_days)
        if capture.cloud_coverage <= max_cloud:
            clear.append(capture)
    scores: list[np.ndarray] = []
    truths: list[np.ndarray] = []
    for previous, current in zip(clear, clear[1:]):
        reference_lr = downsample_image(
            previous.pixels[band], downsample
        )
        reference_lr = (
            quantize_reference(reference_lr).astype(np.float64) / 255.0
        )
        capture_lr = downsample_image(current.pixels[band], downsample)
        detection = detect_changes(
            reference_lr, capture_lr, grid, downsample, theta=0.0
        )
        scores.append(detection.tile_scores)
        truths.append(
            earth.true_changed_tiles(band, previous.t_days, current.t_days)
        )
    return scores, truths


@dataclass(frozen=True)
class ThetaEvaluation:
    """Transferred-threshold quality on an evaluation window.

    Attributes:
        theta: The calibrated threshold.
        false_positive_rate: Unchanged tiles flagged changed.
        recall: Truly-changed tiles flagged.
        n_pairs: Capture pairs evaluated.
    """

    theta: float
    false_positive_rate: float
    recall: float
    n_pairs: int


def profile_theta(
    dataset: SyntheticDataset,
    location: str,
    band: str,
    t_start: float,
    t_end: float,
    downsample: int = 8,
    tile_size: int = 64,
    target_false_positive_rate: float = 0.01,
) -> float:
    """Calibrate theta on one location's profiling window.

    Args:
        dataset: The profiling dataset (the paper uses the previous year).
        location: The single profiling location.
        band: Band to profile on.
        t_start: Window start (days).
        t_end: Window end (days).
        downsample: Reference downsampling used on board.
        tile_size: Tile edge.
        target_false_positive_rate: Acceptable unchanged-flagged fraction.

    Returns:
        The calibrated theta.

    Raises:
        PipelineError: If the window yields no usable capture pairs.
    """
    scores, truths = _score_truth_pairs(
        dataset, location, band, t_start, t_end, downsample, tile_size
    )
    if not scores:
        raise PipelineError(
            f"no cloud-free capture pairs for {location}/{band} in "
            f"[{t_start}, {t_end}]"
        )
    return calibrate_threshold(
        scores, truths, target_false_positive_rate
    )


def evaluate_theta(
    dataset: SyntheticDataset,
    location: str,
    band: str,
    theta: float,
    t_start: float,
    t_end: float,
    downsample: int = 8,
    tile_size: int = 64,
) -> ThetaEvaluation:
    """Score a (possibly transferred) theta on an evaluation window."""
    scores, truths = _score_truth_pairs(
        dataset, location, band, t_start, t_end, downsample, tile_size
    )
    if not scores:
        raise PipelineError(
            f"no cloud-free capture pairs for {location}/{band} in "
            f"[{t_start}, {t_end}]"
        )
    flat_scores = np.concatenate([s.ravel() for s in scores])
    flat_truth = np.concatenate([t.ravel() for t in truths])
    flagged = flat_scores > theta
    unchanged = ~flat_truth
    false_positive_rate = (
        float((flagged & unchanged).sum() / unchanged.sum())
        if unchanged.any()
        else 0.0
    )
    recall = (
        float((flagged & flat_truth).sum() / flat_truth.sum())
        if flat_truth.any()
        else 1.0
    )
    return ThetaEvaluation(
        theta=theta,
        false_positive_rate=false_positive_rate,
        recall=recall,
        n_pairs=len(scores),
    )
