"""Per-figure experiment drivers: one function per paper figure/table.

Each driver returns plain data (lists/dicts) that the corresponding bench
in ``benchmarks/`` renders with :mod:`repro.analysis.tables`.  Sizes are
parameterized so tests can run them small and benches can scale up; the
index in DESIGN.md maps figure -> driver -> bench.

Simulation-backed drivers run their scenario batches through the
persistent experiment store (the ``store`` parameter; default: resolve
from ``REPRO_STORE``, None bypasses).  Regenerating a figure whose sweep
already ran is then a pure cache read — but only for
:class:`DatasetSpec`-named scenarios; drivers handed an already-built
dataset always simulate.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.analysis.experiments import PolicyComparison, compare_policies, run_policy
from repro.analysis.scenarios import (
    DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
    DatasetSpec,
    ScenarioSpec,
)
from repro.store.runner import ENV_DEFAULT, run_scenarios_cached
from repro.analysis.stats import cdf
from repro.core.change_detection import detect_changes
from repro.core.config import DovesSpec, EarthPlusConfig
from repro.core.reference import downsample_image, quantize_reference
from repro.core.tiles import TileGrid
from repro.datasets.generator import SyntheticDataset
from repro.datasets.planet import planet_dataset
from repro.datasets.sentinel2 import sentinel2_dataset
from repro.imagery.bands import PLANET_BANDS
from repro.imagery.clouds import CloudModel
from repro.imagery.earth_model import EarthModel, LocationSpec, TerrainClass
from repro.imagery.events import expected_changed_fraction
from repro.imagery.noise import stable_hash
from repro.orbit.constellation import Constellation


# ----------------------------------------------------------------------
# Figure 4 — changed-tile fraction vs reference age
# ----------------------------------------------------------------------
def fig04_change_vs_age(
    ages_days: list[float] | None = None,
    tiles_shape: tuple[int, int] = (24, 24),
    n_anchors: int = 6,
    seed: int = 4,
) -> dict:
    """Measured and analytic changed-fraction vs reference-image age.

    The paper's Figure 4 measures ~15 % changed tiles at 10 days growing
    ~3x by 50 days on cloud-free Planet imagery.  We sample the same curve
    from the tile-change process at several anchor times and compare with
    the closed-form Gamma-Poisson expectation.
    """
    if ages_days is None:
        ages_days = [5, 10, 20, 30, 40, 50, 60]
    from repro.imagery.events import TileChangeModel

    measured: dict[float, list[float]] = {age: [] for age in ages_days}
    for anchor_idx in range(n_anchors):
        model = TileChangeModel(
            tiles_shape=tiles_shape,
            seed=stable_hash(seed, "fig04", anchor_idx),
        )
        anchor = 10.0 * anchor_idx
        for age in ages_days:
            measured[age].append(model.changed_fraction(anchor, anchor + age))
    return {
        "ages_days": ages_days,
        "measured": [float(np.mean(measured[a])) for a in ages_days],
        "analytic": [expected_changed_fraction(a) for a in ages_days],
    }


# ----------------------------------------------------------------------
# Figure 5 — reference-age CDF: satellite-local vs constellation-wide
# ----------------------------------------------------------------------
def fig05_reference_age_cdf(
    n_satellites: int = 48,
    horizon_days: float = 720.0,
    base_revisit_days: float = 12.0,
    clear_probability: float = 0.22,
    max_cloud: float = 0.01,
    seed: int = 5,
) -> dict:
    """Age of the freshest cloud-free reference under both strategies.

    Reproduces the paper's 51-day (satellite-local) vs 4.2-day
    (constellation-wide) contrast: per visit, look back for the latest
    prior capture with cloud coverage below ``max_cloud``, by the same
    satellite vs by anyone.
    """
    constellation = Constellation(
        n_satellites=n_satellites,
        base_revisit_days=base_revisit_days,
        seed=seed,
    )
    schedule = constellation.build_schedule(["site"], horizon_days)
    clouds = CloudModel(
        seed=stable_hash(seed, "fig05-clouds"),
        shape=(32, 32),
        clear_probability=clear_probability,
    )
    visits = schedule.visits_in("site", 0.0, horizon_days)
    coverage = {v.t_days: clouds.coverage_at(v.t_days) for v in visits}
    local_ages: list[float] = []
    wide_ages: list[float] = []
    for idx, visit in enumerate(visits):
        if visit.t_days < horizon_days * 0.3:
            continue  # warm-up so look-back has history
        best_local = None
        best_wide = None
        for prior in reversed(visits[:idx]):
            if coverage[prior.t_days] > max_cloud:
                continue
            if best_wide is None:
                best_wide = visit.t_days - prior.t_days
            if best_local is None and prior.satellite_id == visit.satellite_id:
                best_local = visit.t_days - prior.t_days
            if best_local is not None and best_wide is not None:
                break
        if best_local is not None and best_wide is not None:
            local_ages.append(best_local)
            wide_ages.append(best_wide)
    local_x, local_p = cdf(local_ages)
    wide_x, wide_p = cdf(wide_ages)
    return {
        "local_ages": local_ages,
        "wide_ages": wide_ages,
        "local_mean": float(np.mean(local_ages)) if local_ages else float("nan"),
        "wide_mean": float(np.mean(wide_ages)) if wide_ages else float("nan"),
        "local_cdf": (local_x.tolist(), local_p.tolist()),
        "wide_cdf": (wide_x.tolist(), wide_p.tolist()),
    }


# ----------------------------------------------------------------------
# Figure 8 — detection accuracy vs reference compression ratio
# ----------------------------------------------------------------------
def fig08_downsampled_detection(
    ratios: list[int] | None = None,
    image_shape: tuple[int, int] = (256, 256),
    tile_size: int = 64,
    n_pairs: int = 10,
    pair_gap_days: float = 8.0,
    download_budget_fraction: float = 0.4,
    raw_bytes_per_pixel: int = 2,
    seed: int = 8,
) -> dict:
    """Undetected changed tiles vs reference compression ratio.

    Mirrors the paper's protocol: for each downsampling ratio, pick the
    per-ratio threshold so a *fixed* fraction of tiles is flagged (the
    download budget), then count truly-changed tiles that escaped.  The
    paper finds only ~1.7 % escape at 2601x compression.
    """
    if ratios is None:
        ratios = [1, 2, 4, 8, 16, 32]
    spec = LocationSpec(
        name="fig08",
        shape=image_shape,
        terrain_mix={
            TerrainClass.AGRICULTURE: 0.5,
            TerrainClass.FOREST: 0.3,
            TerrainClass.CITY: 0.2,
        },
        seed=stable_hash(seed, "fig08-loc"),
        change_cell_px=tile_size,
    )
    earth = EarthModel(spec, PLANET_BANDS)
    band = PLANET_BANDS[0].name
    grid = TileGrid(image_shape, tile_size)
    from repro.imagery.illumination import IlluminationModel

    illum = IlluminationModel(seed=stable_hash(seed, "fig08-illum"))
    noise_rng = np.random.default_rng(stable_hash(seed, "fig08-noise"))
    pairs = []
    for k in range(n_pairs):
        t0 = 5.0 + 11.0 * k
        t1 = t0 + pair_gap_days
        # Cloud-free, but realistically illuminated and noisy captures —
        # the noise floor is what lets coarse references miss changes.
        reference = illum.sample(t0).apply(earth.ground_truth(band, t0))
        capture = np.clip(
            illum.sample(t1).apply(earth.ground_truth(band, t1))
            + noise_rng.normal(0.0, 0.003, size=image_shape),
            0.0,
            1.0,
        )
        oracle = earth.true_changed_tiles(band, t0, t1)
        pairs.append((reference, capture, oracle))
    rows = []
    for ratio in ratios:
        scores_all = []
        oracle_all = []
        for reference, capture, oracle in pairs:
            ref_lr = downsample_image(reference, ratio)
            # Quantize to the uint8 wire format so coarse references carry
            # their real quantization error.
            ref_lr = quantize_reference(ref_lr).astype(np.float64) / 255.0
            cap_lr = downsample_image(capture, ratio)
            detection = detect_changes(
                ref_lr, cap_lr, grid, ratio, theta=0.0
            )
            scores_all.append(detection.tile_scores.ravel())
            oracle_all.append(oracle.ravel())
        scores = np.concatenate(scores_all)
        oracle = np.concatenate(oracle_all)
        # Flag exactly the budgeted fraction of tiles (highest scores).
        threshold = float(np.quantile(scores, 1.0 - download_budget_fraction))
        flagged = scores > threshold
        missed = oracle & ~flagged
        compression = ratio * ratio * raw_bytes_per_pixel
        rows.append(
            {
                "ratio": ratio,
                "compression": compression,
                "flagged_fraction": float(flagged.mean()),
                "undetected_changed_fraction": float(missed.mean()),
                "oracle_changed_fraction": float(oracle.mean()),
            }
        )
    return {"budget_fraction": download_budget_fraction, "rows": rows}


# ----------------------------------------------------------------------
# Figure 11 — rate-distortion (downlink bandwidth vs PSNR)
# ----------------------------------------------------------------------
def fig11_rate_distortion(
    dataset: SyntheticDataset,
    gammas: list[float] | None = None,
    policies: tuple[str, ...] = ("earthplus", "kodan", "satroi"),
    base_config: EarthPlusConfig | None = None,
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Downlink-bandwidth vs PSNR curves for all policies.

    The paper's headline: Earth+ needs 1.3-2.0x (Sentinel-2) / 2.8-3.3x
    (Planet) less downlink at matched PSNR.
    """
    if gammas is None:
        gammas = [0.08, 0.2, 0.5]
    base_config = base_config if base_config is not None else EarthPlusConfig()
    specs = [
        ScenarioSpec(
            policy=policy,
            dataset=dataset,
            config=base_config.with_overrides(gamma_bpp=gamma),
            extras={"gamma": gamma},
        )
        for gamma in gammas
        for policy in policies
    ]
    results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    curves: dict[str, list[dict]] = {p: [] for p in policies}
    for spec, result in zip(specs, results):
        curves[spec.policy].append(
            {
                "gamma": spec.extras["gamma"],
                "downlink_bytes": result.downlink_bytes,
                "downlink_bps": result.required_downlink_bps(),
                "psnr": result.mean_psnr(),
                "downloaded_fraction": result.mean_downloaded_fraction(),
            }
        )
    return {"gammas": gammas, "curves": curves}


def equal_psnr_saving(curves: dict[str, list[dict]], policy: str = "earthplus") -> float:
    """Earth+'s byte saving vs the strongest baseline at matched PSNR.

    For each Earth+ operating point, every baseline's curve is linearly
    interpolated (in log-bytes vs PSNR) to Earth+'s PSNR; the saving is the
    smallest interpolated baseline size divided by Earth+'s size, averaged
    over Earth+ points that fall inside the baseline's PSNR range.
    """
    earth_points = curves[policy]
    savings = []
    for point in earth_points:
        target_psnr = point["psnr"]
        best_baseline_bytes = None
        for name, base_points in curves.items():
            if name == policy or len(base_points) < 2:
                continue
            psnrs = [p["psnr"] for p in base_points]
            sizes = [p["downlink_bytes"] for p in base_points]
            order = np.argsort(psnrs)
            psnrs = np.array(psnrs)[order]
            sizes = np.array(sizes, dtype=np.float64)[order]
            if not psnrs[0] <= target_psnr <= psnrs[-1]:
                continue
            interp = float(
                np.exp(np.interp(target_psnr, psnrs, np.log(sizes)))
            )
            if best_baseline_bytes is None or interp < best_baseline_bytes:
                best_baseline_bytes = interp
        if best_baseline_bytes is not None and point["downlink_bytes"] > 0:
            savings.append(best_baseline_bytes / point["downlink_bytes"])
    return float(np.mean(savings)) if savings else float("nan")


# ----------------------------------------------------------------------
# Figure 12 — CDFs of downloaded-tile fraction and PSNR
# ----------------------------------------------------------------------
def fig12_cdfs(
    dataset: SyntheticDataset,
    config: EarthPlusConfig | None = None,
    policies: tuple[str, ...] = ("earthplus", "kodan", "satroi"),
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Per-image downloaded-fraction and PSNR distributions per policy."""
    config = config if config is not None else EarthPlusConfig(gamma_bpp=0.2)
    specs = [
        ScenarioSpec(policy=policy, dataset=dataset, config=config)
        for policy in policies
    ]
    results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    out: dict[str, dict] = {}
    for policy, result in zip(policies, results):
        fractions = [r.downloaded_fraction for r in result.delivered()]
        psnrs = [r.psnr for r in result.delivered() if np.isfinite(r.psnr)]
        out[policy] = {
            "fractions": fractions,
            "psnrs": psnrs,
            "frac_cdf": tuple(x.tolist() for x in cdf(fractions)),
            "psnr_cdf": tuple(x.tolist() for x in cdf(psnrs)),
            "fully_downloaded": float(np.mean([f >= 0.99 for f in fractions]))
            if fractions
            else 0.0,
        }
    return out


# ----------------------------------------------------------------------
# Figure 13 — per-location time series
# ----------------------------------------------------------------------
def fig13_timeseries(
    dataset: SyntheticDataset,
    location: str,
    config: EarthPlusConfig | None = None,
    policies: tuple[str, ...] = ("earthplus", "kodan", "satroi"),
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Downloaded fraction and PSNR over time at one location."""
    config = config if config is not None else EarthPlusConfig(gamma_bpp=0.2)
    specs = [
        ScenarioSpec(policy=policy, dataset=dataset, config=config)
        for policy in policies
    ]
    results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    out: dict[str, list[dict]] = {}
    for policy, result in zip(policies, results):
        out[policy] = [
            {
                "t_days": r.t_days,
                "downloaded_fraction": r.downloaded_fraction,
                "psnr": r.psnr,
                "guaranteed": r.guaranteed,
            }
            for r in result.timeseries(location)
        ]
    return out


# ----------------------------------------------------------------------
# Figure 14 — savings per location and per band
# ----------------------------------------------------------------------
def fig14_locations_bands(
    locations: list[str],
    bands: list[str],
    image_shape: tuple[int, int] = (256, 256),
    horizon_days: float = 365.0,
    config: EarthPlusConfig | None = None,
    policies: tuple[str, ...] = ("earthplus", "kodan", "satroi"),
    seed: int = 20,
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Downlink saving grouped by location and by band (Sentinel-2-like).

    The paper finds >1x saving at 10/11 locations (snowy D and H are the
    weak spots) and on all 13 bands (air bands least).
    """
    config = config if config is not None else EarthPlusConfig(gamma_bpp=0.2)
    dataset_spec = DatasetSpec.of(
        "sentinel2",
        locations=locations,
        bands=bands,
        image_shape=image_shape,
        horizon_days=horizon_days,
        seed=seed,
    )
    specs = [
        ScenarioSpec(policy=p, dataset=dataset_spec, config=config)
        for p in policies
    ]
    run_results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    results = dict(zip(policies, run_results))
    earth = results["earthplus"]
    baselines = {p: r for p, r in results.items() if p != "earthplus"}

    def strongest(by: dict[str, dict[str, int]], key: str) -> float:
        candidates = [
            by[p].get(key, 0) for p in baselines if by[p].get(key, 0) > 0
        ]
        return float(min(candidates)) if candidates else float("nan")

    loc_bytes = {p: r.per_location_bytes() for p, r in results.items()}
    band_bytes = {p: r.per_band_bytes() for p, r in results.items()}
    location_savings = {}
    for location in locations:
        earth_bytes = loc_bytes["earthplus"].get(location, 0)
        base = strongest(loc_bytes, location)
        location_savings[location] = (
            base / earth_bytes if earth_bytes else float("nan")
        )
    band_savings = {}
    for band in bands:
        earth_bytes = band_bytes["earthplus"].get(band, 0)
        base = strongest(band_bytes, band)
        band_savings[band] = base / earth_bytes if earth_bytes else float("nan")
    return {
        "location_savings": location_savings,
        "band_savings": band_savings,
        "per_location_psnr": {
            p: r.per_location_psnr() for p, r in results.items()
        },
    }


# ----------------------------------------------------------------------
# Figure 15 — on-board storage breakdown
# ----------------------------------------------------------------------
def fig15_storage(
    spec: DovesSpec | None = None,
    config: EarthPlusConfig | None = None,
    downloaded_fraction: dict[str, float] | None = None,
    kodan_backlog_contacts: float = 20.0,
    reference_area_factor: float = 16.0,
    satroi_reference_fraction: float = 0.35,
) -> dict:
    """Doves-scale storage model per policy (paper: 30/255/24 GB).

    Structure follows the paper's Appendix A and §6 discussion:

    * every policy holds its *encoded captured data* for two consecutive
      ground contacts (retransmission safety), scaled by how much of each
      capture it actually keeps (its downloaded-tile fraction);
    * **Kodan** additionally buffers a processing/download backlog — it
      re-downloads everything non-cloudy every revisit and its accurate
      detector is slow, so un-downloaded captures pile up across many
      contacts (this is what makes its bar ~10x the others');
    * **SatRoI** keeps fixed *full-resolution* reference images on board;
    * **Earth+** caches references for every location in its revisit cycle
      (more locations than SatRoI's working set) but downsampled by the
      configured ratio, which is why its reference share stays small
      (Appendix A: ~9 % of captured).

    Args:
        spec: Satellite spec (Table 1 defaults).
        config: Earth+ tunables (reference compression ratio).
        downloaded_fraction: Per-policy mean downloaded-tile fraction
            (defaults to this reproduction's measured values).
        kodan_backlog_contacts: Contacts' worth of backlog Kodan buffers.
        reference_area_factor: Reference-covered area relative to one
            contact's downloads (Appendix A's 160a over a 10-contact
            cycle).
        satroi_reference_fraction: SatRoI's full-res reference working set
            relative to one two-contact capture hold.
    """
    spec = spec if spec is not None else DovesSpec()
    config = config if config is not None else EarthPlusConfig()
    if downloaded_fraction is None:
        downloaded_fraction = {
            "kodan": 0.85,
            "satroi": 0.65,
            "earthplus": 0.30,
        }
    # Bytes of capture data behind one contact's downloads, held twice
    # (the paper keeps imagery for two consecutive contacts).
    hold_bytes = 2.0 * spec.downlink_bytes_per_contact

    rows = {}
    for policy in ("kodan", "satroi", "earthplus"):
        captured = hold_bytes * downloaded_fraction[policy]
        if policy == "kodan":
            captured *= kodan_backlog_contacts / 2.0
            reference = 0.0
        elif policy == "satroi":
            reference = hold_bytes * satroi_reference_fraction
        else:
            reference = (
                hold_bytes
                * reference_area_factor
                / config.reference_compression_ratio()
            )
        rows[policy] = {
            "captured_gb": captured / 1e9,
            "reference_gb": reference / 1e9,
            "total_gb": (captured + reference) / 1e9,
        }
    return rows


# ----------------------------------------------------------------------
# Figure 17 — reference compression ladder vs uplink requirement
# ----------------------------------------------------------------------
def fig17_uplink_ladder(
    dataset: SyntheticDataset | None = None,
    config: EarthPlusConfig | None = None,
    spec: DovesSpec | None = None,
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Reference compression achieved by each §4.3 technique.

    Rungs: raw reference, + downsampling, + delta updates; compared to the
    ratio the real uplink requires.  The paper reaches >10 000x.
    """
    config = config if config is not None else EarthPlusConfig()
    spec = spec if spec is not None else DovesSpec()
    if dataset is None:
        dataset = DatasetSpec.of(
            "sentinel2",
            locations=["A"],
            bands=["B4", "B11"],
            horizon_days=180.0,
            image_shape=(256, 256),
        )
    # Measure the steady-state per-update uplink bytes with and without
    # delta encoding (cold-start full uploads are tracked separately) —
    # a two-arm ablation batch over one shared dataset.
    no_delta = config.with_overrides(
        delta_reference_updates=False, cache_references_onboard=True
    )
    result_delta, result_full = run_scenarios_cached(
        [
            ScenarioSpec(
                policy="earthplus", dataset=dataset, config=config,
                label="delta-updates",
            ),
            ScenarioSpec(
                policy="earthplus", dataset=dataset, config=no_delta,
                label="full-updates",
            ),
        ],
        max_workers=max_workers,
        store=store,
    ).results
    if isinstance(dataset, DatasetSpec):
        dataset = dataset.build()
    height, width = dataset.image_shape
    raw_ref_bytes = height * width * config.raw_bytes_per_pixel

    def mean_update_bytes(result, kind: str) -> float:
        stats = result.uplink_stats
        count = stats.get(f"{kind}_update_count", 0)
        if count == 0:
            return float("nan")
        return stats[f"{kind}_update_bytes"] / count

    delta_bytes = mean_update_bytes(result_delta, "delta")
    full_bytes = mean_update_bytes(result_full, "full")
    downsample_only_bytes = (
        (height // config.reference_downsample)
        * (width // config.reference_downsample)
        * config.reference_bytes_per_pixel
    )
    # Required ratio: a reference per capture per band must fit the uplink
    # available between captures, scaled to our geometry.
    uplink_scaled = spec.uplink_bytes_per_contact * (
        (height * width) / spec.image_pixels
    )
    required_ratio = raw_ref_bytes / max(1.0, uplink_scaled)
    rows = [
        {"scheme": "uncompressed", "ratio": 1.0},
        {
            "scheme": "w/ downsampling",
            "ratio": raw_ref_bytes / downsample_only_bytes,
        },
        {
            "scheme": "w/ downsampling + update changes",
            "ratio": (
                raw_ref_bytes / delta_bytes
                if np.isfinite(delta_bytes)
                else float("nan")
            ),
        },
    ]
    return {
        "rows": rows,
        "required_ratio": required_ratio,
        "full_update_ratio": (
            raw_ref_bytes / full_bytes
            if np.isfinite(full_bytes)
            else float("nan")
        ),
        "delta_update_mean_bytes": delta_bytes,
        "full_update_mean_bytes": full_bytes,
    }


# ----------------------------------------------------------------------
# Figure 18 — more uplink, less downlink
# ----------------------------------------------------------------------
def fig18_uplink_sweep(
    dataset: SyntheticDataset,
    uplink_bytes_options: list[int],
    config: EarthPlusConfig | None = None,
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Earth+ downlink demand as the per-contact uplink budget grows."""
    config = config if config is not None else EarthPlusConfig(gamma_bpp=0.2)
    specs = [
        ScenarioSpec(
            policy="earthplus",
            dataset=dataset,
            config=config,
            uplink_bytes_per_contact=budget,
            extras={"budget": budget},
        )
        for budget in uplink_bytes_options
    ]
    results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    rows = []
    for spec_item, result in zip(specs, results):
        budget = spec_item.extras["budget"]
        rows.append(
            {
                "uplink_bytes_per_contact": budget,
                "downlink_bytes": result.downlink_bytes,
                "downlink_bps": result.required_downlink_bps(),
                "uplink_bytes_used": result.uplink_bytes,
                "updates_skipped": result.updates_skipped,
                "psnr": result.mean_psnr(),
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Figure 19 — compression ratio vs constellation size
# ----------------------------------------------------------------------
def fig19_constellation_size(
    sizes: list[int] | None = None,
    image_shape: tuple[int, int] = (192, 192),
    horizon_days: float = 60.0,
    config: EarthPlusConfig | None = None,
    seed: int = 19,
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Compression ratio (1 / mean downloaded area) vs constellation size.

    Mirrors the paper's thumbnail-based estimate: compression ratio is the
    reciprocal of the average downloaded-tile fraction; "download
    everything" anchors at 1x.  The paper sees 3x -> 10x from 1 to 16
    satellites.  Each constellation size is an independent scenario, so
    the sweep parallelizes across worker processes.
    """
    if sizes is None:
        sizes = [1, 2, 4, 8, 16]
    config = config if config is not None else EarthPlusConfig(gamma_bpp=0.2)
    specs = [
        ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "planet",
                n_satellites=size,
                image_shape=image_shape,
                horizon_days=horizon_days,
                seed=seed,
            ),
            config=config,
            extras={"satellites": size},
        )
        for size in sizes
    ]
    results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    rows = [{"satellites": 0, "policy": "naive", "compression_ratio": 1.0}]
    for size, result in zip(sizes, results):
        fraction = result.mean_downloaded_fraction()
        n_delivered = len(result.delivered())
        rows.append(
            {
                "satellites": size,
                "policy": "earthplus",
                "compression_ratio": (
                    1.0 / fraction if fraction > 0 else float("nan")
                ),
                "downloaded_fraction": fraction,
                "delivered": n_delivered,
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Figure 19 companion — sharded-execution scaling on one scenario
# ----------------------------------------------------------------------
def fig19_scaling(
    sizes: list[int] | None = None,
    shard_counts: list[int] | None = None,
    image_shape: tuple[int, int] = (96, 96),
    horizon_days: float = 45.0,
    ground_sync_days: float = 3.0,
    config: EarthPlusConfig | None = None,
    seed: int = 19,
    repeats: int = 2,
) -> dict:
    """Wall-clock scaling of one scenario sharded across worker processes.

    The satellites x shards grid behind the sharded-runner claim: for
    each constellation size the scenario runs sequentially (timed, with
    the phase profiler on) and then under every shard count, asserting
    pickle-byte identity against the sequential result and recording both
    the measured wall time and each shard's busy time (its phase-profile
    total).  Two speedups come out:

    * ``wall_speedup`` — sequential wall / sharded wall, the honest
      end-to-end number on *this* host (on fewer cores than shards the
      workers timeslice and this hovers near or below 1x);
    * ``projected_speedup`` — sequential CPU time / slowest shard's CPU
      time, the critical-path bound a host with >= shards free cores
      approaches, since shards only rendezvous at epoch boundaries.
      CPU time (not per-shard wall) is the estimator because on an
      oversubscribed host a shard's wall clock counts the other shards'
      timeslices; it excludes the driver's journal-merge time, which
      ``wall_s`` includes.

    ``rows`` carry ``host_cores`` so a committed result is interpretable.
    Always simulates (never touches the store): timings are the payload.

    Each size runs once untimed first: shard workers fork from this
    process and inherit its memoized dataset and capture caches
    copy-on-write, so timing a cold sequential run against warm shards
    would overstate the speedup.  After the warmup every timed run —
    sequential and sharded alike — measures warm-cache simulation.

    Both CPU estimators are max-statistics over timeslice-noisy samples
    (noise only ever inflates them, and one lucky side makes the ratio
    swing), so each timed configuration runs ``repeats`` times and every
    per-run CPU takes the minimum — the least-thrashed execution,
    closest to the task's cost with a core to itself.  Wall times are
    first-run; byte identity is asserted on every run.
    """
    import pickle
    import time

    from repro import perf as perf_mod
    from repro.analysis.scenarios import run_scenario, run_scenario_sharded

    if sizes is None:
        sizes = [8, 32]
    if shard_counts is None:
        shard_counts = [2, 4]
    config = (
        config
        if config is not None
        else EarthPlusConfig(gamma_bpp=0.2, ground_sync_days=ground_sync_days)
    )
    host_cores = os.cpu_count() or 1
    rows = []
    for size in sizes:
        spec = ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "planet",
                n_satellites=size,
                image_shape=image_shape,
                horizon_days=horizon_days,
                seed=seed,
            ),
            config=config,
            extras={"satellites": size},
        )
        run_scenario(spec)  # warmup: see docstring
        sequential_cpu = float("inf")
        sequential_wall = 0.0
        for repeat in range(max(1, repeats)):
            started = time.perf_counter()
            cpu_started = time.process_time()
            sequential = run_scenario(spec)
            sequential_cpu = min(
                sequential_cpu, time.process_time() - cpu_started
            )
            if repeat == 0:
                sequential_wall = time.perf_counter() - started
                sequential_pickle = pickle.dumps(sequential)
        rows.append(
            {
                "satellites": size,
                "shards": 1,
                "wall_s": sequential_wall,
                "max_shard_cpu_s": sequential_cpu,
                "wall_speedup": 1.0,
                "projected_speedup": 1.0,
                "identical": True,
                "host_cores": host_cores,
            }
        )
        for shards in shard_counts:
            shard_cpu: dict[int, float] = {}

            def record_cpu(index: int, _satellites, profile_rows) -> None:
                run_cpu = sum(
                    row["seconds"]
                    for row in profile_rows
                    if row["section"] == "cpu_total"
                )
                best = shard_cpu.get(index)
                if best is None or run_cpu < best:
                    shard_cpu[index] = run_cpu

            wall = 0.0
            identical = True
            for repeat in range(max(1, repeats)):
                started = time.perf_counter()
                sharded = run_scenario_sharded(
                    spec, shards=shards, profile_sink=record_cpu
                )
                if repeat == 0:
                    wall = time.perf_counter() - started
                identical = identical and (
                    pickle.dumps(sharded) == sequential_pickle
                )
            critical_path = max(shard_cpu.values()) if shard_cpu else wall
            rows.append(
                {
                    "satellites": size,
                    "shards": shards,
                    "wall_s": wall,
                    "max_shard_cpu_s": critical_path,
                    "wall_speedup": sequential_wall / wall,
                    "projected_speedup": (
                        sequential_cpu / critical_path
                        if critical_path > 0
                        else float("nan")
                    ),
                    "identical": identical,
                    "host_cores": host_cores,
                }
            )
    return {"rows": rows}


# ----------------------------------------------------------------------
# Figure 20 — downlink-budget ladder: layer shedding under contact limits
# ----------------------------------------------------------------------
def fig20_downlink_ladder(
    dataset: SyntheticDataset | DatasetSpec | None = None,
    downlink_bytes_options: list[int] | None = None,
    config: EarthPlusConfig | None = None,
    downlink_severity: float = 0.0,
    seed: int = 0,
    max_workers: int | None = None,
    store=ENV_DEFAULT,
) -> dict:
    """Delivery quality as the per-contact downlink budget shrinks.

    The §5 bandwidth-variation experiment on the downlink side: each rung
    constrains ``downlink_bytes_per_contact``, and the layered encoder
    (``n_quality_layers`` > 1) sheds trailing quality layers before any
    capture is deferred or dropped.  Rows report the offered/delivered
    byte ratio, shedding and drop counts, and the PSNR the ground still
    achieves — the graceful-degradation curve the paper describes.
    """
    config = (
        config
        if config is not None
        else EarthPlusConfig(gamma_bpp=0.3, n_quality_layers=3)
    )
    if dataset is None:
        dataset = DatasetSpec.of(
            "sentinel2",
            locations=["A"],
            bands=["B4", "B11"],
            horizon_days=120.0,
            image_shape=(192, 192),
        )
    if downlink_bytes_options is None:
        # An unconstrained anchor plus rungs descending through the
        # regime where laptop-scale captures (tens of KB) stop fitting.
        downlink_bytes_options = [
            DEFAULT_DOWNLINK_BYTES_PER_CONTACT,
            200_000,
            50_000,
            20_000,
            8_000,
        ]
    specs = [
        ScenarioSpec(
            policy="earthplus",
            dataset=dataset,
            config=config,
            downlink_bytes_per_contact=budget,
            downlink_severity=downlink_severity,
            seed=seed,
            extras={"budget": budget},
        )
        for budget in downlink_bytes_options
    ]
    results = run_scenarios_cached(
        specs, max_workers=max_workers, store=store
    ).results
    rows = []
    for spec_item, result in zip(specs, results):
        stats = result.downlink_stats
        offered = stats.get("bytes_offered", 0)
        delivered = stats.get("bytes_delivered", 0)
        rows.append(
            {
                "downlink_bytes_per_contact": spec_item.extras["budget"],
                "bytes_offered": offered,
                "bytes_delivered": delivered,
                "delivered_fraction": (
                    delivered / offered if offered else 1.0
                ),
                "layers_shed": stats.get("layers_shed", 0),
                "captures_shed": stats.get("captures_shed", 0),
                "captures_deferred": stats.get("captures_deferred", 0),
                "captures_dropped": stats.get("captures_dropped", 0),
                "delivered": len(result.delivered()),
                "records": len(result.records),
                "psnr": result.mean_psnr(),
                "downlink_bps": result.required_downlink_bps(),
            }
        )
    return {"rows": rows}


# ----------------------------------------------------------------------
# §5 downlink adaptation — layered codec
# ----------------------------------------------------------------------
def downlink_layer_adaptation(
    image_shape: tuple[int, int] = (192, 192),
    n_layers: int = 3,
    n_captures: int = 4,
    base_step: float = 1.0 / 1024.0,
    seed: int = 55,
) -> dict:
    """Quality layers let the ground trade bytes for quality per contact.

    §5: "the ground can download more layers to receive high-quality
    imagery when having sufficient downlink bandwidth or download fewer
    layers when the downlink is limited."  We encode representative
    captures with the real layered codec and measure the bytes/PSNR each
    layer prefix delivers.
    """
    from repro.codec.jpeg2000 import CodecConfig, ImageCodec
    from repro.codec.metrics import psnr as psnr_metric
    from repro.imagery.illumination import IlluminationModel

    spec = LocationSpec(
        name="layers",
        shape=image_shape,
        terrain_mix={
            TerrainClass.AGRICULTURE: 0.4,
            TerrainClass.CITY: 0.3,
            TerrainClass.FOREST: 0.3,
        },
        seed=stable_hash(seed, "layer-loc"),
    )
    earth = EarthModel(spec, PLANET_BANDS)
    illum = IlluminationModel(seed=stable_hash(seed, "layer-illum"))
    codec = ImageCodec(CodecConfig(tile_size=64, base_step=base_step))
    per_layer_bytes = np.zeros(n_layers)
    per_layer_mse = np.zeros(n_layers)
    for k in range(n_captures):
        t_days = 3.0 + 9.0 * k
        image = illum.sample(t_days).apply(
            earth.ground_truth("Red", t_days)
        )
        encoded = codec.encode(image, n_layers=n_layers)
        for layer in range(1, n_layers + 1):
            recon = codec.decode(encoded, layers=layer)
            per_layer_bytes[layer - 1] += encoded.payload_bytes(layer)
            err = image - recon
            per_layer_mse[layer - 1] += float(np.mean(err * err))
    rows = []
    for layer in range(n_layers):
        mean_mse = per_layer_mse[layer] / n_captures
        rows.append(
            {
                "layers": layer + 1,
                "bytes": per_layer_bytes[layer] / n_captures,
                "psnr": (
                    -10.0 * np.log10(mean_mse) if mean_mse > 0 else float("inf")
                ),
            }
        )
    return {"rows": rows, "n_captures": n_captures}


# ----------------------------------------------------------------------
# Figure 21 — unified sweep scheduler throughput (specs x shards)
# ----------------------------------------------------------------------
def fig21_sweep_throughput(
    sizes: list[int] | None = None,
    gammas: list[float] | None = None,
    seeds: list[int] | None = None,
    shards: int = 4,
    workers: int = 4,
    image_shape: tuple[int, int] = (96, 96),
    horizon_days: float = 45.0,
    ground_sync_days: float = 3.0,
    dataset_seed: int = 19,
) -> dict:
    """Joint specs-x-shards scheduling vs the two exclusive legacy modes.

    Runs one fig19-style sweep (planet constellations, sizes x gammas x
    seeds) three ways: through the unified
    :class:`~repro.analysis.scheduler.SweepScheduler` (``workers``-sized
    pool, every scenario split ``shards`` ways), through per-scenario
    gang runs (`run_scenario_sharded`, the legacy ``shards``-only mode),
    and sequentially in this process, asserting pickle-byte identity
    per spec.  As in :func:`fig19_scaling`, each dataset is warmed once
    untimed first: worker processes fork from this driver and inherit
    its memoized dataset and capture caches copy-on-write, so every
    timed number measures warm-cache simulation, not first-touch imagery
    synthesis.

    Because the build host may have a single core, the headline numbers
    are **critical-path projections** — the wall-clock floor each
    scheduling mode approaches with enough cores, set by the mode's
    inherent serialization (CPU seconds, so host timeslicing cancels
    out):

    * ``cp_specs_s`` — the ``max_workers``-only mode cannot split a
      scenario, so its floor is the largest single-spec CPU;
    * ``cp_shards_s`` — the ``shards``-only mode runs scenarios
      serially, so its floor is the *sum* of per-scenario slowest-shard
      CPUs;
    * ``cp_joint_s`` — the unified scheduler has neither serialization:
      its floor is the slowest single shard task.

    ``projection_over_best_exclusive`` is
    ``min(cp_specs_s, cp_shards_s) / cp_joint_s`` — how much faster the
    joint schedule's critical path is than the better exclusive mode's.
    Worker-spawn counts ride along: the pool spawns ``workers``
    processes once per sweep where the legacy sharded path forked
    ``n_specs x shards``.

    All three projections are computed from ONE set of task-cost
    measurements: per-spec sequential CPU from the sequential pass and
    per-shard CPU from the per-scenario gang runs.  The scheduler runs
    identical shard tasks (differential-tested byte identity), but under
    work stealing *which* tasks co-run — and so how much an oversubscribed
    host's timeslicing thrashes each one — varies run to run, whereas a
    gang's co-runners are always its own members.  Measuring task costs
    under the deterministic schedule keeps the ratio repeatable and
    compares scheduling structure, not cache-pollution luck.

    Always simulates (never touches the store): timings are the payload.
    """
    import pickle
    import time

    from repro.analysis.scenarios import run_scenario, run_scenario_sharded
    from repro.analysis.scheduler import SweepScheduler

    if sizes is None:
        sizes = [4, 32]
    if gammas is None:
        gammas = [0.2, 0.3]
    if seeds is None:
        seeds = [19, 23, 27]
    specs = [
        ScenarioSpec(
            policy="earthplus",
            dataset=DatasetSpec.of(
                "planet",
                n_satellites=size,
                image_shape=image_shape,
                horizon_days=horizon_days,
                seed=dataset_seed,
            ),
            config=EarthPlusConfig(
                gamma_bpp=gamma, ground_sync_days=ground_sync_days
            ),
            seed=seed,
            label=f"n{size}/g{gamma:g}/s{seed}",
            extras={"satellites": size, "gamma": gamma, "seed": seed},
        )
        for size in sizes
        for gamma in gammas
        for seed in seeds
    ]
    host_cores = os.cpu_count() or 1

    # Warm each dataset once (see docstring); one spec per size suffices
    # because capture caches are keyed by dataset, not gamma/seed.
    for warm_spec in {spec.dataset: spec for spec in specs}.values():
        run_scenario(warm_spec)

    # Joint mode: one persistent pool, every scenario sharded — the
    # spawn-count/identity/wall-time measurement.
    scheduler = SweepScheduler(workers=workers, shards_per_scenario=shards)
    joint_started = time.perf_counter()
    joint_results, stats = scheduler.run(specs)
    joint_wall = time.perf_counter() - joint_started

    # Task costs (see docstring): per-shard CPU under the deterministic
    # per-scenario gang schedule, per-spec CPU from the sequential pass
    # (also the byte-identity oracle).
    shard_cpu: dict[int, dict[int, float]] = {}
    rows = []
    sequential_wall = 0.0
    cp_specs = 0.0
    cp_shards = 0.0
    cp_joint = 0.0
    for index, spec in enumerate(specs):
        per_shard = shard_cpu.setdefault(index, {})

        def record_cpu(shard_index: int, _satellites, profile_rows) -> None:
            per_shard[shard_index] = sum(
                row["seconds"]
                for row in profile_rows
                if row["section"] == "cpu_total"
            )

        run_scenario_sharded(spec, shards=shards, profile_sink=record_cpu)
        started = time.perf_counter()
        cpu_started = time.process_time()
        sequential = run_scenario(spec)
        spec_cpu = time.process_time() - cpu_started
        sequential_wall += time.perf_counter() - started
        slowest_shard = max(per_shard.values()) if per_shard else spec_cpu
        cp_specs = max(cp_specs, spec_cpu)
        cp_shards += slowest_shard
        cp_joint = max(cp_joint, slowest_shard)
        rows.append(
            {
                "scenario": spec.resolved_label(),
                "satellites": spec.extras["satellites"],
                "sequential_cpu_s": spec_cpu,
                "shard_tasks": len(per_shard),
                "max_shard_cpu_s": slowest_shard,
                "identical": (
                    pickle.dumps(joint_results[index])
                    == pickle.dumps(sequential)
                ),
            }
        )
    best_exclusive = min(cp_specs, cp_shards)
    summary = {
        "n_specs": len(specs),
        "shards_per_scenario": shards,
        "workers": workers,
        "host_cores": host_cores,
        "joint_wall_s": joint_wall,
        "sequential_wall_s": sequential_wall,
        "cp_specs_s": cp_specs,
        "cp_shards_s": cp_shards,
        "cp_joint_s": cp_joint,
        "projection_over_best_exclusive": (
            best_exclusive / cp_joint if cp_joint > 0 else float("nan")
        ),
        "spawns_joint": stats.spawns,
        "spawns_legacy_sharded": len(specs) * shards,
        "tasks_run": stats.tasks_run,
        "tasks_stolen": stats.tasks_stolen,
        "barrier_idle_s": stats.barrier_idle_s,
        "worker_cpu_s": stats.worker_cpu_s,
        "all_identical": all(row["identical"] for row in rows),
    }
    return {"rows": rows, "summary": summary}


# ----------------------------------------------------------------------
# Tables 1 & 2
# ----------------------------------------------------------------------
def tab01_specs(spec: DovesSpec | None = None) -> list[tuple[str, str]]:
    """Doves specification rows (paper Table 1)."""
    spec = spec if spec is not None else DovesSpec()
    return [
        ("Ground contact duration", f"{spec.ground_contact_duration_s / 60:.0f} minutes"),
        ("Ground contact per day", f"{spec.ground_contacts_per_day} times"),
        ("Uplink bandwidth", f"{spec.uplink_bps / 1e3:.0f} kbps"),
        ("Downlink bandwidth", f"{spec.downlink_bps / 1e6:.0f} Mbps"),
        ("On-board storage", f"{spec.onboard_storage_bytes / 1e9:.0f} GB"),
        (
            "Image resolution",
            f"{spec.image_resolution[1]}x{spec.image_resolution[0]}",
        ),
        ("Image channels", f"RGB + InfraRed ({spec.image_channels})"),
        ("Raw image file size", f"{spec.raw_image_bytes / 1e6:.0f} MB"),
        ("Ground sampling distance", f"{spec.ground_sampling_distance_m} meters"),
    ]


def tab02_datasets(
    sentinel_kwargs: dict | None = None, planet_kwargs: dict | None = None
) -> list[dict]:
    """Dataset inventory rows (paper Table 2)."""
    sentinel = sentinel2_dataset(**(sentinel_kwargs or {}))
    planet = planet_dataset(**(planet_kwargs or {}))
    return [sentinel.describe(), planet.describe()]
