"""Experiment runners: one entry point per simulation-backed comparison.

:func:`run_policy` is the single place a dataset + policy + config turn into
a :class:`~repro.core.system.RunResult`; every benchmark goes through it so
all comparisons share detectors, codec, and scoring.  Figure-specific
drivers (reference-age CDFs, uplink ladders, constellation sweeps) live in
:mod:`repro.analysis.figures`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.kodan import KodanPolicy
from repro.baselines.naive import NaivePolicy
from repro.baselines.satroi import SatRoIPolicy
from repro.core.cloud import train_ground_detector, train_onboard_detector
from repro.core.config import EarthPlusConfig
from repro.core.ground_segment import GroundSegment
from repro.core.system import ConstellationSimulator, EarthPlusPolicy, RunResult
from repro.datasets.generator import SyntheticDataset
from repro.errors import ConfigError
from repro.orbit.links import FluctuationModel

POLICY_NAMES = ("earthplus", "kodan", "satroi", "naive")


def run_policy(
    dataset: SyntheticDataset,
    policy: str,
    config: EarthPlusConfig | None = None,
    uplink_bytes_per_contact: int | None = None,
    fluctuation: FluctuationModel | None = None,
    ground_detector_for_scoring: bool = True,
    seed: int = 0,
) -> RunResult:
    """Simulate ``dataset`` under one compression policy.

    Args:
        dataset: A synthetic dataset from :mod:`repro.datasets`.
        policy: One of ``earthplus``, ``kodan``, ``satroi``, ``naive``.
        config: Earth+ tunables (shared knobs also steer baselines).
        uplink_bytes_per_contact: Override the Table-1 default uplink
            capacity (only Earth+ uses the uplink).
        fluctuation: Optional per-contact bandwidth fluctuation model.
        ground_detector_for_scoring: Whether the ground re-screens
            downloads with the accurate detector before mosaic ingest.
        seed: Ground-segment seed (random update skipping).

    Returns:
        The aggregated :class:`RunResult`.

    Raises:
        ConfigError: For unknown policy names.
    """
    if policy not in POLICY_NAMES:
        raise ConfigError(
            f"unknown policy {policy!r}; expected one of {POLICY_NAMES}"
        )
    config = config if config is not None else EarthPlusConfig()
    bands = dataset.bands
    image_shape = dataset.image_shape
    cheap = train_onboard_detector(bands, tile_size=config.tile_size)
    accurate = train_ground_detector(bands)
    ground = GroundSegment(
        config=config,
        bands=bands,
        image_shape=image_shape,
        ground_detector=accurate if ground_detector_for_scoring else None,
        seed=seed,
    )

    def factory(satellite_id: int):
        if policy == "earthplus":
            return EarthPlusPolicy(config, bands, image_shape, cheap)
        if policy == "kodan":
            return KodanPolicy(config, bands, image_shape, accurate)
        if policy == "satroi":
            return SatRoIPolicy(config, bands, image_shape, cheap)
        return NaivePolicy(config, bands, image_shape)

    simulator = ConstellationSimulator(
        sensors=dataset.sensors,
        bands=bands,
        schedule=dataset.schedule,
        image_shape=image_shape,
        config=config,
        policy_factory=factory,
        ground_segment=ground,
        uplink_bytes_per_contact=(
            uplink_bytes_per_contact
            if uplink_bytes_per_contact is not None
            else int(250e3 * 600 / 8)
        ),
        fluctuation=fluctuation,
    )
    return simulator.run()


@dataclass
class PolicyComparison:
    """Side-by-side results of several policies on one dataset.

    Attributes:
        results: Policy name -> run result.
    """

    results: dict[str, RunResult]

    def downlink_saving(self, against: str = "strongest") -> float:
        """Earth+'s downlink saving factor (the paper's Figure 14 metric).

        Args:
            against: ``"strongest"`` compares against the baseline with the
                lowest downlink among those whose PSNR does not exceed
                Earth+'s by more than 0.5 dB (the paper's "strongest
                baseline with lower PSNR"); or a policy name.

        Returns:
            Baseline downlink bytes divided by Earth+ downlink bytes.
        """
        earthplus = self.results["earthplus"]
        candidates = {
            name: result
            for name, result in self.results.items()
            if name != "earthplus"
        }
        if against != "strongest":
            baseline = self.results[against]
        else:
            eligible = {
                name: result
                for name, result in candidates.items()
                if result.mean_psnr() <= earthplus.mean_psnr() + 0.5
            }
            pool = eligible if eligible else candidates
            baseline = min(pool.values(), key=lambda r: r.downlink_bytes)
        if earthplus.downlink_bytes == 0:
            return float("inf")
        return baseline.downlink_bytes / earthplus.downlink_bytes


def compare_policies(
    dataset: SyntheticDataset,
    policies: tuple[str, ...] = ("earthplus", "kodan", "satroi"),
    config: EarthPlusConfig | None = None,
    **kwargs,
) -> PolicyComparison:
    """Run several policies on one dataset and bundle the results."""
    results = {
        name: run_policy(dataset, name, config, **kwargs) for name in policies
    }
    return PolicyComparison(results=results)
